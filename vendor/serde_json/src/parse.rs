//! A small recursive-descent JSON parser producing [`Value`] trees.

use crate::Error;
use serde::value::{Number, Value};

/// Parses a complete JSON document; trailing whitespace is allowed,
/// trailing content is an error.
pub fn parse(text: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.error("trailing characters after JSON value"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn error(&self, msg: &str) -> Error {
        Error::new(format!("{msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected `{}`", byte as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.error("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.error("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.error("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(self.error("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(c) = self.peek() {
                if c == b'"' || c == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.error("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.error("invalid \\u escape"))?;
                            // Surrogate pairs are not supported; the
                            // writer never emits them.
                            out.push(
                                char::from_u32(hex)
                                    .ok_or_else(|| self.error("invalid \\u escape"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(self.error("invalid escape")),
                    }
                    self.pos += 1;
                }
                _ => return Err(self.error("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.error("invalid number"))?;
        let n = if is_float {
            Number::Float(
                text.parse::<f64>()
                    .map_err(|_| self.error("invalid number"))?,
            )
        } else if let Ok(u) = text.parse::<u64>() {
            Number::PosInt(u)
        } else {
            Number::NegInt(
                text.parse::<i64>()
                    .map_err(|_| self.error("number out of range"))?,
            )
        };
        Ok(Value::Number(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse(" true ").unwrap(), Value::Bool(true));
        assert_eq!(parse("42").unwrap(), Value::Number(Number::PosInt(42)));
        assert_eq!(parse("-7").unwrap(), Value::Number(Number::NegInt(-7)));
        assert_eq!(parse("1.5e2").unwrap(), Value::Number(Number::Float(150.0)));
        assert_eq!(parse("\"a\\nb\"").unwrap(), Value::String("a\nb".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"rows": [{"a": 1}, {"a": 2}], "ok": false}"#).unwrap();
        assert_eq!(v["rows"][1]["a"], 2);
        assert_eq!(v["ok"], false);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("1 2").is_err());
        assert!(parse("nope").is_err());
    }
}
