//! Offline stand-in for [serde_json](https://docs.rs/serde_json).
//!
//! Re-exports the [`Value`] tree from the vendored `serde` and provides
//! the entry points this workspace uses: the [`json!`] macro,
//! [`to_string`] / [`to_string_pretty`], [`to_value`], and [`from_str`].
//! See the vendored `serde` crate's docs for why these stand-ins exist.

// Vendored stand-in: keep the code close to the real crate's shape rather
// than chasing pedantic lints.
#![allow(clippy::pedantic)]

pub use serde::value::{Number, Value};

use serde::{Deserialize, Serialize};
use std::fmt;

mod parse;

/// Error type for serialization and parsing.
///
/// Serializing a [`Value`] cannot fail here (the tree is already
/// JSON-shaped), so only [`from_str`] produces errors in practice.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    pub(crate) fn new(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

/// Converts any [`Serialize`] value into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

/// Serializes to compact JSON.
///
/// # Errors
///
/// Never fails in this stand-in; the `Result` mirrors serde_json's
/// signature.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.to_value().to_string())
}

/// Serializes to human-readable JSON, indented with two spaces.
///
/// # Errors
///
/// Never fails in this stand-in; the `Result` mirrors serde_json's
/// signature.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_pretty(&value.to_value(), 0, &mut out);
    Ok(out)
}

fn write_pretty(v: &Value, indent: usize, out: &mut String) {
    let pad = "  ".repeat(indent + 1);
    let close_pad = "  ".repeat(indent);
    match v {
        Value::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&pad);
                write_pretty(item, indent + 1, out);
            }
            out.push('\n');
            out.push_str(&close_pad);
            out.push(']');
        }
        Value::Object(entries) if !entries.is_empty() => {
            out.push_str("{\n");
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&pad);
                out.push_str(&Value::String(k.clone()).to_string());
                out.push_str(": ");
                write_pretty(val, indent + 1, out);
            }
            out.push('\n');
            out.push_str(&close_pad);
            out.push('}');
        }
        other => out.push_str(&other.to_string()),
    }
}

/// Parses JSON text into any [`Deserialize`] type (in this workspace,
/// almost always [`Value`] itself).
///
/// # Errors
///
/// Returns an [`Error`] describing the first syntax problem, or a shape
/// mismatch between the parsed tree and `T`.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let value = parse::parse(text)?;
    T::from_value(&value).ok_or_else(|| Error::new("JSON shape does not match target type"))
}

/// Builds a [`Value`] from JSON-like syntax, mirroring `serde_json::json!`.
///
/// Supports literals (`null`, `true`, numbers, strings), arrays, objects
/// with string-literal or parenthesized-expression keys, and arbitrary
/// Rust expressions (serialized via [`Serialize`]) in value position.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($tt:tt)* ]) => { $crate::json_internal!(@array [] $($tt)*) };
    ({ $($tt:tt)* }) => { $crate::json_internal!(@object [] () $($tt)*) };
    ($other:expr) => { $crate::to_value(&$other) };
}

/// Implementation detail of [`json!`]; do not use directly.
#[doc(hidden)]
#[macro_export]
macro_rules! json_internal {
    // --- arrays: accumulate parsed elements in [ ... ] ---
    (@array [$($elems:expr),*]) => {
        $crate::Value::Array(vec![$($elems),*])
    };
    (@array [$($elems:expr),*] null $(, $($rest:tt)*)?) => {
        $crate::json_internal!(@array [$($elems,)* $crate::Value::Null] $($($rest)*)?)
    };
    (@array [$($elems:expr),*] [ $($inner:tt)* ] $(, $($rest:tt)*)?) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!(@array [] $($inner)*)] $($($rest)*)?)
    };
    (@array [$($elems:expr),*] { $($inner:tt)* } $(, $($rest:tt)*)?) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!(@object [] () $($inner)*)] $($($rest)*)?)
    };
    (@array [$($elems:expr),*] $next:expr $(, $($rest:tt)*)?) => {
        $crate::json_internal!(@array [$($elems,)* $crate::to_value(&$next)] $($($rest)*)?)
    };

    // --- objects: accumulate (key, value) pairs; () holds the pending key ---
    (@object [$($entries:expr),*] ()) => {
        $crate::Value::Object(vec![$($entries),*])
    };
    (@object [$($entries:expr),*] () $key:literal : $($rest:tt)*) => {
        $crate::json_internal!(@object [$($entries),*] ($key) $($rest)*)
    };
    (@object [$($entries:expr),*] () ( $key:expr ) : $($rest:tt)*) => {
        $crate::json_internal!(@object [$($entries),*] ($key) $($rest)*)
    };
    (@object [$($entries:expr),*] ($key:expr) null $(, $($rest:tt)*)?) => {
        $crate::json_internal!(@object
            [$($entries,)* (::std::string::String::from($key), $crate::Value::Null)]
            () $($($rest)*)?)
    };
    (@object [$($entries:expr),*] ($key:expr) [ $($inner:tt)* ] $(, $($rest:tt)*)?) => {
        $crate::json_internal!(@object
            [$($entries,)* (::std::string::String::from($key), $crate::json_internal!(@array [] $($inner)*))]
            () $($($rest)*)?)
    };
    (@object [$($entries:expr),*] ($key:expr) { $($inner:tt)* } $(, $($rest:tt)*)?) => {
        $crate::json_internal!(@object
            [$($entries,)* (::std::string::String::from($key), $crate::json_internal!(@object [] () $($inner)*))]
            () $($($rest)*)?)
    };
    (@object [$($entries:expr),*] ($key:expr) $value:expr $(, $($rest:tt)*)?) => {
        $crate::json_internal!(@object
            [$($entries,)* (::std::string::String::from($key), $crate::to_value(&$value))]
            () $($($rest)*)?)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_macro_literals() {
        assert_eq!(json!(null), Value::Null);
        assert_eq!(json!(true), Value::Bool(true));
        assert_eq!(json!(3u64), Value::Number(Number::PosInt(3)));
        assert_eq!(json!("x"), Value::String("x".into()));
    }

    #[test]
    fn json_macro_objects_and_arrays() {
        let label = "row";
        let v = json!({
            "experiment": "t",
            "n": 1u32 + 1,
            "rows": [ { "a": label }, null, [1, 2] ],
            "missing": null,
        });
        assert_eq!(v["experiment"], "t");
        assert_eq!(v["n"], 2);
        assert_eq!(v["rows"][0]["a"], "row");
        assert!(v["rows"][1].is_null());
        assert_eq!(v["rows"][2][1], 2);
        assert!(v["missing"].is_null());
    }

    #[test]
    fn json_macro_expression_values() {
        let records = vec![json!({"k": 1}), json!({"k": 2})];
        let v = json!({ "rows": records, "label": format!("{}-{}", "a", 1) });
        assert_eq!(v["rows"].as_array().map(Vec::len), Some(2));
        assert_eq!(v["label"], "a-1");
    }

    #[test]
    fn pretty_round_trips() {
        let v = json!({ "a": [1, 2], "b": { "c": null }, "d": 1.5 });
        let text = to_string_pretty(&v).unwrap();
        assert!(text.contains("\n  \"a\": [\n"));
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn compact_round_trips() {
        let v = json!({ "s": "quote\"inside", "neg": -5, "f": 0.25 });
        let back: Value = from_str(&to_string(&v).unwrap()).unwrap();
        assert_eq!(back, v);
    }
}
