//! Offline stand-in for [criterion](https://docs.rs/criterion).
//!
//! Implements the surface `benches/micro.rs` uses: [`Criterion`] with
//! [`Criterion::bench_function`], [`Bencher::iter`], [`black_box`], and
//! the [`criterion_group!`] / [`criterion_main!`] macros. Each benchmark
//! runs a short calibration pass, then a fixed measurement pass timed
//! with [`std::time::Instant`], and prints the mean time per iteration.
//! There is no warm-up analysis, outlier rejection, or HTML report.

// Vendored stand-in: keep the code close to the real crate's shape rather
// than chasing pedantic lints.
#![allow(clippy::pedantic)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target wall-clock time spent measuring each benchmark.
const MEASUREMENT_BUDGET: Duration = Duration::from_millis(500);

/// Collects and runs benchmarks.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Runs `f` as a benchmark named `id` and prints the mean iteration
    /// time.
    pub fn bench_function(&mut self, id: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        let mut bencher = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        // Calibrate: grow the iteration count until one batch is long
        // enough to time reliably.
        loop {
            f(&mut bencher);
            if bencher.elapsed >= Duration::from_millis(5) || bencher.iters >= 1 << 30 {
                break;
            }
            bencher.iters *= 8;
        }
        let per_iter = bencher.elapsed.as_nanos() / u128::from(bencher.iters);
        let batches =
            (MEASUREMENT_BUDGET.as_nanos() / bencher.elapsed.as_nanos().max(1)).clamp(1, 64);
        let mut total = Duration::ZERO;
        let mut iters = 0u64;
        for _ in 0..batches {
            f(&mut bencher);
            total += bencher.elapsed;
            iters += bencher.iters;
        }
        let mean_ns = total.as_nanos() / u128::from(iters.max(1));
        println!("{id:<40} mean {mean_ns} ns/iter (calibration {per_iter} ns/iter)");
        self
    }

    /// Runs the registered benchmark groups (no-op configuration hook).
    pub fn final_summary(&mut self) {}
}

/// Times closures for one benchmark.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `f`, running it the currently calibrated number of times.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// Declares a benchmark group: a function per listed benchmark target.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark entry point running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_bench(c: &mut Criterion) {
        c.bench_function("sum_0_to_99", |b| b.iter(|| (0u64..100).sum::<u64>()));
    }

    criterion_group!(benches, tiny_bench);

    #[test]
    fn group_runs_without_panicking() {
        benches();
    }
}
