//! Collection strategies (`prop::collection::vec`).

use crate::{Strategy, TestRng};
use std::ops::{Range, RangeInclusive};

/// A length specification for [`vec`]: a fixed size or a range of sizes.
#[derive(Debug, Clone)]
pub enum SizeRange {
    /// Exactly this many elements.
    Fixed(usize),
    /// A half-open range of lengths.
    Range(Range<usize>),
    /// An inclusive range of lengths.
    Inclusive(RangeInclusive<usize>),
}

impl SizeRange {
    fn pick(&self, rng: &mut TestRng) -> usize {
        match self {
            SizeRange::Fixed(n) => *n,
            SizeRange::Range(r) => {
                assert!(r.start < r.end, "empty length range");
                r.start + (rng.next_u64() as usize) % (r.end - r.start)
            }
            SizeRange::Inclusive(r) => {
                let (start, end) = (*r.start(), *r.end());
                assert!(start <= end, "empty length range");
                start + (rng.next_u64() as usize) % (end - start + 1)
            }
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange::Fixed(n)
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        SizeRange::Range(r)
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange::Inclusive(r)
    }
}

/// The strategy returned by [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let len = self.size.pick(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Generates `Vec`s whose elements come from `element` and whose length
/// comes from `size` (a `usize`, `Range<usize>`, or `RangeInclusive<usize>`).
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}
