//! Offline stand-in for [proptest](https://docs.rs/proptest).
//!
//! Implements the subset this workspace's property tests use:
//!
//! * the [`proptest!`] macro (with an optional
//!   `#![proptest_config(ProptestConfig::with_cases(n))]` header);
//! * [`prop_assert!`] / [`prop_assert_eq!`];
//! * strategies: integer ranges (`0u64..100`, `2usize..=16`), tuples of
//!   strategies, `any::<T>()`, and `prop::collection::vec`.
//!
//! Differences from the real crate: failing cases are **not shrunk** (the
//! panic message reports the failing inputs as generated), and the value
//! stream is this crate's own deterministic generator, seeded per test
//! from the test's name so failures reproduce across runs.

// Vendored stand-in: keep the code close to the real crate's shape rather
// than chasing pedantic lints.
#![allow(clippy::pedantic)]

use std::ops::{Range, RangeInclusive};

pub mod collection;

/// Deterministic generator backing every strategy (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// Run-time configuration for [`proptest!`] blocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    /// 64 cases: enough to exercise the simulator's properties while
    /// keeping the suite fast on one core (the real crate defaults to
    /// 256, with shrinking amortizing the cost of failures).
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A value generator. The stand-in strategy produces values directly
/// (no shrink tree).
pub trait Strategy {
    /// The type of generated values.
    type Value: std::fmt::Debug;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + std::fmt::Debug>(pub T);

impl<T: Clone + std::fmt::Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = ((self.end as i128) - (self.start as i128)) as u128;
                let offset = (rng.next_u64() as u128) % span;
                #[allow(clippy::cast_possible_truncation)]
                {
                    ((self.start as i128) + (offset as i128)) as $t
                }
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = ((end as i128) - (start as i128)) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                #[allow(clippy::cast_possible_truncation)]
                {
                    ((start as i128) + (offset as i128)) as $t
                }
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+)),+) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy!(
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3)
);

/// Types with a canonical whole-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized + std::fmt::Debug {
    /// Generates one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                #[allow(clippy::cast_possible_truncation)]
                {
                    rng.next_u64() as $t
                }
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T> {
    marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Strategy over the whole domain of `T`, e.g. `any::<bool>()`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        marker: std::marker::PhantomData,
    }
}

/// FNV-1a, used to derive a per-test seed from the test's name so runs
/// are reproducible without global state.
#[must_use]
pub fn fnv1a(text: &str) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for b in text.bytes() {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

pub mod prelude {
    //! Everything a property test needs, mirroring
    //! `proptest::prelude::*`.

    pub use crate as prop;
    pub use crate::{any, Any, Arbitrary, Just, ProptestConfig, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Defines property tests. See the crate docs for supported syntax.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@fns ($cfg); $($rest)*);
    };
    (@fns ($cfg:expr); ) => {};
    (@fns ($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::new($crate::fnv1a(concat!(
                module_path!(), "::", stringify!($name)
            )));
            for case in 0..config.cases {
                $(let $arg = $crate::Strategy::generate(&$strat, &mut rng);)*
                let inputs = format!(
                    concat!("case {}/{}:", $(" ", stringify!($arg), " = {:?}",)*),
                    case + 1, config.cases, $(&$arg),*
                );
                // Like the real proptest, the body runs as a fallible
                // function: `return Ok(())` is an early accept and an
                // explicit `Err` rejects the case.
                let result = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(
                    || -> ::std::result::Result<(), ::std::string::String> {
                        $body
                        Ok(())
                    },
                ));
                match result {
                    Err(panic) => {
                        eprintln!("proptest failure ({inputs}); inputs are not shrunk");
                        ::std::panic::resume_unwind(panic);
                    }
                    Ok(Err(message)) => {
                        panic!("proptest failure ({inputs}): {message}");
                    }
                    Ok(Ok(())) => {}
                }
            }
        }
        $crate::proptest!(@fns ($cfg); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@fns ($crate::ProptestConfig::default()); $($rest)*);
    };
}

/// Asserts a condition inside [`proptest!`], reporting the generated
/// inputs on failure.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+);
    };
}

/// Asserts equality inside [`proptest!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {
        assert_eq!($left, $right);
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        assert_eq!($left, $right, $($fmt)+);
    };
}

/// Asserts inequality inside [`proptest!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {
        assert_ne!($left, $right);
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        assert_ne!($left, $right, $($fmt)+);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 0u64..100, y in 2usize..=16, z in -4i64..=4) {
            prop_assert!(x < 100);
            prop_assert!((2..=16).contains(&y));
            prop_assert!((-4..=4).contains(&z), "z = {z}");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(17))]
        #[test]
        fn config_header_is_honored(pair in (0u32..8, any::<bool>())) {
            prop_assert!(pair.0 < 8);
        }

        /// Doc comments and multiple functions per block parse.
        #[test]
        fn vec_strategy_len_and_bounds(
            xs in prop::collection::vec(0u64..50, 1..20),
            fixed in prop::collection::vec(any::<bool>(), 8),
        ) {
            prop_assert!(!xs.is_empty() && xs.len() < 20);
            prop_assert_eq!(fixed.len(), 8);
            for &x in &xs {
                prop_assert!(x < 50);
            }
        }
    }

    #[test]
    fn deterministic_per_name() {
        let mut a = crate::TestRng::new(crate::fnv1a("x"));
        let mut b = crate::TestRng::new(crate::fnv1a("x"));
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
