//! Offline stand-in for [rand](https://docs.rs/rand) 0.8.
//!
//! Provides [`rngs::SmallRng`] (an xoshiro256++ generator, seeded like
//! rand's via SplitMix64), the [`Rng`] extension trait with the `gen` /
//! `gen_range` / `gen_bool` methods the workspace calls, and
//! [`SeedableRng::seed_from_u64`]. The *stream* of values differs from the
//! real crate (no compatibility is claimed); the properties the simulator
//! relies on — determinism per seed and uniformity — hold.

// Vendored stand-in: keep the code close to the real crate's shape rather
// than chasing pedantic lints.
#![allow(clippy::pedantic)]

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        #[allow(clippy::cast_possible_truncation)]
        {
            (self.next_u64() >> 32) as u32
        }
    }
}

/// Seeding support (the `seed_from_u64` subset).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed, deterministically.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types sampleable uniformly over their whole domain via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

/// Maps 64 random bits onto `[0, 1)` with 53-bit precision.
#[allow(clippy::cast_precision_loss)]
fn unit_f64(word: u64) -> f64 {
    (word >> 11) as f64 / (1u64 << 53) as f64
}

/// Ranges sampleable via [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = ((self.end as i128) - (self.start as i128)) as u128;
                let offset = (rng.next_u64() as u128) % span;
                #[allow(clippy::cast_possible_truncation)]
                {
                    ((self.start as i128) + (offset as i128)) as $t
                }
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = ((end as i128) - (start as i128)) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                #[allow(clippy::cast_possible_truncation)]
                {
                    ((start as i128) + (offset as i128)) as $t
                }
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The user-facing sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a uniformly distributed value of `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p must be a probability");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// A small, fast, non-cryptographic generator (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        state: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        /// Expands the seed through SplitMix64 (like the real `rand`), so
        /// nearby seeds give unrelated streams.
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            SmallRng {
                state: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.state;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            let mut s = [s0, s1, s2, s3];
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            self.state = s;
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert!(same < 4);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = SmallRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x = r.gen_range(0u32..1000);
            assert!(x < 1000);
            let y = r.gen_range(-4i64..=4);
            assert!((-4..=4).contains(&y));
        }
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut r = SmallRng::seed_from_u64(11);
        let n = 100_000;
        let hits = (0..n).filter(|_| r.gen_range(0u32..1000) < 300).count();
        let frac = hits as f64 / f64::from(n);
        assert!((0.28..0.32).contains(&frac), "fraction {frac}");
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut r = SmallRng::seed_from_u64(13);
        let n = 100_000;
        let hits = (0..n).filter(|_| r.gen_bool(0.25)).count();
        let frac = hits as f64 / f64::from(n);
        assert!((0.23..0.27).contains(&frac), "fraction {frac}");
    }
}
