//! Offline stand-in for [serde](https://serde.rs).
//!
//! The build container has no network access to crates.io, so the
//! workspace vendors the *subset* of serde's API it actually uses:
//!
//! * `#[derive(Serialize, Deserialize)]` for plain (non-generic) structs
//!   and enums without `#[serde(...)]` attributes;
//! * the [`Serialize`] / [`Deserialize`] traits, defined directly over the
//!   JSON-shaped [`value::Value`] tree rather than serde's
//!   `Serializer`/`Deserializer` visitors (the only backend in this
//!   workspace is `serde_json`, which re-exports that same tree);
//! * implementations for the primitive, tuple, and container types the
//!   simulator's configuration and report types are built from.
//!
//! Swapping the real crates back in requires no source changes outside
//! `[workspace.dependencies]` — the public names used by the workspace
//! (`serde::Serialize`, `serde::Deserialize`, `serde_json::Value`,
//! `serde_json::json!`, …) keep their meaning.

// Vendored stand-in: keep the code close to the real crate's shape rather
// than chasing pedantic lints.
#![allow(clippy::pedantic)]

pub mod value;

pub use serde_derive::{Deserialize, Serialize};

use crate::value::{Number, Value};
use std::collections::{BTreeMap, HashMap};

/// A type that can be converted into the JSON-shaped [`Value`] tree.
///
/// The stand-in equivalent of `serde::Serialize`; derive it with
/// `#[derive(Serialize)]`.
pub trait Serialize {
    /// Converts `self` into a [`Value`].
    fn to_value(&self) -> Value;
}

/// A type that can be reconstructed from the JSON-shaped [`Value`] tree.
///
/// The stand-in equivalent of `serde::Deserialize`; derive it with
/// `#[derive(Deserialize)]`. Returns `None` when the value's shape does
/// not match.
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from a [`Value`], or `None` on shape mismatch.
    fn from_value(v: &Value) -> Option<Self>;
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Option<Self> {
        Some(v.clone())
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Option<Self> {
        v.as_bool()
    }
}

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::PosInt(u64::from(*self)))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Option<Self> {
                v.as_u64().and_then(|n| <$t>::try_from(n).ok())
            }
        }
    )*};
}

impl_serde_uint!(u8, u16, u32, u64);

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = i64::from(*self);
                if let Ok(u) = u64::try_from(n) {
                    Value::Number(Number::PosInt(u))
                } else {
                    Value::Number(Number::NegInt(n))
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Option<Self> {
                v.as_i64().and_then(|n| <$t>::try_from(n).ok())
            }
        }
    )*};
}

impl_serde_int!(i8, i16, i32, i64);

impl Serialize for usize {
    fn to_value(&self) -> Value {
        Value::Number(Number::PosInt(*self as u64))
    }
}

impl Deserialize for usize {
    fn from_value(v: &Value) -> Option<Self> {
        v.as_u64().and_then(|n| usize::try_from(n).ok())
    }
}

impl Serialize for isize {
    fn to_value(&self) -> Value {
        (*self as i64).to_value()
    }
}

impl Deserialize for isize {
    fn from_value(v: &Value) -> Option<Self> {
        v.as_i64().and_then(|n| isize::try_from(n).ok())
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Number(Number::Float(*self))
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Option<Self> {
        v.as_f64()
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Number(Number::Float(f64::from(*self)))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Option<Self> {
        #[allow(clippy::cast_possible_truncation)]
        v.as_f64().map(|f| f as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Option<Self> {
        v.as_str().map(str::to_owned)
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_owned())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Option<Self> {
        if v.is_null() {
            Some(None)
        } else {
            T::from_value(v).map(Some)
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Option<Self> {
        v.as_array()?.iter().map(T::from_value).collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

macro_rules! impl_serde_tuple {
    ($(($($name:ident : $idx:tt),+)),+) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Option<Self> {
                let items = v.as_array()?;
                let expected = [$($idx),+].len();
                if items.len() != expected {
                    return None;
                }
                Some(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )+};
}

impl_serde_tuple!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3)
);

impl<K: ToString, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_string(), v.to_value()))
                .collect(),
        )
    }
}

impl<K: ToString, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_string(), v.to_value()))
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::from_value(&42u64.to_value()), Some(42));
        assert_eq!(i64::from_value(&(-3i64).to_value()), Some(-3));
        assert_eq!(f64::from_value(&1.5f64.to_value()), Some(1.5));
        assert_eq!(bool::from_value(&true.to_value()), Some(true));
        assert_eq!(String::from_value(&"hi".to_value()), Some("hi".into()));
    }

    #[test]
    fn option_and_vec_round_trip() {
        let v: Option<u32> = None;
        assert_eq!(v.to_value(), Value::Null);
        assert_eq!(Option::<u32>::from_value(&Value::Null), Some(None));
        let xs = vec![1u64, 2, 3];
        assert_eq!(Vec::<u64>::from_value(&xs.to_value()), Some(xs));
    }

    #[test]
    fn tuple_round_trips_as_array() {
        let t = (1u64, 2u64);
        assert_eq!(
            t.to_value(),
            Value::Array(vec![1u64.to_value(), 2u64.to_value()])
        );
        assert_eq!(<(u64, u64)>::from_value(&t.to_value()), Some(t));
    }
}
