//! The JSON-shaped value tree shared by the `serde` and `serde_json`
//! stand-ins.
//!
//! Lives here (rather than in `serde_json`) so that the [`Serialize`]
//! trait in this crate can be defined over it without a dependency cycle;
//! `serde_json` re-exports it as `serde_json::Value`.
//!
//! [`Serialize`]: crate::Serialize

use std::fmt;
use std::ops::{Index, IndexMut};

/// A JSON number: non-negative integer, negative integer, or float.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// A non-negative integer (serialized without a decimal point).
    PosInt(u64),
    /// A negative integer (serialized without a decimal point).
    NegInt(i64),
    /// A floating-point number.
    Float(f64),
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Number::PosInt(n) => write!(f, "{n}"),
            Number::NegInt(n) => write!(f, "{n}"),
            Number::Float(x) => {
                if x.is_finite() {
                    // Match serde_json: floats always carry a fractional
                    // part or exponent so they parse back as floats.
                    if x == x.trunc() && x.abs() < 1e16 {
                        write!(f, "{x:.1}")
                    } else {
                        write!(f, "{x}")
                    }
                } else {
                    // JSON has no NaN/inf; serde_json emits null.
                    write!(f, "null")
                }
            }
        }
    }
}

/// A JSON value tree, the stand-in for `serde_json::Value`.
///
/// Objects preserve insertion order (like serde_json's `preserve_order`
/// feature); key lookup is linear, which is fine at report sizes.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    /// JSON `null`.
    #[default]
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number.
    Number(Number),
    /// A string.
    String(String),
    /// An ordered array.
    Array(Vec<Value>),
    /// An object: ordered key/value pairs.
    Object(Vec<(String, Value)>),
}

/// Shared `null` for `Index` lookups that miss.
static NULL: Value = Value::Null;

impl Value {
    /// `true` if this is `Value::Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// The boolean payload, if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(Number::PosInt(n)) => Some(*n),
            _ => None,
        }
    }

    /// The value as an `i64`, if it is an integer in range.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(Number::PosInt(n)) => i64::try_from(*n).ok(),
            Value::Number(Number::NegInt(n)) => Some(*n),
            _ => None,
        }
    }

    /// The value as an `f64`, if it is any kind of number.
    #[allow(clippy::cast_precision_loss)]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(Number::PosInt(n)) => Some(*n as f64),
            Value::Number(Number::NegInt(n)) => Some(*n as f64),
            Value::Number(Number::Float(x)) => Some(*x),
            _ => None,
        }
    }

    /// The string payload, if this is a `String`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an `Array`.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The key/value pairs, if this is an `Object`.
    pub fn as_object(&self) -> Option<&Vec<(String, Value)>> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// Looks up `key` in an object; `None` for misses and non-objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()?
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }
}

impl Index<&str> for Value {
    type Output = Value;

    /// Objects index by key; missing keys and non-objects yield `Null`
    /// (matching serde_json's forgiving read path).
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl IndexMut<&str> for Value {
    /// Inserts `Null` under `key` first if absent. Panics when `self` is
    /// neither an object nor `Null` (a `Null` is promoted to an object),
    /// matching serde_json.
    fn index_mut(&mut self, key: &str) -> &mut Value {
        if self.is_null() {
            *self = Value::Object(Vec::new());
        }
        let Value::Object(entries) = self else {
            panic!("cannot index non-object value with a string key");
        };
        if let Some(i) = entries.iter().position(|(k, _)| k == key) {
            return &mut entries[i].1;
        }
        entries.push((key.to_owned(), Value::Null));
        &mut entries.last_mut().expect("just pushed").1
    }
}

impl Index<usize> for Value {
    type Output = Value;

    /// Arrays index by position; out-of-range and non-arrays yield `Null`.
    fn index(&self, idx: usize) -> &Value {
        match self {
            Value::Array(a) => a.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

/// Writes `s` as a JSON string literal with escapes.
fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

impl fmt::Display for Value {
    /// Compact JSON encoding (no added whitespace).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Number(n) => write!(f, "{n}"),
            Value::String(s) => write_escaped(f, s),
            Value::Array(items) => {
                f.write_str("[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            Value::Object(entries) => {
                f.write_str("{")?;
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

// Literal comparisons (`v["flips"] == 0`, `v["attack"] == "x"`, ...), as
// supported by serde_json.

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}

impl PartialEq<Value> for bool {
    fn eq(&self, other: &Value) -> bool {
        other == self
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<Value> for &str {
    fn eq(&self, other: &Value) -> bool {
        other == self
    }
}

impl PartialEq<String> for Value {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == Some(other.as_str())
    }
}

impl PartialEq<f64> for Value {
    fn eq(&self, other: &f64) -> bool {
        self.as_f64() == Some(*other)
    }
}

impl PartialEq<Value> for f64 {
    fn eq(&self, other: &Value) -> bool {
        other == self
    }
}

macro_rules! impl_eq_int {
    ($($t:ty),*) => {$(
        impl PartialEq<$t> for Value {
            fn eq(&self, other: &$t) -> bool {
                match i64::try_from(*other) {
                    Ok(n) => self.as_i64() == Some(n),
                    Err(_) => {
                        // Only u64 values beyond i64::MAX land here.
                        match u64::try_from(*other) {
                            Ok(u) => self.as_u64() == Some(u),
                            Err(_) => false,
                        }
                    }
                }
            }
        }
        impl PartialEq<Value> for $t {
            fn eq(&self, other: &Value) -> bool {
                other == self
            }
        }
    )*};
}

impl_eq_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_compact_json() {
        let v = Value::Object(vec![
            ("a".into(), Value::Number(Number::PosInt(1))),
            (
                "b".into(),
                Value::Array(vec![Value::Null, Value::Bool(true)]),
            ),
        ]);
        assert_eq!(v.to_string(), r#"{"a":1,"b":[null,true]}"#);
    }

    #[test]
    fn float_display_keeps_fraction() {
        assert_eq!(Value::Number(Number::Float(32.0)).to_string(), "32.0");
        assert_eq!(Value::Number(Number::Float(1.25)).to_string(), "1.25");
    }

    #[test]
    fn index_misses_yield_null() {
        let v = Value::Object(vec![("a".into(), Value::Bool(true))]);
        assert!(v["missing"].is_null());
        assert!(v["a"]["deeper"].is_null());
    }

    #[test]
    fn index_mut_inserts() {
        let mut v = Value::Object(Vec::new());
        v["x"] = Value::Bool(false);
        assert_eq!(v["x"], false);
    }

    #[test]
    fn literal_comparisons() {
        let v = Value::Number(Number::PosInt(32));
        assert!(v == 32);
        assert!(v == 32u64);
        assert!(Value::Number(Number::Float(32.0)) == 32.0);
        assert!(Value::String("x".into()) == "x");
        assert!(Value::Bool(true) == true);
    }

    #[test]
    fn escaped_strings() {
        let v = Value::String("a\"b\\c\nd".into());
        assert_eq!(v.to_string(), r#""a\"b\\c\nd""#);
    }
}
