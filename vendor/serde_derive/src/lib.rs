//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` for the
//! shapes this workspace actually defines — non-generic structs and enums,
//! with `#[serde(default)]` honored on named fields (any other
//! `#[serde(...)]` attribute is ignored) — by walking the raw
//! [`proc_macro::TokenStream`] directly (the real crate's `syn`/`quote`
//! dependencies are unavailable offline).
//!
//! Encoding, chosen to match `serde_json`'s externally-tagged default:
//!
//! * named-field struct → object `{ field: value, ... }`
//! * tuple struct       → array `[v0, v1, ...]` (newtypes unwrap to `v0`)
//! * unit enum variant  → string `"Variant"`
//! * data enum variant  → object `{ "Variant": <fields as above> }`

// String-assembled codegen is the whole point of this stand-in; the
// `write!` form clippy prefers buys nothing at macro-expansion time.
#![allow(clippy::format_push_string, clippy::format_collect)]

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives the workspace's `serde::Serialize` for a struct or enum.
///
/// # Panics
///
/// Panics at compile time on shapes the stand-in does not support
/// (generic types, unions).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let body = match &item.kind {
        ItemKind::NamedStruct(fields) => serialize_named_fields(fields, "self."),
        ItemKind::TupleStruct(arity) => serialize_tuple_fields(*arity, "self."),
        ItemKind::UnitStruct => "::serde::value::Value::Object(::std::vec::Vec::new())".into(),
        ItemKind::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let name = &item.name;
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => {
                        arms.push_str(&format!(
                            "{name}::{vn} => ::serde::value::Value::String(\"{vn}\".to_string()),"
                        ));
                    }
                    VariantKind::Named(fields) => {
                        let binds: Vec<&str> = fields.iter().map(|f| f.name.as_str()).collect();
                        let binds = binds.join(", ");
                        let inner = serialize_named_fields(fields, "");
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {binds} }} => ::serde::value::Value::Object(\
                             vec![(\"{vn}\".to_string(), {inner})]),"
                        ));
                    }
                    VariantKind::Tuple(arity) => {
                        let binds: Vec<String> = (0..*arity).map(|i| format!("f{i}")).collect();
                        let items: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_value({b})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vn}({}) => ::serde::value::Value::Object(vec![(\
                             \"{vn}\".to_string(), ::serde::value::Value::Array(vec![{}]))]),",
                            binds.join(", "),
                            items.join(", ")
                        ));
                    }
                }
            }
            format!("match self {{ {arms} }}")
        }
    };
    format!(
        "#[automatically_derived] impl ::serde::Serialize for {} {{\
         fn to_value(&self) -> ::serde::value::Value {{ {body} }} }}",
        item.name
    )
    .parse()
    .expect("derived Serialize impl must parse")
}

/// Derives the workspace's `serde::Deserialize` for a struct or enum.
///
/// # Panics
///
/// Panics at compile time on shapes the stand-in does not support
/// (generic types, unions).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let name = &item.name;
    let body = match &item.kind {
        ItemKind::NamedStruct(fields) => {
            let inits = deserialize_named_fields(fields);
            format!("Some({name} {{ {inits} }})")
        }
        ItemKind::TupleStruct(arity) => {
            let gets = deserialize_tuple_fields(*arity);
            format!(
                "let items = v.as_array()?; if items.len() != {arity} {{ return None; }} \
                 Some({name}({gets}))"
            )
        }
        ItemKind::UnitStruct => format!("Some({name})"),
        ItemKind::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => {
                        unit_arms.push_str(&format!("\"{vn}\" => Some({name}::{vn}),"));
                    }
                    VariantKind::Named(fields) => {
                        let inits = deserialize_named_fields(fields);
                        data_arms.push_str(&format!(
                            "\"{vn}\" => {{ let v = inner; Some({name}::{vn} {{ {inits} }}) }}"
                        ));
                    }
                    VariantKind::Tuple(arity) => {
                        let gets = deserialize_tuple_fields(*arity);
                        data_arms.push_str(&format!(
                            "\"{vn}\" => {{ let items = inner.as_array()?; \
                             if items.len() != {arity} {{ return None; }} \
                             Some({name}::{vn}({gets})) }}"
                        ));
                    }
                }
            }
            format!(
                "match v {{ \
                 ::serde::value::Value::String(s) => match s.as_str() {{ \
                     {unit_arms} _ => None }}, \
                 ::serde::value::Value::Object(entries) if entries.len() == 1 => {{ \
                     let (tag, inner) = &entries[0]; \
                     #[allow(unused_variables)] let inner = inner; \
                     match tag.as_str() {{ {data_arms} _ => None }} }}, \
                 _ => None }}"
            )
        }
    };
    format!(
        "#[automatically_derived] impl ::serde::Deserialize for {name} {{\
         fn from_value(v: &::serde::value::Value) -> ::std::option::Option<Self> {{ \
         let _ = v; {body} }} }}"
    )
    .parse()
    .expect("derived Deserialize impl must parse")
}

fn serialize_named_fields(fields: &[Field], prefix: &str) -> String {
    let entries: Vec<String> = fields
        .iter()
        .map(|f| {
            format!(
                "(\"{0}\".to_string(), ::serde::Serialize::to_value(&{prefix}{0}))",
                f.name
            )
        })
        .collect();
    format!(
        "::serde::value::Value::Object(vec![{}])",
        entries.join(", ")
    )
}

fn serialize_tuple_fields(arity: usize, prefix: &str) -> String {
    let items: Vec<String> = (0..arity)
        .map(|i| format!("::serde::Serialize::to_value(&{prefix}{i})"))
        .collect();
    format!("::serde::value::Value::Array(vec![{}])", items.join(", "))
}

fn deserialize_named_fields(fields: &[Field]) -> String {
    fields
        .iter()
        .map(|f| {
            if f.default {
                // `#[serde(default)]`: an absent key takes the type's
                // Default; a present-but-invalid value still fails.
                format!(
                    "{0}: match v.get(\"{0}\") {{ \
                     ::std::option::Option::Some(x) => ::serde::Deserialize::from_value(x)?, \
                     ::std::option::Option::None => ::std::default::Default::default() }},",
                    f.name
                )
            } else {
                format!(
                    "{0}: ::serde::Deserialize::from_value(v.get(\"{0}\")?)?,",
                    f.name
                )
            }
        })
        .collect()
}

fn deserialize_tuple_fields(arity: usize) -> String {
    (0..arity)
        .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?,"))
        .collect()
}

struct Item {
    name: String,
    kind: ItemKind,
}

enum ItemKind {
    NamedStruct(Vec<Field>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Field {
    name: String,
    /// Whether the field carried `#[serde(default)]`.
    default: bool,
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Named(Vec<Field>),
    Tuple(usize),
}

/// Parses a struct/enum definition out of the derive input tokens.
fn parse_item(input: TokenStream) -> Item {
    let mut tokens = input.into_iter().peekable();
    skip_attrs_and_vis(&mut tokens);
    let keyword = match tokens.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("expected `struct` or `enum`, found {other:?}"),
    };
    let name = match tokens.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("expected type name, found {other:?}"),
    };
    if matches!(tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("the vendored serde_derive does not support generic types ({name})");
    }
    match keyword.as_str() {
        "struct" => match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item {
                name,
                kind: ItemKind::NamedStruct(parse_named_fields(g.stream())),
            },
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => Item {
                name,
                kind: ItemKind::TupleStruct(count_tuple_fields(g.stream())),
            },
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Item {
                name,
                kind: ItemKind::UnitStruct,
            },
            other => panic!("unsupported struct body for {name}: {other:?}"),
        },
        "enum" => match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item {
                name,
                kind: ItemKind::Enum(parse_variants(g.stream())),
            },
            other => panic!("expected enum body for {name}, found {other:?}"),
        },
        other => panic!("cannot derive for `{other}` items"),
    }
}

/// Skips `#[...]` attributes (incl. doc comments) and `pub`/`pub(...)`.
fn skip_attrs_and_vis(tokens: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) {
    eat_attrs_and_vis(tokens);
}

/// Like [`skip_attrs_and_vis`], but reports whether a `#[serde(default)]`
/// attribute was among the skipped tokens.
fn eat_attrs_and_vis(tokens: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) -> bool {
    let mut has_default = false;
    loop {
        match tokens.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                tokens.next();
                // The bracketed attribute body.
                if let Some(TokenTree::Group(g)) = tokens.next() {
                    has_default |= attr_is_serde_default(g.stream());
                }
            }
            Some(TokenTree::Ident(i)) if i.to_string() == "pub" => {
                tokens.next();
                if matches!(
                    tokens.peek(),
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
                ) {
                    tokens.next();
                }
            }
            _ => return has_default,
        }
    }
}

/// Whether an attribute body (the tokens inside `#[...]`) is
/// `serde(... default ...)`.
fn attr_is_serde_default(stream: TokenStream) -> bool {
    let mut tokens = stream.into_iter();
    match (tokens.next(), tokens.next()) {
        (Some(TokenTree::Ident(name)), Some(TokenTree::Group(args)))
            if name.to_string() == "serde" && args.delimiter() == Delimiter::Parenthesis =>
        {
            args.stream()
                .into_iter()
                .any(|tt| matches!(tt, TokenTree::Ident(i) if i.to_string() == "default"))
        }
        _ => false,
    }
}

/// Fields of a named-field body: `attrs vis name : Type, ...`.
fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let mut fields = Vec::new();
    let mut tokens = stream.into_iter().peekable();
    loop {
        let default = eat_attrs_and_vis(&mut tokens);
        let Some(tt) = tokens.next() else { break };
        let TokenTree::Ident(field) = tt else {
            panic!("expected field name, found {tt:?}");
        };
        fields.push(Field {
            name: field.to_string(),
            default,
        });
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("expected `:` after field, found {other:?}"),
        }
        skip_type(&mut tokens);
    }
    fields
}

/// Number of fields in a tuple-struct body: `attrs vis Type, ...`.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut count = 0;
    let mut tokens = stream.into_iter().peekable();
    loop {
        skip_attrs_and_vis(&mut tokens);
        if tokens.peek().is_none() {
            break;
        }
        count += 1;
        skip_type(&mut tokens);
    }
    count
}

/// Consumes a type, i.e. tokens up to a top-level `,` (angle-bracket
/// aware, since `,` also separates generic arguments).
fn skip_type(tokens: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) {
    let mut depth = 0i32;
    while let Some(tt) = tokens.peek() {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                tokens.next();
                return;
            }
            _ => {}
        }
        tokens.next();
    }
}

/// Parses enum variants: `attrs Name`, `attrs Name { .. }`,
/// `attrs Name( .. )`, optionally `= discriminant`, comma-separated.
fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut tokens = stream.into_iter().peekable();
    loop {
        skip_attrs_and_vis(&mut tokens);
        let Some(tt) = tokens.next() else { break };
        let TokenTree::Ident(name) = tt else {
            panic!("expected variant name, found {tt:?}");
        };
        let kind = match tokens.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                tokens.next();
                VariantKind::Named(fields)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = count_tuple_fields(g.stream());
                tokens.next();
                VariantKind::Tuple(arity)
            }
            _ => VariantKind::Unit,
        };
        // Skip an optional `= discriminant` and the separating comma.
        let mut depth = 0i32;
        while let Some(tt) = tokens.peek() {
            match tt {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    tokens.next();
                    break;
                }
                _ => {}
            }
            tokens.next();
        }
        variants.push(Variant {
            name: name.to_string(),
            kind,
        });
    }
    variants
}
