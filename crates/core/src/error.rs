//! Typed platform errors.
//!
//! The runner used to panic on these conditions; under fault injection
//! (stale translations, exhausted memory) they become reachable in
//! otherwise-correct campaigns, so they are surfaced as values the
//! caller can report instead of aborting the whole simulation.

use anvil_attacks::AttackError;

/// A reason an [`AnvilConfig`](crate::AnvilConfig) was rejected by
/// [`validate`](crate::AnvilConfig::validate).
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigError {
    /// A parameter violated a structural constraint (non-finite window,
    /// zero threshold, inverted load fractions, ...).
    Invalid(String),
    /// The guarantee envelope is broken: an adversary pacing itself just
    /// under the stage-1 threshold could land `budget` activations on one
    /// aggressor pair per refresh interval without ever arming stage 2 —
    /// at or above the `flip_threshold` the configuration claims to
    /// protect against (2 × `min_hammer_accesses`, the double-sided flip
    /// minimum).
    GuaranteeEnvelope {
        /// Worst-case undetectable activations per refresh interval.
        budget: u64,
        /// The double-sided flip threshold the config must stay under.
        flip_threshold: u64,
    },
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::Invalid(msg) => f.write_str(msg),
            ConfigError::GuaranteeEnvelope {
                budget,
                flip_threshold,
            } => write!(
                f,
                "guarantee envelope violated: an attacker staying under the \
                 stage-1 threshold can land {budget} activations per refresh \
                 interval, but bits flip at {flip_threshold}"
            ),
        }
    }
}

impl std::error::Error for ConfigError {}

impl From<String> for ConfigError {
    fn from(msg: String) -> Self {
        ConfigError::Invalid(msg)
    }
}

impl From<&str> for ConfigError {
    fn from(msg: &str) -> Self {
        ConfigError::Invalid(msg.to_owned())
    }
}

/// An error surfaced by the [`Platform`](crate::Platform) runner.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlatformError {
    /// Physical memory was exhausted while mapping a program arena.
    OutOfMemory {
        /// Pid of the program whose mapping failed.
        pid: u32,
        /// Bytes the mapping requested.
        requested: u64,
    },
    /// A program accessed a virtual address with no mapping.
    UnmappedAccess {
        /// Pid of the faulting program.
        pid: u32,
        /// The unmapped virtual address.
        vaddr: u64,
    },
    /// A program flushed a virtual address with no mapping.
    UnmappedFlush {
        /// Pid of the faulting program.
        pid: u32,
        /// The unmapped virtual address.
        vaddr: u64,
    },
    /// An attack failed to prepare (e.g. pagemap access denied).
    Attack(AttackError),
    /// A run was requested before any program was added.
    NoPrograms,
    /// A per-pid operation named a pid no core is running.
    UnknownPid(u32),
}

impl std::fmt::Display for PlatformError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlatformError::OutOfMemory { pid, requested } => write!(
                f,
                "physical memory exhausted mapping {requested} bytes for pid {pid}"
            ),
            PlatformError::UnmappedAccess { pid, vaddr } => {
                write!(f, "pid {pid} accessed unmapped va {vaddr:#x}")
            }
            PlatformError::UnmappedFlush { pid, vaddr } => {
                write!(f, "pid {pid} flushed unmapped va {vaddr:#x}")
            }
            PlatformError::Attack(e) => write!(f, "attack preparation failed: {e}"),
            PlatformError::NoPrograms => write!(f, "add a workload or attack first"),
            PlatformError::UnknownPid(pid) => write!(f, "no core runs pid {pid}"),
        }
    }
}

impl std::error::Error for PlatformError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PlatformError::Attack(e) => Some(e),
            _ => None,
        }
    }
}

impl From<AttackError> for PlatformError {
    fn from(e: AttackError) -> Self {
        PlatformError::Attack(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_pid_and_address() {
        let e = PlatformError::UnmappedAccess {
            pid: 101,
            vaddr: 0x4000,
        };
        assert_eq!(e.to_string(), "pid 101 accessed unmapped va 0x4000");
        assert!(PlatformError::NoPrograms.to_string().contains("add a"));
    }

    #[test]
    fn attack_errors_convert_and_chain() {
        let e: PlatformError = AttackError::PagemapDenied.into();
        assert!(matches!(e, PlatformError::Attack(_)));
        assert!(std::error::Error::source(&e).is_some());
    }

    #[test]
    fn config_errors_display_their_cause() {
        let e = ConfigError::from("miss threshold must be non-zero");
        assert_eq!(e.to_string(), "miss threshold must be non-zero");
        let e = ConfigError::GuaranteeEnvelope {
            budget: 640_000,
            flip_threshold: 220_000,
        };
        let msg = e.to_string();
        assert!(msg.contains("640000"));
        assert!(msg.contains("220000"));
        assert!(msg.contains("envelope"));
    }
}
