//! Typed platform errors.
//!
//! The runner used to panic on these conditions; under fault injection
//! (stale translations, exhausted memory) they become reachable in
//! otherwise-correct campaigns, so they are surfaced as values the
//! caller can report instead of aborting the whole simulation.

use anvil_attacks::AttackError;

/// A reason an [`AnvilConfig`](crate::AnvilConfig) was rejected by
/// [`validate`](crate::AnvilConfig::validate).
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigError {
    /// A parameter violated a structural constraint (non-finite window,
    /// zero threshold, inverted load fractions, ...).
    Invalid(String),
    /// The guarantee envelope is broken: an adversary pacing itself just
    /// under the stage-1 threshold could land `budget` activations on one
    /// aggressor pair per refresh interval without ever arming stage 2 —
    /// at or above the `flip_threshold` the configuration claims to
    /// protect against (2 × `min_hammer_accesses`, the double-sided flip
    /// minimum).
    GuaranteeEnvelope {
        /// Worst-case undetectable activations per refresh interval.
        budget: u64,
        /// The double-sided flip threshold the config must stay under.
        flip_threshold: u64,
    },
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::Invalid(msg) => f.write_str(msg),
            ConfigError::GuaranteeEnvelope {
                budget,
                flip_threshold,
            } => write!(
                f,
                "guarantee envelope violated: an attacker staying under the \
                 stage-1 threshold can land {budget} activations per refresh \
                 interval, but bits flip at {flip_threshold}"
            ),
        }
    }
}

impl std::error::Error for ConfigError {}

impl From<String> for ConfigError {
    fn from(msg: String) -> Self {
        ConfigError::Invalid(msg)
    }
}

impl From<&str> for ConfigError {
    fn from(msg: &str) -> Self {
        ConfigError::Invalid(msg.to_owned())
    }
}

/// An error surfaced by the [`Platform`](crate::Platform) runner.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlatformError {
    /// Physical memory was exhausted while mapping a program arena.
    OutOfMemory {
        /// Pid of the program whose mapping failed.
        pid: u32,
        /// Bytes the mapping requested.
        requested: u64,
    },
    /// A program accessed a virtual address with no mapping.
    UnmappedAccess {
        /// Pid of the faulting program.
        pid: u32,
        /// The unmapped virtual address.
        vaddr: u64,
    },
    /// A program flushed a virtual address with no mapping.
    UnmappedFlush {
        /// Pid of the faulting program.
        pid: u32,
        /// The unmapped virtual address.
        vaddr: u64,
    },
    /// An attack failed to prepare (e.g. pagemap access denied).
    Attack(AttackError),
    /// A run was requested before any program was added.
    NoPrograms,
    /// A per-pid operation named a pid no core is running.
    UnknownPid(u32),
}

impl std::fmt::Display for PlatformError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlatformError::OutOfMemory { pid, requested } => write!(
                f,
                "physical memory exhausted mapping {requested} bytes for pid {pid}"
            ),
            PlatformError::UnmappedAccess { pid, vaddr } => {
                write!(f, "pid {pid} accessed unmapped va {vaddr:#x}")
            }
            PlatformError::UnmappedFlush { pid, vaddr } => {
                write!(f, "pid {pid} flushed unmapped va {vaddr:#x}")
            }
            PlatformError::Attack(e) => write!(f, "attack preparation failed: {e}"),
            PlatformError::NoPrograms => write!(f, "add a workload or attack first"),
            PlatformError::UnknownPid(pid) => write!(f, "no core runs pid {pid}"),
        }
    }
}

impl std::error::Error for PlatformError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PlatformError::Attack(e) => Some(e),
            _ => None,
        }
    }
}

impl From<AttackError> for PlatformError {
    fn from(e: AttackError) -> Self {
        PlatformError::Attack(e)
    }
}

/// A lifecycle failure surfaced by the supervised runtime
/// (`anvil-runtime`): checkpoint handling and restart-budget exhaustion.
///
/// These are *recoverable* conditions — the supervisor's recovery
/// protocol answers a corrupt or mismatched checkpoint with the
/// cold-start-plus-full-refresh fallback — but they must be typed so the
/// caller can distinguish "resumed from checkpoint" from "started cold"
/// and report why.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RuntimeError {
    /// The checkpoint's checksum did not match its payload: the bytes
    /// were corrupted at rest (or by an injected corruption fault).
    CheckpointCorrupt {
        /// Checksum recorded in the checkpoint header.
        expected: u64,
        /// Checksum recomputed over the payload.
        found: u64,
    },
    /// The checkpoint was written by an incompatible format version.
    VersionMismatch {
        /// The version this build reads and writes.
        expected: u32,
        /// The version found in the checkpoint.
        found: u32,
    },
    /// The checkpoint's payload failed to decode even though its
    /// checksum and version matched (truncated or hand-edited state).
    CheckpointUndecodable,
    /// The checkpoint was taken under a different [`AnvilConfig`]
    /// (config hashes differ); resuming would mix incompatible
    /// thresholds with carried counters.
    ConfigMismatch {
        /// Hash of the config the supervisor is running.
        expected: u64,
        /// Hash recorded in the checkpoint.
        found: u64,
    },
    /// The supervisor exhausted its restart budget: the detector crashed
    /// more times than the configured ceiling allows.
    RestartBudgetExhausted {
        /// Crashes observed.
        restarts: u32,
        /// The configured ceiling.
        budget: u32,
    },
}

impl std::fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RuntimeError::CheckpointCorrupt { expected, found } => write!(
                f,
                "checkpoint corrupt: checksum {expected:#018x} recorded, {found:#018x} recomputed"
            ),
            RuntimeError::VersionMismatch { expected, found } => write!(
                f,
                "checkpoint version {found} incompatible with this build (expects {expected})"
            ),
            RuntimeError::CheckpointUndecodable => {
                write!(f, "checkpoint payload undecodable despite valid checksum")
            }
            RuntimeError::ConfigMismatch { expected, found } => write!(
                f,
                "checkpoint config hash {found:#018x} does not match the \
                 running config {expected:#018x}"
            ),
            RuntimeError::RestartBudgetExhausted { restarts, budget } => write!(
                f,
                "restart budget exhausted: {restarts} crashes exceed the ceiling of {budget}"
            ),
        }
    }
}

impl std::error::Error for RuntimeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_pid_and_address() {
        let e = PlatformError::UnmappedAccess {
            pid: 101,
            vaddr: 0x4000,
        };
        assert_eq!(e.to_string(), "pid 101 accessed unmapped va 0x4000");
        assert!(PlatformError::NoPrograms.to_string().contains("add a"));
    }

    #[test]
    fn attack_errors_convert_and_chain() {
        let e: PlatformError = AttackError::PagemapDenied.into();
        assert!(matches!(e, PlatformError::Attack(_)));
        assert!(std::error::Error::source(&e).is_some());
    }

    #[test]
    fn config_errors_display_their_cause() {
        let e = ConfigError::from("miss threshold must be non-zero");
        assert_eq!(e.to_string(), "miss threshold must be non-zero");
        let e = ConfigError::GuaranteeEnvelope {
            budget: 640_000,
            flip_threshold: 220_000,
        };
        let msg = e.to_string();
        assert!(msg.contains("640000"));
        assert!(msg.contains("220000"));
        assert!(msg.contains("envelope"));
    }

    #[test]
    fn runtime_errors_display_their_cause() {
        let e = RuntimeError::CheckpointCorrupt {
            expected: 0xdead,
            found: 0xbeef,
        };
        let msg = e.to_string();
        assert!(msg.contains("corrupt"));
        assert!(msg.contains("0x000000000000dead"));
        assert!(msg.contains("0x000000000000beef"));

        let e = RuntimeError::VersionMismatch {
            expected: 1,
            found: 9,
        };
        assert!(e.to_string().contains("version 9"));

        let e = RuntimeError::RestartBudgetExhausted {
            restarts: 12,
            budget: 8,
        };
        let msg = e.to_string();
        assert!(msg.contains("12"));
        assert!(msg.contains("ceiling of 8"));
    }
}
