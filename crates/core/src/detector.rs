//! The ANVIL two-stage detection state machine (Section 3.3, Figure 2).
//!
//! Stage 1 watches the `LONGEST_LAT_CACHE.MISS` rate over windows of
//! `tc`; only when a window's miss count could sustain a rowhammer attack
//! does stage 2 arm the PEBS sampling facilities for `ts`, translate the
//! sampled virtual addresses through the owning process's page table, and
//! run the row/bank locality analysis. On detection, the rows adjacent to
//! each identified aggressor are selectively refreshed with a read.

use crate::checkpoint::{config_hash, DetectorCheckpoint, CHECKPOINT_VERSION};
use crate::config::AnvilConfig;
use crate::epoch::{QuietCheckpoint, QuietShadow};
use crate::error::{ConfigError, RuntimeError};
use crate::guard::{GuardMode, GuardedCell, GuardedValue, StateCorruption, StateSite};
use crate::locality::{analyze_with_ledger, LocalityReport, RowSample, SuspicionLedger};
use crate::transition;
use anvil_dram::{AddressMapping, BankId, CpuClock, Cycle, DramLocation, RowId};
use anvil_pmu::{DataSource, EventKind, Pmu, SampleFilter, SampleRecord};
use serde::{Deserialize, Serialize};

/// Which window the detector is currently in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DetectorStage {
    /// Stage 1: counting LLC misses over `tc`.
    MissCount,
    /// Stage 2: sampling memory-access addresses over `ts`.
    Sampling,
}

/// Detector activity counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DetectorStats {
    /// Stage-1 windows completed.
    pub stage1_windows: u64,
    /// Stage-1 windows whose miss count crossed the threshold.
    pub threshold_crossings: u64,
    /// Stage-2 (sampling) windows completed.
    pub stage2_windows: u64,
    /// Stage-2 windows that flagged at least one aggressor.
    pub detections: u64,
    /// Selective victim-row refreshes performed.
    pub selective_refreshes: u64,
    /// Samples fed into locality analysis.
    pub samples_analyzed: u64,
    /// Service calls that ran after their deadline (the watchdog).
    pub missed_deadlines: u64,
    /// Largest single deadline overrun observed, in cycles.
    pub worst_deadline_slip: Cycle,
    /// Stage-2 windows whose evidence was too damaged to trust, handled
    /// by the degraded-protection fallback.
    pub degraded_windows: u64,
    /// Whole banks blanket-refreshed by degraded mode.
    pub bank_refreshes: u64,
    /// Stage-2 samples lost before reaching the buffer (debug-store
    /// overflow and injected drops).
    pub samples_lost: u64,
    /// DRAM-sourced stage-2 samples whose translation failed.
    pub samples_unresolved: u64,
    /// Hardened stage-1 trips where the raw window count was *under* the
    /// threshold but the EWMA-carried evidence crossed it (duty-cycle
    /// evasion caught by the carry).
    pub carry_crossings: u64,
    /// Aggressor findings contributed by the cross-window suspicion
    /// ledger rather than a single window's samples.
    pub ledger_flags: u64,
    /// Stage-2 windows re-armed by sticky sampling: the window's miss
    /// traffic collapsed below half the stage-1 trip rate with no
    /// finding, so sampling continued instead of returning to counting
    /// (duty-cycle evasion denied its quiet phase).
    pub resample_windows: u64,
    /// Guarded state-cell corruptions the scrubber repaired from a
    /// checksummed replica majority (the computed value was never wrong).
    #[serde(default)]
    pub state_repairs: u64,
    /// Guarded state-cell corruptions with no trustworthy majority: the
    /// cell was re-sealed to a deterministic best guess and the policy
    /// layer must escalate (cold restart from the last good checkpoint).
    #[serde(default)]
    pub state_escalations: u64,
}

/// A compact fingerprint of a run's detector behaviour: each headline
/// [`DetectorStats`] counter is bucketized to its log₂ magnitude (a
/// nibble, 0–15) and the nibbles are packed into one `u64`. Two runs
/// that exercised the same detector machinery to the same order of
/// magnitude — same stages armed, same hardening layers engaged, same
/// degradation pathways — collide; runs that differ in *which* machinery
/// fired (or by a power of two in how often) do not. The scenario fuzzer
/// uses these as coverage-map keys: a novel signature means a candidate
/// drove the detector somewhere no earlier candidate did.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize,
)]
pub struct StateSignature(pub u64);

/// Log₂ magnitude bucket of a counter, saturated to a nibble: 0 → 0,
/// otherwise `min(15, bit-length)`.
fn log2_bucket(v: u64) -> u64 {
    if v == 0 {
        0
    } else {
        u64::from(64 - v.leading_zeros()).min(15)
    }
}

impl DetectorStats {
    /// This run's [`StateSignature`]. Twelve counters, one nibble each,
    /// packed low-to-high in declaration order; the top 16 bits stay
    /// zero for callers to fold in their own outcome flags.
    pub fn signature(&self) -> StateSignature {
        let fields = [
            self.stage1_windows,
            self.threshold_crossings,
            self.stage2_windows,
            self.detections,
            self.selective_refreshes,
            self.carry_crossings,
            self.ledger_flags,
            self.resample_windows,
            self.degraded_windows,
            self.bank_refreshes,
            self.missed_deadlines,
            self.samples_lost,
        ];
        let mut packed = 0u64;
        for (i, f) in fields.iter().enumerate() {
            packed |= log2_bucket(*f) << (i * 4);
        }
        StateSignature(packed)
    }
}

/// What a detector service call decided.
#[derive(Debug, Clone, PartialEq)]
pub enum ServiceOutcome {
    /// Stage-1 window ended below threshold; stage 1 re-armed.
    Quiet {
        /// LLC misses seen in the window.
        misses: u64,
        /// Kernel time consumed.
        cost: Cycle,
    },
    /// Stage-1 window crossed the threshold; sampling armed.
    Armed {
        /// LLC misses seen in the window.
        misses: u64,
        /// The sampling filter chosen from the load fraction.
        filter: SampleFilter,
        /// Kernel time consumed.
        cost: Cycle,
    },
    /// Stage-2 window ended and was analyzed.
    Analyzed {
        /// The locality analysis result.
        report: LocalityReport,
        /// Victim rows to refresh (deduplicated), with a representative
        /// physical address for each.
        refreshes: Vec<(RowId, u64)>,
        /// Kernel time consumed (excluding the per-refresh reads).
        cost: Cycle,
    },
    /// Stage-2 window ended with evidence too damaged to trust; the
    /// degraded-protection fallback engaged.
    Degraded {
        /// The (untrusted) locality analysis of the surviving samples.
        report: LocalityReport,
        /// Victim rows from whatever the analysis still found.
        refreshes: Vec<(RowId, u64)>,
        /// Banks to blanket-refresh: those the surviving samples point
        /// at, or every bank when nothing survived.
        banks: Vec<BankId>,
        /// Kernel time consumed (excluding refreshes).
        cost: Cycle,
    },
}

/// The ANVIL detector.
///
/// Owned by the platform runner, which calls
/// [`service`](AnvilDetector::service) whenever the simulation clock
/// passes [`deadline`](AnvilDetector::deadline).
#[derive(Debug)]
pub struct AnvilDetector {
    config: AnvilConfig,
    refresh_period: Cycle,
    tc: Cycle,
    ts: Cycle,
    stage: DetectorStage,
    deadline: Cycle,
    stats: DetectorStats,
    dropped_at_arm: u64,
    /// EWMA-carried stage-1 miss evidence (hardening; 0 when disabled).
    /// Guarded: this is the cell a state-targeting attacker most wants to
    /// clear.
    carry: GuardedCell<f64>,
    /// Splitmix64 state for the window-phase jitter stream (guarded).
    phase_state: GuardedCell<u64>,
    /// Length of the current stage-1 window as a fraction of `tc` (the
    /// trip threshold scales with it so the armed *rate* is unchanged).
    /// Guarded.
    window_scale: GuardedCell<f64>,
    /// Cross-window per-row suspicion scores (hardening; its entries are
    /// guarded cells too).
    ledger: SuspicionLedger,
    /// Consecutive sticky-sampling re-arms in the current stage-2 run
    /// (guarded).
    resamples: GuardedCell<u32>,
    /// How guarded cells are read: majority-decode with scrubbing
    /// ([`GuardMode::Guarded`], the default) or blind replica-0 trust
    /// (the `selfdefense` campaign's baseline arm). Runtime policy, never
    /// checkpointed.
    guard: GuardMode,
    /// Corruptions found by scrubs and guarded accesses since the last
    /// [`take_state_corruptions`](Self::take_state_corruptions) drain.
    corruptions: Vec<StateCorruption>,
    /// The PEBS filter armed for the in-flight stage-2 window (carried by
    /// checkpoints so restore can re-arm the same facility).
    armed_filter: SampleFilter,
    /// [`config_hash`] of `config`, computed once per config change —
    /// checkpoints are written far too often to re-serialize the config
    /// each time.
    config_fingerprint: u64,
    /// Reusable receive buffer for PEBS drains, so every stage-2 window
    /// reuses one allocation instead of regrowing a fresh `Vec`. Not part
    /// of the detector's logical state (never checkpointed).
    records_scratch: Vec<SampleRecord>,
}

/// Records a corruption finding: counts it in the stats and queues it for
/// the policy layer to drain.
fn note_corruption(log: &mut Vec<StateCorruption>, stats: &mut DetectorStats, c: StateCorruption) {
    if c.repaired {
        stats.state_repairs = stats.state_repairs.saturating_add(1);
    } else {
        stats.state_escalations = stats.state_escalations.saturating_add(1);
    }
    log.push(c);
}

/// Non-mutating mode-aware read: majority-decode (guarded) or blind
/// replica-0 trust (unguarded). Used by `&self` paths like checkpointing.
fn read_cell<T: GuardedValue>(guard: GuardMode, cell: &GuardedCell<T>) -> T {
    match guard {
        GuardMode::Guarded => cell.peek(),
        GuardMode::Unguarded => cell.raw(),
    }
}

/// Reads a guarded cell under the active mode: scrub-verify then
/// majority-decode (guarded), or blind replica-0 trust (unguarded
/// baseline). Free function so callers can borrow disjoint detector
/// fields.
fn cell_load<T: GuardedValue>(
    guard: GuardMode,
    log: &mut Vec<StateCorruption>,
    stats: &mut DetectorStats,
    cell: &mut GuardedCell<T>,
    site: StateSite,
) -> T {
    match guard {
        GuardMode::Unguarded => cell.raw(),
        GuardMode::Guarded => {
            if let Some(c) = cell.scrub(site) {
                note_corruption(log, stats, c);
            }
            cell.peek()
        }
    }
}

/// Writes a guarded cell. In guarded mode the cell is scrubbed *first*,
/// so pre-existing corruption is reported before the write re-seals every
/// replica — never silently absorbed.
fn cell_store<T: GuardedValue>(
    guard: GuardMode,
    log: &mut Vec<StateCorruption>,
    stats: &mut DetectorStats,
    cell: &mut GuardedCell<T>,
    site: StateSite,
    value: T,
) {
    if guard == GuardMode::Guarded {
        if let Some(c) = cell.scrub(site) {
            note_corruption(log, stats, c);
        }
    }
    cell.store(value);
}

impl AnvilDetector {
    /// Creates the detector and arms stage 1 starting at `now`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`AnvilConfig::validate`].
    pub fn new(
        config: AnvilConfig,
        clock: &CpuClock,
        refresh_period: Cycle,
        now: Cycle,
        pmu: &mut Pmu,
    ) -> Self {
        config
            .validate()
            .unwrap_or_else(|e| panic!("invalid ANVIL config: {e}"));
        pmu.counter_mut(EventKind::LongestLatCacheMiss).clear();
        pmu.counter_mut(EventKind::MemLoadUopsRetiredLlcMiss)
            .clear();
        let tc = config.tc_cycles(clock);
        let ts = config.ts_cycles(clock);
        let mut det = AnvilDetector {
            config,
            refresh_period,
            tc,
            ts,
            stage: DetectorStage::MissCount,
            deadline: 0,
            stats: DetectorStats::default(),
            dropped_at_arm: 0,
            carry: GuardedCell::new(0.0),
            phase_state: GuardedCell::new(config.hardening.phase_seed),
            window_scale: GuardedCell::new(1.0),
            ledger: SuspicionLedger::new(),
            resamples: GuardedCell::new(0),
            guard: GuardMode::Guarded,
            corruptions: Vec::new(),
            armed_filter: SampleFilter::LoadsAndStores,
            config_fingerprint: config_hash(&config),
            records_scratch: Vec::new(),
        };
        det.deadline = now + det.next_stage1_window();
        det
    }

    /// Draws the next stage-1 window length: `tc` exactly, or (hardened)
    /// `tc × [1 − j, 1 + j]` from the seeded jitter stream, so an
    /// adversary cannot synchronize bursts to window boundaries. Sets
    /// `window_scale` so the trip threshold scales in proportion.
    fn next_stage1_window(&mut self) -> Cycle {
        let h = self.config.hardening;
        if !h.enabled || h.phase_jitter <= 0.0 {
            cell_store(
                self.guard,
                &mut self.corruptions,
                &mut self.stats,
                &mut self.window_scale,
                StateSite::WindowScale,
                1.0,
            );
            return self.tc;
        }
        let mut phase = cell_load(
            self.guard,
            &mut self.corruptions,
            &mut self.stats,
            &mut self.phase_state,
            StateSite::PhaseState,
        );
        let scale = transition::draw_window_scale(&h, &mut phase);
        cell_store(
            self.guard,
            &mut self.corruptions,
            &mut self.stats,
            &mut self.phase_state,
            StateSite::PhaseState,
            phase,
        );
        cell_store(
            self.guard,
            &mut self.corruptions,
            &mut self.stats,
            &mut self.window_scale,
            StateSite::WindowScale,
            scale,
        );
        ((self.tc as f64 * scale) as Cycle).max(1)
    }

    /// The active configuration.
    pub fn config(&self) -> &AnvilConfig {
        &self.config
    }

    /// Time at which [`service`](Self::service) must next run.
    pub fn deadline(&self) -> Cycle {
        self.deadline
    }

    /// The current stage.
    pub fn stage(&self) -> DetectorStage {
        self.stage
    }

    /// Activity counters.
    pub fn stats(&self) -> &DetectorStats {
        &self.stats
    }

    /// Services the expired window at time `now`. `translate` resolves
    /// (pid, virtual address) to a physical address — the `task_struct`
    /// walk of the real kernel module.
    pub fn service(
        &mut self,
        now: Cycle,
        pmu: &mut Pmu,
        mapping: &AddressMapping,
        translate: &mut dyn FnMut(u32, u64) -> Option<u64>,
    ) -> ServiceOutcome {
        debug_assert!(now >= self.deadline, "serviced before the deadline");
        // Watchdog: record every late service. On real hardware this is
        // the kernel thread running after its timer expired.
        let slip = now.saturating_sub(self.deadline);
        if slip > 0 {
            self.stats.missed_deadlines = self.stats.missed_deadlines.saturating_add(1);
            self.stats.worst_deadline_slip = self.stats.worst_deadline_slip.max(slip);
        }
        match self.stage {
            DetectorStage::MissCount => self.end_stage1(now, pmu),
            DetectorStage::Sampling => self.end_stage2(now, slip, pmu, mapping, translate),
        }
    }

    fn end_stage1(&mut self, now: Cycle, pmu: &mut Pmu) -> ServiceOutcome {
        self.stats.stage1_windows = self.stats.stage1_windows.saturating_add(1);
        let misses = pmu.counter(EventKind::LongestLatCacheMiss).read();
        let miss_loads = pmu.counter(EventKind::MemLoadUopsRetiredLlcMiss).read();

        // The trip test. Unhardened this is the paper's memoryless
        // `misses >= threshold`. Hardened, the window's rate-normalized
        // miss count joins an EWMA of previous windows' evidence, so an
        // attacker who duty-cycles bursts across window boundaries —
        // each window just under the threshold — accumulates to a trip
        // instead of resetting the counter.
        let h = self.config.hardening;
        let window_scale = cell_load(
            self.guard,
            &mut self.corruptions,
            &mut self.stats,
            &mut self.window_scale,
            StateSite::WindowScale,
        );
        let carry = cell_load(
            self.guard,
            &mut self.corruptions,
            &mut self.stats,
            &mut self.carry,
            StateSite::Carry,
        );
        let normalized = misses as f64 / window_scale;
        let step = transition::stage1_step(&h, self.config.llc_miss_threshold, carry, normalized);
        cell_store(
            self.guard,
            &mut self.corruptions,
            &mut self.stats,
            &mut self.carry,
            StateSite::Carry,
            step.next_carry,
        );
        if !step.tripped {
            self.restart_stage1(now, pmu);
            return ServiceOutcome::Quiet {
                misses,
                cost: self.config.costs.pmi,
            };
        }

        // Threshold crossed: arm stage 2 with the facility matching the
        // window's load/store mix.
        self.stats.threshold_crossings = self.stats.threshold_crossings.saturating_add(1);
        if step.via_carry {
            self.stats.carry_crossings = self.stats.carry_crossings.saturating_add(1);
        }
        let filter = transition::stage2_filter(&self.config, misses, miss_loads);
        pmu.counter_mut(EventKind::LongestLatCacheMiss).clear();
        pmu.counter_mut(EventKind::MemLoadUopsRetiredLlcMiss)
            .clear();
        pmu.enable_sampling(filter, now);
        // Snapshot the drop counter so end_stage2 can attribute losses to
        // this window alone.
        self.dropped_at_arm = pmu.sampler().samples_dropped();
        self.armed_filter = filter;
        self.stage = DetectorStage::Sampling;
        self.deadline = now + self.ts;
        ServiceOutcome::Armed {
            misses,
            filter,
            cost: self.config.costs.pmi + self.config.costs.stage2_arm,
        }
    }

    fn end_stage2(
        &mut self,
        now: Cycle,
        slip: Cycle,
        pmu: &mut Pmu,
        mapping: &AddressMapping,
        translate: &mut dyn FnMut(u32, u64) -> Option<u64>,
    ) -> ServiceOutcome {
        self.stats.stage2_windows = self.stats.stage2_windows.saturating_add(1);
        let misses = pmu.counter(EventKind::LongestLatCacheMiss).read();
        pmu.disable_sampling();
        let lost = pmu
            .sampler()
            .samples_dropped()
            .saturating_sub(self.dropped_at_arm);
        let mut records = std::mem::take(&mut self.records_scratch);
        pmu.drain_samples_into(&mut records);

        // Keep DRAM-sourced samples and translate them to rows. Hardened
        // detectors weigh each sample by its activation evidence: a
        // latency under the row-miss cutoff means the load was served by
        // an already-open row buffer — camouflage filler that cannot be
        // hammering — and carries only `hit_weight` of a real miss.
        let h = self.config.hardening;
        let mut unresolved = 0u64;
        let samples: Vec<RowSample> = records
            .iter()
            .filter(|r| r.source == DataSource::Dram)
            .filter_map(|r| {
                let Some(paddr) = translate(r.pid, r.vaddr) else {
                    unresolved += 1;
                    return None;
                };
                let weight = transition::sample_weight(&h, r.latency);
                Some(RowSample {
                    row: mapping.location_of(paddr).row_id(),
                    paddr,
                    pid: r.pid,
                    weight,
                })
            })
            .collect();
        records.clear();
        self.records_scratch = records;
        self.stats.samples_analyzed = self
            .stats
            .samples_analyzed
            .saturating_add(samples.len() as u64);
        self.stats.samples_lost = self.stats.samples_lost.saturating_add(lost);
        self.stats.samples_unresolved = self.stats.samples_unresolved.saturating_add(unresolved);

        let config = self.config;
        let ledger = h.enabled.then_some(&mut self.ledger);
        let report = analyze_with_ledger(
            &config,
            &samples,
            misses,
            self.ts,
            self.refresh_period,
            ledger,
        );
        self.stats.ledger_flags = self
            .stats
            .ledger_flags
            .saturating_add(report.aggressors.iter().filter(|a| a.via_ledger).count() as u64);
        // The ledger scrubs its own cells as absorption touches them;
        // fold what it found into the detector's corruption accounting.
        for c in self.ledger.take_corruptions() {
            note_corruption(&mut self.corruptions, &mut self.stats, c);
        }

        // Victim rows: the neighbors of each aggressor, deduplicated,
        // excluding rows that are themselves aggressors (reading an
        // aggressor would be wasted work — it is being activated anyway).
        let mut refreshes: Vec<(RowId, u64)> = Vec::new();
        if report.detected() {
            self.stats.detections = self.stats.detections.saturating_add(1);
            let aggressor_rows: Vec<RowId> = report.aggressors.iter().map(|a| a.row).collect();
            for finding in &report.aggressors {
                for victim in finding
                    .row
                    .neighbors(self.config.victim_radius, mapping.geometry())
                {
                    if aggressor_rows.contains(&victim)
                        || refreshes.iter().any(|(r, _)| *r == victim)
                    {
                        continue;
                    }
                    let paddr = mapping.address_of(DramLocation {
                        bank: victim.bank,
                        row: victim.row,
                        col: 0,
                    });
                    refreshes.push((victim, paddr));
                }
            }
            self.stats.selective_refreshes = self
                .stats
                .selective_refreshes
                .saturating_add(refreshes.len() as u64);
        }

        let cost = self.config.costs.pmi + self.config.costs.analysis;

        // Degraded-protection decision: this window only existed because
        // stage 1 saw hammer-capable miss traffic, so a verdict built on
        // mostly-lost evidence (or delivered far too late) cannot clear
        // it. Fall back to blanket bank refresh rather than skip.
        let usable = samples.len() as u64;
        let evidence = usable + lost + unresolved;
        let survival = if evidence == 0 {
            1.0
        } else {
            usable as f64 / evidence as f64
        };
        let slip_limit = self.config.degraded.max_deadline_slip_frac * self.ts as f64;
        let compromised =
            survival < self.config.degraded.min_sample_survival || slip as f64 > slip_limit;
        if self.config.degraded.enabled && compromised {
            self.restart_stage1(now, pmu);
            self.stats.degraded_windows = self.stats.degraded_windows.saturating_add(1);
            let banks = if samples.is_empty() {
                // Nothing survived: every bank is suspect.
                (0..mapping.geometry().total_banks()).map(BankId).collect()
            } else {
                let mut banks: Vec<BankId> = samples.iter().map(|s| s.row.bank).collect();
                banks.sort_unstable_by_key(|b| b.0);
                banks.dedup();
                banks
            };
            self.stats.bank_refreshes =
                self.stats.bank_refreshes.saturating_add(banks.len() as u64);
            return ServiceOutcome::Degraded {
                report,
                refreshes,
                banks,
                cost,
            };
        }

        // Sticky sampling (hardened): the miss traffic that armed this
        // window collapsed to under half the trip rate before sampling
        // could attribute it — the signature of a burst straddling the
        // arm boundary. Returning to counting would hand a duty-cycled
        // attacker its quiet phase back; keep sampling instead (bounded,
        // so a benign phase change cannot pin the detector in stage 2).
        let resamples = cell_load(
            self.guard,
            &mut self.corruptions,
            &mut self.stats,
            &mut self.resamples,
            StateSite::Resamples,
        );
        if transition::sticky_resample(
            &h,
            report.detected(),
            misses,
            self.config.llc_miss_threshold,
            resamples,
        ) {
            cell_store(
                self.guard,
                &mut self.corruptions,
                &mut self.stats,
                &mut self.resamples,
                StateSite::Resamples,
                resamples + 1,
            );
            self.stats.resample_windows = self.stats.resample_windows.saturating_add(1);
            pmu.counter_mut(EventKind::LongestLatCacheMiss).clear();
            pmu.counter_mut(EventKind::MemLoadUopsRetiredLlcMiss)
                .clear();
            pmu.enable_sampling(SampleFilter::LoadsAndStores, now);
            self.dropped_at_arm = pmu.sampler().samples_dropped();
            self.armed_filter = SampleFilter::LoadsAndStores;
            self.deadline = now + self.ts;
            return ServiceOutcome::Armed {
                misses,
                filter: SampleFilter::LoadsAndStores,
                cost: self.config.costs.pmi + self.config.costs.stage2_arm,
            };
        }

        self.restart_stage1(now, pmu);
        ServiceOutcome::Analyzed {
            report,
            refreshes,
            cost,
        }
    }

    fn restart_stage1(&mut self, now: Cycle, pmu: &mut Pmu) {
        pmu.counter_mut(EventKind::LongestLatCacheMiss).clear();
        pmu.counter_mut(EventKind::MemLoadUopsRetiredLlcMiss)
            .clear();
        self.stage = DetectorStage::MissCount;
        cell_store(
            self.guard,
            &mut self.corruptions,
            &mut self.stats,
            &mut self.resamples,
            StateSite::Resamples,
            0,
        );
        let window = self.next_stage1_window();
        self.deadline = now + window;
    }

    /// Opens a quiet-run shadow for the event-driven engine: the three
    /// guarded scalars a stage-1-idle stretch evolves, decoded once so
    /// subsequent windows run on plain registers. Returns `None` unless
    /// the detector is idle in stage 1 (an armed stage-2 window must be
    /// serviced through the full path).
    ///
    /// The caller owns the shadow until it calls
    /// [`quiet_flush`](Self::quiet_flush); until then the guarded cells
    /// hold stale values and must not be read or scrubbed.
    pub fn quiet_shadow(&mut self) -> Option<QuietShadow> {
        if self.stage != DetectorStage::MissCount {
            return None;
        }
        let carry = cell_load(
            self.guard,
            &mut self.corruptions,
            &mut self.stats,
            &mut self.carry,
            StateSite::Carry,
        );
        let phase = cell_load(
            self.guard,
            &mut self.corruptions,
            &mut self.stats,
            &mut self.phase_state,
            StateSite::PhaseState,
        );
        let scale = cell_load(
            self.guard,
            &mut self.corruptions,
            &mut self.stats,
            &mut self.window_scale,
            StateSite::WindowScale,
        );
        Some(QuietShadow {
            carry,
            phase,
            scale,
        })
    }

    /// Whether a stage-1 window carrying `misses` would trip under the
    /// shadowed state. Pure: consumes no draws and mutates nothing, so
    /// the event engine can peek the decision and fall back to the full
    /// per-op service path for the tripping window itself.
    pub fn quiet_trips(&self, shadow: &QuietShadow, misses: u64) -> bool {
        let h = self.config.hardening;
        let normalized = misses as f64 / shadow.scale;
        transition::stage1_step(&h, self.config.llc_miss_threshold, shadow.carry, normalized)
            .tripped
    }

    /// Retires one non-tripping stage-1 window in closed form: the same
    /// slip accounting, EWMA step, and jitter draw as
    /// [`service`](Self::service) → `end_stage1` → `restart_stage1`,
    /// but against the shadow instead of the guarded cells and without
    /// touching the (known-zero) PMU counters. Returns the identical
    /// [`ServiceOutcome::Quiet`].
    ///
    /// The caller must have verified `!`[`quiet_trips`](Self::quiet_trips)
    /// for this window; a tripping window must go through the full path.
    pub fn quiet_step(
        &mut self,
        shadow: &mut QuietShadow,
        now: Cycle,
        misses: u64,
    ) -> ServiceOutcome {
        debug_assert_eq!(self.stage, DetectorStage::MissCount);
        debug_assert!(now >= self.deadline, "serviced before the deadline");
        let slip = now.saturating_sub(self.deadline);
        if slip > 0 {
            self.stats.missed_deadlines = self.stats.missed_deadlines.saturating_add(1);
            self.stats.worst_deadline_slip = self.stats.worst_deadline_slip.max(slip);
        }
        self.stats.stage1_windows = self.stats.stage1_windows.saturating_add(1);
        let h = self.config.hardening;
        let normalized = misses as f64 / shadow.scale;
        let step =
            transition::stage1_step(&h, self.config.llc_miss_threshold, shadow.carry, normalized);
        debug_assert!(!step.tripped, "tripping windows take the full path");
        shadow.carry = step.next_carry;
        // The shadow form of `next_stage1_window`: identical draws on
        // the same jitter stream, landing in registers instead of cells.
        let window = if !h.enabled || h.phase_jitter <= 0.0 {
            shadow.scale = 1.0;
            self.tc
        } else {
            let scale = transition::draw_window_scale(&h, &mut shadow.phase);
            shadow.scale = scale;
            ((self.tc as f64 * scale) as Cycle).max(1)
        };
        self.deadline = now + window;
        ServiceOutcome::Quiet {
            misses,
            cost: self.config.costs.pmi,
        }
    }

    /// Re-seals a quiet-run shadow into the guarded cells, ending the
    /// run. On pristine cells this is observationally identical to the
    /// per-window stores it replaces: replica state is a pure function
    /// of the stored value, and the sticky-sampling depth was already
    /// zero (every quiet window re-stores 0).
    pub fn quiet_flush(&mut self, shadow: &QuietShadow) {
        cell_store(
            self.guard,
            &mut self.corruptions,
            &mut self.stats,
            &mut self.carry,
            StateSite::Carry,
            shadow.carry,
        );
        cell_store(
            self.guard,
            &mut self.corruptions,
            &mut self.stats,
            &mut self.phase_state,
            StateSite::PhaseState,
            shadow.phase,
        );
        cell_store(
            self.guard,
            &mut self.corruptions,
            &mut self.stats,
            &mut self.window_scale,
            StateSite::WindowScale,
            shadow.scale,
        );
    }

    /// Materializes a checkpoint deferred during a quiet run into the
    /// full [`DetectorCheckpoint`] the per-window path would have
    /// written at that boundary. Valid while the quiet run is still
    /// open (or at its first flush point): the ledger, armed filter,
    /// and config fingerprint cannot have changed since the deferral,
    /// and every quiet boundary stores a sticky-sampling depth of zero.
    pub fn materialize_quiet_checkpoint(&self, q: &QuietCheckpoint) -> DetectorCheckpoint {
        DetectorCheckpoint {
            version: CHECKPOINT_VERSION,
            config_hash: self.config_fingerprint,
            sampling: false,
            armed_filter: self.armed_filter,
            deadline: q.deadline,
            stats: q.stats,
            carry: q.carry,
            phase_state: q.phase_state,
            window_scale: q.window_scale,
            pebs_jitter: q.pebs_jitter,
            ledger: self.ledger.to_rows(),
            resamples: 0,
        }
    }

    /// The cross-window suspicion ledger (empty unless hardening is
    /// enabled).
    pub fn ledger(&self) -> &SuspicionLedger {
        &self.ledger
    }

    /// Switches between the self-defending guarded mode (default) and
    /// the blind unguarded baseline the `selfdefense` campaign measures
    /// against. Applies to every guarded cell including the ledger's.
    pub fn set_state_guard(&mut self, guarded: bool) {
        self.guard = if guarded {
            GuardMode::Guarded
        } else {
            GuardMode::Unguarded
        };
        self.ledger.set_guarded(guarded);
    }

    /// Whether guarded-mode reads and scrubbing are active.
    pub fn state_guarded(&self) -> bool {
        self.guard == GuardMode::Guarded
    }

    /// Number of guarded state cells right now: four fixed cells (carry,
    /// phase state, window scale, resamples) plus two per suspicion-ledger
    /// entry. Ledger churn changes the count between windows; injectors
    /// index modulo the current count.
    pub fn state_cell_count(&self) -> usize {
        4 + self.ledger.cell_count()
    }

    /// XORs one bit into the chosen replicas of state cell `index` (see
    /// [`state_cell_count`](Self::state_cell_count) for the layout and
    /// [`GuardedCell::corrupt`] for the bit/replica encoding). This is
    /// the injection surface shared by the software fault injector, the
    /// physical row map in `anvil-mem`, and the proptests. Returns the
    /// [`StateSite`] hit, or `None` for an out-of-range index.
    pub fn corrupt_state_cell(
        &mut self,
        index: usize,
        replica_mask: u8,
        bit: u8,
    ) -> Option<StateSite> {
        match index {
            0 => {
                self.carry.corrupt(replica_mask, bit);
                Some(StateSite::Carry)
            }
            1 => {
                self.phase_state.corrupt(replica_mask, bit);
                Some(StateSite::PhaseState)
            }
            2 => {
                self.window_scale.corrupt(replica_mask, bit);
                Some(StateSite::WindowScale)
            }
            3 => {
                self.resamples.corrupt(replica_mask, bit);
                Some(StateSite::Resamples)
            }
            i => self.ledger.corrupt_cell(i - 4, replica_mask, bit),
        }
    }

    /// One incremental scrub step: verifies (and repairs or escalates)
    /// every state cell whose index is congruent to `slice` modulo `of`,
    /// so a full pass over the detector's state completes every `of`
    /// windows. No-op in unguarded mode. Corruptions found are counted in
    /// the stats and queued for
    /// [`take_state_corruptions`](Self::take_state_corruptions).
    pub fn scrub_state_slice(&mut self, slice: u64, of: u64) {
        if self.guard != GuardMode::Guarded {
            return;
        }
        let of = of.max(1);
        let slice = slice % of;
        if 0 % of == slice {
            if let Some(c) = self.carry.scrub(StateSite::Carry) {
                note_corruption(&mut self.corruptions, &mut self.stats, c);
            }
        }
        if 1 % of == slice {
            if let Some(c) = self.phase_state.scrub(StateSite::PhaseState) {
                note_corruption(&mut self.corruptions, &mut self.stats, c);
            }
        }
        if 2 % of == slice {
            if let Some(c) = self.window_scale.scrub(StateSite::WindowScale) {
                note_corruption(&mut self.corruptions, &mut self.stats, c);
            }
        }
        if 3 % of == slice {
            if let Some(c) = self.resamples.scrub(StateSite::Resamples) {
                note_corruption(&mut self.corruptions, &mut self.stats, c);
            }
        }
        self.ledger.scrub_cells(slice, of, 4);
        for c in self.ledger.take_corruptions() {
            note_corruption(&mut self.corruptions, &mut self.stats, c);
        }
    }

    /// A full scrub pass over every state cell (campaign teardown and
    /// tests; the steady state uses
    /// [`scrub_state_slice`](Self::scrub_state_slice)).
    pub fn scrub_state_all(&mut self) {
        for slice in 0..self.state_cell_count().max(1) as u64 {
            self.scrub_state_slice(slice, self.state_cell_count().max(1) as u64);
        }
    }

    /// Drains the corruption reports accumulated since the last drain.
    /// The policy layer (supervisor / platform) maps `repaired` to a
    /// repair counter and `!repaired` to an escalation (cold restart from
    /// the last good checkpoint).
    pub fn take_state_corruptions(&mut self) -> Vec<StateCorruption> {
        std::mem::take(&mut self.corruptions)
    }

    /// Snapshots the full detector state.
    ///
    /// A checkpoint taken immediately after a [`service`](Self::service)
    /// call (i.e. at a window boundary, when the PMU counters hold no
    /// partial-window evidence) restores to a detector observationally
    /// identical to one that never stopped. PMU counter contents and the
    /// PEBS buffer are volatile hardware state and are deliberately not
    /// captured; the sampler's *programmed* jitter-stream position is.
    pub fn checkpoint(&self, pmu: &Pmu) -> DetectorCheckpoint {
        DetectorCheckpoint {
            version: CHECKPOINT_VERSION,
            config_hash: self.config_fingerprint,
            sampling: self.stage == DetectorStage::Sampling,
            armed_filter: self.armed_filter,
            deadline: self.deadline,
            stats: self.stats,
            carry: read_cell(self.guard, &self.carry),
            phase_state: read_cell(self.guard, &self.phase_state),
            window_scale: read_cell(self.guard, &self.window_scale),
            pebs_jitter: pmu.sampler().jitter_state(),
            ledger: self.ledger.to_rows(),
            resamples: read_cell(self.guard, &self.resamples),
        }
    }

    /// Rebuilds a detector from a checkpoint, resuming at time `now`.
    ///
    /// Refuses a checkpoint whose format version or config hash does not
    /// match ([`RuntimeError::VersionMismatch`] /
    /// [`RuntimeError::ConfigMismatch`]); the caller falls back to a cold
    /// start. PMU counters are cleared (their pre-crash contents are
    /// gone on real hardware too). If the checkpointed deadline is still
    /// in the future the interrupted window resumes — re-arming the saved
    /// PEBS filter when stage 2 was in flight — otherwise the downtime
    /// swallowed the window and stage 1 restarts fresh at `now` (the
    /// recovery protocol's blanket refresh covers what the lost window
    /// might have seen).
    ///
    /// # Panics
    ///
    /// Panics if `config` fails [`AnvilConfig::validate`] (same contract
    /// as [`new`](Self::new)).
    pub fn restore(
        config: AnvilConfig,
        clock: &CpuClock,
        refresh_period: Cycle,
        now: Cycle,
        pmu: &mut Pmu,
        ckpt: &DetectorCheckpoint,
    ) -> Result<Self, RuntimeError> {
        if ckpt.version != CHECKPOINT_VERSION {
            return Err(RuntimeError::VersionMismatch {
                expected: CHECKPOINT_VERSION,
                found: ckpt.version,
            });
        }
        let expected = config_hash(&config);
        if ckpt.config_hash != expected {
            return Err(RuntimeError::ConfigMismatch {
                expected,
                found: ckpt.config_hash,
            });
        }
        config
            .validate()
            .unwrap_or_else(|e| panic!("invalid ANVIL config: {e}"));
        pmu.counter_mut(EventKind::LongestLatCacheMiss).clear();
        pmu.counter_mut(EventKind::MemLoadUopsRetiredLlcMiss)
            .clear();
        pmu.sampler_mut().set_jitter_state(ckpt.pebs_jitter);
        let mut det = AnvilDetector {
            config,
            refresh_period,
            tc: config.tc_cycles(clock),
            ts: config.ts_cycles(clock),
            stage: if ckpt.sampling {
                DetectorStage::Sampling
            } else {
                DetectorStage::MissCount
            },
            deadline: ckpt.deadline,
            stats: ckpt.stats,
            dropped_at_arm: 0,
            carry: GuardedCell::new(ckpt.carry),
            phase_state: GuardedCell::new(ckpt.phase_state),
            window_scale: GuardedCell::new(ckpt.window_scale),
            ledger: SuspicionLedger::from_rows(&ckpt.ledger),
            resamples: GuardedCell::new(ckpt.resamples),
            guard: GuardMode::Guarded,
            corruptions: Vec::new(),
            armed_filter: ckpt.armed_filter,
            config_fingerprint: expected,
            records_scratch: Vec::new(),
        };
        if det.deadline <= now {
            // The downtime gap swallowed the in-flight window.
            det.restart_stage1(now, pmu);
        } else if det.stage == DetectorStage::Sampling {
            pmu.enable_sampling(det.armed_filter, now);
            det.dropped_at_arm = pmu.sampler().samples_dropped();
        }
        Ok(det)
    }

    /// Atomically swaps in a validated configuration at a stage-1 window
    /// boundary, preserving the suspicion ledger, EWMA carry, jitter
    /// stream position, and activity counters — a hot reload loses no
    /// accumulated evidence.
    ///
    /// Must be called between windows (stage 1, immediately after a
    /// service call); a reload while stage 2 is in flight is rejected so
    /// an armed sampling window is never torn down mid-observation.
    pub fn reconfigure(
        &mut self,
        config: AnvilConfig,
        clock: &CpuClock,
        now: Cycle,
        pmu: &mut Pmu,
    ) -> Result<(), ConfigError> {
        if self.stage == DetectorStage::Sampling {
            return Err(ConfigError::Invalid(
                "hot reload must wait for the stage-2 window to end".to_owned(),
            ));
        }
        config.validate()?;
        self.config = config;
        self.config_fingerprint = config_hash(&config);
        self.tc = config.tc_cycles(clock);
        self.ts = config.ts_cycles(clock);
        // Carry is rate-normalized evidence in misses; it remains
        // meaningful across a threshold change, so keep it (conservative:
        // accumulated pressure is never forgotten by a reload).
        self.restart_stage1(now, pmu);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anvil_cache::HitLevel;
    use anvil_dram::DramGeometry;
    use anvil_mem::{AccessKind, AccessOutcome};
    use anvil_pmu::{RetiredOp, SamplerConfig};

    const CLOCK: CpuClock = CpuClock::SANDY_BRIDGE_2_6GHZ;
    const PERIOD: Cycle = 166_400_000;

    #[test]
    fn signature_buckets_by_magnitude_and_field() {
        let zero = DetectorStats::default();
        assert_eq!(zero.signature(), StateSignature(0));

        // A power-of-two change in one counter moves exactly one nibble.
        let mut a = DetectorStats::default();
        a.stage1_windows = 5; // bucket 3
        let mut b = a;
        b.stage1_windows = 11; // bucket 4
        assert_ne!(a.signature(), b.signature());
        assert_eq!(a.signature().0 & !0xF, b.signature().0 & !0xF);

        // Same magnitudes in *different* fields must not collide.
        let mut c = DetectorStats::default();
        c.detections = 5;
        assert_ne!(a.signature(), c.signature());

        // Within-bucket jitter collides on purpose.
        let mut d = a;
        d.stage1_windows = 7; // still bucket 3
        assert_eq!(a.signature(), d.signature());

        // The top 16 bits stay free for caller flags.
        let mut all = DetectorStats::default();
        all.stage1_windows = u64::MAX;
        all.samples_lost = u64::MAX;
        assert_eq!(all.signature().0 >> 48, 0);
    }

    fn detector(pmu: &mut Pmu) -> AnvilDetector {
        AnvilDetector::new(AnvilConfig::baseline(), &CLOCK, PERIOD, 0, pmu)
    }

    fn miss_op(vaddr: u64, pid: u32) -> RetiredOp {
        RetiredOp {
            vaddr,
            pid,
            outcome: AccessOutcome {
                paddr: vaddr, // identity-mapped for tests
                kind: AccessKind::Read,
                level: HitLevel::Memory,
                advance: 184,
                dram: None,
            },
        }
    }

    #[test]
    fn quiet_window_restarts_stage1() {
        let mut pmu = Pmu::new(SamplerConfig::anvil_default());
        let mut det = detector(&mut pmu);
        let d1 = det.deadline();
        // A handful of misses: below 20K.
        for i in 0..100u64 {
            pmu.observe_at(&miss_op(i * 4096, 1), i * 1000);
        }
        let mapping = AddressMapping::new(DramGeometry::ddr3_4gb());
        let out = det.service(d1, &mut pmu, &mapping, &mut |_, v| Some(v));
        assert!(matches!(out, ServiceOutcome::Quiet { misses: 100, .. }));
        assert_eq!(det.stage(), DetectorStage::MissCount);
        assert_eq!(det.deadline(), d1 + det.config().tc_cycles(&CLOCK));
        assert_eq!(det.stats().threshold_crossings, 0);
    }

    #[test]
    fn threshold_crossing_arms_sampling_with_loads_only() {
        let mut pmu = Pmu::new(SamplerConfig::anvil_default());
        let mut det = detector(&mut pmu);
        for i in 0..25_000u64 {
            pmu.observe_at(&miss_op(i * 64, 1), i * 400);
        }
        let d1 = det.deadline();
        let out = det.service(
            d1,
            &mut pmu,
            &AddressMapping::new(DramGeometry::ddr3_4gb()),
            &mut |_, v| Some(v),
        );
        match out {
            ServiceOutcome::Armed { misses, filter, .. } => {
                assert_eq!(misses, 25_000);
                assert_eq!(filter, SampleFilter::LoadsOnly);
            }
            other => panic!("expected Armed, got {other:?}"),
        }
        assert_eq!(det.stage(), DetectorStage::Sampling);
    }

    #[test]
    fn full_cycle_detects_a_synthetic_attack() {
        let mapping = AddressMapping::new(DramGeometry::ddr3_4gb());
        let mut pmu = Pmu::new(SamplerConfig::anvil_default());
        let mut det = detector(&mut pmu);

        // Two aggressor addresses two rows apart in one bank.
        let base = mapping.address_of(DramLocation {
            bank: anvil_dram::BankId(2),
            row: 500,
            col: 0,
        });
        // Fall back to the row below if the base ever sits at the top of
        // its bank — `same_bank_row_offset` returns None past the edge.
        let above = mapping
            .same_bank_row_offset(base, 2)
            .or_else(|| mapping.same_bank_row_offset(base, -2))
            .expect("row 500 cannot be at both ends of its bank");

        // Stage 1: hammer-level miss traffic on the two aggressors.
        let mut t = 0u64;
        while t < det.deadline() {
            pmu.observe_at(&miss_op(base, 7), t);
            pmu.observe_at(&miss_op(above, 7), t + 200);
            t += 400;
        }
        let out = det.service(det.deadline(), &mut pmu, &mapping, &mut |_, v| Some(v));
        assert!(matches!(out, ServiceOutcome::Armed { .. }));

        // Stage 2: same traffic while sampling.
        let end = det.deadline();
        while t < end {
            pmu.observe_at(&miss_op(base, 7), t);
            pmu.observe_at(&miss_op(above, 7), t + 200);
            t += 400;
        }
        let out = det.service(end, &mut pmu, &mapping, &mut |_, v| Some(v));
        match out {
            ServiceOutcome::Analyzed {
                report, refreshes, ..
            } => {
                assert!(report.detected(), "attack must be flagged: {report:?}");
                // The victim row between the aggressors must be refreshed.
                let victim = mapping.location_of(base).row + 1;
                assert!(
                    refreshes.iter().any(|(r, _)| r.row == victim),
                    "sandwiched victim missing from {refreshes:?}"
                );
                // No aggressor row is refreshed.
                for (r, _) in &refreshes {
                    assert_ne!(r.row, mapping.location_of(base).row);
                    assert_ne!(r.row, mapping.location_of(above).row);
                }
            }
            other => panic!("expected Analyzed, got {other:?}"),
        }
        assert_eq!(det.stats().detections, 1);
        assert!(det.stats().selective_refreshes >= 2);
        assert_eq!(det.stage(), DetectorStage::MissCount);
    }

    #[test]
    fn boundary_row_attack_stays_in_bounds() {
        // Aggressors at the very top of a bank: victim refreshes must be
        // clamped to the bank, never panic or run past the last row.
        let mapping = AddressMapping::new(DramGeometry::ddr3_4gb());
        let mut pmu = Pmu::new(SamplerConfig::anvil_default());
        let mut det = detector(&mut pmu);

        let last = mapping.geometry().rows_per_bank - 1;
        let base = mapping.address_of(DramLocation {
            bank: anvil_dram::BankId(1),
            row: last,
            col: 0,
        });
        let below = mapping
            .same_bank_row_offset(base, 2)
            .or_else(|| mapping.same_bank_row_offset(base, -2))
            .expect("bank has more than two rows");

        let mut t = 0u64;
        while t < det.deadline() {
            pmu.observe_at(&miss_op(base, 7), t);
            pmu.observe_at(&miss_op(below, 7), t + 200);
            t += 400;
        }
        assert!(matches!(
            det.service(det.deadline(), &mut pmu, &mapping, &mut |_, v| Some(v)),
            ServiceOutcome::Armed { .. }
        ));
        let end = det.deadline();
        while t < end {
            pmu.observe_at(&miss_op(base, 7), t);
            pmu.observe_at(&miss_op(below, 7), t + 200);
            t += 400;
        }
        match det.service(end, &mut pmu, &mapping, &mut |_, v| Some(v)) {
            ServiceOutcome::Analyzed {
                report, refreshes, ..
            } => {
                assert!(report.detected(), "boundary attack must be flagged");
                assert!(!refreshes.is_empty());
                for (r, _) in &refreshes {
                    assert!(r.row < mapping.geometry().rows_per_bank);
                }
                // The sandwiched victim (one below the top row) is there.
                assert!(refreshes.iter().any(|(r, _)| r.row == last - 1));
            }
            other => panic!("expected Analyzed, got {other:?}"),
        }
    }

    #[test]
    fn late_service_trips_the_watchdog() {
        let mut pmu = Pmu::new(SamplerConfig::anvil_default());
        let mut det = detector(&mut pmu);
        let mapping = AddressMapping::new(DramGeometry::ddr3_4gb());
        let d1 = det.deadline();
        det.service(d1 + 5_000, &mut pmu, &mapping, &mut |_, v| Some(v));
        assert_eq!(det.stats().missed_deadlines, 1);
        assert_eq!(det.stats().worst_deadline_slip, 5_000);
        // An on-time service leaves the watchdog untouched.
        det.service(det.deadline(), &mut pmu, &mapping, &mut |_, v| Some(v));
        assert_eq!(det.stats().missed_deadlines, 1);
    }

    #[test]
    fn benign_stage2_produces_no_refreshes() {
        let mapping = AddressMapping::new(DramGeometry::ddr3_4gb());
        let mut pmu = Pmu::new(SamplerConfig::anvil_default());
        let mut det = detector(&mut pmu);

        // Streaming traffic: sequential lines, high miss count.
        let mut t = 0u64;
        let mut addr = 0u64;
        while t < det.deadline() {
            pmu.observe_at(&miss_op(addr, 3), t);
            addr += 64;
            t += 400;
        }
        assert!(matches!(
            det.service(det.deadline(), &mut pmu, &mapping, &mut |_, v| Some(v)),
            ServiceOutcome::Armed { .. }
        ));
        let end = det.deadline();
        while t < end {
            pmu.observe_at(&miss_op(addr, 3), t);
            addr += 64;
            t += 400;
        }
        match det.service(end, &mut pmu, &mapping, &mut |_, v| Some(v)) {
            ServiceOutcome::Analyzed {
                report, refreshes, ..
            } => {
                assert!(!report.detected(), "streaming flagged: {report:?}");
                assert!(refreshes.is_empty());
            }
            other => panic!("expected Analyzed, got {other:?}"),
        }
    }

    #[test]
    fn untranslatable_samples_trigger_degraded_mode() {
        let mapping = AddressMapping::new(DramGeometry::ddr3_4gb());
        let mut pmu = Pmu::new(SamplerConfig::anvil_default());
        let mut det = detector(&mut pmu);
        let mut t = 0u64;
        while t < det.deadline() {
            pmu.observe_at(&miss_op(64, 9), t);
            pmu.observe_at(&miss_op(64 + (1 << 18), 9), t + 200);
            t += 400;
        }
        det.service(det.deadline(), &mut pmu, &mapping, &mut |_, _| None);
        let end = det.deadline();
        while t < end {
            pmu.observe_at(&miss_op(64, 9), t);
            t += 400;
        }
        // Translation always fails: no usable evidence survives the
        // window, so the fallback blankets every bank.
        match det.service(end, &mut pmu, &mapping, &mut |_, _| None) {
            ServiceOutcome::Degraded { report, banks, .. } => {
                assert_eq!(report.total_samples, 0);
                assert!(!report.detected());
                assert_eq!(banks.len() as u32, mapping.geometry().total_banks());
            }
            other => panic!("expected Degraded, got {other:?}"),
        }
        assert_eq!(det.stats().degraded_windows, 1);
        assert!(det.stats().samples_unresolved > 0);
        assert_eq!(
            det.stats().bank_refreshes,
            u64::from(mapping.geometry().total_banks())
        );
    }

    #[test]
    fn ewma_carry_trips_on_persistent_subthreshold_windows() {
        // 15K misses per window: forever-quiet for the paper's detector,
        // but the hardened EWMA accumulates 15K → 22.5K ≥ 20K and arms
        // by the second window.
        let mapping = AddressMapping::new(DramGeometry::ddr3_4gb());
        let run = |cfg: AnvilConfig| {
            let mut pmu = Pmu::new(SamplerConfig::anvil_default());
            let mut det = AnvilDetector::new(cfg, &CLOCK, PERIOD, 0, &mut pmu);
            for _ in 0..4 {
                if det.stage() == DetectorStage::Sampling {
                    break;
                }
                for i in 0..15_000u64 {
                    pmu.observe_at(&miss_op(i * 64, 1), det.deadline() - 1);
                }
                det.service(det.deadline(), &mut pmu, &mapping, &mut |_, v| Some(v));
            }
            *det.stats()
        };
        let baseline = run(AnvilConfig::baseline());
        assert_eq!(baseline.threshold_crossings, 0);
        let mut hardened = AnvilConfig::hardened();
        hardened.hardening.phase_jitter = 0.0; // exact window arithmetic
        let stats = run(hardened);
        assert_eq!(stats.threshold_crossings, 1);
        assert_eq!(
            stats.carry_crossings, 1,
            "the trip must be attributed to the carry, not the raw count"
        );
    }

    #[test]
    fn hardened_window_lengths_are_jittered_and_seeded() {
        let mapping = AddressMapping::new(DramGeometry::ddr3_4gb());
        let windows = |seed: u64| -> Vec<Cycle> {
            let mut cfg = AnvilConfig::hardened();
            cfg.hardening.phase_seed = seed;
            let mut pmu = Pmu::new(SamplerConfig::anvil_default());
            let mut det = AnvilDetector::new(cfg, &CLOCK, PERIOD, 0, &mut pmu);
            let mut lens = Vec::new();
            let mut last = 0;
            for _ in 0..8 {
                lens.push(det.deadline() - last);
                last = det.deadline();
                det.service(det.deadline(), &mut pmu, &mapping, &mut |_, v| Some(v));
            }
            lens
        };
        let tc = AnvilConfig::baseline().tc_cycles(&CLOCK);
        let a = windows(1);
        for &w in &a {
            assert!(w >= (tc as f64 * 0.74) as Cycle && w <= (tc as f64 * 1.26) as Cycle);
        }
        assert!(
            a.windows(2).any(|p| p[0] != p[1]),
            "lengths must actually vary: {a:?}"
        );
        assert_eq!(a, windows(1), "same seed, same schedule");
        assert_ne!(a, windows(2), "different seed, different schedule");
        // Unhardened windows stay exactly tc.
        let mut pmu = Pmu::new(SamplerConfig::anvil_default());
        let det = AnvilDetector::new(AnvilConfig::baseline(), &CLOCK, PERIOD, 0, &mut pmu);
        assert_eq!(det.deadline(), tc);
    }

    #[test]
    fn silent_stage2_after_a_trip_keeps_sampling_when_hardened() {
        // A burst trips stage 1, then goes quiet: the paper detector
        // samples 6 ms of silence, concedes, and hands the attacker its
        // next quiet phase. The hardened detector re-arms sampling up to
        // `max_resample_windows` consecutive times before giving up.
        let mapping = AddressMapping::new(DramGeometry::ddr3_4gb());
        let mut cfg = AnvilConfig::hardened();
        cfg.hardening.phase_jitter = 0.0;
        let mut pmu = Pmu::new(SamplerConfig::anvil_default());
        let mut det = AnvilDetector::new(cfg, &CLOCK, PERIOD, 0, &mut pmu);
        for i in 0..25_000u64 {
            pmu.observe_at(&miss_op(i * 64, 1), det.deadline() - 1);
        }
        assert!(matches!(
            det.service(det.deadline(), &mut pmu, &mapping, &mut |_, v| Some(v)),
            ServiceOutcome::Armed { .. }
        ));
        // Four silent stage-2 windows: each re-arms sampling.
        for k in 0..4 {
            let out = det.service(det.deadline(), &mut pmu, &mapping, &mut |_, v| Some(v));
            assert!(
                matches!(out, ServiceOutcome::Armed { misses: 0, .. }),
                "resample {k}: {out:?}"
            );
            assert_eq!(det.stage(), DetectorStage::Sampling);
        }
        // Cap reached: the fifth silent window returns to counting.
        assert!(matches!(
            det.service(det.deadline(), &mut pmu, &mapping, &mut |_, v| Some(v)),
            ServiceOutcome::Analyzed { .. }
        ));
        assert_eq!(det.stage(), DetectorStage::MissCount);
        assert_eq!(det.stats().resample_windows, 4);

        // The paper baseline concedes after one silent window.
        let mut pmu = Pmu::new(SamplerConfig::anvil_default());
        let mut det = detector(&mut pmu);
        for i in 0..25_000u64 {
            pmu.observe_at(&miss_op(i * 64, 1), det.deadline() - 1);
        }
        det.service(det.deadline(), &mut pmu, &mapping, &mut |_, v| Some(v));
        assert!(matches!(
            det.service(det.deadline(), &mut pmu, &mapping, &mut |_, v| Some(v)),
            ServiceOutcome::Analyzed { .. }
        ));
        assert_eq!(det.stage(), DetectorStage::MissCount);
        assert_eq!(det.stats().resample_windows, 0);
    }

    /// Feeds `misses` identity-mapped LLC misses before the deadline and
    /// services the window.
    fn feed_and_service(det: &mut AnvilDetector, pmu: &mut Pmu, misses: u64) -> ServiceOutcome {
        let mapping = AddressMapping::new(DramGeometry::ddr3_4gb());
        let deadline = det.deadline();
        for i in 0..misses {
            pmu.observe_at(&miss_op((i % 512) * 64, 1), deadline.saturating_sub(1));
        }
        det.service(deadline, pmu, &mapping, &mut |_, v| Some(v))
    }

    #[test]
    fn checkpoint_restore_round_trips_at_a_window_boundary() {
        let mut pmu = Pmu::new(SamplerConfig::anvil_default());
        let mut det = AnvilDetector::new(AnvilConfig::hardened(), &CLOCK, PERIOD, 0, &mut pmu);
        // Accumulate some state: a quiet window (carry), a trip, a silent
        // stage-2 window.
        feed_and_service(&mut det, &mut pmu, 15_000);
        feed_and_service(&mut det, &mut pmu, 25_000);
        let ckpt = det.checkpoint(&pmu);

        let mut pmu2 = Pmu::new(SamplerConfig::anvil_default());
        let restored = AnvilDetector::restore(
            AnvilConfig::hardened(),
            &CLOCK,
            PERIOD,
            ckpt.deadline.saturating_sub(1),
            &mut pmu2,
            &ckpt,
        )
        .unwrap();
        assert_eq!(restored.stage(), det.stage());
        assert_eq!(restored.deadline(), det.deadline());
        assert_eq!(restored.stats(), det.stats());
        assert_eq!(restored.ledger(), det.ledger());
        assert_eq!(restored.carry, det.carry);
        assert_eq!(restored.phase_state, det.phase_state);
        assert_eq!(restored.resamples, det.resamples);
        // And the encoded form round-trips byte-for-byte.
        let decoded = DetectorCheckpoint::from_bytes(&ckpt.to_bytes()).unwrap();
        assert_eq!(decoded, ckpt);
    }

    #[test]
    fn restore_rejects_a_different_config() {
        let mut pmu = Pmu::new(SamplerConfig::anvil_default());
        let det = AnvilDetector::new(AnvilConfig::hardened(), &CLOCK, PERIOD, 0, &mut pmu);
        let ckpt = det.checkpoint(&pmu);
        let err =
            AnvilDetector::restore(AnvilConfig::baseline(), &CLOCK, PERIOD, 0, &mut pmu, &ckpt)
                .unwrap_err();
        assert!(matches!(err, RuntimeError::ConfigMismatch { .. }));
    }

    #[test]
    fn restore_past_the_deadline_restarts_stage1_and_keeps_evidence() {
        let mut pmu = Pmu::new(SamplerConfig::anvil_default());
        let mut det = AnvilDetector::new(AnvilConfig::hardened(), &CLOCK, PERIOD, 0, &mut pmu);
        feed_and_service(&mut det, &mut pmu, 15_000); // quiet, carry > 0
        let ckpt = det.checkpoint(&pmu);
        let gap_end = ckpt.deadline + 50_000_000; // downtime ate the window
        let mut pmu2 = Pmu::new(SamplerConfig::anvil_default());
        let restored = AnvilDetector::restore(
            AnvilConfig::hardened(),
            &CLOCK,
            PERIOD,
            gap_end,
            &mut pmu2,
            &restored_ckpt(&ckpt),
        )
        .unwrap();
        assert_eq!(restored.stage(), DetectorStage::MissCount);
        assert!(restored.deadline() > gap_end);
        assert_eq!(restored.carry, det.carry, "EWMA evidence survives");
        assert_eq!(restored.stats().stage1_windows, 1);
    }

    /// Round-trips a checkpoint through its byte encoding (exercises the
    /// wire format on every restore-path test).
    fn restored_ckpt(ckpt: &DetectorCheckpoint) -> DetectorCheckpoint {
        DetectorCheckpoint::from_bytes(&ckpt.to_bytes()).unwrap()
    }

    #[test]
    fn mid_sampling_restore_rearms_the_saved_filter() {
        let mut pmu = Pmu::new(SamplerConfig::anvil_default());
        let mut det = AnvilDetector::new(AnvilConfig::baseline(), &CLOCK, PERIOD, 0, &mut pmu);
        let out = feed_and_service(&mut det, &mut pmu, 25_000);
        let ServiceOutcome::Armed { filter, .. } = out else {
            panic!("expected Armed, got {out:?}");
        };
        assert_eq!(det.stage(), DetectorStage::Sampling);
        let ckpt = det.checkpoint(&pmu);
        assert!(ckpt.sampling);
        assert_eq!(ckpt.armed_filter, filter);
        let mut pmu2 = Pmu::new(SamplerConfig::anvil_default());
        let restored = AnvilDetector::restore(
            AnvilConfig::baseline(),
            &CLOCK,
            PERIOD,
            ckpt.deadline - det.config().ts_cycles(&CLOCK) / 2,
            &mut pmu2,
            &ckpt,
        )
        .unwrap();
        assert_eq!(restored.stage(), DetectorStage::Sampling);
        assert!(pmu2.sampler().enabled(), "sampling must be re-armed");
    }

    #[test]
    fn reconfigure_swaps_config_and_keeps_the_ledger() {
        let mapping = AddressMapping::new(DramGeometry::ddr3_4gb());
        let mut pmu = Pmu::new(SamplerConfig::anvil_default());
        let mut det = AnvilDetector::new(AnvilConfig::hardened(), &CLOCK, PERIOD, 0, &mut pmu);
        // Build ledger evidence with a full attack cycle.
        let base = mapping.address_of(DramLocation {
            bank: anvil_dram::BankId(2),
            row: 500,
            col: 0,
        });
        let above = mapping.same_bank_row_offset(base, 2).unwrap();
        let mut t = 0u64;
        while t < det.deadline() {
            pmu.observe_at(&miss_op(base, 7), t);
            pmu.observe_at(&miss_op(above, 7), t + 200);
            t += 400;
        }
        det.service(det.deadline(), &mut pmu, &mapping, &mut |_, v| Some(v));
        let end = det.deadline();
        while t < end {
            pmu.observe_at(&miss_op(base, 7), t);
            pmu.observe_at(&miss_op(above, 7), t + 200);
            t += 400;
        }
        det.service(end, &mut pmu, &mapping, &mut |_, v| Some(v));
        assert_eq!(det.stage(), DetectorStage::MissCount);
        let ledger_before = det.ledger().clone();
        let stats_before = *det.stats();
        assert!(!ledger_before.is_empty(), "attack must leave evidence");

        let mut hot = AnvilConfig::hardened();
        hot.llc_miss_threshold = 15_000;
        det.reconfigure(hot, &CLOCK, end, &mut pmu).unwrap();
        assert_eq!(det.config().llc_miss_threshold, 15_000);
        assert_eq!(det.ledger(), &ledger_before, "reload keeps the ledger");
        assert_eq!(det.stats(), &stats_before);
        assert!(det.deadline() > end);

        // An invalid config is rejected and nothing changes.
        let mut bad = AnvilConfig::hardened();
        bad.llc_miss_threshold = 0;
        assert!(det.reconfigure(bad, &CLOCK, end, &mut pmu).is_err());
        assert_eq!(det.config().llc_miss_threshold, 15_000);
    }

    #[test]
    fn reconfigure_refuses_mid_sampling() {
        let mut pmu = Pmu::new(SamplerConfig::anvil_default());
        let mut det = AnvilDetector::new(AnvilConfig::baseline(), &CLOCK, PERIOD, 0, &mut pmu);
        feed_and_service(&mut det, &mut pmu, 25_000);
        assert_eq!(det.stage(), DetectorStage::Sampling);
        let err = det
            .reconfigure(AnvilConfig::hardened(), &CLOCK, det.deadline(), &mut pmu)
            .unwrap_err();
        assert!(matches!(err, ConfigError::Invalid(_)));
    }

    #[test]
    fn disabled_fallback_restores_the_silent_skip() {
        let mapping = AddressMapping::new(DramGeometry::ddr3_4gb());
        let mut pmu = Pmu::new(SamplerConfig::anvil_default());
        let mut cfg = AnvilConfig::baseline();
        cfg.degraded.enabled = false;
        let mut det = AnvilDetector::new(cfg, &CLOCK, PERIOD, 0, &mut pmu);
        let mut t = 0u64;
        while t < det.deadline() {
            pmu.observe_at(&miss_op(64, 9), t);
            t += 200;
        }
        det.service(det.deadline(), &mut pmu, &mapping, &mut |_, _| None);
        let end = det.deadline();
        while t < end {
            pmu.observe_at(&miss_op(64, 9), t);
            t += 400;
        }
        // With the fallback off, a fully-lost window is still just an
        // Analyzed-and-empty verdict (the pre-fault-model behaviour).
        match det.service(end, &mut pmu, &mapping, &mut |_, _| None) {
            ServiceOutcome::Analyzed { report, .. } => assert!(!report.detected()),
            other => panic!("expected Analyzed, got {other:?}"),
        }
        assert_eq!(det.stats().degraded_windows, 0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use anvil_dram::DramGeometry;
    use anvil_pmu::SamplerConfig;
    use proptest::prelude::*;

    const CLOCK: CpuClock = CpuClock::SANDY_BRIDGE_2_6GHZ;
    const PERIOD: Cycle = 166_400_000;

    fn miss_op(vaddr: u64, pid: u32) -> anvil_pmu::RetiredOp {
        anvil_pmu::RetiredOp {
            vaddr,
            pid,
            outcome: anvil_mem::AccessOutcome {
                paddr: vaddr,
                kind: anvil_mem::AccessKind::Read,
                level: anvil_cache::HitLevel::Memory,
                advance: 184,
                dram: None,
            },
        }
    }

    /// Feeds one window of `misses` LLC misses spread over the window and
    /// services it at the deadline. Addresses concentrate on a small row
    /// set so some windows detect and exercise the ledger.
    fn drive_window(det: &mut AnvilDetector, pmu: &mut Pmu, misses: u64, start: Cycle) -> Cycle {
        let mapping = AddressMapping::new(DramGeometry::ddr3_4gb());
        let deadline = det.deadline();
        let span = deadline.saturating_sub(start).max(1);
        let step = (span / misses.max(1)).max(1);
        for i in 0..misses {
            let t = (start + i * step).min(deadline - 1);
            let vaddr = (i % 4) * (1 << 16);
            pmu.observe_at(&miss_op(vaddr, 5), t);
        }
        det.service(deadline, pmu, &mapping, &mut |_, v| Some(v));
        deadline
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// `checkpoint → to_bytes → from_bytes → restore → run` is
        /// bit-identical to an uninterrupted run over the same trace: a
        /// crash-restart at any window boundary loses nothing the
        /// checkpoint carries.
        #[test]
        fn restart_is_observationally_identical(
            menu_picks in prop::collection::vec(0usize..5, 2..7),
            cut in 0usize..5,
            hardened in any::<bool>(),
        ) {
            // Window miss counts spanning quiet, carry-building, and
            // arming traffic.
            let menu = [0u64, 700, 15_000, 19_500, 26_000];
            let windows: Vec<u64> = menu_picks.iter().map(|&i| menu[i]).collect();
            let config = if hardened {
                AnvilConfig::hardened()
            } else {
                AnvilConfig::baseline()
            };
            let cut = cut.min(windows.len() - 1);

            // Uninterrupted run.
            let mut pmu_a = Pmu::new(SamplerConfig::anvil_default());
            let mut a = AnvilDetector::new(config, &CLOCK, PERIOD, 0, &mut pmu_a);
            let mut start = 0;
            for &m in &windows {
                start = drive_window(&mut a, &mut pmu_a, m, start);
            }

            // Interrupted run: crash after window `cut`, restore from the
            // serialized checkpoint into a fresh PMU, continue.
            let mut pmu_b = Pmu::new(SamplerConfig::anvil_default());
            let mut b = AnvilDetector::new(config, &CLOCK, PERIOD, 0, &mut pmu_b);
            let mut start_b = 0;
            for &m in &windows[..=cut] {
                start_b = drive_window(&mut b, &mut pmu_b, m, start_b);
            }
            let bytes = b.checkpoint(&pmu_b).to_bytes();
            let ckpt = DetectorCheckpoint::from_bytes(&bytes).unwrap();
            let mut pmu_b = Pmu::new(SamplerConfig::anvil_default());
            let mut b =
                AnvilDetector::restore(config, &CLOCK, PERIOD, start_b, &mut pmu_b, &ckpt)
                    .unwrap();
            for &m in &windows[cut + 1..] {
                start_b = drive_window(&mut b, &mut pmu_b, m, start_b);
            }

            prop_assert_eq!(start, start_b, "service times must line up");
            prop_assert_eq!(a.stage(), b.stage());
            prop_assert_eq!(a.deadline(), b.deadline());
            prop_assert_eq!(a.stats(), b.stats());
            prop_assert_eq!(a.ledger(), b.ledger());
            // The full serialized states agree byte for byte.
            prop_assert_eq!(a.checkpoint(&pmu_a).to_bytes(), b.checkpoint(&pmu_b).to_bytes());
        }
    }
}
