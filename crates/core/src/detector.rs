//! The ANVIL two-stage detection state machine (Section 3.3, Figure 2).
//!
//! Stage 1 watches the `LONGEST_LAT_CACHE.MISS` rate over windows of
//! `tc`; only when a window's miss count could sustain a rowhammer attack
//! does stage 2 arm the PEBS sampling facilities for `ts`, translate the
//! sampled virtual addresses through the owning process's page table, and
//! run the row/bank locality analysis. On detection, the rows adjacent to
//! each identified aggressor are selectively refreshed with a read.

use crate::config::AnvilConfig;
use crate::locality::{analyze, LocalityReport, RowSample};
use anvil_dram::{AddressMapping, CpuClock, Cycle, DramLocation, RowId};
use anvil_pmu::{DataSource, EventKind, Pmu, SampleFilter};
use serde::{Deserialize, Serialize};

/// Which window the detector is currently in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DetectorStage {
    /// Stage 1: counting LLC misses over `tc`.
    MissCount,
    /// Stage 2: sampling memory-access addresses over `ts`.
    Sampling,
}

/// Detector activity counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DetectorStats {
    /// Stage-1 windows completed.
    pub stage1_windows: u64,
    /// Stage-1 windows whose miss count crossed the threshold.
    pub threshold_crossings: u64,
    /// Stage-2 (sampling) windows completed.
    pub stage2_windows: u64,
    /// Stage-2 windows that flagged at least one aggressor.
    pub detections: u64,
    /// Selective victim-row refreshes performed.
    pub selective_refreshes: u64,
    /// Samples fed into locality analysis.
    pub samples_analyzed: u64,
}

/// What a detector service call decided.
#[derive(Debug, Clone, PartialEq)]
pub enum ServiceOutcome {
    /// Stage-1 window ended below threshold; stage 1 re-armed.
    Quiet {
        /// LLC misses seen in the window.
        misses: u64,
        /// Kernel time consumed.
        cost: Cycle,
    },
    /// Stage-1 window crossed the threshold; sampling armed.
    Armed {
        /// LLC misses seen in the window.
        misses: u64,
        /// The sampling filter chosen from the load fraction.
        filter: SampleFilter,
        /// Kernel time consumed.
        cost: Cycle,
    },
    /// Stage-2 window ended and was analyzed.
    Analyzed {
        /// The locality analysis result.
        report: LocalityReport,
        /// Victim rows to refresh (deduplicated), with a representative
        /// physical address for each.
        refreshes: Vec<(RowId, u64)>,
        /// Kernel time consumed (excluding the per-refresh reads).
        cost: Cycle,
    },
}

/// The ANVIL detector.
///
/// Owned by the platform runner, which calls
/// [`service`](AnvilDetector::service) whenever the simulation clock
/// passes [`deadline`](AnvilDetector::deadline).
#[derive(Debug)]
pub struct AnvilDetector {
    config: AnvilConfig,
    refresh_period: Cycle,
    tc: Cycle,
    ts: Cycle,
    stage: DetectorStage,
    deadline: Cycle,
    stats: DetectorStats,
}

impl AnvilDetector {
    /// Creates the detector and arms stage 1 starting at `now`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`AnvilConfig::validate`].
    pub fn new(
        config: AnvilConfig,
        clock: &CpuClock,
        refresh_period: Cycle,
        now: Cycle,
        pmu: &mut Pmu,
    ) -> Self {
        config
            .validate()
            .unwrap_or_else(|e| panic!("invalid ANVIL config: {e}"));
        pmu.counter_mut(EventKind::LongestLatCacheMiss).clear();
        pmu.counter_mut(EventKind::MemLoadUopsRetiredLlcMiss)
            .clear();
        let tc = config.tc_cycles(clock);
        let ts = config.ts_cycles(clock);
        AnvilDetector {
            config,
            refresh_period,
            tc,
            ts,
            stage: DetectorStage::MissCount,
            deadline: now + tc,
            stats: DetectorStats::default(),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &AnvilConfig {
        &self.config
    }

    /// Time at which [`service`](Self::service) must next run.
    pub fn deadline(&self) -> Cycle {
        self.deadline
    }

    /// The current stage.
    pub fn stage(&self) -> DetectorStage {
        self.stage
    }

    /// Activity counters.
    pub fn stats(&self) -> &DetectorStats {
        &self.stats
    }

    /// Services the expired window at time `now`. `translate` resolves
    /// (pid, virtual address) to a physical address — the `task_struct`
    /// walk of the real kernel module.
    pub fn service(
        &mut self,
        now: Cycle,
        pmu: &mut Pmu,
        mapping: &AddressMapping,
        translate: &mut dyn FnMut(u32, u64) -> Option<u64>,
    ) -> ServiceOutcome {
        debug_assert!(now >= self.deadline, "serviced before the deadline");
        match self.stage {
            DetectorStage::MissCount => self.end_stage1(now, pmu),
            DetectorStage::Sampling => self.end_stage2(now, pmu, mapping, translate),
        }
    }

    fn end_stage1(&mut self, now: Cycle, pmu: &mut Pmu) -> ServiceOutcome {
        self.stats.stage1_windows += 1;
        let misses = pmu.counter(EventKind::LongestLatCacheMiss).read();
        let miss_loads = pmu.counter(EventKind::MemLoadUopsRetiredLlcMiss).read();

        if misses < self.config.llc_miss_threshold {
            self.restart_stage1(now, pmu);
            return ServiceOutcome::Quiet {
                misses,
                cost: self.config.costs.pmi,
            };
        }

        // Threshold crossed: arm stage 2 with the facility matching the
        // window's load/store mix.
        self.stats.threshold_crossings += 1;
        let load_fraction = if misses == 0 {
            1.0
        } else {
            miss_loads as f64 / misses as f64
        };
        let filter = if load_fraction > self.config.load_fraction_hi {
            SampleFilter::LoadsOnly
        } else if load_fraction < self.config.load_fraction_lo {
            SampleFilter::StoresOnly
        } else {
            SampleFilter::LoadsAndStores
        };
        pmu.counter_mut(EventKind::LongestLatCacheMiss).clear();
        pmu.counter_mut(EventKind::MemLoadUopsRetiredLlcMiss)
            .clear();
        pmu.enable_sampling(filter, now);
        self.stage = DetectorStage::Sampling;
        self.deadline = now + self.ts;
        ServiceOutcome::Armed {
            misses,
            filter,
            cost: self.config.costs.pmi + self.config.costs.stage2_arm,
        }
    }

    fn end_stage2(
        &mut self,
        now: Cycle,
        pmu: &mut Pmu,
        mapping: &AddressMapping,
        translate: &mut dyn FnMut(u32, u64) -> Option<u64>,
    ) -> ServiceOutcome {
        self.stats.stage2_windows += 1;
        let misses = pmu.counter(EventKind::LongestLatCacheMiss).read();
        pmu.disable_sampling();
        let records = pmu.drain_samples();

        // Keep DRAM-sourced samples and translate them to rows.
        let samples: Vec<RowSample> = records
            .iter()
            .filter(|r| r.source == DataSource::Dram)
            .filter_map(|r| {
                let paddr = translate(r.pid, r.vaddr)?;
                Some(RowSample {
                    row: mapping.location_of(paddr).row_id(),
                    paddr,
                    pid: r.pid,
                })
            })
            .collect();
        self.stats.samples_analyzed += samples.len() as u64;

        let report = analyze(&self.config, &samples, misses, self.ts, self.refresh_period);

        // Victim rows: the neighbors of each aggressor, deduplicated,
        // excluding rows that are themselves aggressors (reading an
        // aggressor would be wasted work — it is being activated anyway).
        let mut refreshes: Vec<(RowId, u64)> = Vec::new();
        if report.detected() {
            self.stats.detections += 1;
            let aggressor_rows: Vec<RowId> = report.aggressors.iter().map(|a| a.row).collect();
            for finding in &report.aggressors {
                for victim in finding
                    .row
                    .neighbors(self.config.victim_radius, mapping.geometry())
                {
                    if aggressor_rows.contains(&victim)
                        || refreshes.iter().any(|(r, _)| *r == victim)
                    {
                        continue;
                    }
                    let paddr = mapping.address_of(DramLocation {
                        bank: victim.bank,
                        row: victim.row,
                        col: 0,
                    });
                    refreshes.push((victim, paddr));
                }
            }
            self.stats.selective_refreshes += refreshes.len() as u64;
        }

        self.restart_stage1(now, pmu);
        ServiceOutcome::Analyzed {
            report,
            refreshes,
            cost: self.config.costs.pmi + self.config.costs.analysis,
        }
    }

    fn restart_stage1(&mut self, now: Cycle, pmu: &mut Pmu) {
        pmu.counter_mut(EventKind::LongestLatCacheMiss).clear();
        pmu.counter_mut(EventKind::MemLoadUopsRetiredLlcMiss)
            .clear();
        self.stage = DetectorStage::MissCount;
        self.deadline = now + self.tc;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anvil_cache::HitLevel;
    use anvil_dram::DramGeometry;
    use anvil_mem::{AccessKind, AccessOutcome};
    use anvil_pmu::{RetiredOp, SamplerConfig};

    const CLOCK: CpuClock = CpuClock::SANDY_BRIDGE_2_6GHZ;
    const PERIOD: Cycle = 166_400_000;

    fn detector(pmu: &mut Pmu) -> AnvilDetector {
        AnvilDetector::new(AnvilConfig::baseline(), &CLOCK, PERIOD, 0, pmu)
    }

    fn miss_op(vaddr: u64, pid: u32) -> RetiredOp {
        RetiredOp {
            vaddr,
            pid,
            outcome: AccessOutcome {
                paddr: vaddr, // identity-mapped for tests
                kind: AccessKind::Read,
                level: HitLevel::Memory,
                advance: 184,
                dram: None,
            },
        }
    }

    #[test]
    fn quiet_window_restarts_stage1() {
        let mut pmu = Pmu::new(SamplerConfig::anvil_default());
        let mut det = detector(&mut pmu);
        let d1 = det.deadline();
        // A handful of misses: below 20K.
        for i in 0..100u64 {
            pmu.observe_at(&miss_op(i * 4096, 1), i * 1000);
        }
        let mapping = AddressMapping::new(DramGeometry::ddr3_4gb());
        let out = det.service(d1, &mut pmu, &mapping, &mut |_, v| Some(v));
        assert!(matches!(out, ServiceOutcome::Quiet { misses: 100, .. }));
        assert_eq!(det.stage(), DetectorStage::MissCount);
        assert_eq!(det.deadline(), d1 + det.config().tc_cycles(&CLOCK));
        assert_eq!(det.stats().threshold_crossings, 0);
    }

    #[test]
    fn threshold_crossing_arms_sampling_with_loads_only() {
        let mut pmu = Pmu::new(SamplerConfig::anvil_default());
        let mut det = detector(&mut pmu);
        for i in 0..25_000u64 {
            pmu.observe_at(&miss_op(i * 64, 1), i * 400);
        }
        let d1 = det.deadline();
        let out = det.service(
            d1,
            &mut pmu,
            &AddressMapping::new(DramGeometry::ddr3_4gb()),
            &mut |_, v| Some(v),
        );
        match out {
            ServiceOutcome::Armed { misses, filter, .. } => {
                assert_eq!(misses, 25_000);
                assert_eq!(filter, SampleFilter::LoadsOnly);
            }
            other => panic!("expected Armed, got {other:?}"),
        }
        assert_eq!(det.stage(), DetectorStage::Sampling);
    }

    #[test]
    fn full_cycle_detects_a_synthetic_attack() {
        let mapping = AddressMapping::new(DramGeometry::ddr3_4gb());
        let mut pmu = Pmu::new(SamplerConfig::anvil_default());
        let mut det = detector(&mut pmu);

        // Two aggressor addresses two rows apart in one bank.
        let base = mapping.address_of(DramLocation {
            bank: anvil_dram::BankId(2),
            row: 500,
            col: 0,
        });
        let above = mapping.same_bank_row_offset(base, 2).unwrap();

        // Stage 1: hammer-level miss traffic on the two aggressors.
        let mut t = 0u64;
        while t < det.deadline() {
            pmu.observe_at(&miss_op(base, 7), t);
            pmu.observe_at(&miss_op(above, 7), t + 200);
            t += 400;
        }
        let out = det.service(det.deadline(), &mut pmu, &mapping, &mut |_, v| Some(v));
        assert!(matches!(out, ServiceOutcome::Armed { .. }));

        // Stage 2: same traffic while sampling.
        let end = det.deadline();
        while t < end {
            pmu.observe_at(&miss_op(base, 7), t);
            pmu.observe_at(&miss_op(above, 7), t + 200);
            t += 400;
        }
        let out = det.service(end, &mut pmu, &mapping, &mut |_, v| Some(v));
        match out {
            ServiceOutcome::Analyzed {
                report, refreshes, ..
            } => {
                assert!(report.detected(), "attack must be flagged: {report:?}");
                // The victim row between the aggressors must be refreshed.
                let victim = mapping.location_of(base).row + 1;
                assert!(
                    refreshes.iter().any(|(r, _)| r.row == victim),
                    "sandwiched victim missing from {refreshes:?}"
                );
                // No aggressor row is refreshed.
                for (r, _) in &refreshes {
                    assert_ne!(r.row, mapping.location_of(base).row);
                    assert_ne!(r.row, mapping.location_of(above).row);
                }
            }
            other => panic!("expected Analyzed, got {other:?}"),
        }
        assert_eq!(det.stats().detections, 1);
        assert!(det.stats().selective_refreshes >= 2);
        assert_eq!(det.stage(), DetectorStage::MissCount);
    }

    #[test]
    fn benign_stage2_produces_no_refreshes() {
        let mapping = AddressMapping::new(DramGeometry::ddr3_4gb());
        let mut pmu = Pmu::new(SamplerConfig::anvil_default());
        let mut det = detector(&mut pmu);

        // Streaming traffic: sequential lines, high miss count.
        let mut t = 0u64;
        let mut addr = 0u64;
        while t < det.deadline() {
            pmu.observe_at(&miss_op(addr, 3), t);
            addr += 64;
            t += 400;
        }
        assert!(matches!(
            det.service(det.deadline(), &mut pmu, &mapping, &mut |_, v| Some(v)),
            ServiceOutcome::Armed { .. }
        ));
        let end = det.deadline();
        while t < end {
            pmu.observe_at(&miss_op(addr, 3), t);
            addr += 64;
            t += 400;
        }
        match det.service(end, &mut pmu, &mapping, &mut |_, v| Some(v)) {
            ServiceOutcome::Analyzed {
                report, refreshes, ..
            } => {
                assert!(!report.detected(), "streaming flagged: {report:?}");
                assert!(refreshes.is_empty());
            }
            other => panic!("expected Analyzed, got {other:?}"),
        }
    }

    #[test]
    fn untranslatable_samples_are_dropped() {
        let mapping = AddressMapping::new(DramGeometry::ddr3_4gb());
        let mut pmu = Pmu::new(SamplerConfig::anvil_default());
        let mut det = detector(&mut pmu);
        let mut t = 0u64;
        while t < det.deadline() {
            pmu.observe_at(&miss_op(64, 9), t);
            pmu.observe_at(&miss_op(64 + (1 << 18), 9), t + 200);
            t += 400;
        }
        det.service(det.deadline(), &mut pmu, &mapping, &mut |_, _| None);
        let end = det.deadline();
        while t < end {
            pmu.observe_at(&miss_op(64, 9), t);
            t += 400;
        }
        // Translation always fails: nothing to analyze, no detection.
        match det.service(end, &mut pmu, &mapping, &mut |_, _| None) {
            ServiceOutcome::Analyzed { report, .. } => {
                assert_eq!(report.total_samples, 0);
                assert!(!report.detected());
            }
            other => panic!("expected Analyzed, got {other:?}"),
        }
    }
}
