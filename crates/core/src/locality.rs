//! Stage-2 sample analysis: DRAM row- and bank-locality (Section 3.3,
//! "Rowhammer Detection").
//!
//! "At the end of sampling, sampled DRAM row accesses are sorted and the
//! sample distribution is analyzed to identify high DRAM row locality.
//! DRAM row locality is determined by considering the number of samples,
//! the number of last-level cache misses for the sampling duration and the
//! required last-level cache miss rate for a successful rowhammer attack.
//! For each row that has high DRAM locality, a check is made to see if
//! there are other row access samples from the same DRAM bank."

use crate::config::AnvilConfig;
use crate::guard::{GuardedCell, GuardedValue, StateCorruption, StateSite};
use anvil_dram::{Cycle, RowId};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap};

/// Weight (in millis) of a sample carrying full activation evidence.
pub const FULL_WEIGHT: u32 = 1000;

/// One sampled DRAM access after translation: the row it touched.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RowSample {
    /// The DRAM row.
    pub row: RowId,
    /// Physical address sampled (a representative address in that row).
    pub paddr: u64,
    /// Process that issued the sampled access (from the PEBS record's
    /// interrupted context) — the paper's `task_struct` sampling gives
    /// ANVIL this attribution for free.
    pub pid: u32,
    /// Activation-evidence weight in millis ([`FULL_WEIGHT`] = 1000 for
    /// a row-buffer-miss sample). Hardened detectors down-weight samples
    /// whose latency betrays a row-buffer hit — camouflage filler that
    /// never re-activates a row — so the rate extrapolation is driven by
    /// genuine activation evidence rather than raw sample counts.
    pub weight: u32,
}

/// A row the analysis flagged as a potential aggressor.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AggressorFinding {
    /// The suspicious row.
    pub row: RowId,
    /// Samples that hit it.
    pub samples: u32,
    /// Estimated activations of this row per refresh period, extrapolated
    /// from its sample share and the window's total LLC misses.
    pub estimated_rate: u64,
    /// Same-bank samples of *other* rows (the bank-locality evidence).
    pub bank_support: u32,
    /// Processes whose samples hit this row (sorted, deduplicated) — the
    /// suspects a response policy can act on.
    pub pids: Vec<u32>,
    /// Whether the suspicion ledger flagged this row from evidence
    /// accumulated across stage-2 windows (rather than this window's
    /// samples alone). Ledger findings bypass the per-window sample
    /// floor and bank-support gates — their corroboration is temporal.
    #[serde(default)]
    pub via_ledger: bool,
}

/// Result of one stage-2 analysis.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LocalityReport {
    /// Rows flagged as aggressors (empty: no rowhammering detected).
    pub aggressors: Vec<AggressorFinding>,
    /// Total usable (DRAM-sourced, translatable) samples.
    pub total_samples: u32,
    /// LLC misses counted during the sampling window.
    pub misses_in_window: u64,
}

impl LocalityReport {
    /// Whether the window looks like a rowhammer attack.
    pub fn detected(&self) -> bool {
        !self.aggressors.is_empty()
    }
}

/// Cross-window suspicion ledger: per-row activation evidence with
/// exponential decay.
///
/// The paper's analysis is memoryless — every stage-2 window starts from
/// zero, so an attacker who duty-cycles, camouflages, or distributes its
/// accesses keeps each *individual* window under the flagging criteria
/// while the *cumulative* activation count still reaches the flip
/// threshold. The ledger closes that gap: each window's weighted rate
/// estimate is added to a per-row score that decays by
/// `hardening.ledger_decay` per window, so persistent sub-threshold
/// evidence accumulates while benign one-off spikes shrink back to zero
/// and are pruned.
///
/// The ledger is part of the detector state a checkpoint must carry —
/// losing it across a restart would hand a distributed adversary a
/// fresh start — so it converts losslessly to and from the serializable
/// [`LedgerRow`] form ([`to_rows`](SuspicionLedger::to_rows) /
/// [`from_rows`](SuspicionLedger::from_rows)). `windows` is a `u64` with
/// saturating accumulation because a long-horizon service can absorb
/// evidence for millions of windows.
#[derive(Debug, Clone)]
pub struct SuspicionLedger {
    entries: BTreeMap<RowId, LedgerEntry>,
    /// Whether entry cells are read by checksummed majority (`true`, the
    /// default) or blind replica-0 trust (the `selfdefense` baseline).
    /// Runtime policy: never serialized, ignored by equality.
    guarded: bool,
    /// Corruptions found since the last
    /// [`take_corruptions`](Self::take_corruptions) drain. Transient:
    /// never serialized, ignored by equality.
    pending: Vec<StateCorruption>,
}

impl Default for SuspicionLedger {
    fn default() -> Self {
        SuspicionLedger {
            entries: BTreeMap::new(),
            guarded: true,
            pending: Vec::new(),
        }
    }
}

/// Ledger equality is over the accumulated evidence only — the guard
/// mode and the transient corruption queue are runtime state, and two
/// ledgers that carry the same evidence must compare equal across a
/// checkpoint round-trip.
impl PartialEq for SuspicionLedger {
    fn eq(&self, other: &Self) -> bool {
        self.entries == other.entries
    }
}

/// One row's accumulated evidence. Score and window count live in
/// guarded cells: they are exactly the values a state-targeting attacker
/// wants to clear (a zeroed score un-convicts an aggressor).
#[derive(Debug, Clone, PartialEq)]
struct LedgerEntry {
    /// Decayed sum of per-window estimated activation rates.
    score: GuardedCell<f64>,
    /// Distinct stage-2 windows that contributed evidence.
    windows: GuardedCell<u64>,
    /// Processes whose samples contributed (sorted, deduplicated).
    pids: Vec<u32>,
}

/// Packs a row id into the stable `u64` key [`StateSite`] uses, so
/// corruption accounting survives ledger pruning and re-insertion.
fn site_key(row: RowId) -> u64 {
    (u64::from(row.bank.0) << 32) | u64::from(row.row)
}

/// Mode-aware non-mutating cell read.
fn read_cell<T: GuardedValue>(guarded: bool, cell: &GuardedCell<T>) -> T {
    if guarded {
        cell.peek()
    } else {
        cell.raw()
    }
}

/// One ledger entry in serializable form (detector checkpoints).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LedgerRow {
    /// The row under suspicion.
    pub row: RowId,
    /// Decayed sum of per-window estimated activation rates.
    pub score: f64,
    /// Distinct stage-2 windows that contributed evidence.
    pub windows: u64,
    /// Processes whose samples contributed.
    pub pids: Vec<u32>,
}

/// Ledger scores below this are pruned (the row has decayed to noise).
const PRUNE_BELOW: f64 = 1.0;

impl SuspicionLedger {
    /// An empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of rows currently under suspicion.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the ledger holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The accumulated score for `row` (zero when absent).
    pub fn score(&self, row: RowId) -> f64 {
        self.entries
            .get(&row)
            .map_or(0.0, |e| read_cell(self.guarded, &e.score))
    }

    /// Decays every entry, folds in one window's per-row evidence, and
    /// prunes entries that have decayed to noise. Guarded: every cell is
    /// scrubbed as absorption touches it, so a corrupted score is
    /// reported (and repaired or escalated) *before* the decayed value is
    /// recomputed from it — never silently absorbed by the rewrite.
    fn absorb(&mut self, decay: f64, evidence: &BTreeMap<RowId, (f64, Vec<u32>)>) {
        let guarded = self.guarded;
        let pending = &mut self.pending;
        let mut touch = |row: RowId, e: &mut LedgerEntry, rate: f64, bump: bool| {
            if guarded {
                if let Some(c) = e.score.scrub(StateSite::LedgerScore(site_key(row))) {
                    pending.push(c);
                }
                if let Some(c) = e.windows.scrub(StateSite::LedgerWindows(site_key(row))) {
                    pending.push(c);
                }
            }
            let score = read_cell(guarded, &e.score);
            e.score
                .store(crate::transition::ledger_step(decay, score, rate));
            if bump {
                let windows = read_cell(guarded, &e.windows);
                e.windows.store(windows.saturating_add(1));
            }
        };
        for (&row, e) in &mut self.entries {
            if !evidence.contains_key(&row) {
                touch(row, e, 0.0, false);
            }
        }
        for (&row, (rate, pids)) in evidence {
            let e = self.entries.entry(row).or_insert_with(|| LedgerEntry {
                score: GuardedCell::new(0.0),
                windows: GuardedCell::new(0),
                pids: Vec::new(),
            });
            touch(row, e, *rate, true);
            for &pid in pids {
                if !e.pids.contains(&pid) {
                    e.pids.push(pid);
                }
            }
        }
        let guarded = self.guarded;
        self.entries
            .retain(|_, e| read_cell(guarded, &e.score) >= PRUNE_BELOW);
    }

    /// Snapshots the ledger as serializable rows (checkpointing).
    pub fn to_rows(&self) -> Vec<LedgerRow> {
        self.entries
            .iter()
            .map(|(&row, e)| LedgerRow {
                row,
                score: read_cell(self.guarded, &e.score),
                windows: read_cell(self.guarded, &e.windows),
                pids: e.pids.clone(),
            })
            .collect()
    }

    /// Rebuilds a ledger from checkpointed rows (inverse of
    /// [`to_rows`](SuspicionLedger::to_rows)).
    pub fn from_rows(rows: &[LedgerRow]) -> Self {
        SuspicionLedger {
            entries: rows
                .iter()
                .map(|r| {
                    (
                        r.row,
                        LedgerEntry {
                            score: GuardedCell::new(r.score),
                            windows: GuardedCell::new(r.windows),
                            pids: r.pids.clone(),
                        },
                    )
                })
                .collect(),
            ..SuspicionLedger::default()
        }
    }

    /// Switches guarded (majority + scrub) vs unguarded (blind replica-0)
    /// cell reads. See [`AnvilDetector::set_state_guard`][d].
    ///
    /// [d]: crate::AnvilDetector::set_state_guard
    pub fn set_guarded(&mut self, guarded: bool) {
        self.guarded = guarded;
    }

    /// Number of guarded cells the ledger currently holds (two per
    /// entry: score and window count).
    pub fn cell_count(&self) -> usize {
        2 * self.entries.len()
    }

    /// XORs one bit into the chosen replicas of ledger cell `index`
    /// (entry order × {score, windows}). Returns the [`StateSite`] hit,
    /// or `None` when the index is out of range.
    pub fn corrupt_cell(&mut self, index: usize, replica_mask: u8, bit: u8) -> Option<StateSite> {
        let (&row, entry) = self.entries.iter_mut().nth(index / 2)?;
        Some(if index.is_multiple_of(2) {
            entry.score.corrupt(replica_mask, bit);
            StateSite::LedgerScore(site_key(row))
        } else {
            entry.windows.corrupt(replica_mask, bit);
            StateSite::LedgerWindows(site_key(row))
        })
    }

    /// Scrubs every ledger cell whose global index (`base` + local
    /// position) is congruent to `slice` modulo `of`, queueing findings
    /// for [`take_corruptions`](Self::take_corruptions). No-op when
    /// unguarded.
    pub fn scrub_cells(&mut self, slice: u64, of: u64, base: u64) {
        if !self.guarded {
            return;
        }
        let of = of.max(1);
        for (i, (&row, e)) in self.entries.iter_mut().enumerate() {
            let score_index = base + 2 * i as u64;
            if score_index % of == slice % of {
                if let Some(c) = e.score.scrub(StateSite::LedgerScore(site_key(row))) {
                    self.pending.push(c);
                }
            }
            if (score_index + 1) % of == slice % of {
                if let Some(c) = e.windows.scrub(StateSite::LedgerWindows(site_key(row))) {
                    self.pending.push(c);
                }
            }
        }
    }

    /// Drains the corruption reports found by scrubs and guarded
    /// absorption since the last drain.
    pub fn take_corruptions(&mut self) -> Vec<StateCorruption> {
        std::mem::take(&mut self.pending)
    }
}

/// Analyzes one sampling window.
///
/// `samples` are the translated DRAM-sourced samples, `misses` the LLC
/// miss count over the window, `ts` the window length and
/// `refresh_period` the DRAM retention window (both in cycles).
pub fn analyze(
    config: &AnvilConfig,
    samples: &[RowSample],
    misses: u64,
    ts: Cycle,
    refresh_period: Cycle,
) -> LocalityReport {
    analyze_with_ledger(config, samples, misses, ts, refresh_period, None)
}

/// [`analyze`], additionally folding this window's evidence into a
/// cross-window [`SuspicionLedger`] and flagging rows whose accumulated
/// score crosses the ledger threshold
/// (`min_hammer_accesses × rate_safety × hardening.ledger_factor`).
///
/// Rate estimates weigh samples by their activation evidence
/// ([`RowSample::weight`]): a window full of row-buffer-hit camouflage
/// filler contributes almost nothing to the filler rows' estimates while
/// the aggressors' row-miss samples keep their full share.
pub fn analyze_with_ledger(
    config: &AnvilConfig,
    samples: &[RowSample],
    misses: u64,
    ts: Cycle,
    refresh_period: Cycle,
    ledger: Option<&mut SuspicionLedger>,
) -> LocalityReport {
    let total = samples.len() as u32;
    let mut report = LocalityReport {
        aggressors: Vec::new(),
        total_samples: total,
        misses_in_window: misses,
    };
    if total == 0 || misses == 0 {
        return report;
    }

    // Count samples per row (raw count, evidence weight, issuing pids)
    // and raw samples per bank.
    let mut per_row: BTreeMap<RowId, (u32, u64, Vec<u32>)> = BTreeMap::new();
    let mut per_bank: HashMap<u32, u32> = HashMap::new();
    let mut total_weight: u64 = 0;
    for s in samples {
        let e = per_row.entry(s.row).or_insert((0, 0, Vec::new()));
        e.0 += 1;
        e.1 += u64::from(s.weight);
        if !e.2.contains(&s.pid) {
            e.2.push(s.pid);
        }
        *per_bank.entry(s.row.bank.0).or_insert(0) += 1;
        total_weight += u64::from(s.weight);
    }
    if total_weight == 0 {
        return report;
    }

    // A row is suspicious when its extrapolated activation rate could
    // reach the flip threshold within one refresh period (with the safety
    // margin), it carries at least the sample floor, and other same-bank
    // rows corroborate (bank locality). The share is weight-based, which
    // reduces to the paper's count-based share when every sample carries
    // FULL_WEIGHT.
    let required = crate::transition::required_rate(config);
    let mut aggressors: Vec<AggressorFinding> = Vec::new();
    let mut evidence: BTreeMap<RowId, (f64, Vec<u32>)> = BTreeMap::new();
    for (&row, (n, w, pids)) in &per_row {
        let rate =
            crate::transition::extrapolated_rate(*w, total_weight, misses, ts, refresh_period);
        let estimated_rate = rate as u64;
        let bank_support = per_bank[&row.bank.0] - n;
        if ledger.is_some() {
            evidence.insert(row, (rate, pids.clone()));
        }
        let suspicious = *n >= config.row_sample_floor
            && estimated_rate as f64 >= required
            && bank_support >= config.bank_support_min;
        if suspicious {
            let mut pids = pids.clone();
            pids.sort_unstable();
            aggressors.push(AggressorFinding {
                row,
                samples: *n,
                estimated_rate,
                bank_support,
                pids,
                via_ledger: false,
            });
        }
    }

    if let Some(ledger) = ledger {
        let h = &config.hardening;
        ledger.absorb(h.ledger_decay, &evidence);
        let threshold = required * h.ledger_factor;
        for (&row, entry) in &ledger.entries {
            let score = read_cell(ledger.guarded, &entry.score);
            let windows = read_cell(ledger.guarded, &entry.windows);
            if score < threshold
                || windows < u64::from(h.ledger_min_windows)
                || aggressors.iter().any(|a| a.row == row)
            {
                continue;
            }
            // The ledger only convicts rows with fresh evidence this
            // window — a decaying score alone never fires.
            let Some((n, _, _)) = per_row.get(&row) else {
                continue;
            };
            let mut pids = entry.pids.clone();
            pids.sort_unstable();
            aggressors.push(AggressorFinding {
                row,
                samples: *n,
                estimated_rate: score as u64,
                bank_support: per_bank[&row.bank.0] - n,
                pids,
                via_ledger: true,
            });
        }
    }

    aggressors.sort_by(|a, b| b.samples.cmp(&a.samples).then(a.row.cmp(&b.row)));
    report.aggressors = aggressors;
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use anvil_dram::BankId;

    const TS: Cycle = 15_600_000; // 6 ms at 2.6 GHz
    const PERIOD: Cycle = 166_400_000; // 64 ms

    fn sample(bank: u32, row: u32) -> RowSample {
        RowSample {
            row: RowId::new(BankId(bank), row),
            paddr: (bank as u64) << 32 | (row as u64) << 13,
            pid: 42,
            weight: FULL_WEIGHT,
        }
    }

    /// The double-sided attack's sampling signature: two same-bank rows
    /// dominating the samples.
    fn attack_samples() -> Vec<RowSample> {
        let mut v = Vec::new();
        for _ in 0..12 {
            v.push(sample(3, 100));
            v.push(sample(3, 102));
        }
        // A few background samples elsewhere.
        for i in 0..6 {
            v.push(sample(i % 8, 5000 + i * 17));
        }
        v
    }

    #[test]
    fn detects_double_sided_signature() {
        let config = AnvilConfig::baseline();
        let report = analyze(&config, &attack_samples(), 80_000, TS, PERIOD);
        assert!(report.detected());
        let rows: Vec<u32> = report.aggressors.iter().map(|a| a.row.row).collect();
        assert!(rows.contains(&100));
        assert!(rows.contains(&102));
        for a in &report.aggressors {
            assert!(a.estimated_rate > config.min_hammer_accesses / 3);
            assert!(a.bank_support >= config.bank_support_min);
        }
    }

    #[test]
    fn no_detection_on_uniform_traffic() {
        // Streaming-like: every sample a different row/bank.
        let config = AnvilConfig::baseline();
        let samples: Vec<RowSample> = (0..30).map(|i| sample(i % 16, 1000 + i * 31)).collect();
        let report = analyze(&config, &samples, 80_000, TS, PERIOD);
        assert!(!report.detected());
    }

    #[test]
    fn bank_locality_filters_lone_hot_row() {
        // One hot row but its bank gets no other samples (e.g. a hot line
        // served by an open row buffer — harmless because it never
        // re-activates). The bank check must filter it.
        let config = AnvilConfig::baseline();
        let mut samples = Vec::new();
        for _ in 0..15 {
            samples.push(sample(3, 100));
        }
        for i in 0..15 {
            samples.push(sample(4 + i % 4, 2000 + i * 13)); // other banks only
        }
        let report = analyze(&config, &samples, 80_000, TS, PERIOD);
        assert!(!report.detected(), "bank check must filter: {report:?}");
    }

    #[test]
    fn same_hot_row_with_bank_support_is_flagged() {
        let config = AnvilConfig::baseline();
        let mut samples = Vec::new();
        for _ in 0..15 {
            samples.push(sample(3, 100));
        }
        for i in 0..15 {
            samples.push(sample(3, 2000 + i * 13)); // same bank, other rows
        }
        let report = analyze(&config, &samples, 80_000, TS, PERIOD);
        assert!(report.detected());
        assert_eq!(report.aggressors[0].row.row, 100);
    }

    #[test]
    fn low_miss_count_suppresses_detection() {
        // Same shape as an attack, but so few misses that the
        // extrapolated rate cannot flip bits within a refresh period.
        let config = AnvilConfig::baseline();
        let report = analyze(&config, &attack_samples(), 2_000, TS, PERIOD);
        assert!(!report.detected());
    }

    #[test]
    fn empty_window_is_clean() {
        let config = AnvilConfig::baseline();
        let report = analyze(&config, &[], 50_000, TS, PERIOD);
        assert!(!report.detected());
        assert_eq!(report.total_samples, 0);
    }

    #[test]
    fn aggressors_sorted_by_sample_count() {
        let config = AnvilConfig::baseline();
        let report = analyze(&config, &attack_samples(), 80_000, TS, PERIOD);
        for w in report.aggressors.windows(2) {
            assert!(w[0].samples >= w[1].samples);
        }
    }

    #[test]
    fn sample_floor_suppresses_singletons() {
        let mut config = AnvilConfig::baseline();
        config.row_sample_floor = 3;
        // Two samples on one row with huge miss counts: rate estimate is
        // enormous but the floor suppresses it.
        let samples = vec![sample(1, 10), sample(1, 10), sample(1, 99)];
        let report = analyze(&config, &samples, 1_000_000, TS, PERIOD);
        assert!(!report.detected());
    }

    /// A down-weighted sample (millis weight) with hit-latency evidence.
    fn hit_sample(bank: u32, row: u32, weight: u32) -> RowSample {
        RowSample {
            weight,
            ..sample(bank, row)
        }
    }

    #[test]
    fn hit_weighting_deflates_camouflage_rows_and_inflates_aggressors() {
        // Camouflage mix: 2 aggressor-row samples (full weight) drowned
        // in 26 streaming row-buffer-hit samples (weight 200). By raw
        // counts the aggressors hold 7% of the window; by evidence they
        // hold ~42% each.
        let config = AnvilConfig::hardened();
        let mut samples = Vec::new();
        samples.push(sample(3, 100));
        samples.push(sample(3, 102));
        for i in 0..26 {
            samples.push(hit_sample(3, 2000 + i * 7, 200));
        }
        let report = analyze(&config, &samples, 130_000, TS, PERIOD);
        // The floor (3 raw samples) still gates the instantaneous path,
        // but the weighted rate estimates feed the ledger at full
        // strength: check them via a ledger pass.
        let mut ledger = SuspicionLedger::new();
        let _ = analyze_with_ledger(&config, &samples, 130_000, TS, PERIOD, Some(&mut ledger));
        let aggressor_score = ledger.score(RowId::new(BankId(3), 100));
        let filler_score = ledger.score(RowId::new(BankId(3), 2000));
        // Full weight (1000) vs hit weight (200): the aggressor's score
        // per sample is 5× the filler's.
        assert!(
            aggressor_score > 4.0 * filler_score.max(1.0),
            "aggressor {aggressor_score} vs filler {filler_score}"
        );
        drop(report);
    }

    #[test]
    fn ledger_flags_persistent_subfloor_row() {
        // One aggressor pair at 2 samples per window — under the floor of
        // 3, invisible to the memoryless analysis — plus scattered
        // background. After a few windows the ledger must convict.
        let config = AnvilConfig::hardened();
        let mut ledger = SuspicionLedger::new();
        let mut window = vec![
            sample(3, 100),
            sample(3, 100),
            sample(3, 102),
            sample(3, 102),
        ];
        for i in 0..26 {
            window.push(hit_sample(2 + i % 5, 4000 + i * 11, 200));
        }
        let mut convicted_at = None;
        for w in 0..6 {
            let report =
                analyze_with_ledger(&config, &window, 130_000, TS, PERIOD, Some(&mut ledger));
            let ledger_rows: Vec<u32> = report
                .aggressors
                .iter()
                .filter(|a| a.via_ledger)
                .map(|a| a.row.row)
                .collect();
            if ledger_rows.contains(&100) && convicted_at.is_none() {
                convicted_at = Some(w);
            }
        }
        let w = convicted_at.expect("the ledger must flag the persistent pair");
        assert!(w >= 1, "min_windows forbids a first-window conviction");
        assert!(w <= 3, "conviction too slow: window {w}");
    }

    #[test]
    fn ledger_entries_decay_and_prune_for_benign_rows() {
        let config = AnvilConfig::hardened();
        let mut ledger = SuspicionLedger::new();
        // One window with a benign hot-ish row (2 samples), then windows
        // of unrelated traffic: the entry must decay to zero (pruned).
        let first = vec![sample(1, 50), sample(1, 50), sample(2, 9), sample(5, 77)];
        let _ = analyze_with_ledger(&config, &first, 80_000, TS, PERIOD, Some(&mut ledger));
        let row = RowId::new(BankId(1), 50);
        let initial = ledger.score(row);
        assert!(initial > 0.0);
        for i in 0..40 {
            let other = vec![sample(6, 300 + i), sample(7, 400 + i)];
            let report =
                analyze_with_ledger(&config, &other, 80_000, TS, PERIOD, Some(&mut ledger));
            assert!(
                !report.aggressors.iter().any(|a| a.row == row),
                "a decaying row must never be convicted without fresh evidence"
            );
        }
        assert_eq!(ledger.score(row), 0.0, "entry must be pruned");
        assert!(ledger.len() <= 80);
    }

    #[test]
    fn ledger_window_count_saturates_instead_of_wrapping() {
        // A long-horizon service absorbs evidence for millions of windows;
        // the per-row window count must saturate rather than wrap.
        let mut ledger = SuspicionLedger::new();
        ledger.entries.insert(
            RowId::new(BankId(1), 7),
            LedgerEntry {
                score: GuardedCell::new(1e9),
                windows: GuardedCell::new(u64::MAX),
                pids: vec![3],
            },
        );
        let mut evidence = BTreeMap::new();
        evidence.insert(RowId::new(BankId(1), 7), (5_000.0, vec![3]));
        ledger.absorb(0.99, &evidence);
        let entry = &ledger.entries[&RowId::new(BankId(1), 7)];
        assert_eq!(entry.windows.peek(), u64::MAX, "must saturate, not wrap");
    }

    #[test]
    fn ledger_round_trips_through_serializable_rows() {
        let config = AnvilConfig::hardened();
        let mut ledger = SuspicionLedger::new();
        let _ = analyze_with_ledger(
            &config,
            &attack_samples(),
            130_000,
            TS,
            PERIOD,
            Some(&mut ledger),
        );
        assert!(!ledger.is_empty());
        let rows = ledger.to_rows();
        let restored = SuspicionLedger::from_rows(&rows);
        assert_eq!(restored, ledger);
    }

    #[test]
    fn unweighted_analysis_matches_the_paper_baseline() {
        // With every sample at FULL_WEIGHT the weighted share reduces to
        // the count share: the attack signature report is unchanged.
        let config = AnvilConfig::baseline();
        let report = analyze(&config, &attack_samples(), 80_000, TS, PERIOD);
        assert!(report.detected());
        assert!(report.aggressors.iter().all(|a| !a.via_ledger));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use anvil_dram::BankId;
    use proptest::prelude::*;

    const TS: Cycle = 15_600_000;
    const PERIOD: Cycle = 166_400_000;

    proptest! {
        /// The analysis never flags more rows than distinct rows sampled,
        /// never divides by zero, and every finding satisfies the
        /// configured floors.
        #[test]
        fn findings_respect_floors(
            samples in prop::collection::vec((0u32..8, 0u32..64), 0..60),
            misses in 0u64..200_000,
        ) {
            let config = AnvilConfig::baseline();
            let rows: Vec<RowSample> = samples
                .iter()
                .map(|&(b, r)| RowSample {
                    row: anvil_dram::RowId::new(BankId(b), r),
                    paddr: ((b as u64) << 32) | ((r as u64) << 13),
                    pid: 9,
                    weight: FULL_WEIGHT,
                })
                .collect();
            let report = analyze(&config, &rows, misses, TS, PERIOD);
            let distinct: std::collections::HashSet<_> =
                rows.iter().map(|s| s.row).collect();
            prop_assert!(report.aggressors.len() <= distinct.len());
            for a in &report.aggressors {
                prop_assert!(a.samples >= config.row_sample_floor);
                prop_assert!(a.bank_support >= config.bank_support_min);
                prop_assert!(
                    a.estimated_rate as f64
                        >= config.min_hammer_accesses as f64 * config.rate_safety
                );
            }
        }

        /// Adding unrelated samples (other banks) never *creates* a
        /// detection for a previously clean row set — monotonicity of the
        /// per-row criteria in the presence of diluting noise.
        #[test]
        fn dilution_does_not_create_row_findings(extra in 1u32..30) {
            let config = AnvilConfig::baseline();
            // A clean base: uniform rows, nothing suspicious.
            let base: Vec<RowSample> =
                (0..20).map(|i| sample_for(i % 4, 100 + i * 7)).collect();
            let misses = 60_000;
            let before = analyze(&config, &base, misses, TS, PERIOD);
            prop_assert!(!before.detected());
            let mut extended = base.clone();
            for i in 0..extra {
                extended.push(sample_for(4 + i % 4, 9_000 + i * 13));
            }
            let after = analyze(&config, &extended, misses, TS, PERIOD);
            // The base rows must still be clean (new rows may of course
            // appear if the extras themselves concentrate).
            for a in &after.aggressors {
                prop_assert!(
                    a.row.row >= 9_000,
                    "dilution created a finding on a clean row: {:?}",
                    a
                );
            }
        }
    }

    fn sample_for(bank: u32, row: u32) -> RowSample {
        RowSample {
            row: anvil_dram::RowId::new(BankId(bank), row),
            paddr: ((bank as u64) << 32) | ((row as u64) << 13),
            pid: 7,
            weight: FULL_WEIGHT,
        }
    }
}
