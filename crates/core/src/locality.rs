//! Stage-2 sample analysis: DRAM row- and bank-locality (Section 3.3,
//! "Rowhammer Detection").
//!
//! "At the end of sampling, sampled DRAM row accesses are sorted and the
//! sample distribution is analyzed to identify high DRAM row locality.
//! DRAM row locality is determined by considering the number of samples,
//! the number of last-level cache misses for the sampling duration and the
//! required last-level cache miss rate for a successful rowhammer attack.
//! For each row that has high DRAM locality, a check is made to see if
//! there are other row access samples from the same DRAM bank."

use crate::config::AnvilConfig;
use anvil_dram::{Cycle, RowId};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// One sampled DRAM access after translation: the row it touched.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RowSample {
    /// The DRAM row.
    pub row: RowId,
    /// Physical address sampled (a representative address in that row).
    pub paddr: u64,
    /// Process that issued the sampled access (from the PEBS record's
    /// interrupted context) — the paper's `task_struct` sampling gives
    /// ANVIL this attribution for free.
    pub pid: u32,
}

/// A row the analysis flagged as a potential aggressor.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AggressorFinding {
    /// The suspicious row.
    pub row: RowId,
    /// Samples that hit it.
    pub samples: u32,
    /// Estimated activations of this row per refresh period, extrapolated
    /// from its sample share and the window's total LLC misses.
    pub estimated_rate: u64,
    /// Same-bank samples of *other* rows (the bank-locality evidence).
    pub bank_support: u32,
    /// Processes whose samples hit this row (sorted, deduplicated) — the
    /// suspects a response policy can act on.
    pub pids: Vec<u32>,
}

/// Result of one stage-2 analysis.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LocalityReport {
    /// Rows flagged as aggressors (empty: no rowhammering detected).
    pub aggressors: Vec<AggressorFinding>,
    /// Total usable (DRAM-sourced, translatable) samples.
    pub total_samples: u32,
    /// LLC misses counted during the sampling window.
    pub misses_in_window: u64,
}

impl LocalityReport {
    /// Whether the window looks like a rowhammer attack.
    pub fn detected(&self) -> bool {
        !self.aggressors.is_empty()
    }
}

/// Analyzes one sampling window.
///
/// `samples` are the translated DRAM-sourced samples, `misses` the LLC
/// miss count over the window, `ts` the window length and
/// `refresh_period` the DRAM retention window (both in cycles).
pub fn analyze(
    config: &AnvilConfig,
    samples: &[RowSample],
    misses: u64,
    ts: Cycle,
    refresh_period: Cycle,
) -> LocalityReport {
    let total = samples.len() as u32;
    let mut report = LocalityReport {
        aggressors: Vec::new(),
        total_samples: total,
        misses_in_window: misses,
    };
    if total == 0 || misses == 0 {
        return report;
    }

    // Count samples per row (with issuing pids) and per bank.
    let mut per_row: HashMap<RowId, (u32, Vec<u32>)> = HashMap::new();
    let mut per_bank: HashMap<u32, u32> = HashMap::new();
    for s in samples {
        let e = per_row.entry(s.row).or_insert((0, Vec::new()));
        e.0 += 1;
        if !e.1.contains(&s.pid) {
            e.1.push(s.pid);
        }
        *per_bank.entry(s.row.bank.0).or_insert(0) += 1;
    }

    // A row is suspicious when its extrapolated activation rate could
    // reach the flip threshold within one refresh period (with the safety
    // margin), it carries at least the sample floor, and other same-bank
    // rows corroborate (bank locality).
    let windows_per_period = refresh_period as f64 / ts as f64;
    let required = (config.min_hammer_accesses as f64 * config.rate_safety).max(1.0);
    let mut aggressors: Vec<AggressorFinding> = per_row
        .iter()
        .filter_map(|(&row, (n, pids))| {
            let n = *n;
            let share = n as f64 / total as f64;
            let estimated_rate = (share * misses as f64 * windows_per_period) as u64;
            let bank_support = per_bank[&row.bank.0] - n;
            let suspicious = n >= config.row_sample_floor
                && estimated_rate as f64 >= required
                && bank_support >= config.bank_support_min;
            suspicious.then(|| {
                let mut pids = pids.clone();
                pids.sort_unstable();
                AggressorFinding {
                    row,
                    samples: n,
                    estimated_rate,
                    bank_support,
                    pids,
                }
            })
        })
        .collect();
    aggressors.sort_by(|a, b| b.samples.cmp(&a.samples).then(a.row.cmp(&b.row)));
    report.aggressors = aggressors;
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use anvil_dram::BankId;

    const TS: Cycle = 15_600_000; // 6 ms at 2.6 GHz
    const PERIOD: Cycle = 166_400_000; // 64 ms

    fn sample(bank: u32, row: u32) -> RowSample {
        RowSample {
            row: RowId::new(BankId(bank), row),
            paddr: (bank as u64) << 32 | (row as u64) << 13,
            pid: 42,
        }
    }

    /// The double-sided attack's sampling signature: two same-bank rows
    /// dominating the samples.
    fn attack_samples() -> Vec<RowSample> {
        let mut v = Vec::new();
        for _ in 0..12 {
            v.push(sample(3, 100));
            v.push(sample(3, 102));
        }
        // A few background samples elsewhere.
        for i in 0..6 {
            v.push(sample(i % 8, 5000 + i * 17));
        }
        v
    }

    #[test]
    fn detects_double_sided_signature() {
        let config = AnvilConfig::baseline();
        let report = analyze(&config, &attack_samples(), 80_000, TS, PERIOD);
        assert!(report.detected());
        let rows: Vec<u32> = report.aggressors.iter().map(|a| a.row.row).collect();
        assert!(rows.contains(&100));
        assert!(rows.contains(&102));
        for a in &report.aggressors {
            assert!(a.estimated_rate > config.min_hammer_accesses / 3);
            assert!(a.bank_support >= config.bank_support_min);
        }
    }

    #[test]
    fn no_detection_on_uniform_traffic() {
        // Streaming-like: every sample a different row/bank.
        let config = AnvilConfig::baseline();
        let samples: Vec<RowSample> = (0..30).map(|i| sample(i % 16, 1000 + i * 31)).collect();
        let report = analyze(&config, &samples, 80_000, TS, PERIOD);
        assert!(!report.detected());
    }

    #[test]
    fn bank_locality_filters_lone_hot_row() {
        // One hot row but its bank gets no other samples (e.g. a hot line
        // served by an open row buffer — harmless because it never
        // re-activates). The bank check must filter it.
        let config = AnvilConfig::baseline();
        let mut samples = Vec::new();
        for _ in 0..15 {
            samples.push(sample(3, 100));
        }
        for i in 0..15 {
            samples.push(sample(4 + i % 4, 2000 + i * 13)); // other banks only
        }
        let report = analyze(&config, &samples, 80_000, TS, PERIOD);
        assert!(!report.detected(), "bank check must filter: {report:?}");
    }

    #[test]
    fn same_hot_row_with_bank_support_is_flagged() {
        let config = AnvilConfig::baseline();
        let mut samples = Vec::new();
        for _ in 0..15 {
            samples.push(sample(3, 100));
        }
        for i in 0..15 {
            samples.push(sample(3, 2000 + i * 13)); // same bank, other rows
        }
        let report = analyze(&config, &samples, 80_000, TS, PERIOD);
        assert!(report.detected());
        assert_eq!(report.aggressors[0].row.row, 100);
    }

    #[test]
    fn low_miss_count_suppresses_detection() {
        // Same shape as an attack, but so few misses that the
        // extrapolated rate cannot flip bits within a refresh period.
        let config = AnvilConfig::baseline();
        let report = analyze(&config, &attack_samples(), 2_000, TS, PERIOD);
        assert!(!report.detected());
    }

    #[test]
    fn empty_window_is_clean() {
        let config = AnvilConfig::baseline();
        let report = analyze(&config, &[], 50_000, TS, PERIOD);
        assert!(!report.detected());
        assert_eq!(report.total_samples, 0);
    }

    #[test]
    fn aggressors_sorted_by_sample_count() {
        let config = AnvilConfig::baseline();
        let report = analyze(&config, &attack_samples(), 80_000, TS, PERIOD);
        for w in report.aggressors.windows(2) {
            assert!(w[0].samples >= w[1].samples);
        }
    }

    #[test]
    fn sample_floor_suppresses_singletons() {
        let mut config = AnvilConfig::baseline();
        config.row_sample_floor = 3;
        // Two samples on one row with huge miss counts: rate estimate is
        // enormous but the floor suppresses it.
        let samples = vec![sample(1, 10), sample(1, 10), sample(1, 99)];
        let report = analyze(&config, &samples, 1_000_000, TS, PERIOD);
        assert!(!report.detected());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use anvil_dram::BankId;
    use proptest::prelude::*;

    const TS: Cycle = 15_600_000;
    const PERIOD: Cycle = 166_400_000;

    proptest! {
        /// The analysis never flags more rows than distinct rows sampled,
        /// never divides by zero, and every finding satisfies the
        /// configured floors.
        #[test]
        fn findings_respect_floors(
            samples in prop::collection::vec((0u32..8, 0u32..64), 0..60),
            misses in 0u64..200_000,
        ) {
            let config = AnvilConfig::baseline();
            let rows: Vec<RowSample> = samples
                .iter()
                .map(|&(b, r)| RowSample {
                    row: anvil_dram::RowId::new(BankId(b), r),
                    paddr: ((b as u64) << 32) | ((r as u64) << 13),
                    pid: 9,
                })
                .collect();
            let report = analyze(&config, &rows, misses, TS, PERIOD);
            let distinct: std::collections::HashSet<_> =
                rows.iter().map(|s| s.row).collect();
            prop_assert!(report.aggressors.len() <= distinct.len());
            for a in &report.aggressors {
                prop_assert!(a.samples >= config.row_sample_floor);
                prop_assert!(a.bank_support >= config.bank_support_min);
                prop_assert!(
                    a.estimated_rate as f64
                        >= config.min_hammer_accesses as f64 * config.rate_safety
                );
            }
        }

        /// Adding unrelated samples (other banks) never *creates* a
        /// detection for a previously clean row set — monotonicity of the
        /// per-row criteria in the presence of diluting noise.
        #[test]
        fn dilution_does_not_create_row_findings(extra in 1u32..30) {
            let config = AnvilConfig::baseline();
            // A clean base: uniform rows, nothing suspicious.
            let base: Vec<RowSample> =
                (0..20).map(|i| sample_for(i % 4, 100 + i * 7)).collect();
            let misses = 60_000;
            let before = analyze(&config, &base, misses, TS, PERIOD);
            prop_assert!(!before.detected());
            let mut extended = base.clone();
            for i in 0..extra {
                extended.push(sample_for(4 + i % 4, 9_000 + i * 13));
            }
            let after = analyze(&config, &extended, misses, TS, PERIOD);
            // The base rows must still be clean (new rows may of course
            // appear if the extras themselves concentrate).
            for a in &after.aggressors {
                prop_assert!(
                    a.row.row >= 9_000,
                    "dilution created a finding on a clean row: {:?}",
                    a
                );
            }
        }
    }

    fn sample_for(bank: u32, row: u32) -> RowSample {
        RowSample {
            row: anvil_dram::RowId::new(BankId(bank), row),
            paddr: ((bank as u64) << 32) | ((row as u64) << 13),
            pid: 7,
        }
    }
}
