//! ANVIL detector configuration (the paper's Table 2 plus the Section 4.5
//! variants).

use anvil_dram::{CpuClock, Cycle};
use anvil_pmu::SamplerConfig;
use serde::{Deserialize, Serialize};

/// CPU-time costs charged for the detector's own work (the source of the
/// slowdowns in Figures 3 and 4). On real hardware these are PMI handler
/// executions, PEBS microcode assists, PMU reprogramming (WRMSRs), and the
/// kernel-side sample analysis; here they are explicit cycle charges
/// against the core that triggers them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DetectorCosts {
    /// Cost of a performance-monitoring interrupt (timer or counter
    /// overflow), including the handler.
    pub pmi: Cycle,
    /// Cost of one PEBS sample (microcode assist + debug-store handling).
    pub sample: Cycle,
    /// Cost of arming/disarming stage-2 sampling (PMU reprogramming).
    pub stage2_arm: Cycle,
    /// Cost of the end-of-window sample analysis (sort + locality scan).
    pub analysis: Cycle,
    /// Cost of one selective-refresh read (flush + uncached read).
    pub refresh_read: Cycle,
    /// Cost of blanket-refreshing one bank in degraded mode (a sweep of
    /// uncached reads across the bank's hot region).
    pub bank_refresh: Cycle,
}

impl Default for DetectorCosts {
    fn default() -> Self {
        DetectorCosts {
            pmi: 4_000,
            sample: 9_000,
            stage2_arm: 30_000,
            analysis: 20_000,
            refresh_read: 2_000,
            bank_refresh: 100_000,
        }
    }
}

/// Degraded-protection policy: what the detector does when a stage-2
/// window's evidence is too damaged to trust.
///
/// A stage-2 window only exists because stage 1 saw hammer-capable miss
/// traffic. If most of that window's samples were then lost (debug-store
/// overflow, failed translations) or the analysis ran far past its
/// deadline, a clean "no aggressors found" verdict is meaningless — the
/// attack may simply have been invisible. Rather than silently skip the
/// window, the detector falls back to conservatively refreshing whole
/// banks: the banks the surviving samples point at, or every bank when
/// nothing survived.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DegradedMode {
    /// Whether the fallback is armed at all.
    pub enabled: bool,
    /// Minimum fraction of a stage-2 window's samples that must survive
    /// (buffered and translated) for its analysis to be trusted.
    pub min_sample_survival: f64,
    /// Maximum service-deadline slip, as a fraction of the stage-2
    /// window `ts`, before the window is considered compromised.
    pub max_deadline_slip_frac: f64,
}

impl Default for DegradedMode {
    fn default() -> Self {
        DegradedMode {
            enabled: true,
            min_sample_survival: 0.5,
            max_deadline_slip_frac: 0.25,
        }
    }
}

/// Full ANVIL configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AnvilConfig {
    /// Stage-1 LLC-miss threshold per miss-count window
    /// (`LLC_MISS_THRESHOLD`, Table 2: 20K).
    pub llc_miss_threshold: u64,
    /// Miss-count (stage-1) window duration `tc` in ms (Table 2: 6 ms).
    pub tc_ms: f64,
    /// Sampling (stage-2) window duration `ts` in ms (Table 2: 6 ms).
    pub ts_ms: f64,
    /// PEBS sampling configuration (5000 samples/s in the paper).
    pub sampling: SamplerConfig,
    /// Minimum activations per refresh window the detector assumes can
    /// flip bits (set from the observed attack minimum: 220K double-sided
    /// accesses means 110K activations of each aggressor).
    pub min_hammer_accesses: u64,
    /// Safety factor applied to the hammer rate when judging a row
    /// suspicious (detect attackers running below the proven minimum).
    pub rate_safety: f64,
    /// Never flag a row with fewer than this many samples, regardless of
    /// the rate estimate (noise floor).
    pub row_sample_floor: u32,
    /// Required number of *other-row* samples in the same bank (the
    /// bank-locality check of Section 3.1; rowhammering needs at least two
    /// rows in one bank).
    pub bank_support_min: u32,
    /// Rows on each side of an aggressor to refresh (the paper refreshes
    /// the directly adjacent rows; "our approach easily extends to N").
    pub victim_radius: u32,
    /// If LLC-miss loads exceed this fraction of misses, sample loads only.
    pub load_fraction_hi: f64,
    /// If LLC-miss loads fall below this fraction, sample stores only.
    pub load_fraction_lo: f64,
    /// Detector self-cost model.
    pub costs: DetectorCosts,
    /// Degraded-protection fallback policy.
    pub degraded: DegradedMode,
}

impl AnvilConfig {
    /// The paper's deployed configuration (Table 2): 20K misses / 6 ms /
    /// 6 ms.
    pub fn baseline() -> Self {
        AnvilConfig {
            llc_miss_threshold: 20_000,
            tc_ms: 6.0,
            ts_ms: 6.0,
            sampling: SamplerConfig::anvil_default(),
            min_hammer_accesses: 110_000,
            rate_safety: 0.3,
            row_sample_floor: 3,
            bank_support_min: 2,
            victim_radius: 1,
            load_fraction_hi: 0.9,
            load_fraction_lo: 0.1,
            costs: DetectorCosts::default(),
            degraded: DegradedMode::default(),
        }
    }

    /// `ANVIL-heavy` (Section 4.5): tc = ts = 2 ms for attacks that flip
    /// bits with 110K accesses in 7.5 ms.
    pub fn heavy() -> Self {
        let mut c = Self::baseline();
        c.tc_ms = 2.0;
        c.ts_ms = 2.0;
        c
    }

    /// `ANVIL-light` (Section 4.5): the miss threshold halved to 10K for
    /// attacks that spread 110K accesses over a whole refresh period.
    pub fn light() -> Self {
        let mut c = Self::baseline();
        c.llc_miss_threshold = 10_000;
        c.min_hammer_accesses = 55_000;
        c
    }

    /// Stage-1 window in cycles.
    pub fn tc_cycles(&self, clock: &CpuClock) -> Cycle {
        clock.ms_to_cycles(self.tc_ms)
    }

    /// Stage-2 window in cycles.
    pub fn ts_cycles(&self, clock: &CpuClock) -> Cycle {
        clock.ms_to_cycles(self.ts_ms)
    }

    /// Checks internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if !self.tc_ms.is_finite() || !self.ts_ms.is_finite() {
            return Err("window durations must be finite".into());
        }
        if self.tc_ms <= 0.0 || self.ts_ms <= 0.0 {
            return Err("window durations must be positive".into());
        }
        if self.ts_ms > self.tc_ms {
            return Err("stage-2 window ts must not exceed the stage-1 window tc".into());
        }
        if self.llc_miss_threshold == 0 {
            return Err("miss threshold must be non-zero".into());
        }
        if !self.rate_safety.is_finite()
            || !self.load_fraction_lo.is_finite()
            || !self.load_fraction_hi.is_finite()
        {
            return Err("fractional parameters must be finite".into());
        }
        if self.min_hammer_accesses == 0 {
            return Err("min_hammer_accesses must be non-zero".into());
        }
        if !(0.0..=1.0).contains(&self.rate_safety) {
            return Err("rate_safety must be in [0, 1]".into());
        }
        if self.victim_radius == 0 {
            return Err("victim radius must be at least 1".into());
        }
        if !(0.0..=1.0).contains(&self.load_fraction_lo)
            || !(0.0..=1.0).contains(&self.load_fraction_hi)
            || self.load_fraction_lo > self.load_fraction_hi
        {
            return Err("load fractions must satisfy 0 <= lo <= hi <= 1".into());
        }
        if !(0.0..=1.0).contains(&self.degraded.min_sample_survival) {
            return Err("degraded.min_sample_survival must be in [0, 1]".into());
        }
        if !self.degraded.max_deadline_slip_frac.is_finite()
            || self.degraded.max_deadline_slip_frac < 0.0
        {
            return Err("degraded.max_deadline_slip_frac must be finite and non-negative".into());
        }
        Ok(())
    }
}

impl Default for AnvilConfig {
    fn default() -> Self {
        Self::baseline()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_matches_table2() {
        let c = AnvilConfig::baseline();
        assert_eq!(c.llc_miss_threshold, 20_000);
        assert_eq!(c.tc_ms, 6.0);
        assert_eq!(c.ts_ms, 6.0);
        c.validate().unwrap();
    }

    #[test]
    fn heavy_shrinks_windows() {
        let c = AnvilConfig::heavy();
        assert_eq!(c.tc_ms, 2.0);
        assert_eq!(c.llc_miss_threshold, 20_000);
        c.validate().unwrap();
    }

    #[test]
    fn light_halves_threshold() {
        let c = AnvilConfig::light();
        assert_eq!(c.llc_miss_threshold, 10_000);
        assert_eq!(c.tc_ms, 6.0);
        c.validate().unwrap();
    }

    #[test]
    fn windows_in_cycles() {
        let clock = CpuClock::SANDY_BRIDGE_2_6GHZ;
        assert_eq!(AnvilConfig::baseline().tc_cycles(&clock), 15_600_000);
    }

    #[test]
    fn validation_rejects_bad_values() {
        let mut c = AnvilConfig::baseline();
        c.tc_ms = 0.0;
        assert!(c.validate().is_err());
        let mut c2 = AnvilConfig::baseline();
        c2.victim_radius = 0;
        assert!(c2.validate().is_err());
        let mut c3 = AnvilConfig::baseline();
        c3.load_fraction_lo = 0.95;
        assert!(c3.validate().is_err());
    }

    #[test]
    fn validation_rejects_degenerate_windows() {
        for (tc, ts) in [(0.0, 6.0), (-1.0, 6.0), (6.0, 0.0), (6.0, -2.5)] {
            let mut c = AnvilConfig::baseline();
            c.tc_ms = tc;
            c.ts_ms = ts;
            assert!(c.validate().is_err(), "tc={tc} ts={ts} should be rejected");
        }
    }

    #[test]
    fn validation_rejects_non_finite_windows() {
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let mut c = AnvilConfig::baseline();
            c.tc_ms = bad;
            assert!(c.validate().is_err(), "tc={bad} should be rejected");
            let mut c = AnvilConfig::baseline();
            c.ts_ms = bad;
            assert!(c.validate().is_err(), "ts={bad} should be rejected");
            let mut c = AnvilConfig::baseline();
            c.rate_safety = bad;
            assert!(
                c.validate().is_err(),
                "rate_safety={bad} should be rejected"
            );
        }
    }

    #[test]
    fn validation_rejects_sampling_window_longer_than_counting_window() {
        let mut c = AnvilConfig::baseline();
        c.ts_ms = c.tc_ms * 2.0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn validation_rejects_bad_degraded_mode() {
        let mut c = AnvilConfig::baseline();
        c.degraded.min_sample_survival = 1.5;
        assert!(c.validate().is_err());
        let mut c = AnvilConfig::baseline();
        c.degraded.min_sample_survival = f64::NAN;
        assert!(c.validate().is_err());
        let mut c = AnvilConfig::baseline();
        c.degraded.max_deadline_slip_frac = -0.1;
        assert!(c.validate().is_err());
        let mut c = AnvilConfig::baseline();
        c.degraded.max_deadline_slip_frac = 4.0; // lenient but legal
        c.validate().unwrap();
    }

    #[test]
    fn degraded_mode_defaults_are_armed() {
        let d = AnvilConfig::baseline().degraded;
        assert!(d.enabled);
        assert_eq!(d.min_sample_survival, 0.5);
        assert_eq!(d.max_deadline_slip_frac, 0.25);
    }

    #[test]
    fn validation_rejects_zero_thresholds() {
        let mut c = AnvilConfig::baseline();
        c.llc_miss_threshold = 0;
        assert!(c.validate().is_err());
        let mut c = AnvilConfig::baseline();
        c.min_hammer_accesses = 0;
        assert!(c.validate().is_err());
    }
}
