//! ANVIL detector configuration (the paper's Table 2 plus the Section 4.5
//! variants).

use crate::error::ConfigError;
use anvil_dram::{CpuClock, Cycle};
use anvil_pmu::SamplerConfig;
use serde::{Deserialize, Serialize};

/// The DDR3 refresh interval (ms) the guarantee-envelope check in
/// [`AnvilConfig::validate`] assumes; the full auditor
/// ([`crate::GuaranteeEnvelope`]) takes the actual period instead.
pub const PAPER_REFRESH_MS: f64 = 64.0;

/// CPU-time costs charged for the detector's own work (the source of the
/// slowdowns in Figures 3 and 4). On real hardware these are PMI handler
/// executions, PEBS microcode assists, PMU reprogramming (WRMSRs), and the
/// kernel-side sample analysis; here they are explicit cycle charges
/// against the core that triggers them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DetectorCosts {
    /// Cost of a performance-monitoring interrupt (timer or counter
    /// overflow), including the handler.
    pub pmi: Cycle,
    /// Cost of one PEBS sample (microcode assist + debug-store handling).
    pub sample: Cycle,
    /// Cost of arming/disarming stage-2 sampling (PMU reprogramming).
    pub stage2_arm: Cycle,
    /// Cost of the end-of-window sample analysis (sort + locality scan).
    pub analysis: Cycle,
    /// Cost of one selective-refresh read (flush + uncached read).
    pub refresh_read: Cycle,
    /// Cost of blanket-refreshing one bank in degraded mode (a sweep of
    /// uncached reads across the bank's hot region).
    pub bank_refresh: Cycle,
}

impl Default for DetectorCosts {
    fn default() -> Self {
        DetectorCosts {
            pmi: 4_000,
            sample: 9_000,
            stage2_arm: 30_000,
            analysis: 20_000,
            refresh_read: 2_000,
            bank_refresh: 100_000,
        }
    }
}

/// Degraded-protection policy: what the detector does when a stage-2
/// window's evidence is too damaged to trust.
///
/// A stage-2 window only exists because stage 1 saw hammer-capable miss
/// traffic. If most of that window's samples were then lost (debug-store
/// overflow, failed translations) or the analysis ran far past its
/// deadline, a clean "no aggressors found" verdict is meaningless — the
/// attack may simply have been invisible. Rather than silently skip the
/// window, the detector falls back to conservatively refreshing whole
/// banks: the banks the surviving samples point at, or every bank when
/// nothing survived.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DegradedMode {
    /// Whether the fallback is armed at all.
    pub enabled: bool,
    /// Minimum fraction of a stage-2 window's samples that must survive
    /// (buffered and translated) for its analysis to be trusted.
    pub min_sample_survival: f64,
    /// Maximum service-deadline slip, as a fraction of the stage-2
    /// window `ts`, before the window is considered compromised.
    pub max_deadline_slip_frac: f64,
}

impl Default for DegradedMode {
    fn default() -> Self {
        DegradedMode {
            enabled: true,
            min_sample_survival: 0.5,
            max_deadline_slip_frac: 0.25,
        }
    }
}

/// Adaptive-adversary hardening knobs (all off in the paper's shipped
/// configuration; [`AnvilConfig::hardened`] turns them on).
///
/// Three independent counter-measures, each closing one evasion channel:
///
/// * **Stage-1 carry** (`stage1_carry`): stage 1 trips on an EWMA of the
///   per-window miss count rather than the raw count, so an attacker who
///   duty-cycles bursts across window boundaries (each window seeing just
///   under the threshold) accumulates evidence instead of resetting it.
/// * **Window-phase jitter** (`phase_jitter`, `phase_seed`): every
///   stage-1 window length is drawn from `tc × [1 − j, 1 + j]` (with the
///   threshold scaled in proportion), so bursts synchronized to the
///   published window schedule straddle boundaries the attacker cannot
///   predict.
/// * **Suspicion ledger + sample weighting** (`ledger_*`, `hit_weight`,
///   `row_miss_latency`): per-row activation evidence decays across
///   stage-2 windows instead of vanishing with each one, and samples
///   whose measured latency betrays a row-buffer *hit* (camouflage
///   filler) are down-weighted against genuine activation evidence.
/// * **Sticky sampling** (`max_resample_windows`): a stage-2 window
///   whose miss traffic collapsed far below the stage-1 trigger that
///   armed it — a burst that went quiet exactly when sampling began —
///   re-arms sampling instead of conceding, so a duty-cycled attacker's
///   next burst lands inside a sampled window.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HardeningConfig {
    /// Master switch; `false` reproduces the paper's detector exactly.
    pub enabled: bool,
    /// Seed for the per-window phase jitter (campaigns thread their
    /// campaign seed through here for reproducibility).
    pub phase_seed: u64,
    /// Half-width of the window-length jitter as a fraction of `tc`
    /// (0.25 → lengths in `[0.75, 1.25] × tc`). Zero disables jitter.
    pub phase_jitter: f64,
    /// EWMA carry factor for stage-1 miss evidence: the next window's
    /// trip test uses `carry × previous + current`. Zero reproduces the
    /// memoryless paper behaviour.
    pub stage1_carry: f64,
    /// Per-stage-2-window decay of ledger scores (score ← decay × score
    /// before adding this window's evidence); entries with no fresh
    /// evidence shrink toward zero and are pruned.
    pub ledger_decay: f64,
    /// A ledger row is flagged when its accumulated score reaches
    /// `min_hammer_accesses × rate_safety × ledger_factor`.
    pub ledger_factor: f64,
    /// Minimum distinct stage-2 windows contributing evidence before the
    /// ledger may flag a row (a single noisy window never convicts).
    pub ledger_min_windows: u32,
    /// Weight (0–1) given to a sampled load whose latency indicates a
    /// row-buffer hit; activation-evidencing (row-miss) samples weigh 1.
    pub hit_weight: f64,
    /// Latency (cycles) at or above which a sampled access is treated as
    /// a row-buffer miss, i.e. real activation evidence.
    pub row_miss_latency: Cycle,
    /// Sticky sampling: when a stage-2 window ends with no finding and
    /// its miss traffic collapsed to less than half the stage-1 trip
    /// rate — the burst that armed sampling vanished before it could be
    /// attributed — re-arm sampling immediately instead of returning to
    /// counting, up to this many consecutive windows. A duty-cycled
    /// burst must return to sustain its flip rate, and a re-armed window
    /// eventually contains it. Zero disables the re-arm.
    pub max_resample_windows: u32,
}

impl Default for HardeningConfig {
    fn default() -> Self {
        HardeningConfig {
            enabled: false,
            phase_seed: 0x000A_11CE,
            phase_jitter: 0.25,
            stage1_carry: 0.5,
            ledger_decay: 0.5,
            ledger_factor: 1.5,
            ledger_min_windows: 2,
            hit_weight: 0.2,
            row_miss_latency: 130,
            max_resample_windows: 4,
        }
    }
}

/// Full ANVIL configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AnvilConfig {
    /// Stage-1 LLC-miss threshold per miss-count window
    /// (`LLC_MISS_THRESHOLD`, Table 2: 20K).
    pub llc_miss_threshold: u64,
    /// Miss-count (stage-1) window duration `tc` in ms (Table 2: 6 ms).
    pub tc_ms: f64,
    /// Sampling (stage-2) window duration `ts` in ms (Table 2: 6 ms).
    pub ts_ms: f64,
    /// PEBS sampling configuration (5000 samples/s in the paper).
    pub sampling: SamplerConfig,
    /// Minimum activations per refresh window the detector assumes can
    /// flip bits (set from the observed attack minimum: 220K double-sided
    /// accesses means 110K activations of each aggressor).
    pub min_hammer_accesses: u64,
    /// Safety factor applied to the hammer rate when judging a row
    /// suspicious (detect attackers running below the proven minimum).
    pub rate_safety: f64,
    /// Never flag a row with fewer than this many samples, regardless of
    /// the rate estimate (noise floor).
    pub row_sample_floor: u32,
    /// Required number of *other-row* samples in the same bank (the
    /// bank-locality check of Section 3.1; rowhammering needs at least two
    /// rows in one bank).
    pub bank_support_min: u32,
    /// Rows on each side of an aggressor to refresh (the paper refreshes
    /// the directly adjacent rows; "our approach easily extends to N").
    pub victim_radius: u32,
    /// If LLC-miss loads exceed this fraction of misses, sample loads only.
    pub load_fraction_hi: f64,
    /// If LLC-miss loads fall below this fraction, sample stores only.
    pub load_fraction_lo: f64,
    /// Detector self-cost model.
    pub costs: DetectorCosts,
    /// Degraded-protection fallback policy.
    pub degraded: DegradedMode,
    /// Adaptive-adversary hardening (disabled in the paper's baseline).
    #[serde(default)]
    pub hardening: HardeningConfig,
}

impl AnvilConfig {
    /// The paper's deployed configuration (Table 2): 20K misses / 6 ms /
    /// 6 ms.
    pub fn baseline() -> Self {
        AnvilConfig {
            llc_miss_threshold: 20_000,
            tc_ms: 6.0,
            ts_ms: 6.0,
            sampling: SamplerConfig::anvil_default(),
            min_hammer_accesses: 110_000,
            rate_safety: 0.3,
            row_sample_floor: 3,
            bank_support_min: 2,
            victim_radius: 1,
            load_fraction_hi: 0.9,
            load_fraction_lo: 0.1,
            costs: DetectorCosts::default(),
            degraded: DegradedMode::default(),
            hardening: HardeningConfig::default(),
        }
    }

    /// `ANVIL-heavy` (Section 4.5): tc = ts = 2 ms for attacks that flip
    /// bits with 110K accesses in 7.5 ms. The miss threshold scales with
    /// the window (20K per 6 ms → 6,666 per 2 ms) so the *rate* stage 1
    /// arms at is unchanged; keeping the absolute 20K count over a 2 ms
    /// window would let a paced attacker land 640K undetected activations
    /// per refresh interval (see [`AnvilConfig::validate`]).
    pub fn heavy() -> Self {
        let mut c = Self::baseline();
        c.tc_ms = 2.0;
        c.ts_ms = 2.0;
        c.llc_miss_threshold = 6_666;
        c
    }

    /// The baseline configuration with every adaptive-adversary
    /// counter-measure enabled: stage-1 EWMA carry, randomized window
    /// phase, and the cross-window suspicion ledger with row-buffer-miss
    /// sample weighting.
    pub fn hardened() -> Self {
        let mut c = Self::baseline();
        c.hardening.enabled = true;
        c
    }

    /// `ANVIL-light` (Section 4.5): the miss threshold halved to 10K for
    /// attacks that spread 110K accesses over a whole refresh period.
    pub fn light() -> Self {
        let mut c = Self::baseline();
        c.llc_miss_threshold = 10_000;
        c.min_hammer_accesses = 55_000;
        c
    }

    /// Stage-1 window in cycles.
    pub fn tc_cycles(&self, clock: &CpuClock) -> Cycle {
        clock.ms_to_cycles(self.tc_ms)
    }

    /// Stage-2 window in cycles.
    pub fn ts_cycles(&self, clock: &CpuClock) -> Cycle {
        clock.ms_to_cycles(self.ts_ms)
    }

    /// Worst-case activations an adversary can land on one aggressor
    /// pair per refresh interval while *never* arming stage 2: pace at
    /// one miss under the effective stage-1 trip point, every window, for
    /// all `PAPER_REFRESH_MS / tc_ms` windows of a refresh interval. With
    /// hardening enabled the EWMA carry lowers the sustainable per-window
    /// rate to `(1 − carry) × threshold`.
    pub fn sustained_stage1_budget(&self) -> u64 {
        let per_window = (self.llc_miss_threshold.saturating_sub(1)) as f64;
        let per_window = if self.hardening.enabled {
            per_window * (1.0 - self.hardening.stage1_carry)
        } else {
            per_window
        };
        let windows = PAPER_REFRESH_MS / self.tc_ms;
        (per_window * windows) as u64
    }

    /// Checks internal consistency, including the guarantee envelope: a
    /// configuration is rejected when the activation budget of an
    /// attacker pacing itself under the stage-1 threshold
    /// ([`Self::sustained_stage1_budget`]) reaches the double-sided flip
    /// threshold (`2 × min_hammer_accesses`) — such a config cannot keep
    /// its no-flip promise against a threshold-probing adversary.
    ///
    /// # Errors
    ///
    /// Returns the first violated constraint, as a
    /// [`ConfigError::Invalid`] for structural problems or
    /// [`ConfigError::GuaranteeEnvelope`] for the budget check.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if !self.tc_ms.is_finite() || !self.ts_ms.is_finite() {
            return Err("window durations must be finite".into());
        }
        if self.tc_ms <= 0.0 || self.ts_ms <= 0.0 {
            return Err("window durations must be positive".into());
        }
        if self.ts_ms > self.tc_ms {
            return Err("stage-2 window ts must not exceed the stage-1 window tc".into());
        }
        if self.llc_miss_threshold == 0 {
            return Err("miss threshold must be non-zero".into());
        }
        if !self.rate_safety.is_finite()
            || !self.load_fraction_lo.is_finite()
            || !self.load_fraction_hi.is_finite()
        {
            return Err("fractional parameters must be finite".into());
        }
        if self.min_hammer_accesses == 0 {
            return Err("min_hammer_accesses must be non-zero".into());
        }
        if !(0.0..=1.0).contains(&self.rate_safety) {
            return Err("rate_safety must be in [0, 1]".into());
        }
        if self.victim_radius == 0 {
            return Err("victim radius must be at least 1".into());
        }
        if !(0.0..=1.0).contains(&self.load_fraction_lo)
            || !(0.0..=1.0).contains(&self.load_fraction_hi)
            || self.load_fraction_lo > self.load_fraction_hi
        {
            return Err("load fractions must satisfy 0 <= lo <= hi <= 1".into());
        }
        if !(0.0..=1.0).contains(&self.degraded.min_sample_survival) {
            return Err("degraded.min_sample_survival must be in [0, 1]".into());
        }
        if !self.degraded.max_deadline_slip_frac.is_finite()
            || self.degraded.max_deadline_slip_frac < 0.0
        {
            return Err("degraded.max_deadline_slip_frac must be finite and non-negative".into());
        }
        let h = &self.hardening;
        if !h.stage1_carry.is_finite() || !(0.0..1.0).contains(&h.stage1_carry) {
            return Err("hardening.stage1_carry must be in [0, 1)".into());
        }
        if !h.phase_jitter.is_finite() || !(0.0..=0.9).contains(&h.phase_jitter) {
            return Err("hardening.phase_jitter must be in [0, 0.9]".into());
        }
        if !h.ledger_decay.is_finite() || !(0.0..1.0).contains(&h.ledger_decay) {
            return Err("hardening.ledger_decay must be in [0, 1)".into());
        }
        if !h.ledger_factor.is_finite() || h.ledger_factor <= 0.0 {
            return Err("hardening.ledger_factor must be positive".into());
        }
        if h.ledger_min_windows == 0 {
            return Err("hardening.ledger_min_windows must be at least 1".into());
        }
        if !h.hit_weight.is_finite() || !(0.0..=1.0).contains(&h.hit_weight) {
            return Err("hardening.hit_weight must be in [0, 1]".into());
        }
        let budget = self.sustained_stage1_budget();
        let flip_threshold = 2 * self.min_hammer_accesses;
        if budget >= flip_threshold {
            return Err(ConfigError::GuaranteeEnvelope {
                budget,
                flip_threshold,
            });
        }
        Ok(())
    }
}

impl Default for AnvilConfig {
    fn default() -> Self {
        Self::baseline()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_matches_table2() {
        let c = AnvilConfig::baseline();
        assert_eq!(c.llc_miss_threshold, 20_000);
        assert_eq!(c.tc_ms, 6.0);
        assert_eq!(c.ts_ms, 6.0);
        c.validate().unwrap();
    }

    #[test]
    fn heavy_shrinks_windows() {
        let c = AnvilConfig::heavy();
        assert_eq!(c.tc_ms, 2.0);
        // The threshold scales with the window so the arming *rate* is
        // baseline's (20K per 6 ms); the absolute 20K over 2 ms would
        // break the guarantee envelope (640K undetectable activations).
        assert_eq!(c.llc_miss_threshold, 6_666);
        c.validate().unwrap();
    }

    #[test]
    fn hardened_enables_countermeasures_and_validates() {
        let c = AnvilConfig::hardened();
        assert!(c.hardening.enabled);
        assert!(!AnvilConfig::baseline().hardening.enabled);
        // Everything else matches the shipped baseline.
        assert_eq!(c.llc_miss_threshold, 20_000);
        assert_eq!(c.tc_ms, 6.0);
        c.validate().unwrap();
    }

    #[test]
    fn envelope_gate_rejects_leaky_configs() {
        // The old ANVIL-heavy shape: 20K misses allowed per 2 ms window
        // is 640K paced activations per refresh interval — far past the
        // 220K double-sided flip threshold.
        let mut c = AnvilConfig::baseline();
        c.tc_ms = 2.0;
        c.ts_ms = 2.0;
        c.llc_miss_threshold = 20_000;
        match c.validate() {
            Err(crate::error::ConfigError::GuaranteeEnvelope {
                budget,
                flip_threshold,
            }) => {
                assert_eq!(flip_threshold, 220_000);
                assert!(budget >= 600_000, "budget {budget}");
            }
            other => panic!("expected GuaranteeEnvelope, got {other:?}"),
        }
        // A too-permissive threshold on the baseline windows fails too.
        let mut c = AnvilConfig::baseline();
        c.llc_miss_threshold = 40_000;
        assert!(matches!(
            c.validate(),
            Err(crate::error::ConfigError::GuaranteeEnvelope { .. })
        ));
    }

    #[test]
    fn every_preset_keeps_an_envelope_margin() {
        for c in [
            AnvilConfig::baseline(),
            AnvilConfig::light(),
            AnvilConfig::heavy(),
            AnvilConfig::hardened(),
        ] {
            let budget = c.sustained_stage1_budget();
            assert!(
                budget < 2 * c.min_hammer_accesses,
                "budget {budget} vs flip threshold {}",
                2 * c.min_hammer_accesses
            );
            c.validate().unwrap();
        }
        // Hardening's EWMA carry halves the sustainable budget.
        assert!(
            AnvilConfig::hardened().sustained_stage1_budget()
                <= AnvilConfig::baseline().sustained_stage1_budget() / 2 + 1
        );
    }

    #[test]
    fn validation_rejects_bad_hardening() {
        for mutate in [
            (|c: &mut AnvilConfig| c.hardening.stage1_carry = 1.0) as fn(&mut AnvilConfig),
            |c| c.hardening.stage1_carry = f64::NAN,
            |c| c.hardening.phase_jitter = 0.95,
            |c| c.hardening.ledger_decay = -0.1,
            |c| c.hardening.ledger_factor = 0.0,
            |c| c.hardening.ledger_min_windows = 0,
            |c| c.hardening.hit_weight = 1.5,
        ] {
            let mut c = AnvilConfig::baseline();
            mutate(&mut c);
            assert!(c.validate().is_err());
        }
    }

    #[test]
    fn light_halves_threshold() {
        let c = AnvilConfig::light();
        assert_eq!(c.llc_miss_threshold, 10_000);
        assert_eq!(c.tc_ms, 6.0);
        c.validate().unwrap();
    }

    #[test]
    fn windows_in_cycles() {
        let clock = CpuClock::SANDY_BRIDGE_2_6GHZ;
        assert_eq!(AnvilConfig::baseline().tc_cycles(&clock), 15_600_000);
    }

    #[test]
    fn validation_rejects_bad_values() {
        let mut c = AnvilConfig::baseline();
        c.tc_ms = 0.0;
        assert!(c.validate().is_err());
        let mut c2 = AnvilConfig::baseline();
        c2.victim_radius = 0;
        assert!(c2.validate().is_err());
        let mut c3 = AnvilConfig::baseline();
        c3.load_fraction_lo = 0.95;
        assert!(c3.validate().is_err());
    }

    #[test]
    fn validation_rejects_degenerate_windows() {
        for (tc, ts) in [(0.0, 6.0), (-1.0, 6.0), (6.0, 0.0), (6.0, -2.5)] {
            let mut c = AnvilConfig::baseline();
            c.tc_ms = tc;
            c.ts_ms = ts;
            assert!(c.validate().is_err(), "tc={tc} ts={ts} should be rejected");
        }
    }

    #[test]
    fn validation_rejects_non_finite_windows() {
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let mut c = AnvilConfig::baseline();
            c.tc_ms = bad;
            assert!(c.validate().is_err(), "tc={bad} should be rejected");
            let mut c = AnvilConfig::baseline();
            c.ts_ms = bad;
            assert!(c.validate().is_err(), "ts={bad} should be rejected");
            let mut c = AnvilConfig::baseline();
            c.rate_safety = bad;
            assert!(
                c.validate().is_err(),
                "rate_safety={bad} should be rejected"
            );
        }
    }

    #[test]
    fn validation_rejects_sampling_window_longer_than_counting_window() {
        let mut c = AnvilConfig::baseline();
        c.ts_ms = c.tc_ms * 2.0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn validation_rejects_bad_degraded_mode() {
        let mut c = AnvilConfig::baseline();
        c.degraded.min_sample_survival = 1.5;
        assert!(c.validate().is_err());
        let mut c = AnvilConfig::baseline();
        c.degraded.min_sample_survival = f64::NAN;
        assert!(c.validate().is_err());
        let mut c = AnvilConfig::baseline();
        c.degraded.max_deadline_slip_frac = -0.1;
        assert!(c.validate().is_err());
        let mut c = AnvilConfig::baseline();
        c.degraded.max_deadline_slip_frac = 4.0; // lenient but legal
        c.validate().unwrap();
    }

    #[test]
    fn degraded_mode_defaults_are_armed() {
        let d = AnvilConfig::baseline().degraded;
        assert!(d.enabled);
        assert_eq!(d.min_sample_survival, 0.5);
        assert_eq!(d.max_deadline_slip_frac, 0.25);
    }

    #[test]
    fn validation_rejects_zero_thresholds() {
        let mut c = AnvilConfig::baseline();
        c.llc_miss_threshold = 0;
        assert!(c.validate().is_err());
        let mut c = AnvilConfig::baseline();
        c.min_hammer_accesses = 0;
        assert!(c.validate().is_err());
    }
}
