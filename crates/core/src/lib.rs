#![warn(missing_docs)]

//! # anvil-core
//!
//! ANVIL — the software-based rowhammer defense from
//! *"ANVIL: Software-Based Protection Against Next-Generation Rowhammer
//! Attacks"* (Aweke et al., ASPLOS 2016) — reproduced on a fully simulated
//! Sandy Bridge platform.
//!
//! ANVIL detects rowhammering by watching the locality of DRAM accesses
//! with existing performance counters:
//!
//! 1. **Stage 1** counts last-level-cache misses over `tc = 6 ms` windows;
//!    only a miss rate high enough to flip bits within one refresh period
//!    (≥ 20K/6 ms) arms stage 2.
//! 2. **Stage 2** samples the virtual addresses of DRAM-bound loads and
//!    stores (PEBS load-latency / precise-store facilities) for
//!    `ts = 6 ms`, translates them through the owning process's page
//!    table, and checks for **row locality** corroborated by **bank
//!    locality**.
//! 3. On detection, the rows adjacent to each aggressor are **selectively
//!    refreshed** with a read, restoring their charge before bits flip.
//!
//! The [`Platform`] runner hosts workloads (`anvil-workloads`) and attacks
//! (`anvil-attacks`) on per-core clocks over the shared memory system and
//! charges every PMI, PEBS assist, and refresh read to core time, which is
//! how the paper's ~1% slowdown (Figure 3) and <1% false-positive rates
//! (Table 4) are reproduced.
//!
//! ## Deployment notes (from the reproduction's findings)
//!
//! * Ship [`AnvilConfig::baseline`]; treat `heavy` and `light` as
//!   *additional* profiles for fast / stealthy attackers. `heavy`'s miss
//!   threshold scales with its shorter window (6,666 per 2 ms — the same
//!   trip *rate* as 20K per 6 ms): keeping the absolute 20K count would
//!   both miss today's slow CLFLUSH-free hammer (~19K misses per 2 ms)
//!   and fail the guarantee-envelope gate in [`AnvilConfig::validate`].
//! * Against adversaries that adapt to the detector (duty-cycled bursts,
//!   camouflage traffic, many-sided distribution), ship
//!   [`AnvilConfig::hardened`] — EWMA stage-1 carry, jittered window
//!   phase, and the cross-window [`SuspicionLedger`] close the evasion
//!   budgets the [`GuaranteeEnvelope`] auditor exposes on the baseline.
//! * The bank-locality filter assumes an open-page memory controller; on
//!   closed-page systems set `bank_support_min = 0` (single-address
//!   hammers exist there) and accept the higher false-positive rate.
//! * On DRAM dense enough to disturb at distance 2, set
//!   `victim_radius = 2`.
//! * Detections carry pid attribution; [`PlatformConfig::response`] can
//!   suspend repeat offenders, guarded by a consecutive-detection streak
//!   so sporadic false positives never punish benign programs.
//!
//! ## Quick start: stop an attack
//!
//! ```
//! use anvil_core::{AnvilConfig, Platform, PlatformConfig};
//! use anvil_attacks::DoubleSidedClflush;
//!
//! let mut platform = Platform::new(PlatformConfig::with_anvil(AnvilConfig::baseline()));
//! platform.add_attack(Box::new(DoubleSidedClflush::new()))?;
//! platform.run_ms(40.0)?;
//! assert_eq!(platform.total_flips(), 0, "ANVIL must prevent all flips");
//! assert!(!platform.detections().is_empty(), "and it must notice the attack");
//! # Ok::<(), anvil_core::PlatformError>(())
//! ```

mod checkpoint;
mod config;
mod detector;
mod envelope;
pub mod epoch;
mod error;
mod guard;
mod locality;
mod platform;
pub mod transition;

pub use checkpoint::{config_hash, fnv1a64, DetectorCheckpoint, CHECKPOINT_VERSION};
pub use config::{AnvilConfig, DegradedMode, DetectorCosts, HardeningConfig, PAPER_REFRESH_MS};
pub use detector::{AnvilDetector, DetectorStage, DetectorStats, ServiceOutcome, StateSignature};
pub use envelope::{EnvelopeParams, GuaranteeEnvelope};
pub use epoch::{EpochEvent, EpochHorizon, QuietCheckpoint, QuietShadow};
pub use error::{ConfigError, PlatformError, RuntimeError};
pub use guard::{GuardMode, GuardedCell, GuardedValue, StateCorruption, StateSite, REPLICAS};
pub use locality::{
    analyze, analyze_with_ledger, AggressorFinding, LedgerRow, LocalityReport, RowSample,
    SuspicionLedger, FULL_WEIGHT,
};
pub use platform::{
    CoreStats, DetectionEvent, Platform, PlatformConfig, ResponsePolicy, SCRUB_SLICES,
};
