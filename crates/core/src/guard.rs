//! Hardened state cells: the detector defending its own memory.
//!
//! ANVIL is a software defense, so its counters, carries, and ledgers
//! live in the very DRAM it protects. A next-generation attacker who can
//! flip bits in arbitrary rows can flip bits in the *detector's* rows —
//! clearing the EWMA carry so stage 1 never trips, zeroing a ledger
//! score so a convicted aggressor walks free. This module closes that
//! loop with three mechanisms:
//!
//! * [`GuardedCell`] — a 64-bit state word stored as **three replicas**,
//!   each sealed with an FNV-1a-64 checksum of its encoded value. A read
//!   majority-decodes across the replicas whose checksums verify, so a
//!   single-replica flip never reaches a detector decision even before
//!   the scrubber visits the cell.
//! * **Scrubbing** — [`GuardedCell::scrub`] verifies every replica,
//!   repairs minority damage by majority vote, and reports a typed
//!   [`StateCorruption`] naming the [`StateSite`] and whether repair
//!   succeeded. Writes scrub first, so corruption is *reported before it
//!   is overwritten* — never silently absorbed.
//! * **Escalation** — when no replica verifies (replica-correlated
//!   flips: the same bit disturbed in every copy, or every checksum
//!   damaged at once) the cell is *unrepairable*. Scrub deterministically
//!   re-seals a best-guess value (majority word, else replica 0) so the
//!   detector keeps a defined state, but the corruption is reported with
//!   `repaired = false` and the policy layer (`anvil-runtime`) escalates:
//!   cold restart from the last good checkpoint, charged against the
//!   guarantee-envelope downtime budget.
//!
//! The cell is deliberately *not* serialized: checkpoints carry the
//! decoded values (see `checkpoint.rs`), so the wire format is identical
//! to the unguarded detector's and replication never leaks into results.

use crate::checkpoint::fnv1a64;

/// How the detector reads its own state cells.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GuardMode {
    /// Majority-decode reads, scrub-before-write, corruption reporting —
    /// the self-defending configuration.
    Guarded,
    /// Trust replica 0 blindly and never scrub: the historical detector,
    /// kept as the campaign baseline so the `selfdefense` gate can show
    /// what state-targeting attacks do to it.
    Unguarded,
}

/// A named location in the detector's guarded state.
///
/// Sites are stable identifiers (ledger sites are keyed by the row's
/// packed id, not its position) so corruption accounting survives ledger
/// pruning and re-insertion.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, serde::Serialize)]
pub enum StateSite {
    /// The stage-1 EWMA miss-evidence carry.
    Carry,
    /// The window-phase jitter stream position.
    PhaseState,
    /// The current stage-1 window scale.
    WindowScale,
    /// The sticky-sampling re-arm depth.
    Resamples,
    /// A suspicion-ledger entry's decayed score, keyed by packed row id.
    LedgerScore(u64),
    /// A suspicion-ledger entry's evidence-window count, keyed by packed
    /// row id.
    LedgerWindows(u64),
}

impl std::fmt::Display for StateSite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StateSite::Carry => write!(f, "carry"),
            StateSite::PhaseState => write!(f, "phase_state"),
            StateSite::WindowScale => write!(f, "window_scale"),
            StateSite::Resamples => write!(f, "resamples"),
            StateSite::LedgerScore(row) => write!(f, "ledger_score[{row:#x}]"),
            StateSite::LedgerWindows(row) => write!(f, "ledger_windows[{row:#x}]"),
        }
    }
}

/// A corruption the scrubber found in a guarded cell.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize)]
pub struct StateCorruption {
    /// Where the corruption was found.
    pub site: StateSite,
    /// `true`: a checksummed majority existed and the damaged replicas
    /// were rewritten from it — the value the detector computes with was
    /// never wrong. `false`: no replica verified (or verified replicas
    /// disagreed); the cell was re-sealed deterministically but cannot be
    /// trusted, and the caller must escalate.
    pub repaired: bool,
}

/// A value storable in a [`GuardedCell`]: losslessly encoded as one
/// 64-bit word.
pub trait GuardedValue: Copy {
    /// Encodes the value as a 64-bit word.
    fn encode(self) -> u64;
    /// Decodes a 64-bit word back into the value.
    fn decode(word: u64) -> Self;
}

impl GuardedValue for u64 {
    fn encode(self) -> u64 {
        self
    }
    fn decode(word: u64) -> Self {
        word
    }
}

impl GuardedValue for u32 {
    fn encode(self) -> u64 {
        u64::from(self)
    }
    #[allow(clippy::cast_possible_truncation)]
    fn decode(word: u64) -> Self {
        word as u32
    }
}

impl GuardedValue for f64 {
    fn encode(self) -> u64 {
        self.to_bits()
    }
    fn decode(word: u64) -> Self {
        f64::from_bits(word)
    }
}

/// One replica: the encoded word plus its seal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Replica {
    word: u64,
    sum: u64,
}

impl Replica {
    fn sealed(word: u64) -> Self {
        Replica {
            word,
            sum: fnv1a64(&word.to_le_bytes()),
        }
    }

    fn valid(&self) -> bool {
        self.sum == fnv1a64(&self.word.to_le_bytes())
    }
}

/// Number of replicas per cell (fixed: majority vote needs an odd count,
/// and three is the cheapest that tolerates one arbitrary flip).
pub const REPLICAS: usize = 3;

/// A checksummed, triple-replicated 64-bit state cell.
///
/// See the module docs for the protocol. The injection surface
/// ([`GuardedCell::corrupt`]) flips bits in the stored words or seals
/// exactly the way a disturbance-induced charge leak would, so the same
/// cell is exercised by the software injector, the physical row map in
/// `anvil-mem`, and the proptests.
#[derive(Debug, Clone, PartialEq)]
pub struct GuardedCell<T: GuardedValue> {
    replicas: [Replica; REPLICAS],
    _value: std::marker::PhantomData<T>,
}

impl<T: GuardedValue> GuardedCell<T> {
    /// A freshly sealed cell holding `value`.
    pub fn new(value: T) -> Self {
        let r = Replica::sealed(value.encode());
        GuardedCell {
            replicas: [r; REPLICAS],
            _value: std::marker::PhantomData,
        }
    }

    /// The consensus word without mutating anything: the majority word
    /// among replicas whose checksums verify, falling back to a majority
    /// of raw words, then to replica 0. A single flipped replica never
    /// changes the result.
    fn consensus(&self) -> u64 {
        let valid: Vec<u64> = self
            .replicas
            .iter()
            .filter(|r| r.valid())
            .map(|r| r.word)
            .collect();
        if let Some(word) = majority(&valid) {
            return word;
        }
        if let Some(&word) = valid.first() {
            return word;
        }
        let raw: Vec<u64> = self.replicas.iter().map(|r| r.word).collect();
        majority(&raw).unwrap_or(self.replicas[0].word)
    }

    /// Majority-decoded read (guarded mode). Never mutates: repair is the
    /// scrubber's job, so `&self` accessors stay `&self`.
    pub fn peek(&self) -> T {
        T::decode(self.consensus())
    }

    /// Replica-0 blind read (unguarded baseline): whatever bits are in
    /// the first copy, checksum ignored.
    pub fn raw(&self) -> T {
        T::decode(self.replicas[0].word)
    }

    /// Seals `value` into every replica.
    pub fn store(&mut self, value: T) {
        let r = Replica::sealed(value.encode());
        self.replicas = [r; REPLICAS];
    }

    /// Whether every replica verifies and all words agree.
    pub fn clean(&self) -> bool {
        self.replicas.iter().all(Replica::valid)
            && self
                .replicas
                .iter()
                .all(|r| r.word == self.replicas[0].word)
    }

    /// Verifies all replicas, repairs what a checksummed majority can
    /// vouch for, and reports what it found.
    ///
    /// Returns `None` when the cell was clean. Otherwise every replica is
    /// re-sealed from the consensus word and the returned
    /// [`StateCorruption`] says whether that consensus was trustworthy
    /// (`repaired`) or a deterministic best guess the caller must
    /// escalate (`!repaired`).
    pub fn scrub(&mut self, site: StateSite) -> Option<StateCorruption> {
        if self.clean() {
            return None;
        }
        let valid: Vec<u64> = self
            .replicas
            .iter()
            .filter(|r| r.valid())
            .map(|r| r.word)
            .collect();
        let repaired = majority(&valid).is_some() || valid.len() == 1;
        let word = self.consensus();
        self.replicas = [Replica::sealed(word); REPLICAS];
        Some(StateCorruption { site, repaired })
    }

    /// XORs bit `bit` into the selected replicas — the injection surface.
    ///
    /// Bits `0..64` hit the stored word; bits `64..128` hit the checksum
    /// seal (a flip landing in the metadata instead of the data). Replica
    /// `i` is hit when bit `i` of `replica_mask` is set.
    pub fn corrupt(&mut self, replica_mask: u8, bit: u8) {
        let bit = bit % 128;
        for (i, r) in self.replicas.iter_mut().enumerate() {
            if replica_mask & (1 << i) == 0 {
                continue;
            }
            if bit < 64 {
                r.word ^= 1u64 << bit;
            } else {
                r.sum ^= 1u64 << (bit - 64);
            }
        }
    }
}

/// The strict-majority word of `words`, if one exists.
fn majority(words: &[u64]) -> Option<u64> {
    words
        .iter()
        .find(|&&w| words.iter().filter(|&&x| x == w).count() * 2 > words.len())
        .copied()
}

#[cfg(test)]
// Bit-exact float equality is the property under test: a repair must
// restore the identical word, not an approximation.
#[allow(clippy::float_cmp, clippy::decimal_bitwise_operands)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_every_value_type() {
        assert_eq!(GuardedCell::new(0.25f64).peek(), 0.25);
        assert_eq!(GuardedCell::new(u64::MAX).peek(), u64::MAX);
        assert_eq!(GuardedCell::new(7u32).peek(), 7);
        let mut c = GuardedCell::new(-0.0f64);
        assert_eq!(c.peek().to_bits(), (-0.0f64).to_bits(), "bit-exact floats");
        c.store(1.5e300);
        assert_eq!(c.peek(), 1.5e300);
        assert!(c.clean());
    }

    #[test]
    fn single_replica_flip_never_reaches_a_read_and_repairs() {
        for replica in 0..3u8 {
            for bit in [0u8, 13, 52, 63, 64, 90, 127] {
                let mut c = GuardedCell::new(123_456.75f64);
                c.corrupt(1 << replica, bit);
                assert_eq!(c.peek(), 123_456.75, "replica {replica} bit {bit}");
                let report = c.scrub(StateSite::Carry).expect("corruption found");
                assert!(report.repaired, "replica {replica} bit {bit}");
                assert!(c.clean());
                assert_eq!(c.peek(), 123_456.75);
                assert!(c.scrub(StateSite::Carry).is_none(), "second scrub clean");
            }
        }
    }

    #[test]
    fn raw_read_trusts_replica_zero_blindly() {
        let mut c = GuardedCell::new(1000.0f64);
        c.corrupt(0b001, 62); // clear a high exponent bit in replica 0
        assert_ne!(c.raw(), 1000.0, "unguarded read is fooled");
        assert_eq!(c.peek(), 1000.0, "guarded read is not");
    }

    #[test]
    fn correlated_flips_escalate_deterministically() {
        // Same bit in every replica word: words agree, no seal verifies.
        let mut a = GuardedCell::new(42u64);
        a.corrupt(0b111, 5);
        let ra = a.scrub(StateSite::Resamples).expect("reported");
        assert!(!ra.repaired, "no checksummed majority: escalate");
        assert!(a.clean(), "but the cell is re-sealed to a defined state");
        assert_eq!(a.peek(), 42 ^ (1 << 5), "best guess is the agreed word");

        // All three seals hit: again nothing verifies.
        let mut b = GuardedCell::new(42u64);
        b.corrupt(0b111, 64 + 9);
        let rb = b.scrub(StateSite::Resamples).expect("reported");
        assert!(!rb.repaired);
        assert_eq!(b.peek(), 42, "words were never touched");
    }

    #[test]
    fn two_valid_but_disagreeing_replicas_escalate() {
        let mut c = GuardedCell::new(10u64);
        // Replica 1 and 2 damaged differently; replica 0 intact: majority
        // of valid = just replica 0 → no strict majority among {0} ∪ ...
        c.corrupt(0b010, 3);
        c.corrupt(0b100, 7);
        let r = c.scrub(StateSite::PhaseState).expect("reported");
        assert!(r.repaired, "one checksummed survivor still vouches");
        assert_eq!(c.peek(), 10);

        // Now damage word+seal of two replicas so exactly two "verify"
        // with different words: no strict majority → escalate.
        let mut d = GuardedCell::new(10u64);
        d.replicas[1] = Replica::sealed(11);
        d.replicas[2] = Replica::sealed(12);
        let rd = d.scrub(StateSite::PhaseState).expect("reported");
        assert!(!rd.repaired, "three valid, three-way disagreement");
    }

    #[test]
    fn writes_reseal_all_replicas() {
        let mut c = GuardedCell::new(1u32);
        c.corrupt(0b010, 0);
        assert!(!c.clean());
        c.store(2);
        assert!(c.clean());
        assert_eq!(c.peek(), 2);
        assert_eq!(c.raw(), 2);
    }
}
