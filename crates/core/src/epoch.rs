//! The event-driven epoch engine: typed "interesting timestamps" and the
//! closed-form quiet-window state the engine advances between them.
//!
//! Per-access stepping retires one memory operation at a time; every
//! layer of the simulator (cache recency, PMU counters, disturbance
//! slabs, the detector's guarded cells) is touched once per op. That is
//! the right model *inside* an interesting region — an attack burst, a
//! sampled stage-2 window, an injected fault — but benign stretches are
//! analytically boring: the stage-1 EWMA, the window-phase jitter
//! stream, the PMU miss counters, and the lifecycle fault draws are all
//! closed-form functions of the window's aggregate miss count. The
//! epoch engine exploits that: it computes the **next event horizon**
//! (the earliest of the typed [`EpochEvent`]s below), fast-forwards to
//! it in one jump, and accumulates everything in between in bulk.
//!
//! The taxonomy, in deterministic tie-break priority order:
//!
//! 1. [`EpochEvent::WindowBoundary`] — the detector's next service
//!    deadline (a stage-1 or stage-2 window expires; on hardware, the
//!    PMI / kernel-timer fire).
//! 2. [`EpochEvent::RefreshDeadline`] — the next DRAM auto-refresh /
//!    arena-compaction epoch boundary.
//! 3. [`EpochEvent::FaultSite`] — the next registered fault-plan site
//!    (lifecycle draws are taken *per window*, so in window-granular
//!    engines every window boundary is implicitly also a fault site;
//!    platform-level fault plans register explicit cycle sites).
//! 4. [`EpochEvent::PhaseChange`] — the next attack/workload schedule
//!    phase change (an adversary turning on or off invalidates the
//!    closed form).
//! 5. [`EpochEvent::RunEnd`] — the simulation horizon.
//! 6. [`EpochEvent::CoreYield`] — the multi-core fairness bound: a core
//!    may not run past its siblings' lag window, so cross-core
//!    interleavings replay identically at any batch size.
//!
//! An epoch **never skips past** any of these: the horizon is the
//! minimum over every candidate, and the engine falls back to per-op
//! stepping from the horizon onward whenever the closed form is invalid
//! (see `DESIGN.md` §16 for the fallback conditions and the
//! determinism argument).

use crate::detector::DetectorStats;
use anvil_dram::Cycle;

/// Why an epoch ends: the typed event classes the engine fast-forwards
/// between. Variants are ordered by tie-break priority — when several
/// events land on the same cycle, the smallest variant wins, so horizon
/// selection is deterministic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum EpochEvent {
    /// The detector's next service deadline (stage-1/stage-2 window
    /// expiry; the PMI threshold crossing is resolved *at* this
    /// boundary from the window's aggregate miss count).
    WindowBoundary,
    /// The next DRAM auto-refresh / arena-compaction epoch boundary.
    RefreshDeadline,
    /// The next registered fault-plan site.
    FaultSite,
    /// The next attack/workload schedule phase change.
    PhaseChange,
    /// The simulation horizon.
    RunEnd,
    /// The multi-core fairness bound (a sibling core must catch up).
    CoreYield,
}

/// One event horizon: the cycle an epoch may run to, and why.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EpochHorizon {
    /// The cycle of the event.
    pub at: Cycle,
    /// The event class.
    pub event: EpochEvent,
}

impl EpochHorizon {
    /// The earliest horizon among `candidates`, breaking cycle ties by
    /// [`EpochEvent`] priority. Returns `None` for an empty set.
    pub fn earliest(candidates: impl IntoIterator<Item = EpochHorizon>) -> Option<EpochHorizon> {
        candidates.into_iter().min_by_key(|h| (h.at, h.event))
    }
}

/// The detector's quiet-run shadow: the three guarded scalars a
/// stage-1-idle stretch actually evolves (the EWMA carry, the
/// window-phase jitter stream position, and the current window scale).
///
/// During an epoch run these live in plain registers instead of
/// triple-replicated checksummed cells; `AnvilDetector::quiet_flush`
/// re-seals them into the guarded cells at the first event that ends
/// the quiet run. On pristine cells the flush is observationally
/// identical to the per-window stores it replaces: a [`GuardedCell`]'s
/// replica state is a pure function of the last stored value, and
/// scrubs of clean cells report nothing.
///
/// [`GuardedCell`]: crate::GuardedCell
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuietShadow {
    /// Stage-1 EWMA miss-evidence carry.
    pub carry: f64,
    /// Splitmix64 state of the window-phase jitter stream.
    pub phase: u64,
    /// Current stage-1 window length as a fraction of `tc`.
    pub scale: f64,
}

/// A checkpoint deferred during a quiet run: everything the eventual
/// [`DetectorCheckpoint`] needs that is *not* constant across the run.
///
/// The ledger, armed filter, and config fingerprint cannot change while
/// stage 1 stays quiet, so materialization
/// (`AnvilDetector::materialize_quiet_checkpoint`) reads those from the
/// live detector at flush time; the fields here are the ones that move
/// per window. `resamples` is omitted: every quiet window stores zero
/// (stage-1 restart resets the sticky-sampling depth), so the
/// materialized checkpoint records 0. The PEBS jitter position is
/// captured eagerly because materialization can happen after the PMU
/// has moved on (e.g. at a teardown sync).
///
/// [`DetectorCheckpoint`]: crate::DetectorCheckpoint
#[derive(Debug, Clone, PartialEq)]
pub struct QuietCheckpoint {
    /// Next service deadline at checkpoint time.
    pub deadline: Cycle,
    /// Detector activity counters at checkpoint time.
    pub stats: DetectorStats,
    /// Stage-1 EWMA carry at checkpoint time.
    pub carry: f64,
    /// Window-phase jitter stream position at checkpoint time.
    pub phase_state: u64,
    /// Stage-1 window scale at checkpoint time.
    pub window_scale: f64,
    /// The PEBS sampler's programmed jitter-stream position (constant
    /// across a quiet run; captured eagerly anyway).
    pub pebs_jitter: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The contract the tentpole rests on: an epoch horizon never skips
    /// past a refresh deadline, a detector window boundary, or a
    /// registered fault site — the earliest candidate always wins.
    #[test]
    fn an_epoch_never_skips_past_a_registered_event() {
        let window = EpochHorizon {
            at: 15_600_000,
            event: EpochEvent::WindowBoundary,
        };
        let refresh = EpochHorizon {
            at: 166_400_000,
            event: EpochEvent::RefreshDeadline,
        };
        let fault = EpochHorizon {
            at: 9_000_000,
            event: EpochEvent::FaultSite,
        };
        let run_end = EpochHorizon {
            at: 1_000_000_000,
            event: EpochEvent::RunEnd,
        };
        let h = EpochHorizon::earliest([window, refresh, fault, run_end]).unwrap();
        assert_eq!(h, fault, "the earliest registered site bounds the epoch");

        // Remove the fault site: the window boundary is next.
        let h = EpochHorizon::earliest([window, refresh, run_end]).unwrap();
        assert_eq!(h, window);

        // Remove the window too: the refresh deadline bounds the epoch
        // long before the run end.
        let h = EpochHorizon::earliest([refresh, run_end]).unwrap();
        assert_eq!(h, refresh);
    }

    #[test]
    fn simultaneous_events_break_ties_by_taxonomy_priority() {
        let at = 4_242;
        let mk = |event| EpochHorizon { at, event };
        let h = EpochHorizon::earliest([
            mk(EpochEvent::CoreYield),
            mk(EpochEvent::FaultSite),
            mk(EpochEvent::WindowBoundary),
            mk(EpochEvent::RefreshDeadline),
        ])
        .unwrap();
        assert_eq!(h.event, EpochEvent::WindowBoundary);
    }

    #[test]
    fn empty_candidate_sets_have_no_horizon() {
        assert_eq!(EpochHorizon::earliest([]), None);
    }
}
