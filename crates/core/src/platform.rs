//! The full-system platform: cores running workloads and attacks against
//! the shared memory system, the PMU, and (optionally) the ANVIL kernel
//! module.
//!
//! Each program gets its own core with a private logical clock, as on the
//! paper's multi-core test machine; the runner always advances the core
//! with the smallest local time, so the shared memory system sees accesses
//! in (approximately) global time order. Detector work, PMIs, PEBS
//! assists, and selective-refresh reads are charged to core time — that
//! accounting is what reproduces the paper's slowdown numbers (Figures 3
//! and 4).

use crate::config::AnvilConfig;
use crate::detector::{AnvilDetector, DetectorStats, ServiceOutcome};
use crate::epoch::EpochEvent;
use crate::error::PlatformError;
use crate::guard::{StateCorruption, StateSite};
use crate::locality::LocalityReport;
use anvil_attacks::{Attack, AttackEnv, AttackOp};
use anvil_dram::{Cycle, RowId};
use anvil_faults::{
    DelayInjector, FaultPlan, FaultRng, StateCorruptionInjector, TranslationInjector,
};
use anvil_mem::{
    AccessKind, AllocationPolicy, FrameAllocator, MemoryConfig, MemorySystem, PagemapPolicy,
    Process,
};
use anvil_pmu::{Pmu, RetiredOp};
use anvil_workloads::Workload;
use serde::{Deserialize, Serialize};

/// What the kernel does with processes ANVIL repeatedly attributes
/// rowhammering to.
///
/// The paper only refreshes victims — attribution-based responses risk
/// punishing false positives. Suspension therefore requires a *streak* of
/// consecutive detections naming the same process: benign programs
/// (Table 4) trip sporadic single detections, while an attacker is flagged
/// every detection cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum ResponsePolicy {
    /// The paper's behaviour: selectively refresh victim rows, nothing
    /// else.
    #[default]
    RefreshOnly,
    /// Refresh, and suspend any process named in this many *consecutive*
    /// detections (a non-detection stage-2 window resets all streaks).
    RefreshAndSuspend {
        /// Consecutive detections naming a pid before it is suspended.
        consecutive_detections: u32,
    },
}

/// Platform-level configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PlatformConfig {
    /// Memory system (caches, DRAM, core model, clock).
    pub memory: MemoryConfig,
    /// ANVIL configuration; `None` runs unprotected.
    pub anvil: Option<AnvilConfig>,
    /// Physical frame allocation policy.
    pub allocation: AllocationPolicy,
    /// Pagemap exposure policy.
    pub pagemap: PagemapPolicy,
    /// Response to attributed rowhammering.
    pub response: ResponsePolicy,
    /// Substrate fault injection; [`FaultPlan::none`] (the default) runs
    /// a perfect substrate.
    pub faults: FaultPlan,
}

impl PlatformConfig {
    /// The paper's platform, unprotected.
    pub fn unprotected() -> Self {
        PlatformConfig {
            memory: MemoryConfig::paper_platform(),
            anvil: None,
            allocation: AllocationPolicy::Contiguous,
            pagemap: PagemapPolicy::Open,
            response: ResponsePolicy::RefreshOnly,
            faults: FaultPlan::none(),
        }
    }

    /// The paper's platform with ANVIL loaded in the given configuration.
    pub fn with_anvil(anvil: AnvilConfig) -> Self {
        let mut c = Self::unprotected();
        c.anvil = Some(anvil);
        c
    }

    /// The same platform with the given fault plan injected.
    #[must_use]
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }
}

impl Default for PlatformConfig {
    fn default() -> Self {
        Self::unprotected()
    }
}

/// One rowhammer detection, as recorded by the platform.
#[derive(Debug, Clone, PartialEq)]
pub struct DetectionEvent {
    /// When the stage-2 analysis flagged the attack.
    pub cycle: Cycle,
    /// The analysis result.
    pub report: LocalityReport,
    /// Victim rows selectively refreshed in response.
    pub refreshed: Vec<RowId>,
}

/// Public per-core counters.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CoreStats {
    /// Process id of the program on this core.
    pub pid: u32,
    /// Program name.
    pub name: String,
    /// Operations executed.
    pub ops: u64,
    /// Core-local time (cycles), including detector charges.
    pub cycles: Cycle,
}

/// Upper bound on operations executed per [`Platform::run_batch`] call:
/// long enough to amortize the per-batch scheduling scan, short enough
/// that a batch never holds many milliseconds of simulated time.
const BATCH_OPS: u64 = 1024;

/// The typed bound set one batch runs under — the platform's instance of
/// the event taxonomy in [`epoch`](crate::epoch). A batch **never steps
/// past** any of these: the detector's window boundary, the DRAM
/// refresh/compaction deadline, the run horizon, or a scheduler yield
/// point. Per-event checks match the historical per-op loop exactly
/// (`>= yield_lo` vs `> yield_hi` encodes the lowest-index tie-break;
/// the refresh deadline is tested against system time because writebacks
/// advance memory beyond the core's local clock).
#[derive(Debug, Clone, Copy)]
struct BatchHorizons {
    /// [`EpochEvent::WindowBoundary`]: the detector's service deadline.
    window: Cycle,
    /// [`EpochEvent::RefreshDeadline`]: the next compaction epoch.
    refresh: Cycle,
    /// [`EpochEvent::RunEnd`]: the caller's limit.
    run_end: Cycle,
    /// [`EpochEvent::CoreYield`]: an earlier core reaches this clock.
    yield_lo: Cycle,
    /// [`EpochEvent::CoreYield`]: a later core falls strictly behind.
    yield_hi: Cycle,
}

impl BatchHorizons {
    /// The event due at (`local`, `sys_now`), if any — checked once per
    /// op so a batch stops *at* the first horizon it reaches, never past
    /// it. Check order mirrors [`EpochEvent`]'s tie-break priority.
    fn event_due(&self, local: Cycle, sys_now: Cycle) -> Option<EpochEvent> {
        if local >= self.window {
            return Some(EpochEvent::WindowBoundary);
        }
        if sys_now >= self.refresh {
            return Some(EpochEvent::RefreshDeadline);
        }
        if local >= self.run_end {
            return Some(EpochEvent::RunEnd);
        }
        if local >= self.yield_lo || local > self.yield_hi {
            return Some(EpochEvent::CoreYield);
        }
        None
    }
}

/// Number of slices the incremental state scrub divides the detector's
/// cells into: each serviced window verifies one slice, so every cell is
/// checked at least once every `SCRUB_SLICES` windows (~24 ms at the
/// paper's 6 ms `tc`).
pub const SCRUB_SLICES: u64 = 4;

enum Program {
    Workload(Box<dyn Workload>),
    Attack(Box<dyn Attack>),
}

impl std::fmt::Debug for Program {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Program::Workload(w) => write!(f, "Workload({})", w.name()),
            Program::Attack(a) => write!(f, "Attack({})", a.name()),
        }
    }
}

#[derive(Debug)]
struct Core {
    process: Process,
    program: Program,
    base_va: u64,
    local: Cycle,
    ops: u64,
    suspended: bool,
}

/// The platform runner.
///
/// # Examples
///
/// ```
/// use anvil_core::{AnvilConfig, Platform, PlatformConfig};
/// use anvil_workloads::SpecBenchmark;
///
/// let mut platform = Platform::new(PlatformConfig::with_anvil(AnvilConfig::baseline()));
/// let pid = platform.add_workload(SpecBenchmark::Mcf.build(1))?;
/// platform.run_ms(1.0)?;
/// assert!(platform.core_stats(pid).unwrap().ops > 0);
/// # Ok::<(), anvil_core::PlatformError>(())
/// ```
#[derive(Debug)]
pub struct Platform {
    config: PlatformConfig,
    sys: MemorySystem,
    pmu: Pmu,
    detector: Option<AnvilDetector>,
    frames: FrameAllocator,
    cores: Vec<Core>,
    next_pid: u32,
    detections: Vec<DetectionEvent>,
    refresh_log: Vec<(Cycle, RowId)>,
    suspect_streaks: std::collections::HashMap<u32, u32>,
    translation_faults: Option<TranslationInjector>,
    interrupt_jitter: Option<DelayInjector>,
    service_delay: Option<DelayInjector>,
    state_faults: Option<StateCorruptionInjector>,
    scrub_slice: u64,
    state_corruptions: Vec<StateCorruption>,
    started: Cycle,
    last_compact: Cycle,
}

impl Platform {
    /// Boots the platform.
    pub fn new(config: PlatformConfig) -> Self {
        let mut sys = MemorySystem::new(config.memory);
        let mut pmu = Pmu::new(
            config
                .anvil
                .map_or_else(anvil_pmu::SamplerConfig::anvil_default, |a| a.sampling),
        );
        // Each fault site forks its own stream from the campaign seed, so
        // enabling one source never perturbs another's sequence.
        let plan = config.faults;
        let root = FaultRng::new(plan.seed);
        pmu.set_fault_injector(plan.pebs_injector(root.fork(1)));
        pmu.set_counter_saturation(plan.counter.saturate_at);
        let translation_faults = plan.translation_injector(root.fork(2));
        let interrupt_jitter = plan.interrupt_delay(root.fork(3));
        let service_delay = plan.service_delay(root.fork(4));
        let state_faults = plan.state_injector(root.fork(6));
        sys.set_refresh_postpone(plan.refresh_postpone());
        let detector = config.anvil.map(|a| {
            AnvilDetector::new(
                a,
                &config.memory.clock,
                config.memory.dram.timing.refresh_period,
                0,
                &mut pmu,
            )
        });
        let frames = FrameAllocator::new(sys.phys().capacity(), config.allocation);
        Platform {
            sys,
            pmu,
            detector,
            frames,
            cores: Vec::new(),
            next_pid: 100,
            detections: Vec::new(),
            refresh_log: Vec::new(),
            suspect_streaks: std::collections::HashMap::new(),
            translation_faults,
            interrupt_jitter,
            service_delay,
            state_faults,
            scrub_slice: 0,
            state_corruptions: Vec::new(),
            started: 0,
            last_compact: 0,
            config,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &PlatformConfig {
        &self.config
    }

    /// The shared memory system.
    pub fn sys(&self) -> &MemorySystem {
        &self.sys
    }

    /// Mutable access to the memory system, for experiment setup (staging
    /// victim data, direct inspection). Not used by programs themselves.
    pub fn sys_mut(&mut self) -> &mut MemorySystem {
        &mut self.sys
    }

    /// The PMU (for inspection).
    pub fn pmu(&self) -> &Pmu {
        &self.pmu
    }

    /// Detector counters, if ANVIL is loaded.
    pub fn detector_stats(&self) -> Option<&DetectorStats> {
        self.detector.as_ref().map(AnvilDetector::stats)
    }

    /// Detections so far.
    pub fn detections(&self) -> &[DetectionEvent] {
        &self.detections
    }

    /// Every selective refresh performed: (cycle, victim row).
    pub fn refresh_log(&self) -> &[(Cycle, RowId)] {
        &self.refresh_log
    }

    /// Bit flips the DRAM has produced so far.
    pub fn total_flips(&self) -> u64 {
        self.sys.total_flips()
    }

    /// Every detector-state corruption surfaced so far (repaired or
    /// escalated), in discovery order.
    pub fn state_corruptions(&self) -> &[StateCorruption] {
        &self.state_corruptions
    }

    /// Switches the detector's state cells between guarded (replicated,
    /// checksummed, scrubbed — the default) and unguarded (blind replica-0
    /// reads, the ablation baseline). No-op when ANVIL is not loaded.
    pub fn set_state_guard(&mut self, guarded: bool) {
        if let Some(det) = self.detector.as_mut() {
            det.set_state_guard(guarded);
        }
    }

    /// Flips `bit` of the replicas in `replica_mask` of detector state
    /// cell `index` — the hook physical disturbance models use to land
    /// flips in the detector's own rows. Returns the corrupted site, or
    /// `None` when ANVIL is not loaded or the index is out of range.
    pub fn corrupt_state_cell(
        &mut self,
        index: usize,
        replica_mask: u8,
        bit: u8,
    ) -> Option<StateSite> {
        self.detector
            .as_mut()
            .and_then(|det| det.corrupt_state_cell(index, replica_mask, bit))
    }

    /// The number of live detector state cells (fixed scalar cells plus
    /// two per suspicion-ledger entry); zero when ANVIL is not loaded.
    pub fn state_cell_count(&self) -> usize {
        self.detector
            .as_ref()
            .map_or(0, AnvilDetector::state_cell_count)
    }

    /// Global time: the minimum core-local clock (all cores have reached
    /// it), or the memory-system clock when no cores exist.
    pub fn now(&self) -> Cycle {
        self.cores
            .iter()
            .filter(|c| !c.suspended)
            .map(|c| c.local)
            .min()
            .or_else(|| self.cores.iter().map(|c| c.local).min())
            .unwrap_or_else(|| self.sys.now())
    }

    /// Adds a workload on its own core; returns the pid.
    ///
    /// # Errors
    ///
    /// [`PlatformError::OutOfMemory`] if physical memory is exhausted
    /// mapping the arena.
    pub fn add_workload(&mut self, workload: Box<dyn Workload>) -> Result<u32, PlatformError> {
        let pid = self.next_pid;
        self.next_pid += 1;
        let mut process = Process::new(pid, workload.name());
        let requested = workload.arena_bytes();
        let base_va = process
            .mmap(requested, &mut self.frames)
            .map_err(|_| PlatformError::OutOfMemory { pid, requested })?;
        let start = self.now();
        self.cores.push(Core {
            process,
            program: Program::Workload(workload),
            base_va,
            local: start,
            ops: 0,
            suspended: false,
        });
        Ok(pid)
    }

    /// Adds (and prepares) an attack on its own core; returns the pid.
    ///
    /// # Errors
    ///
    /// [`PlatformError::Attack`] wrapping the attack's preparation
    /// failure (e.g. pagemap denied).
    pub fn add_attack(&mut self, mut attack: Box<dyn Attack>) -> Result<u32, PlatformError> {
        let pid = self.next_pid;
        self.next_pid += 1;
        let mut process = Process::new(pid, attack.name());
        attack.prepare(&mut AttackEnv {
            sys: &mut self.sys,
            process: &mut process,
            frames: &mut self.frames,
            pagemap: self.config.pagemap,
        })?;
        let start = self.now();
        self.cores.push(Core {
            process,
            program: Program::Attack(attack),
            base_va: 0,
            local: start,
            ops: 0,
            suspended: false,
        });
        Ok(pid)
    }

    /// Per-core counters for `pid`.
    pub fn core_stats(&self, pid: u32) -> Option<CoreStats> {
        self.cores
            .iter()
            .find(|c| c.process.pid() == pid)
            .map(|c| CoreStats {
                pid,
                name: format!("{:?}", c.program),
                ops: c.ops,
                cycles: c.local,
            })
    }

    /// Aggressor/victim ground truth of the attack running as `pid`
    /// (empty for workloads).
    pub fn attack_truth(&self, pid: u32) -> (Vec<u64>, Vec<u64>) {
        match self.cores.iter().find(|c| c.process.pid() == pid) {
            Some(Core {
                program: Program::Attack(a),
                ..
            }) => (a.aggressor_paddrs(), a.victim_paddrs()),
            _ => (Vec::new(), Vec::new()),
        }
    }

    /// Runs for `ms` of simulated time.
    ///
    /// # Errors
    ///
    /// See [`Platform::run_until`].
    pub fn run_ms(&mut self, ms: f64) -> Result<(), PlatformError> {
        let end = self.now() + self.config.memory.clock.ms_to_cycles(ms);
        self.run_until(end)
    }

    /// Runs until every core's local clock reaches `end`.
    ///
    /// # Errors
    ///
    /// [`PlatformError::NoPrograms`] if nothing was added, or any fault
    /// a program trips while running (unmapped accesses).
    pub fn run_until(&mut self, end: Cycle) -> Result<(), PlatformError> {
        if self.cores.is_empty() {
            return Err(PlatformError::NoPrograms);
        }
        loop {
            let Some(idx) = self.min_core() else {
                return Ok(()); // every core suspended
            };
            if self.cores[idx].local >= end {
                break;
            }
            self.run_batch(idx, BATCH_OPS, end)?;
            self.service_detector();
            self.maybe_compact();
        }
        Ok(())
    }

    /// Runs until core `pid` has executed `ops` more operations (other
    /// cores keep pace in time).
    ///
    /// # Errors
    ///
    /// [`PlatformError::UnknownPid`] if no core runs `pid`, or any fault
    /// a program trips while running.
    pub fn run_core_ops(&mut self, pid: u32, ops: u64) -> Result<(), PlatformError> {
        let target_idx = self
            .cores
            .iter()
            .position(|c| c.process.pid() == pid)
            .ok_or(PlatformError::UnknownPid(pid))?;
        let goal = self.cores[target_idx].ops + ops;
        while self.cores[target_idx].ops < goal {
            let Some(idx) = self.min_core() else {
                return Ok(()); // every core suspended
            };
            if self.cores[target_idx].suspended {
                return Ok(()); // the target itself was suspended
            }
            let cap = if idx == target_idx {
                BATCH_OPS.min(goal - self.cores[target_idx].ops)
            } else {
                BATCH_OPS
            };
            self.run_batch(idx, cap, Cycle::MAX)?;
            self.service_detector();
            self.maybe_compact();
        }
        Ok(())
    }

    /// Executes up to `max_ops` operations on core `idx` — the scheduler's
    /// current pick — stopping at the batch's [`BatchHorizons`]: the
    /// platform instance of the event taxonomy in [`epoch`](crate::epoch).
    /// Everything the per-op loop used to recompute (scheduler scan,
    /// detector deadline test, compaction test) is hoisted here and
    /// amortized over the batch; the observable schedule is identical.
    /// Returns the event class that ended the batch.
    ///
    /// This is the engine's **per-op fallback region**: platform
    /// workloads and attacks mutate cache recency, row buffers, and the
    /// sampler on every access, so no closed form is valid between
    /// horizons and each op is stepped individually. The window-granular
    /// engines (`anvil-runtime`'s soak path) are where benign epochs
    /// collapse to one analytical jump; the horizon discipline — never
    /// step past a window boundary, refresh deadline, or registered
    /// fault site — is shared.
    fn run_batch(
        &mut self,
        idx: usize,
        max_ops: u64,
        limit: Cycle,
    ) -> Result<EpochEvent, PlatformError> {
        let horizons = self.batch_horizons(idx, limit);
        let mut ops = 0u64;
        loop {
            self.step_op(idx)?;
            ops += 1;
            let local = self.cores[idx].local;
            if let Some(event) = horizons.event_due(local, self.sys.now()) {
                return Ok(event);
            }
            if ops >= max_ops {
                // The batch quantum itself: a scheduler yield, so
                // cross-core interleavings replay identically at any
                // batch size.
                return Ok(EpochEvent::CoreYield);
            }
        }
    }

    /// Computes the typed bound set one batch of core `idx` runs under.
    /// Only core `idx` advances inside the batch, so the other cores'
    /// clocks — and thus these bounds — are invariant for its duration.
    fn batch_horizons(&self, idx: usize, limit: Cycle) -> BatchHorizons {
        // The scheduler breaks ties by lowest index: `idx` stays the pick
        // while it is strictly below every earlier core and no later core
        // is strictly below it.
        let mut yield_lo = Cycle::MAX;
        let mut yield_hi = Cycle::MAX;
        for (j, c) in self.cores.iter().enumerate() {
            if c.suspended || j == idx {
                continue;
            }
            if j < idx {
                yield_lo = yield_lo.min(c.local);
            } else {
                yield_hi = yield_hi.min(c.local);
            }
        }
        BatchHorizons {
            window: self
                .detector
                .as_ref()
                .map_or(Cycle::MAX, AnvilDetector::deadline),
            refresh: self
                .last_compact
                .saturating_add(self.config.memory.dram.timing.refresh_period),
            run_end: limit,
            yield_lo,
            yield_hi,
        }
    }

    fn min_core(&self) -> Option<usize> {
        self.cores
            .iter()
            .enumerate()
            .filter(|(_, c)| !c.suspended)
            .min_by_key(|(_, c)| c.local)
            .map(|(i, _)| i)
    }

    /// Pids currently suspended by the response policy.
    pub fn suspended_pids(&self) -> Vec<u32> {
        self.cores
            .iter()
            .filter(|c| c.suspended)
            .map(|c| c.process.pid())
            .collect()
    }

    /// Executes one operation on core `idx` (no scheduler or detector
    /// bookkeeping — that lives in [`run_batch`](Self::run_batch) and the
    /// outer run loops).
    fn step_op(&mut self, idx: usize) -> Result<(), PlatformError> {
        let core = &mut self.cores[idx];
        let pid = core.process.pid();
        let (vaddr, outcome) = match &mut core.program {
            Program::Workload(w) => {
                let op = w.next_op();
                let vaddr = core.base_va + op.offset;
                let t = core.local + op.compute_cycles;
                let paddr = core
                    .process
                    .translate(vaddr)
                    .ok_or(PlatformError::UnmappedAccess { pid, vaddr })?;
                let o = self.sys.access_at(paddr, op.kind, t);
                core.local = t + o.advance;
                (vaddr, Some(o))
            }
            Program::Attack(a) => match a.next_op() {
                AttackOp::Access { vaddr, kind } => {
                    let paddr = core
                        .process
                        .translate(vaddr)
                        .ok_or(PlatformError::UnmappedAccess { pid, vaddr })?;
                    let o = self.sys.access_at(paddr, kind, core.local);
                    core.local += o.advance;
                    (vaddr, Some(o))
                }
                AttackOp::Clflush { vaddr } => {
                    let paddr = core
                        .process
                        .translate(vaddr)
                        .ok_or(PlatformError::UnmappedFlush { pid, vaddr })?;
                    self.sys.clflush_at(paddr, core.local);
                    core.local += self.config.memory.core.clflush_cost;
                    (vaddr, None)
                }
                AttackOp::Compute { cycles } => {
                    core.local += cycles;
                    (0, None)
                }
            },
        };
        core.ops += 1;

        if let Some(o) = outcome {
            let t = core.local;
            let effect = self.pmu.observe_at(
                &RetiredOp {
                    vaddr,
                    pid,
                    outcome: o,
                },
                t,
            );
            if let Some(det) = &self.detector {
                let costs = det.config().costs;
                if effect.sampled {
                    self.cores[idx].local += costs.sample;
                }
                if effect.interrupt.is_some() {
                    self.cores[idx].local += costs.pmi;
                }
            }
        }
        Ok(())
    }

    /// Runs detector windows whose deadlines every core has passed.
    fn service_detector(&mut self) {
        if self.detector.is_none() {
            return;
        }
        let min_local = self
            .cores
            .iter()
            .filter(|c| !c.suspended)
            .map(|c| c.local)
            .min()
            .expect("a runnable core exists");
        loop {
            let Some(det) = self.detector.as_mut() else {
                return;
            };
            if det.deadline() > min_local {
                return;
            }
            // Injected faults slip the service past its deadline: PMI
            // delivery jitter plus kernel-thread preemption.
            let slip = self
                .interrupt_jitter
                .as_mut()
                .map_or(0, DelayInjector::draw)
                + self.service_delay.as_mut().map_or(0, DelayInjector::draw);
            let now = det.deadline() + slip;
            // Self-integrity: the detector verifies one slice of its own
            // cells every window. Injected state flips land around the
            // slice — before it (repairable this window) or after it (a
            // scrub race that survives until a later pass or a guarded
            // read catches it).
            if let Some(inj) = self.state_faults.as_mut() {
                let flips = inj.window_flips(det.state_cell_count());
                for f in flips.iter().filter(|f| !f.after_scrub) {
                    det.corrupt_state_cell(f.cell, f.replica_mask, f.bit);
                }
                det.scrub_state_slice(self.scrub_slice, SCRUB_SLICES);
                for f in flips.iter().filter(|f| f.after_scrub) {
                    det.corrupt_state_cell(f.cell, f.replica_mask, f.bit);
                }
            } else {
                det.scrub_state_slice(self.scrub_slice, SCRUB_SLICES);
            }
            self.scrub_slice = (self.scrub_slice + 1) % SCRUB_SLICES;
            let mapping = *self.sys.dram().mapping();
            let cores = &self.cores;
            let faults = &mut self.translation_faults;
            let mut translate = |pid: u32, va: u64| {
                let process = cores
                    .iter()
                    .find(|c| c.process.pid() == pid)
                    .map(|c| &c.process)?;
                match faults.as_mut() {
                    Some(inj) => process.translate_with_faults(va, inj),
                    None => process.translate(va),
                }
            };
            let outcome = det.service(now, &mut self.pmu, &mapping, &mut translate);
            let costs = det.config().costs;

            // The detector runs in kernel context on whichever core the
            // timer interrupted; charge the laggard (it is the next to
            // run).
            let victim_core = self
                .cores
                .iter()
                .enumerate()
                .filter(|(_, c)| !c.suspended)
                .min_by_key(|(_, c)| c.local)
                .map(|(i, _)| i)
                .expect("a runnable core exists");

            match outcome {
                ServiceOutcome::Quiet { cost, .. } | ServiceOutcome::Armed { cost, .. } => {
                    self.cores[victim_core].local += cost;
                }
                ServiceOutcome::Analyzed {
                    report,
                    refreshes,
                    cost,
                } => {
                    self.cores[victim_core].local += cost;
                    if report.detected() {
                        self.commit_detection(
                            now,
                            victim_core,
                            costs.refresh_read,
                            report,
                            &refreshes,
                        );
                    } else {
                        // A clean stage-2 window breaks every suspect's
                        // streak: sporadic false positives never accumulate
                        // to a suspension.
                        self.suspect_streaks.clear();
                    }
                }
                ServiceOutcome::Degraded {
                    report,
                    refreshes,
                    banks,
                    cost,
                } => {
                    self.cores[victim_core].local += cost;
                    if report.detected() {
                        self.commit_detection(
                            now,
                            victim_core,
                            costs.refresh_read,
                            report,
                            &refreshes,
                        );
                    }
                    // Conservative fallback: blanket-refresh the suspect
                    // banks. A degraded window is not clean evidence, so
                    // suspect streaks are left untouched either way.
                    for &bank in &banks {
                        self.sys.refresh_bank(bank, now);
                        self.cores[victim_core].local += costs.bank_refresh;
                    }
                }
            }
            // Every corruption the scrub or a guarded read surfaced this
            // window becomes part of the platform's declared record —
            // nothing is silently absorbed.
            if let Some(det) = self.detector.as_mut() {
                self.state_corruptions.extend(det.take_state_corruptions());
            }
        }
    }

    /// Performs the selective refreshes for a detection, applies the
    /// response policy, and records the event.
    fn commit_detection(
        &mut self,
        now: Cycle,
        victim_core: usize,
        refresh_read: Cycle,
        report: LocalityReport,
        refreshes: &[(RowId, u64)],
    ) {
        let mut refreshed = Vec::new();
        for &(row, paddr) in refreshes {
            // Flush then read so the read reaches DRAM and actually
            // restores the victim row's charge.
            self.sys.clflush_at(paddr, now);
            self.sys.access_at(paddr, AccessKind::Read, now);
            self.cores[victim_core].local += refresh_read;
            self.refresh_log.push((now, row));
            refreshed.push(row);
        }
        self.apply_response(&report);
        self.detections.push(DetectionEvent {
            cycle: now,
            report,
            refreshed,
        });
    }

    /// Applies the configured response policy to a detection's suspects.
    fn apply_response(&mut self, report: &LocalityReport) {
        let ResponsePolicy::RefreshAndSuspend {
            consecutive_detections,
        } = self.config.response
        else {
            return;
        };
        let mut suspects: Vec<u32> = report
            .aggressors
            .iter()
            .flat_map(|a| a.pids.iter().copied())
            .collect();
        suspects.sort_unstable();
        suspects.dedup();
        // Streaks only persist for pids named again this detection.
        self.suspect_streaks.retain(|pid, _| suspects.contains(pid));
        for pid in suspects {
            let streak = self.suspect_streaks.entry(pid).or_insert(0);
            *streak += 1;
            if *streak >= consecutive_detections {
                if let Some(core) = self.cores.iter_mut().find(|c| c.process.pid() == pid) {
                    core.suspended = true;
                }
            }
        }
    }

    /// Bounds simulator memory on long runs.
    fn maybe_compact(&mut self) {
        let period = self.config.memory.dram.timing.refresh_period;
        let now = self.sys.now();
        if now.saturating_sub(self.last_compact) >= period {
            self.sys.compact();
            self.last_compact = now;
        }
    }

    /// Time (ms since the platform started) of the first detection, if
    /// any.
    pub fn first_detection_ms(&self) -> Option<f64> {
        self.detections.first().map(|d| {
            self.config
                .memory
                .clock
                .cycles_to_ms(d.cycle - self.started)
        })
    }

    /// Selective refreshes per 64 ms refresh window, averaged over the run
    /// so far.
    pub fn refreshes_per_window(&self) -> f64 {
        let period = self.config.memory.dram.timing.refresh_period;
        let elapsed = self.now().saturating_sub(self.started).max(1);
        self.refresh_log.len() as f64 * period as f64 / elapsed as f64
    }

    /// Selective refreshes per second, averaged over the run so far (the
    /// paper's false-positive metric in Tables 4 and 5).
    pub fn refreshes_per_second(&self) -> f64 {
        let elapsed_s = self
            .config
            .memory
            .clock
            .cycles_to_s(self.now().saturating_sub(self.started))
            .max(1e-12);
        self.refresh_log.len() as f64 / elapsed_s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anvil_attacks::{ClflushFreeDoubleSided, DoubleSidedClflush};
    use anvil_workloads::SpecBenchmark;

    #[test]
    fn unprotected_attack_flips_bits() {
        let mut p = Platform::new(PlatformConfig::unprotected());
        // Scan pair indices for a vulnerable victim like a real attacker.
        let mut added = false;
        for i in 0..16 {
            let mut probe = Platform::new(PlatformConfig::unprotected());
            let pid = probe
                .add_attack(Box::new(DoubleSidedClflush::new().with_pair_index(i)))
                .unwrap();
            let (_, victims) = probe.attack_truth(pid);
            let row = probe
                .sys()
                .dram()
                .mapping()
                .location_of(victims[0])
                .row_id();
            if probe.sys().dram().is_vulnerable_row(row) {
                p.add_attack(Box::new(DoubleSidedClflush::new().with_pair_index(i)))
                    .unwrap();
                added = true;
                break;
            }
        }
        assert!(added, "no vulnerable pair in 16 candidates");
        p.run_ms(40.0).unwrap();
        assert!(p.total_flips() > 0, "unprotected hammer must flip");
    }

    #[test]
    fn anvil_stops_the_clflush_attack_and_detects_quickly() {
        let mut p = Platform::new(PlatformConfig::with_anvil(AnvilConfig::baseline()));
        p.add_attack(Box::new(DoubleSidedClflush::new())).unwrap();
        p.run_ms(80.0).unwrap();
        assert_eq!(p.total_flips(), 0, "ANVIL must prevent all flips");
        let t = p.first_detection_ms().expect("attack must be detected");
        assert!(
            (10.0..20.0).contains(&t),
            "Table 3 says ~12.3 ms under light load; got {t:.1} ms"
        );
        assert!(
            p.refreshes_per_window() > 1.0,
            "victims refreshed repeatedly"
        );
    }

    #[test]
    fn anvil_stops_the_clflush_free_attack() {
        let mut p = Platform::new(PlatformConfig::with_anvil(AnvilConfig::baseline()));
        p.add_attack(Box::new(ClflushFreeDoubleSided::new()))
            .unwrap();
        p.run_ms(100.0).unwrap();
        assert_eq!(p.total_flips(), 0);
        let t = p
            .first_detection_ms()
            .expect("CLFLUSH-free attack must be detected");
        assert!(
            t < 64.0,
            "detected within one refresh window; got {t:.1} ms"
        );
    }

    #[test]
    fn refreshed_rows_include_the_true_victim() {
        let mut p = Platform::new(PlatformConfig::with_anvil(AnvilConfig::baseline()));
        let pid = p.add_attack(Box::new(DoubleSidedClflush::new())).unwrap();
        let (_, victims) = p.attack_truth(pid);
        let victim_row = p.sys().dram().mapping().location_of(victims[0]).row_id();
        p.run_ms(30.0).unwrap();
        assert!(
            p.refresh_log().iter().any(|(_, r)| *r == victim_row),
            "the sandwiched victim row must be among the refreshes"
        );
    }

    #[test]
    fn benign_workload_runs_without_detections() {
        let mut p = Platform::new(PlatformConfig::with_anvil(AnvilConfig::baseline()));
        let pid = p.add_workload(SpecBenchmark::Libquantum.build(3)).unwrap();
        p.run_ms(60.0).unwrap();
        assert_eq!(p.total_flips(), 0);
        // Streaming traffic crosses stage 1 but must (almost) never lead
        // to detections.
        let stats = p.detector_stats().unwrap();
        assert!(stats.threshold_crossings > 0, "libquantum is memory-bound");
        assert!(
            p.refreshes_per_second() < 5.0,
            "false positives too frequent: {}/s",
            p.refreshes_per_second()
        );
        assert!(p.core_stats(pid).unwrap().ops > 100_000);
    }

    #[test]
    fn compute_bound_workload_never_arms_stage2() {
        let mut p = Platform::new(PlatformConfig::with_anvil(AnvilConfig::baseline()));
        p.add_workload(SpecBenchmark::H264ref.build(3)).unwrap();
        p.run_ms(30.0).unwrap();
        let stats = p.detector_stats().unwrap();
        assert_eq!(
            stats.threshold_crossings, 0,
            "h264ref must stay below the stage-1 threshold"
        );
        assert_eq!(stats.stage2_windows, 0);
    }

    #[test]
    fn anvil_overhead_is_small_for_benign_programs() {
        let ops = 300_000;
        let mut base = Platform::new(PlatformConfig::unprotected());
        let pid_b = base.add_workload(SpecBenchmark::Mcf.build(7)).unwrap();
        base.run_core_ops(pid_b, ops).unwrap();
        let t_base = base.core_stats(pid_b).unwrap().cycles;

        let mut anvil = Platform::new(PlatformConfig::with_anvil(AnvilConfig::baseline()));
        let pid_a = anvil.add_workload(SpecBenchmark::Mcf.build(7)).unwrap();
        anvil.run_core_ops(pid_a, ops).unwrap();
        let t_anvil = anvil.core_stats(pid_a).unwrap().cycles;

        let slowdown = t_anvil as f64 / t_base as f64;
        assert!(
            (1.0..1.06).contains(&slowdown),
            "mcf slowdown should be a few percent at most: {slowdown:.4}"
        );
        assert!(slowdown > 1.0005, "memory-bound mcf must pay something");
    }

    #[test]
    fn heavy_load_slows_detection_but_not_protection() {
        let mut p = Platform::new(PlatformConfig::with_anvil(AnvilConfig::baseline()));
        for b in SpecBenchmark::memory_intensive() {
            p.add_workload(b.build(11)).unwrap();
        }
        p.add_attack(Box::new(ClflushFreeDoubleSided::new()))
            .unwrap();
        p.run_ms(150.0).unwrap();
        assert_eq!(p.total_flips(), 0, "no flips even under heavy load");
        assert!(p.first_detection_ms().is_some(), "still detected");
    }
}

#[cfg(test)]
mod response_tests {
    use super::*;
    use anvil_workloads::SpecBenchmark;

    #[test]
    fn refresh_only_never_suspends() {
        let mut p = Platform::new(PlatformConfig::with_anvil(AnvilConfig::baseline()));
        p.add_attack(Box::new(anvil_attacks::DoubleSidedClflush::new()))
            .unwrap();
        p.run_ms(60.0).unwrap();
        assert!(!p.detections().is_empty());
        assert!(
            p.suspended_pids().is_empty(),
            "default policy must not suspend"
        );
    }

    #[test]
    fn run_terminates_when_every_core_is_suspended() {
        let mut pc = PlatformConfig::with_anvil(AnvilConfig::baseline());
        pc.response = ResponsePolicy::RefreshAndSuspend {
            consecutive_detections: 1,
        };
        let mut p = Platform::new(pc);
        let pid = p
            .add_attack(Box::new(anvil_attacks::DoubleSidedClflush::new()))
            .unwrap();
        // The attacker is the only program; once suspended the run must
        // return rather than spin.
        p.run_ms(200.0).unwrap();
        assert_eq!(p.suspended_pids(), vec![pid]);
        // And run_core_ops on the suspended target returns immediately.
        let ops = p.core_stats(pid).unwrap().ops;
        p.run_core_ops(pid, 1_000).unwrap();
        assert_eq!(p.core_stats(pid).unwrap().ops, ops);
    }

    #[test]
    fn single_detection_does_not_suspend_with_streak_of_three() {
        let mut pc = PlatformConfig::with_anvil(AnvilConfig::baseline());
        pc.response = ResponsePolicy::RefreshAndSuspend {
            consecutive_detections: 3,
        };
        let mut p = Platform::new(pc);
        p.add_workload(SpecBenchmark::Bzip2.build(17)).unwrap();
        // bzip2's false positives are sporadic; even over a long run it
        // must never accumulate three consecutive detections.
        p.run_ms(400.0).unwrap();
        assert!(
            p.suspended_pids().is_empty(),
            "benign bzip2 suspended after {} detections",
            p.detections().len()
        );
    }

    #[test]
    fn core_stats_reports_program_names() {
        let mut p = Platform::new(PlatformConfig::unprotected());
        let pid = p.add_workload(SpecBenchmark::Mcf.build(1)).unwrap();
        let s = p.core_stats(pid).unwrap();
        assert!(s.name.contains("mcf"));
        assert_eq!(s.ops, 0);
        assert!(p.core_stats(9999).is_none());
    }
}
