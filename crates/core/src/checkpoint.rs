//! Versioned, checksummed detector checkpoints.
//!
//! The real ANVIL ships as a loadable kernel module, so the detector has
//! a lifecycle: it can crash, be reloaded, and be reconfigured while the
//! machine keeps running. A restart that forgets the detector's state
//! hands an adaptive adversary exactly what the hardening took away — a
//! fresh EWMA, an empty suspicion ledger, a predictable window phase. The
//! checkpoint carries all of it:
//!
//! * the stage machine (counting vs sampling, the armed PEBS filter, the
//!   next deadline, the sticky-resample depth),
//! * the hardening state (EWMA carry, jitter stream position, current
//!   window scale, the full [`SuspicionLedger`](crate::SuspicionLedger)
//!   as serializable rows),
//! * the activity counters ([`DetectorStats`]), and
//! * a hash of the [`AnvilConfig`] it was taken under, so a resume never
//!   mixes one config's thresholds with another's carried evidence.
//!
//! The wire format is a single FNV-1a-64 checksum line followed by the
//! JSON payload (`"{checksum:016x}\n{json}"`). Any byte flipped at rest —
//! including by the injected checkpoint-corruption fault — changes the
//! recomputed checksum and is rejected as a typed
//! [`RuntimeError::CheckpointCorrupt`] before decoding is attempted, which
//! is what lets the supervisor fall back to a cold start plus full refresh
//! instead of resuming from poisoned state.
//!
//! What a checkpoint deliberately does **not** carry: the PEBS debug-store
//! buffer and the PMU counter contents. Both are volatile hardware state
//! that a crash destroys on the real platform; restore re-arms sampling
//! from an empty buffer and cleared counters, and the recovery protocol's
//! blanket refresh covers whatever evidence the lost window held.

use crate::detector::DetectorStats;
use crate::error::RuntimeError;
use crate::locality::LedgerRow;
use anvil_dram::Cycle;
use anvil_pmu::SampleFilter;
use serde::{Deserialize, Serialize};

/// The checkpoint format version this build reads and writes.
pub const CHECKPOINT_VERSION: u32 = 1;

/// FNV-1a 64-bit hash (the checkpoint checksum and config fingerprint).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Fingerprint of an [`AnvilConfig`](crate::AnvilConfig): the FNV-1a hash
/// of its canonical JSON encoding. Two configs hash equal exactly when
/// every parameter (including hardening and degraded-mode settings) is
/// equal, so a checkpoint can refuse to resume under a different config.
pub fn config_hash(config: &crate::AnvilConfig) -> u64 {
    let json = serde_json::to_string(config).expect("config serialization is infallible");
    fnv1a64(json.as_bytes())
}

/// A full snapshot of [`AnvilDetector`](crate::AnvilDetector) state.
///
/// Produced by [`AnvilDetector::checkpoint`](crate::AnvilDetector::checkpoint),
/// consumed by [`AnvilDetector::restore`](crate::AnvilDetector::restore).
/// A checkpoint taken immediately after a service call restores to a
/// detector that is observationally identical to one that never stopped
/// (the round-trip invariant the proptest pins down).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DetectorCheckpoint {
    /// Format version ([`CHECKPOINT_VERSION`] when written by this build).
    pub version: u32,
    /// [`config_hash`] of the config the checkpoint was taken under.
    pub config_hash: u64,
    /// Whether the detector was in stage 2 (sampling) when snapshotted.
    pub sampling: bool,
    /// The PEBS filter armed for the in-flight stage-2 window (meaningful
    /// only when `sampling`; restore re-arms it).
    pub armed_filter: SampleFilter,
    /// The next service deadline, in absolute cycles.
    pub deadline: Cycle,
    /// Activity counters.
    pub stats: DetectorStats,
    /// EWMA-carried stage-1 miss evidence.
    pub carry: f64,
    /// Splitmix64 state of the window-phase jitter stream.
    pub phase_state: u64,
    /// Length of the current stage-1 window as a fraction of `tc`.
    pub window_scale: f64,
    /// The PEBS sample-spacing jitter stream's position — programmed
    /// sampler state, carried so a restored run draws the same spacing
    /// sequence an uninterrupted one would.
    pub pebs_jitter: u64,
    /// The suspicion ledger, row by row.
    pub ledger: Vec<LedgerRow>,
    /// Consecutive sticky-sampling re-arms in the current stage-2 run.
    pub resamples: u32,
}

impl DetectorCheckpoint {
    /// Encodes the checkpoint as `"{checksum:016x}\n{json}"` bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        let json = serde_json::to_string(self).expect("checkpoint serialization is infallible");
        format!("{:016x}\n{json}", fnv1a64(json.as_bytes())).into_bytes()
    }

    /// Decodes and validates checkpoint bytes.
    ///
    /// Rejects, in order: a mangled container or checksum mismatch
    /// ([`RuntimeError::CheckpointCorrupt`]), an incompatible format
    /// version ([`RuntimeError::VersionMismatch`]), and a payload that
    /// fails to decode despite a valid checksum
    /// ([`RuntimeError::CheckpointUndecodable`]).
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, RuntimeError> {
        let corrupt = |expected: u64| RuntimeError::CheckpointCorrupt {
            expected,
            found: fnv1a64(bytes),
        };
        let text = std::str::from_utf8(bytes).map_err(|_| corrupt(0))?;
        let (header, json) = text.split_once('\n').ok_or_else(|| corrupt(0))?;
        let expected = u64::from_str_radix(header, 16).map_err(|_| corrupt(0))?;
        let found = fnv1a64(json.as_bytes());
        if found != expected {
            return Err(RuntimeError::CheckpointCorrupt { expected, found });
        }
        let value: serde_json::Value =
            serde_json::from_str(json).map_err(|_| RuntimeError::CheckpointUndecodable)?;
        let version = value["version"]
            .as_u64()
            .ok_or(RuntimeError::CheckpointUndecodable)?;
        if version != u64::from(CHECKPOINT_VERSION) {
            return Err(RuntimeError::VersionMismatch {
                expected: CHECKPOINT_VERSION,
                found: u32::try_from(version).unwrap_or(u32::MAX),
            });
        }
        Deserialize::from_value(&value).ok_or(RuntimeError::CheckpointUndecodable)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AnvilConfig;

    fn sample_checkpoint() -> DetectorCheckpoint {
        DetectorCheckpoint {
            version: CHECKPOINT_VERSION,
            config_hash: config_hash(&AnvilConfig::hardened()),
            sampling: true,
            armed_filter: SampleFilter::LoadsOnly,
            deadline: 31_200_000,
            stats: DetectorStats {
                stage1_windows: 12,
                threshold_crossings: 3,
                ..DetectorStats::default()
            },
            carry: 1234.5,
            phase_state: 0xA11CE,
            window_scale: 1.07,
            pebs_jitter: 0x5eed_1234_abcd_ef01,
            ledger: vec![LedgerRow {
                row: anvil_dram::RowId::new(anvil_dram::BankId(3), 100),
                score: 40_000.5,
                windows: 7,
                pids: vec![9, 11],
            }],
            resamples: 2,
        }
    }

    #[test]
    fn bytes_round_trip() {
        let ckpt = sample_checkpoint();
        let restored = DetectorCheckpoint::from_bytes(&ckpt.to_bytes()).unwrap();
        assert_eq!(restored, ckpt);
    }

    #[test]
    fn any_flipped_byte_is_detected() {
        let bytes = sample_checkpoint().to_bytes();
        // Flip one byte at a spread of positions (header, middle, tail).
        for pos in [0, 5, bytes.len() / 2, bytes.len() - 1] {
            let mut bad = bytes.clone();
            bad[pos] ^= 0x01;
            let err = DetectorCheckpoint::from_bytes(&bad).unwrap_err();
            assert!(
                matches!(
                    err,
                    RuntimeError::CheckpointCorrupt { .. } | RuntimeError::CheckpointUndecodable
                ),
                "byte {pos}: {err:?}"
            );
        }
    }

    #[test]
    fn truncation_and_garbage_are_corrupt() {
        let bytes = sample_checkpoint().to_bytes();
        assert!(DetectorCheckpoint::from_bytes(&bytes[..bytes.len() - 4]).is_err());
        assert!(DetectorCheckpoint::from_bytes(b"").is_err());
        assert!(DetectorCheckpoint::from_bytes(b"not a checkpoint").is_err());
        assert!(DetectorCheckpoint::from_bytes(&[0xFF, 0xFE, 0x0A, 0x7B]).is_err());
    }

    #[test]
    fn future_versions_are_rejected_with_a_typed_error() {
        let mut ckpt = sample_checkpoint();
        ckpt.version = CHECKPOINT_VERSION + 1;
        let err = DetectorCheckpoint::from_bytes(&ckpt.to_bytes()).unwrap_err();
        assert_eq!(
            err,
            RuntimeError::VersionMismatch {
                expected: CHECKPOINT_VERSION,
                found: CHECKPOINT_VERSION + 1,
            }
        );
    }

    #[test]
    fn config_hash_distinguishes_presets() {
        let baseline = config_hash(&AnvilConfig::baseline());
        let hardened = config_hash(&AnvilConfig::hardened());
        assert_ne!(baseline, hardened);
        assert_eq!(baseline, config_hash(&AnvilConfig::baseline()));
    }

    #[test]
    fn fnv_matches_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }
}
