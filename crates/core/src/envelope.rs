//! Guarantee-envelope auditor: the worst-case activations an *undetected*
//! adversary can land on one aggressor row pair within a refresh interval.
//!
//! ANVIL's no-flip guarantee is an envelope claim: every access pattern
//! that could flip a bit before auto-refresh restores the victim must
//! first cross a detector threshold. The auditor makes that claim
//! checkable by computing, for a given [`AnvilConfig`] and platform
//! constants, the activation budget of four adversary archetypes that
//! each probe a different detector blind spot:
//!
//! * **Sustained pacing** — hammer at one miss under the stage-1 trip
//!   point, every window, forever (the threshold-prober's limit).
//! * **Boundary straddling** — burst just under the threshold into each
//!   window, synchronized so no single window ever trips (the duty-cycle
//!   hammer's limit).
//! * **Camouflage** — dilute aggressor accesses with row-buffer-hit
//!   filler so no aggressor row reaches the stage-2 sample floor.
//! * **Distributed many-sided** — spread activations over enough
//!   aggressor pairs that no row dominates the sample histogram.
//!
//! Each budget is clamped by the physical ceiling (the DRAM cannot
//! activate faster than one access per `attack_access_cycles`), and the
//! envelope *holds* when the worst budget stays under the flip threshold
//! with positive margin. Hardening ([`crate::HardeningConfig`]) shrinks
//! the budgets: the EWMA carry caps sustained/straddled pacing, and the
//! suspicion ledger caps any strategy that must keep per-row evidence
//! below its decayed score threshold.

use crate::config::AnvilConfig;
use anvil_dram::{CpuClock, Cycle};
use serde::{Deserialize, Serialize};

/// Platform constants the audit needs beyond the [`AnvilConfig`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnvelopeParams {
    /// DRAM refresh interval, in cycles (64 ms on the paper's DDR3).
    pub refresh_period: Cycle,
    /// Double-sided flip threshold to audit against (activations on one
    /// aggressor pair per refresh interval; the paper's weakest cell
    /// flips at 220K).
    pub flip_threshold: u64,
    /// Cycles one aggressor activation costs the attacker (row-conflict
    /// DRAM access + core miss overhead + cache flush).
    pub attack_access_cycles: Cycle,
    /// Cycles one row-buffer-hit filler load costs (camouflage traffic).
    pub hit_access_cycles: Cycle,
}

impl EnvelopeParams {
    /// The paper's platform: 2.6 GHz, 64 ms refresh, 220K double-sided
    /// flip threshold, ~187-cycle hammer accesses and ~102-cycle
    /// row-buffer-hit streams.
    pub fn paper_platform() -> Self {
        EnvelopeParams {
            refresh_period: 166_400_000,
            flip_threshold: 220_000,
            attack_access_cycles: 187,
            hit_access_cycles: 102,
        }
    }

    /// Same platform constants, auditing against a different flip
    /// threshold (e.g. future DRAM flipping at half the activations).
    #[must_use]
    pub fn with_flip_threshold(mut self, flip_threshold: u64) -> Self {
        self.flip_threshold = flip_threshold;
        self
    }
}

/// The audited envelope: per-archetype undetectable activation budgets
/// (per aggressor pair, per refresh interval) and the resulting margin.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GuaranteeEnvelope {
    /// The flip threshold audited against.
    pub flip_threshold: u64,
    /// Physical ceiling: all-out activations the memory system can
    /// deliver in one refresh interval.
    pub physical_cap: u64,
    /// Sustained pacing budget (stage-1 rate just under the trip point).
    pub sustained_budget: u64,
    /// Boundary-straddling burst budget.
    pub straddle_budget: u64,
    /// Camouflage (sample-mix dilution) budget.
    pub camouflage_budget: u64,
    /// Distributed many-sided per-pair budget.
    pub distributed_budget: u64,
    /// The binding (largest) budget among the four.
    pub worst_case_budget: u64,
    /// `flip_threshold − worst_case_budget`; positive when the envelope
    /// holds.
    pub margin: i64,
}

impl GuaranteeEnvelope {
    /// Audits `config` against the given platform constants.
    pub fn audit(config: &AnvilConfig, clock: &CpuClock, params: &EnvelopeParams) -> Self {
        let tc = config.tc_cycles(clock).max(1);
        let ts = config.ts_cycles(clock).max(1);
        let period = params.refresh_period as f64;
        let windows = period / tc as f64;
        let t1 = (config.llc_miss_threshold.saturating_sub(1)) as f64;
        let h = &config.hardening;
        let carry = if h.enabled { h.stage1_carry } else { 0.0 };

        let physical_cap = params.refresh_period / params.attack_access_cycles.max(1);
        let cap = |budget: f64| -> u64 { (budget.max(0.0) as u64).min(physical_cap) };

        // Sustained: (1 − carry) × (T − 1) misses per window, every
        // window of the interval (steady state of the EWMA trip test).
        let sustained = cap(t1 * (1.0 - carry) * windows);

        // Straddle: every window that intersects the interval can carry
        // up to T − 1 misses without tripping; ⌊N⌋ full windows plus the
        // two partials at the interval's edges. Under the EWMA the
        // attacker gets one full-threshold transient, then the sustained
        // rate. (Phase jitter does not shrink this bound — it removes
        // the attacker's ability to *align* to it, which the dynamic
        // campaign demonstrates.)
        let intersecting = windows.floor() + 2.0;
        let straddle = if carry > 0.0 {
            cap(t1 * (1.0 + (1.0 - carry) * (intersecting - 1.0)))
        } else {
            cap(t1 * intersecting)
        };

        // Camouflage: the pair's share f of miss traffic must keep each
        // aggressor row under the stage-2 sample floor; budget is the
        // pair activation rate at the largest undetected share, with the
        // cycle budget split between attack accesses and filler hits.
        let samples_per_window = (ts / config.sampling.interval.max(1)).max(1) as f64;
        let f_floor = (2.0 * config.row_sample_floor as f64 / samples_per_window).min(1.0);
        let mix_cost = f_floor * params.attack_access_cycles as f64
            + (1.0 - f_floor) * params.hit_access_cycles as f64;
        let camouflage_raw = f_floor * period / mix_cost.max(1.0);

        // The suspicion ledger caps *any* low-profile strategy: a row
        // whose decayed evidence score must stay under the ledger
        // threshold can accumulate at most required × factor × (1 −
        // decay) activations-worth of evidence per window; a pair gets
        // twice that.
        let required = crate::transition::required_rate(config);
        let ledger_pair_cap = 2.0 * required * h.ledger_factor * (1.0 - h.ledger_decay);

        let camouflage = if h.enabled {
            cap(camouflage_raw.min(ledger_pair_cap))
        } else {
            cap(camouflage_raw)
        };

        // Distributed: the smallest pair count that keeps every row's
        // expected samples under the floor divides the physical ceiling.
        let k_min = (samples_per_window / (2.0 * config.row_sample_floor as f64)).floor() + 1.0;
        let distributed_raw = physical_cap as f64 / k_min.max(1.0);
        let distributed = if h.enabled {
            cap(distributed_raw.min(ledger_pair_cap))
        } else {
            cap(distributed_raw)
        };

        let worst = sustained.max(straddle).max(camouflage).max(distributed);
        GuaranteeEnvelope {
            flip_threshold: params.flip_threshold,
            physical_cap,
            sustained_budget: sustained,
            straddle_budget: straddle,
            camouflage_budget: camouflage,
            distributed_budget: distributed,
            worst_case_budget: worst,
            margin: params.flip_threshold.cast_signed() - worst.cast_signed(),
        }
    }

    /// Whether every archetype stays strictly under the flip threshold.
    pub fn holds(&self) -> bool {
        self.margin > 0
    }

    /// The longest detector outage, in cycles, the envelope can absorb
    /// without surrendering the no-flip guarantee.
    ///
    /// While the detector is down an attacker hammers unobserved at the
    /// physical ceiling — one activation per `attack_access_cycles` — on
    /// top of the `worst_case_budget` activations it can always land
    /// undetected within a refresh interval. The recovery protocol's
    /// blanket refresh wipes the accumulated disturbance the moment the
    /// supervisor restarts, so flips are only possible *during* the gap;
    /// they stay impossible as long as the gap's activations fit in the
    /// envelope margin:
    ///
    /// ```text
    /// worst_case_budget + gap / attack_access_cycles < flip_threshold
    ///   ⟺  gap < margin × attack_access_cycles
    /// ```
    ///
    /// A non-positive margin (the envelope does not hold even without
    /// crashes) yields a zero budget.
    pub fn downtime_budget(&self, attack_access_cycles: Cycle) -> Cycle {
        u64::try_from(self.margin)
            .unwrap_or(0)
            .saturating_mul(attack_access_cycles.max(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const CLOCK: CpuClock = CpuClock::SANDY_BRIDGE_2_6GHZ;

    #[test]
    fn paper_baseline_sustains_under_220k_but_leaks_via_straddle() {
        let env = GuaranteeEnvelope::audit(
            &AnvilConfig::baseline(),
            &CLOCK,
            &EnvelopeParams::paper_platform(),
        );
        // Section 4.2's sizing: 20K per 6 ms sustains just under 220K.
        assert!(env.sustained_budget < 220_000);
        assert!(env.sustained_budget > 200_000);
        // But boundary-straddling bursts and camouflage both clear 220K:
        // the unhardened envelope does NOT hold — which is exactly what
        // the adversary suite demonstrates dynamically.
        assert!(env.straddle_budget >= 220_000);
        assert!(env.camouflage_budget >= 220_000);
        assert!(!env.holds());
    }

    #[test]
    fn hardening_closes_the_envelope_on_paper_dram() {
        let env = GuaranteeEnvelope::audit(
            &AnvilConfig::hardened(),
            &CLOCK,
            &EnvelopeParams::paper_platform(),
        );
        assert!(env.holds(), "hardened envelope must hold at 220K: {env:?}");
        // The EWMA halves the sustained budget and caps the straddle
        // transient; the ledger caps camouflage and distribution far
        // below the threshold.
        assert!(env.sustained_budget < 110_000);
        assert!(env.straddle_budget < 220_000);
        assert!(env.camouflage_budget < 60_000);
        assert!(env.distributed_budget < 60_000);
        assert_eq!(
            env.worst_case_budget,
            env.sustained_budget
                .max(env.straddle_budget)
                .max(env.camouflage_budget)
                .max(env.distributed_budget)
        );
    }

    #[test]
    fn budgets_never_exceed_the_physical_cap() {
        let mut c = AnvilConfig::baseline();
        c.llc_miss_threshold = 200_000; // absurdly permissive
        let env = GuaranteeEnvelope::audit(&c, &CLOCK, &EnvelopeParams::paper_platform());
        for b in [
            env.sustained_budget,
            env.straddle_budget,
            env.camouflage_budget,
            env.distributed_budget,
        ] {
            assert!(b <= env.physical_cap);
        }
        assert!(!env.holds());
    }

    #[test]
    fn downtime_budget_scales_with_margin() {
        let params = EnvelopeParams::paper_platform();
        let env = GuaranteeEnvelope::audit(&AnvilConfig::hardened(), &CLOCK, &params);
        assert!(env.holds());
        let budget = env.downtime_budget(params.attack_access_cycles);
        assert_eq!(budget, env.margin as u64 * params.attack_access_cycles);
        // The hardened margin buys multiple milliseconds of outage — the
        // supervisor's restart latency must stay under this.
        assert!(budget > 10_000_000, "budget {budget} too tight");
        // A broken envelope has no downtime budget at all.
        let broken = GuaranteeEnvelope::audit(&AnvilConfig::baseline(), &CLOCK, &params);
        assert!(!broken.holds());
        assert_eq!(broken.downtime_budget(params.attack_access_cycles), 0);
    }

    #[test]
    fn margin_tracks_the_flip_threshold() {
        let params = EnvelopeParams::paper_platform();
        let hardened = AnvilConfig::hardened();
        let at_220k = GuaranteeEnvelope::audit(&hardened, &CLOCK, &params);
        let at_110k =
            GuaranteeEnvelope::audit(&hardened, &CLOCK, &params.with_flip_threshold(110_000));
        assert_eq!(
            at_220k.worst_case_budget, at_110k.worst_case_budget,
            "budgets depend only on the config, not the threshold"
        );
        assert_eq!(at_220k.margin - at_110k.margin, 110_000);
    }
}
