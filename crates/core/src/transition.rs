//! Pure, side-effect-free forms of the detector's transition functions.
//!
//! The dynamic detector ([`crate::detector`], [`crate::locality`]) and the
//! symbolic verifier in `anvil-analyze` must agree on transition semantics
//! or the verifier's bounds are about a different machine. Every decision
//! the detector makes per window — the stage-1 evidence fold, the trip
//! test, the jittered window draw, the stage-2 sample weighting, the
//! sticky re-sample rule, the ledger update — lives here as a pure
//! function of explicit inputs, with no `&mut self` and no PMU access.
//! The detector calls these on concrete values; the abstract interpreter
//! lifts them to intervals by evaluating at interval endpoints (each
//! function is monotone in the arguments the interpreter varies, which is
//! what makes endpoint evaluation sound).

//!
//! The functions here feed both the per-window hot path and the symbolic
//! verifier's bound proofs, so unchecked integer arithmetic is a compile
//! error in this module (see `[workspace.lints]`); integer updates must
//! be saturating/wrapping by explicit choice.
#![deny(clippy::arithmetic_side_effects)]

use crate::config::{AnvilConfig, HardeningConfig};
use crate::locality::FULL_WEIGHT;
use anvil_dram::Cycle;
use anvil_pmu::SampleFilter;

/// One step of the splitmix64 generator (the window-phase jitter stream
/// and, in `anvil-faults`, the per-site fault streams).
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Outcome of one stage-1 window boundary.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Stage1Step {
    /// The evidence value the trip test saw (`carry` folded with the
    /// rate-normalized miss count when hardened, the raw normalized count
    /// otherwise).
    pub evidence: f64,
    /// Whether stage 2 arms.
    pub tripped: bool,
    /// The EWMA carry entering the next stage-1 window: the evidence on a
    /// quiet window, zero on a trip (the trip consumes the accumulated
    /// suspicion).
    pub next_carry: f64,
    /// A trip the memoryless detector would have missed: the normalized
    /// count alone was under the threshold and only the carry pushed the
    /// evidence over.
    pub via_carry: bool,
}

/// The stage-1 evidence fold: `carry_factor × carry + normalized` when
/// hardened, `normalized` alone otherwise.
pub fn stage1_evidence(h: &HardeningConfig, carry: f64, normalized: f64) -> f64 {
    if h.enabled {
        h.stage1_carry * carry + normalized
    } else {
        normalized
    }
}

/// The full stage-1 window transition: fold the evidence, apply the trip
/// test against `threshold`, and produce the next carry.
pub fn stage1_step(h: &HardeningConfig, threshold: u64, carry: f64, normalized: f64) -> Stage1Step {
    let evidence = stage1_evidence(h, carry, normalized);
    let t = threshold as f64;
    if evidence < t {
        Stage1Step {
            evidence,
            tripped: false,
            next_carry: evidence,
            via_carry: false,
        }
    } else {
        Stage1Step {
            evidence,
            tripped: true,
            next_carry: 0.0,
            via_carry: normalized < t,
        }
    }
}

/// The range of window scales the jitter stream can draw: `[1−j, 1+j]`
/// when hardened with a positive jitter, the degenerate `[1, 1]`
/// otherwise. The abstract interpreter quantifies over this interval
/// instead of the seeded stream.
pub fn jitter_scale_bounds(h: &HardeningConfig) -> (f64, f64) {
    if h.enabled && h.phase_jitter > 0.0 {
        (1.0 - h.phase_jitter, 1.0 + h.phase_jitter)
    } else {
        (1.0, 1.0)
    }
}

/// Draws the next stage-1 window scale from the seeded jitter stream:
/// `1.0` exactly when unhardened (or jitter disabled), otherwise uniform
/// in [`jitter_scale_bounds`]. Advances `phase_state`.
pub fn draw_window_scale(h: &HardeningConfig, phase_state: &mut u64) -> f64 {
    if !h.enabled || h.phase_jitter <= 0.0 {
        return 1.0;
    }
    let u = (splitmix64(phase_state) >> 11) as f64 / (1u64 << 53) as f64;
    1.0 + h.phase_jitter * (2.0 * u - 1.0)
}

/// The PEBS facility filter stage 2 arms with, from the tripping window's
/// load/store miss mix.
pub fn stage2_filter(config: &AnvilConfig, misses: u64, miss_loads: u64) -> SampleFilter {
    let load_fraction = if misses == 0 {
        1.0
    } else {
        miss_loads as f64 / misses as f64
    };
    if load_fraction > config.load_fraction_hi {
        SampleFilter::LoadsOnly
    } else if load_fraction < config.load_fraction_lo {
        SampleFilter::StoresOnly
    } else {
        SampleFilter::LoadsAndStores
    }
}

/// The activation-evidence weight (in millis of [`FULL_WEIGHT`]) a stage-2
/// sample carries: a latency under the row-miss cutoff means the access
/// was served from an open row buffer — camouflage filler that cannot be
/// hammering — and is discounted to `hit_weight` when hardened.
pub fn sample_weight(h: &HardeningConfig, latency: Cycle) -> u32 {
    if h.enabled && latency < h.row_miss_latency {
        (h.hit_weight * f64::from(FULL_WEIGHT)) as u32
    } else {
        FULL_WEIGHT
    }
}

/// The sticky-sampling rule: after an undetected stage-2 window whose
/// miss traffic collapsed to under half the trip rate (the signature of a
/// burst straddling the arm boundary), the hardened detector re-arms
/// sampling instead of handing the attacker its quiet phase back —
/// bounded by `max_resample_windows`.
pub fn sticky_resample(
    h: &HardeningConfig,
    detected: bool,
    misses: u64,
    threshold: u64,
    resamples: u32,
) -> bool {
    h.enabled
        && !detected
        && misses.saturating_mul(2) < threshold
        && resamples < h.max_resample_windows
}

/// One suspicion-ledger score update: the decayed previous score plus this
/// window's extrapolated-rate evidence (`decay × score + rate`).
pub fn ledger_step(decay: f64, score: f64, rate: f64) -> f64 {
    decay * score + rate
}

/// The extrapolated per-refresh-period activation rate the locality
/// analysis assigns a row from its weighted sample share.
pub fn extrapolated_rate(
    weight: u64,
    total_weight: u64,
    misses: u64,
    ts: Cycle,
    refresh_period: Cycle,
) -> f64 {
    let share = weight as f64 / total_weight.max(1) as f64;
    share * misses as f64 * (refresh_period as f64 / ts.max(1) as f64)
}

/// The activation rate (per refresh period) at which a row becomes
/// suspicious: `min_hammer_accesses × rate_safety`, floored at one.
pub fn required_rate(config: &AnvilConfig) -> f64 {
    (config.min_hammer_accesses as f64 * config.rate_safety).max(1.0)
}

/// The accumulated ledger score at which a row is convicted:
/// [`required_rate`] × `ledger_factor`.
pub fn ledger_conviction_score(config: &AnvilConfig) -> f64 {
    required_rate(config) * config.hardening.ledger_factor
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hardened() -> HardeningConfig {
        AnvilConfig::hardened().hardening
    }

    fn baseline() -> HardeningConfig {
        AnvilConfig::baseline().hardening
    }

    #[test]
    fn baseline_stage1_is_memoryless() {
        let h = baseline();
        let quiet = stage1_step(&h, 20_000, 19_999.0, 19_999.0);
        assert!(!quiet.tripped);
        assert_eq!(quiet.evidence, 19_999.0);
        let trip = stage1_step(&h, 20_000, 0.0, 20_000.0);
        assert!(trip.tripped);
        assert!(!trip.via_carry);
        assert_eq!(trip.next_carry, 0.0);
    }

    #[test]
    fn hardened_carry_accumulates_to_a_via_carry_trip() {
        let h = hardened();
        // Persistent just-under-threshold windows: evidence converges to
        // normalized / (1 − carry_factor), which crosses the threshold.
        let mut carry = 0.0;
        let mut tripped_via_carry = false;
        for _ in 0..16 {
            let step = stage1_step(&h, 20_000, carry, 19_000.0);
            carry = step.next_carry;
            if step.tripped {
                tripped_via_carry = step.via_carry;
                break;
            }
        }
        assert!(tripped_via_carry, "the EWMA carry must force the trip");
    }

    #[test]
    fn quiet_fixed_point_matches_the_closed_form() {
        // Iterating the step on a constant normalized rate converges to
        // the fixed point v / (1 − c) — the identity the sustained-rate
        // bound in anvil-analyze is built on.
        let h = hardened();
        let v = 9_000.0;
        let mut carry = 0.0;
        for _ in 0..200 {
            let step = stage1_step(&h, 20_000, carry, v);
            assert!(!step.tripped);
            carry = step.next_carry;
        }
        let fixed = v / (1.0 - h.stage1_carry);
        assert!((carry - fixed).abs() < 1e-6);
    }

    #[test]
    fn jitter_bounds_bracket_every_drawn_scale() {
        let h = hardened();
        let (lo, hi) = jitter_scale_bounds(&h);
        let mut state = h.phase_seed;
        for _ in 0..10_000 {
            let s = draw_window_scale(&h, &mut state);
            assert!(s >= lo && s <= hi, "drawn scale {s} outside [{lo}, {hi}]");
        }
        assert_eq!(jitter_scale_bounds(&baseline()), (1.0, 1.0));
    }

    #[test]
    fn hit_samples_are_discounted_only_when_hardened() {
        let h = hardened();
        assert_eq!(sample_weight(&h, h.row_miss_latency - 1), 200);
        assert_eq!(sample_weight(&h, h.row_miss_latency), FULL_WEIGHT);
        assert_eq!(sample_weight(&baseline(), 0), FULL_WEIGHT);
    }

    #[test]
    fn sticky_resample_requires_collapsed_traffic_and_budget() {
        let h = hardened();
        assert!(sticky_resample(&h, false, 9_999, 20_000, 0));
        assert!(!sticky_resample(&h, true, 9_999, 20_000, 0));
        assert!(!sticky_resample(&h, false, 10_000, 20_000, 0));
        assert!(!sticky_resample(
            &h,
            false,
            9_999,
            20_000,
            h.max_resample_windows
        ));
        assert!(!sticky_resample(&baseline(), false, 0, 20_000, 0));
    }

    #[test]
    fn ledger_step_is_the_audit_recurrence() {
        let cfg = AnvilConfig::hardened();
        let d = cfg.hardening.ledger_decay;
        // The steady state of score' = d·score + r is r / (1 − d); the
        // envelope's ledger_pair_cap inverts this at the conviction score.
        let threshold = ledger_conviction_score(&cfg);
        let steady_rate = threshold * (1.0 - d);
        let mut score = 0.0;
        for _ in 0..200 {
            score = ledger_step(d, score, steady_rate);
            assert!(score <= threshold + 1e-6);
        }
        assert!((score - threshold).abs() < 1e-3);
    }

    #[test]
    fn extrapolated_rate_reduces_to_count_share_at_full_weight() {
        // 3 of 30 full-weight samples over a 1/10th-period window.
        let r = extrapolated_rate(3_000, 30_000, 20_000, 1_000, 10_000);
        assert!((r - 20_000.0).abs() < 1e-9);
    }
}
