//! Fleet-wide Monte Carlo risk aggregation: folds per-machine summaries
//! into the numbers a deployment decision needs.

use anvil_dram::{CpuClock, Cycle};
use serde::{Deserialize, Serialize};

use crate::machine::{FleetConfig, MachineSummary};

/// Distribution of per-domain worst recovery gaps across the fleet, in
/// cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GapDistribution {
    /// Median worst gap.
    pub p50: Cycle,
    /// 90th percentile.
    pub p90: Cycle,
    /// 99th percentile.
    pub p99: Cycle,
    /// The single worst gap anywhere in the fleet.
    pub max: Cycle,
}

/// The fleet-wide verdict and risk summary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetRisk {
    /// Machines simulated.
    pub machines: u64,
    /// Protection domains simulated.
    pub domains: u64,
    /// Windows per machine.
    pub windows: u64,
    /// Machine-years of operation simulated (wall-clock extrapolation of
    /// the window count; fault intensities are accelerated, so risk
    /// rates quote *accelerated* years).
    pub machine_years: f64,
    /// Flips outside declared degradation windows. Gate: must be zero.
    pub undeclared_flips: u64,
    /// Flips inside declared degradation windows (PMU-blind exposure).
    pub exposure_flips: u64,
    /// Expected flips per machine-year at the simulated (accelerated)
    /// fault intensities.
    pub flips_per_machine_year: f64,
    /// The same rate scaled to a million machine-years.
    pub flips_per_million_machine_years: f64,
    /// Windows the fleet spent in declared degradation (any rung below
    /// hardened), summed over domains.
    pub degraded_domain_windows: u64,
    /// Windows the fleet spent PMU-blind, summed over machines.
    pub blind_windows: u64,
    /// Machine outages injected across the fleet.
    pub outages: u64,
    /// PMU-loss episodes injected across the fleet.
    pub pmu_episodes: u64,
    /// Channel refresh postponements drawn across the fleet.
    pub refresh_delays: u64,
    /// Distribution of per-domain worst recovery gaps.
    pub recovery_gaps: GapDistribution,
    /// Domains whose worst gap exceeded their downtime budget. Gate:
    /// must be zero.
    pub budget_violations: u64,
    /// Domains that ended (or ever were) quarantined.
    pub quarantined_domains: u64,
    /// Sub-envelope DIMMs drawn (pinned to blanket refresh).
    pub sub_envelope_domains: u64,
    /// Ladder demotions recorded fleet-wide.
    pub demotions: u64,
    /// Ladder promotions earned fleet-wide.
    pub promotions: u64,
    /// Machine cells that panicked instead of completing. Gate: must be
    /// zero.
    pub cell_panics: u64,
}

impl FleetRisk {
    /// Folds per-machine summaries (in submission order) into the fleet
    /// verdict. `cell_panics` counts machines whose cell died instead of
    /// returning a summary.
    #[must_use]
    pub fn aggregate(cfg: &FleetConfig, machines: &[MachineSummary], cell_panics: u64) -> Self {
        let clock = CpuClock::SANDY_BRIDGE_2_6GHZ;
        let tc = cfg.anvil.tc_cycles(&clock).max(1);
        let ms_per_machine = clock.cycles_to_ms(cfg.windows.saturating_mul(tc));
        let ms_per_year = 1000.0 * 3600.0 * 24.0 * 365.25;
        let machine_years = ms_per_machine * machines.len() as f64 / ms_per_year;

        let mut risk = FleetRisk {
            machines: machines.len() as u64,
            domains: 0,
            windows: cfg.windows,
            machine_years,
            undeclared_flips: 0,
            exposure_flips: 0,
            flips_per_machine_year: 0.0,
            flips_per_million_machine_years: 0.0,
            degraded_domain_windows: 0,
            blind_windows: 0,
            outages: 0,
            pmu_episodes: 0,
            refresh_delays: 0,
            recovery_gaps: GapDistribution {
                p50: 0,
                p90: 0,
                p99: 0,
                max: 0,
            },
            budget_violations: 0,
            quarantined_domains: 0,
            sub_envelope_domains: 0,
            demotions: 0,
            promotions: 0,
            cell_panics,
        };

        let mut gaps: Vec<Cycle> = Vec::new();
        for m in machines {
            risk.outages += m.outages;
            risk.pmu_episodes += m.pmu_episodes;
            risk.refresh_delays += m.refresh_delays;
            risk.blind_windows += m.blind_windows;
            for d in &m.domains {
                risk.domains += 1;
                risk.undeclared_flips += d.undeclared_flips;
                risk.exposure_flips += d.exposure_flips;
                risk.degraded_domain_windows +=
                    d.windows_sample_survival + d.windows_blanket + d.windows_quarantine;
                if !d.within_budget {
                    risk.budget_violations += 1;
                }
                if d.quarantined {
                    risk.quarantined_domains += 1;
                }
                if d.sub_envelope {
                    risk.sub_envelope_domains += 1;
                }
                risk.demotions += d.demotions;
                risk.promotions += d.promotions;
                gaps.push(d.worst_recovery_gap);
            }
        }
        gaps.sort_unstable();
        risk.recovery_gaps = GapDistribution {
            p50: percentile(&gaps, 50),
            p90: percentile(&gaps, 90),
            p99: percentile(&gaps, 99),
            max: gaps.last().copied().unwrap_or(0),
        };
        if machine_years > 0.0 {
            let flips = (risk.undeclared_flips + risk.exposure_flips) as f64;
            risk.flips_per_machine_year = flips / machine_years;
            risk.flips_per_million_machine_years = risk.flips_per_machine_year * 1e6;
        }
        risk
    }

    /// The fleet gate: no machine cell died, no flip landed outside a
    /// declared degradation window, and every domain's recovery gaps
    /// stayed inside its own downtime budget.
    #[must_use]
    pub fn holds(&self) -> bool {
        self.cell_panics == 0 && self.undeclared_flips == 0 && self.budget_violations == 0
    }
}

/// The `p`-th percentile of a sorted slice (nearest-rank).
fn percentile(sorted: &[Cycle], p: u64) -> Cycle {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (p.saturating_mul(sorted.len() as u64)).div_ceil(100);
    sorted[(rank.max(1) as usize - 1).min(sorted.len() - 1)]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::run_machine;

    #[test]
    fn percentile_is_nearest_rank() {
        let v: Vec<Cycle> = (1..=100).collect();
        assert_eq!(percentile(&v, 50), 50);
        assert_eq!(percentile(&v, 90), 90);
        assert_eq!(percentile(&v, 99), 99);
        assert_eq!(percentile(&[], 50), 0);
        assert_eq!(percentile(&[7], 99), 7);
    }

    #[test]
    fn aggregation_folds_machines_and_gates() {
        let mut cfg = FleetConfig::standard(2, 300, 0xBEEF);
        cfg.correlated.machine_outage_rate = 5e-3;
        cfg.correlated.pmu_loss_rate = 8e-3;
        let machines: Vec<_> = (0..2).map(|m| run_machine(&cfg, m)).collect();
        let risk = FleetRisk::aggregate(&cfg, &machines, 0);
        assert_eq!(risk.machines, 2);
        assert_eq!(risk.domains, 2 * u64::from(cfg.topology.domains()));
        assert!(risk.machine_years > 0.0);
        assert!(risk.holds(), "fleet gate failed: {risk:?}");
        // A panicked cell or an undeclared flip breaks the gate.
        let broken = FleetRisk {
            cell_panics: 1,
            ..risk.clone()
        };
        assert!(!broken.holds());
        let broken = FleetRisk {
            undeclared_flips: 1,
            ..risk
        };
        assert!(!broken.holds());
    }

    #[test]
    fn risk_rates_are_flips_over_machine_years() {
        let cfg = FleetConfig::standard(1, 100, 1);
        let machines = vec![run_machine(&cfg, 0)];
        let risk = FleetRisk::aggregate(&cfg, &machines, 0);
        let want = (risk.undeclared_flips + risk.exposure_flips) as f64 / risk.machine_years;
        assert!((risk.flips_per_machine_year - want).abs() < 1e-9);
        assert!((risk.flips_per_million_machine_years - want * 1e6).abs() < 1e-3);
    }
}
