//! Seeded per-DIMM weak-cell populations for the Monte Carlo campaign.
//!
//! ANVIL's evaluation (Section 6) measures one physical module whose
//! weakest cell flips at ~220K double-sided activations per refresh
//! interval. A fleet is not one module: every DIMM carries its own weak
//! cell population, and the question "how many machines flip per year"
//! is a question about the *distribution* of weakest cells — including
//! the rare module whose weakest cell sits below what the detector can
//! provably protect (the guarantee envelope's worst-case undetectable
//! budget), which no amount of sampling fidelity rescues and which the
//! degradation ladder must pin to blanket refresh from boot.

use anvil_faults::FaultRng;
use serde::{Deserialize, Serialize};

/// The seeded distribution per-DIMM weak-cell populations are drawn
/// from: weakest-cell flip thresholds uniform over
/// `[floor, floor + span]`, with a small probability of a sub-envelope
/// outlier module whose weakest cell is below the detector's provable
/// protection floor.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WeakCellDistribution {
    /// Lowest normal weakest-cell flip threshold (activations per
    /// refresh interval on one aggressor pair).
    pub floor: u64,
    /// Width of the uniform normal range above the floor.
    pub span: u64,
    /// Probability that a DIMM is a sub-envelope outlier.
    pub sub_envelope_rate: f64,
    /// The outlier's weakest-cell flip threshold (below the hardened
    /// envelope's worst-case undetectable budget).
    pub sub_envelope_threshold: u64,
    /// Upper bound on the drawn count of weak cells per DIMM.
    pub max_weak_cells: u64,
}

impl WeakCellDistribution {
    /// The fleet campaign default: normal modules draw their weakest
    /// cell uniformly in `[160K, 320K]` activations — all above the
    /// hardened envelope's ~130K worst-case undetectable budget, so the
    /// detector provably protects them — and 2% of modules are
    /// sub-envelope outliers at 110K that must be pinned to blanket
    /// refresh.
    #[must_use]
    pub fn standard() -> Self {
        WeakCellDistribution {
            floor: 160_000,
            span: 160_000,
            sub_envelope_rate: 0.02,
            sub_envelope_threshold: 110_000,
            max_weak_cells: 64,
        }
    }

    /// Draws one DIMM's population from `rng`. The draw order (threshold
    /// position, weak-cell count, outlier chance) is fixed so every
    /// configuration consumes the same stream.
    pub fn sample(&self, rng: &mut FaultRng) -> DimmPopulation {
        let offset = rng.below(self.span.saturating_add(1));
        let weak_cells = 1 + rng.below(self.max_weak_cells.max(1));
        let sub_envelope = rng.chance(self.sub_envelope_rate);
        DimmPopulation {
            min_flip_threshold: if sub_envelope {
                self.sub_envelope_threshold
            } else {
                self.floor.saturating_add(offset)
            },
            weak_cells,
            sub_envelope,
        }
    }
}

/// One DIMM's drawn weak-cell population.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DimmPopulation {
    /// The weakest cell's flip threshold: activations on one aggressor
    /// pair, per refresh interval, that complete a flip.
    pub min_flip_threshold: u64,
    /// How many cells on the DIMM are weak (flip within ~2x the weakest
    /// threshold); scales how many flips a successful exposure yields.
    pub weak_cells: u64,
    /// Whether the DIMM is a sub-envelope outlier.
    pub sub_envelope: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_stay_in_range_and_replay() {
        let dist = WeakCellDistribution::standard();
        let mut a = FaultRng::new(77);
        let mut b = FaultRng::new(77);
        let mut outliers = 0u64;
        for _ in 0..10_000 {
            let pa = dist.sample(&mut a);
            let pb = dist.sample(&mut b);
            assert_eq!(pa, pb);
            assert!(pa.weak_cells >= 1 && pa.weak_cells <= dist.max_weak_cells);
            if pa.sub_envelope {
                outliers += 1;
                assert_eq!(pa.min_flip_threshold, dist.sub_envelope_threshold);
            } else {
                assert!(pa.min_flip_threshold >= dist.floor);
                assert!(pa.min_flip_threshold <= dist.floor + dist.span);
            }
        }
        // ~2% of 10K draws.
        assert!((100..=350).contains(&outliers), "{outliers}");
    }

    #[test]
    fn extreme_outlier_rates_pin_the_outlier_flag() {
        let mut dist = WeakCellDistribution::standard();
        dist.sub_envelope_rate = 0.0;
        let mut rng = FaultRng::new(5);
        for _ in 0..500 {
            assert!(!dist.sample(&mut rng).sub_envelope);
        }
        dist.sub_envelope_rate = 1.0;
        for _ in 0..500 {
            let p = dist.sample(&mut rng);
            assert!(p.sub_envelope);
            assert_eq!(p.min_flip_threshold, dist.sub_envelope_threshold);
        }
    }
}
