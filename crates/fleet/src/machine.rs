//! One simulated machine: a topology of supervised domains under
//! correlated faults, with a cross-domain attacker rotating over them.

use anvil_adversary::CrossDomainHammer;
use anvil_core::{AnvilConfig, EnvelopeParams};
use anvil_dram::{AddressMapping, CpuClock, DramGeometry};
use anvil_faults::{CorrelatedFaults, CorrelatedInjector, FaultRng, LifecycleFaults};
use anvil_mem::DomainTopology;
use anvil_runtime::RuntimeConfig;
use serde::{Deserialize, Serialize};

use crate::domain::{DomainRuntime, DomainSummary};
use crate::weakcells::WeakCellDistribution;

/// Stream tag for a machine's correlated-fault injector (offset by the
/// machine index; clear of the per-domain site tags).
const MACHINE_SITE_BASE: u64 = 0x4000;

/// Full parameterization of one fleet campaign. One machine is one pure
/// cell of `(config, machine_index)`; the campaign fans machines across
/// threads and folds them in submission order, so the fleet summary is
/// byte-identical at any thread count.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FleetConfig {
    /// Machines to simulate.
    pub machines: u64,
    /// Detector windows per machine.
    pub windows: u64,
    /// Fleet seed: drives weak-cell sampling, per-domain fault
    /// schedules, and the correlated machine faults.
    pub seed: u64,
    /// Channel × DIMM layout of every machine.
    pub topology: DomainTopology,
    /// Detector configuration each domain runs (per-domain phase seeds
    /// are derived from the fleet seed).
    pub anvil: AnvilConfig,
    /// Supervisor policy per domain.
    pub runtime: RuntimeConfig,
    /// Independent per-detector fault intensities.
    pub lifecycle: LifecycleFaults,
    /// Machine-scoped correlated fault intensities.
    pub correlated: CorrelatedFaults,
    /// The weak-cell distribution DIMM populations are drawn from.
    pub weak_cells: WeakCellDistribution,
    /// Platform constants for flip accounting and downtime budgets.
    pub envelope: EnvelopeParams,
    /// PMU-blind windows at the start of a loss episode before the
    /// blanket-refresh fallback engages (the exploit-exposure window).
    pub exposure_windows: u64,
    /// Blanket-refresh cadence (in windows) of the sample-survival rung.
    pub survival_refresh_every: u64,
    /// PMU-loss episodes after which a machine's domains are
    /// quarantined as chronically unmeasurable.
    pub quarantine_after: u64,
    /// Clean-window streak required for the first re-promotion.
    pub promote_base: u64,
    /// Ceiling on the exponentially backed-off promotion streak.
    pub promote_cap: u64,
}

impl FleetConfig {
    /// The standard fleet campaign: hardened detectors on 2×2-domain
    /// machines, soak-calibrated independent faults, accelerated
    /// correlated faults, and a tightened backoff cap so every normal
    /// domain's recovery gap sits inside its own downtime budget with
    /// structural margin.
    #[must_use]
    pub fn standard(machines: u64, windows: u64, seed: u64) -> Self {
        FleetConfig {
            machines,
            windows,
            seed,
            topology: DomainTopology::paper_fleet(),
            anvil: AnvilConfig::hardened(),
            runtime: RuntimeConfig {
                restart_budget: 8,
                backoff_base: 50_000,
                // 2M cycles ≈ 0.77 ms: under the ~5.6M-cycle downtime
                // budget of the weakest normal DIMM (160K-activation
                // floor), so gap bursts can never complete a flip.
                backoff_cap: 2_000_000,
                checkpoint_every: 4,
                ..RuntimeConfig::default()
            },
            lifecycle: LifecycleFaults {
                crash_rate: 1e-3,
                stall_rate: 5e-3,
                max_stall: 100_000,
                corrupt_rate: 0.05,
            },
            correlated: CorrelatedFaults::standard(),
            weak_cells: WeakCellDistribution::standard(),
            envelope: EnvelopeParams::paper_platform(),
            exposure_windows: 2,
            survival_refresh_every: 4,
            quarantine_after: 3,
            promote_base: 8,
            promote_cap: 256,
        }
    }
}

/// Everything one machine run observed, in deterministic serializable
/// form.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MachineSummary {
    /// Machine index within the fleet.
    pub machine: u64,
    /// Machine-wide outages injected.
    pub outages: u64,
    /// Windows spent down across all outages.
    pub outage_windows: u64,
    /// PMU-loss episodes injected.
    pub pmu_episodes: u64,
    /// Windows spent PMU-blind.
    pub blind_windows: u64,
    /// Channel refresh postponements drawn.
    pub refresh_delays: u64,
    /// Per-domain results.
    pub domains: Vec<DomainSummary>,
}

/// Simulates one machine for `cfg.windows` detector windows.
/// Deterministic in `(cfg, machine)`.
#[allow(clippy::too_many_lines)]
pub fn run_machine(cfg: &FleetConfig, machine: u64) -> MachineSummary {
    let clock = CpuClock::SANDY_BRIDGE_2_6GHZ;
    let mapping = AddressMapping::new(DramGeometry::ddr3_4gb());
    let channels = cfg.topology.channels.max(1);
    let mut correlated = CorrelatedInjector::new(
        cfg.correlated,
        &FaultRng::new(cfg.seed).fork(MACHINE_SITE_BASE + machine),
        channels,
    );
    let hammer = CrossDomainHammer::new();

    let mut domains: Vec<DomainRuntime> = cfg
        .topology
        .iter()
        .map(|id| {
            DomainRuntime::boot(
                cfg,
                machine,
                id,
                cfg.topology.channel_of(id),
                clock,
                &mapping,
            )
        })
        .collect();

    // Refresh epochs are tracked in fleet windows: ~10 windows cover one
    // 64 ms refresh period at the 6 ms stage-1 cadence. A delayed epoch
    // stretches the next boundary on that channel.
    let tc = cfg.anvil.tc_cycles(&clock).max(1);
    let windows_per_epoch = (cfg.envelope.refresh_period / tc).max(1);
    let mut next_refresh: Vec<u64> = (0..channels as usize).map(|_| windows_per_epoch).collect();

    let mut outage_remaining: u64 = 0;
    let mut blind_remaining: u64 = 0;
    let mut blind_elapsed: u64 = 0;
    let mut blind_target: Option<usize> = None;
    let mut outage_windows_total: u64 = 0;
    let mut blind_windows_total: u64 = 0;

    for w in 0..cfg.windows {
        // --- Machine outage: everything (attacker included) is down. ---
        if outage_remaining == 0 && correlated.outage_starts() {
            outage_remaining = cfg.correlated.outage_windows.max(1);
            for d in &mut domains {
                d.outage_starts(w);
            }
            // An outage preempts a blind episode: the reboot restores
            // the PMU with everything else.
            blind_remaining = 0;
            blind_target = None;
        }
        if outage_remaining > 0 {
            outage_remaining -= 1;
            outage_windows_total += 1;
            for d in &mut domains {
                d.observe_window();
            }
            if outage_remaining == 0 {
                for d in &mut domains {
                    d.outage_ends();
                }
            }
            continue;
        }

        // --- PMU loss: every detector on the machine goes blind. ---
        if blind_remaining == 0 && correlated.pmu_loss_starts() {
            blind_remaining = cfg.correlated.pmu_loss_windows.max(1);
            blind_elapsed = 0;
            let chronic = correlated.pmu_losses() >= cfg.quarantine_after.max(1);
            for d in &mut domains {
                d.pmu_loss_starts(w, chronic);
            }
            // The attacker locks onto one domain for the whole episode:
            // rotating would spread the blind-window burst too thin to
            // ever flip, and a real attacker observing refresh stalls
            // would not rotate either.
            let eligible: Vec<bool> = domains
                .iter()
                .map(|d| d.level() != anvil_runtime::ProtectionLevel::Quarantine)
                .collect();
            blind_target = hammer.target_at(w, &eligible);
        }

        // --- Channel refresh epochs (possibly postponed). ---
        for (c, due) in next_refresh.iter_mut().enumerate() {
            if w >= *due {
                for d in &mut domains {
                    if d.channel() as usize == c {
                        d.auto_refresh();
                    }
                }
                let delay = if correlated.refresh_delayed(c) {
                    cfg.correlated.refresh_delay_windows
                } else {
                    0
                };
                *due = w + windows_per_epoch + delay;
            }
        }

        if blind_remaining > 0 {
            blind_remaining -= 1;
            blind_windows_total += 1;
            let engaged = blind_elapsed >= cfg.exposure_windows;
            for (i, d) in domains.iter_mut().enumerate() {
                d.observe_window();
                d.blind_window(blind_target == Some(i), engaged, &hammer);
            }
            blind_elapsed += 1;
            if blind_remaining == 0 {
                blind_target = None;
            }
            continue;
        }

        // --- Healthy window: the attacker rotates over live domains. ---
        let eligible: Vec<bool> = domains
            .iter()
            .map(|d| d.level() != anvil_runtime::ProtectionLevel::Quarantine)
            .collect();
        let target = hammer.target_at(w, &eligible);
        for (i, d) in domains.iter_mut().enumerate() {
            d.observe_window();
            d.window(w, target == Some(i), &hammer, cfg, clock, &mapping);
        }
    }

    MachineSummary {
        machine,
        outages: correlated.outages(),
        outage_windows: outage_windows_total,
        pmu_episodes: correlated.pmu_losses(),
        blind_windows: blind_windows_total,
        refresh_delays: correlated.refresh_delays(),
        domains: domains.into_iter().map(DomainRuntime::finish).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> FleetConfig {
        let mut cfg = FleetConfig::standard(1, 400, 0xF1EE7);
        // Crank the correlated rates so a short run exercises outages,
        // blind episodes, and quarantine.
        cfg.correlated.machine_outage_rate = 5e-3;
        cfg.correlated.pmu_loss_rate = 8e-3;
        cfg
    }

    #[test]
    fn a_machine_run_is_deterministic() {
        let cfg = small();
        let a = run_machine(&cfg, 3);
        let b = run_machine(&cfg, 3);
        assert_eq!(a, b);
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap()
        );
    }

    #[test]
    fn machines_diverge_by_index_and_seed() {
        let cfg = small();
        let a = run_machine(&cfg, 0);
        let b = run_machine(&cfg, 1);
        assert_ne!(a.domains, b.domains);
        let mut other = cfg;
        other.seed = 999;
        assert_ne!(run_machine(&cfg, 0).domains, run_machine(&other, 0).domains);
    }

    #[test]
    fn correlated_faults_drive_the_ladder_without_undeclared_flips() {
        let cfg = small();
        let m = run_machine(&cfg, 7);
        assert!(m.outages > 0 || m.pmu_episodes > 0, "{m:?}");
        let demotions: u64 = m.domains.iter().map(|d| d.demotions).sum();
        assert!(demotions > 0, "correlated faults must demote: {m:?}");
        for d in &m.domains {
            assert_eq!(d.undeclared_flips, 0, "undeclared flip: {d:?}");
            assert!(d.within_budget, "gap past budget: {d:?}");
        }
        // Every window is accounted to exactly one rung.
        for d in &m.domains {
            let total = d.windows_hardened
                + d.windows_sample_survival
                + d.windows_blanket
                + d.windows_quarantine;
            assert_eq!(total, cfg.windows);
        }
    }

    #[test]
    fn chronic_pmu_loss_quarantines_and_repromotion_rebuilds() {
        let mut cfg = small();
        cfg.windows = 1_200;
        cfg.correlated.machine_outage_rate = 0.0;
        cfg.correlated.pmu_loss_rate = 2e-2;
        cfg.quarantine_after = 2;
        let m = run_machine(&cfg, 5);
        assert!(m.pmu_episodes >= 2, "{m:?}");
        let quarantined = m.domains.iter().filter(|d| d.quarantined).count();
        assert!(quarantined > 0, "chronic loss must quarantine: {m:?}");
        // With enough clean windows after the last episode, at least one
        // quarantined domain climbed back (promotions recorded).
        let promotions: u64 = m.domains.iter().map(|d| d.promotions).sum();
        assert!(promotions > 0, "no re-promotion recorded: {m:?}");
        for d in &m.domains {
            assert_eq!(d.undeclared_flips, 0, "{d:?}");
        }
    }

    #[test]
    fn sub_envelope_dimms_are_pinned_and_never_flip_undeclared() {
        let mut cfg = small();
        cfg.weak_cells.sub_envelope_rate = 1.0;
        let m = run_machine(&cfg, 2);
        for d in &m.domains {
            assert!(d.sub_envelope);
            assert_eq!(d.final_level, "blanket_refresh");
            assert_eq!(d.undeclared_flips, 0);
            assert_eq!(d.services, 0, "pinned domains never boot a detector");
            assert!(d.blanket_refreshes > 0);
            assert_eq!(d.downtime_budget, 0);
            assert!(d.within_budget, "no supervisor, no gaps: {d:?}");
        }
    }
}
