#![warn(missing_docs)]

//! # anvil-fleet
//!
//! Fleet-scale multi-domain runtime for the ANVIL (ASPLOS 2016)
//! reproduction. The paper evaluates one detector protecting one memory
//! system; a production deployment is thousands of machines, each with
//! several channel/DIMM protection domains, each domain running its own
//! supervised detector while tenants (and an attacker VM) share the
//! machine — the setting of the inter-VM Rowhammer evaluation framework
//! and the fleet-scale questions `HammerSim` poses ("of a million
//! deployed machines at this configuration, how many flip per year?").
//!
//! The pieces:
//!
//! * [`DomainTopology`]-driven machines ([`run_machine`]) where every
//!   domain boots a supervised detector (`anvil-runtime`'s
//!   `Supervisor`), draws its own weak-cell population
//!   ([`WeakCellDistribution`]), audits its own guarantee envelope, and
//!   walks the graceful-degradation ladder (`anvil-runtime`'s
//!   `DegradationLadder`) as correlated faults
//!   (`anvil-faults`' [`CorrelatedFaults`]) hit the node: machine
//!   outages, machine-wide PMU loss, shared-refresh-controller delays,
//!   and torn checkpoint writes.
//! * A cross-domain attacker (`anvil-adversary`'s `CrossDomainHammer`)
//!   that rotates paced pressure over live domains and locks onto one
//!   target at full hammer rate during PMU-blind episodes.
//! * [`FleetRisk`] — the Monte Carlo fold: expected flips per
//!   (accelerated) machine-year, exploit-window exposure during
//!   degradation, the distribution of worst-case recovery gaps, and the
//!   fleet gate (zero undeclared flips, zero downtime-budget
//!   violations, zero dead cells).
//!
//! One machine is one pure cell of `(FleetConfig, machine_index)`:
//! the `--bin fleet` campaign in `anvil-bench` fans machines across
//! threads and folds them in submission order, so `results/fleet.json`
//! is byte-identical at any `--threads`.
//!
//! [`DomainTopology`]: anvil_mem::DomainTopology
//! [`CorrelatedFaults`]: anvil_faults::CorrelatedFaults

mod domain;
mod machine;
mod risk;
mod weakcells;

pub use domain::DomainSummary;
pub use machine::{run_machine, FleetConfig, MachineSummary};
pub use risk::{FleetRisk, GapDistribution};
pub use weakcells::{DimmPopulation, WeakCellDistribution};
