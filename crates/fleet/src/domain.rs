//! One protection domain: a supervised detector, its weak-cell
//! population, its degradation ladder, and its flip accounting.

use anvil_adversary::CrossDomainHammer;
use anvil_cache::HitLevel;
use anvil_core::{AnvilConfig, DetectorStage, GuaranteeEnvelope, ServiceOutcome};
use anvil_dram::{AddressMapping, BankId, CpuClock, Cycle, DramLocation, RowId};
use anvil_faults::{FaultRng, LifecycleInjector};
use anvil_mem::{domain_seed, AccessKind, AccessOutcome, DomainId};
use anvil_pmu::{EventKind, Pmu, RetiredOp};
use anvil_runtime::{
    DegradationLadder, LadderCause, ProtectionLevel, SupervisedOutcome, Supervisor,
};
use serde::{Deserialize, Serialize};

use crate::machine::FleetConfig;
use crate::weakcells::DimmPopulation;

/// Ops materialized per stage-2 window (mirrors the soak engine).
const SAMPLED_OPS: u64 = 120;
/// Attacker pid in the simulated traffic mix.
const ATTACKER_PID: u32 = 7;
/// Benign streaming pid.
const BENIGN_PID: u32 = 3;
/// Injector stream tags: supervisor lifecycle faults and benign traffic
/// (matching the soak engine's site layout), weak-cell sampling, and the
/// stride between rebuilt supervisors' fault streams.
const LIFECYCLE_SITE: u64 = 5;
const TRAFFIC_SITE: u64 = 6;
const WEAKCELL_SITE: u64 = 7;
const REBUILD_STRIDE: u64 = 0x20;

/// What one domain reports at the end of a machine run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DomainSummary {
    /// Flattened domain index on the machine.
    pub domain: u32,
    /// Memory channel the domain sits behind.
    pub channel: u32,
    /// The drawn weakest-cell flip threshold.
    pub min_flip_threshold: u64,
    /// The drawn weak-cell count.
    pub weak_cells: u64,
    /// Whether the DIMM is a sub-envelope outlier (pinned to blanket
    /// refresh from boot).
    pub sub_envelope: bool,
    /// The ladder rung the domain ended at (`snake_case` name).
    pub final_level: String,
    /// Flips charged outside declared degradation windows. The fleet
    /// gate: must be zero everywhere.
    pub undeclared_flips: u64,
    /// Flips charged inside declared degradation windows (PMU-blind
    /// exposure before blanket refresh engaged). Feeds the risk model.
    pub exposure_flips: u64,
    /// Stage-1 threshold crossings.
    pub threshold_crossings: u64,
    /// Stage-2 windows that flagged at least one aggressor.
    pub detections: u64,
    /// Victim rows selectively refreshed.
    pub selective_refreshes: u64,
    /// Blanket bank refreshes applied by the degraded rungs.
    pub blanket_refreshes: u64,
    /// Supervised service calls.
    pub services: u64,
    /// Detector crashes captured (injected plus forced by outages).
    pub crashes: u64,
    /// Restarts performed.
    pub restarts: u64,
    /// Restarts that fell back to a cold start.
    pub cold_starts: u64,
    /// Checkpoint writes torn mid-write.
    pub checkpoints_torn: u64,
    /// Restores that rejected the stored checkpoint.
    pub checkpoint_rejections: u64,
    /// Largest crash-to-resume gap, in cycles.
    pub worst_recovery_gap: Cycle,
    /// Total downtime across restarts, in cycles.
    pub total_downtime: Cycle,
    /// This domain's downtime budget (from its own weakest cell), in
    /// cycles.
    pub downtime_budget: Cycle,
    /// Whether every recovery gap stayed inside the budget. The fleet
    /// gate: must hold everywhere.
    pub within_budget: bool,
    /// Ladder demotions recorded.
    pub demotions: u64,
    /// Ladder promotions earned (faults-cleared transitions).
    pub promotions: u64,
    /// Windows spent at the hardened rung.
    pub windows_hardened: u64,
    /// Windows spent at the sample-survival rung.
    pub windows_sample_survival: u64,
    /// Windows spent at the blanket-refresh rung.
    pub windows_blanket: u64,
    /// Windows spent quarantined.
    pub windows_quarantine: u64,
    /// Whether the domain ever entered quarantine.
    pub quarantined: bool,
}

/// Live state of one domain inside a machine run.
pub(crate) struct DomainRuntime {
    id: DomainId,
    channel: u32,
    seed: u64,
    population: DimmPopulation,
    downtime_budget: Cycle,
    anvil: AnvilConfig,
    ladder: DegradationLadder,
    pmu: Pmu,
    sup: Option<Supervisor>,
    traffic: FaultRng,
    aggressors: [u64; 2],
    victim: RowId,
    evidence: u64,
    last_serviced: Cycle,
    rebuilds: u64,
    quarantined: bool,
    undeclared_flips: u64,
    exposure_flips: u64,
    threshold_crossings: u64,
    detections: u64,
    selective_refreshes: u64,
    blanket_refreshes: u64,
    // Supervisor counters folded across rebuilds/teardowns.
    acc_services: u64,
    acc_crashes: u64,
    acc_restarts: u64,
    acc_cold_starts: u64,
    acc_torn: u64,
    acc_rejections: u64,
    acc_worst_gap: Cycle,
    acc_downtime: Cycle,
}

impl DomainRuntime {
    /// Boots one domain of `machine` from the fleet seed: draws its
    /// weak-cell population, audits its private guarantee envelope, and
    /// (unless the DIMM is sub-envelope) starts a supervised detector.
    pub(crate) fn boot(
        cfg: &FleetConfig,
        machine: u64,
        id: DomainId,
        channel: u32,
        clock: CpuClock,
        mapping: &AddressMapping,
    ) -> Self {
        let seed = domain_seed(cfg.seed, machine, id);
        let population = cfg
            .weak_cells
            .sample(&mut FaultRng::new(seed).fork(WEAKCELL_SITE));
        let mut anvil = cfg.anvil;
        anvil.hardening.phase_seed = seed;
        let envelope = GuaranteeEnvelope::audit(
            &anvil,
            &clock,
            &cfg.envelope
                .with_flip_threshold(population.min_flip_threshold),
        );
        let downtime_budget = envelope.downtime_budget(cfg.envelope.attack_access_cycles);

        let victim = RowId::new(BankId(2), 501);
        let aggressors = [
            mapping.address_of(DramLocation {
                bank: victim.bank,
                row: victim.row - 1,
                col: 0,
            }),
            mapping.address_of(DramLocation {
                bank: victim.bank,
                row: victim.row + 1,
                col: 0,
            }),
        ];

        let mut pmu = Pmu::new(anvil.sampling);
        let sub = population.sub_envelope;
        let (ladder, sup) = if sub {
            // The weakest cell flips inside the envelope's undetectable
            // budget: no detector configuration can promise protection,
            // so the domain runs unconditional blanket refresh forever.
            (
                DegradationLadder::pinned(
                    ProtectionLevel::BlanketRefresh,
                    LadderCause::SubEnvelopeDimm,
                ),
                None,
            )
        } else {
            // Co-resident domains get distinct backoff-jitter seeds so a
            // correlated outage never restarts them in lockstep.
            let runtime = anvil_runtime::RuntimeConfig {
                jitter_seed: seed,
                ..cfg.runtime
            };
            let mut sup = Supervisor::new(
                anvil,
                runtime,
                clock,
                cfg.envelope.refresh_period,
                0,
                &mut pmu,
            );
            sup.set_faults(Some(
                LifecycleInjector::new(cfg.lifecycle, FaultRng::new(seed).fork(LIFECYCLE_SITE))
                    .with_torn_writes(cfg.correlated.torn_write_rate),
            ));
            (
                DegradationLadder::new(cfg.promote_base, cfg.promote_cap),
                Some(sup),
            )
        };

        DomainRuntime {
            id,
            channel,
            seed,
            population,
            downtime_budget,
            anvil,
            ladder,
            pmu,
            sup,
            traffic: FaultRng::new(seed).fork(TRAFFIC_SITE),
            aggressors,
            victim,
            evidence: 0,
            last_serviced: 0,
            rebuilds: 0,
            quarantined: false,
            undeclared_flips: 0,
            exposure_flips: 0,
            threshold_crossings: 0,
            detections: 0,
            selective_refreshes: 0,
            blanket_refreshes: 0,
            acc_services: 0,
            acc_crashes: 0,
            acc_restarts: 0,
            acc_cold_starts: 0,
            acc_torn: 0,
            acc_rejections: 0,
            acc_worst_gap: 0,
            acc_downtime: 0,
        }
    }

    pub(crate) fn level(&self) -> ProtectionLevel {
        self.ladder.level()
    }

    pub(crate) fn channel(&self) -> u32 {
        self.channel
    }

    /// Charges this window to the current rung's residency counter.
    pub(crate) fn observe_window(&mut self) {
        self.ladder.observe_window();
    }

    /// Auto-refresh of this domain's channel rewrote every row: any
    /// accumulated disturbance is gone.
    pub(crate) fn auto_refresh(&mut self) {
        self.evidence = 0;
    }

    /// Declares a machine outage starting at `window`.
    pub(crate) fn outage_starts(&mut self, window: u64) {
        self.ladder.demote(
            window,
            ProtectionLevel::SampleSurvival,
            LadderCause::MachineOutage,
        );
        self.ladder.fault_window();
    }

    /// The machine came back from an outage: the reboot rewrote DRAM and
    /// the next service goes through the real crash-recovery path.
    pub(crate) fn outage_ends(&mut self) {
        self.evidence = 0;
        if let Some(sup) = self.sup.as_mut() {
            sup.force_crash();
        }
    }

    /// Declares a PMU-loss episode starting at `window`; with
    /// `chronic`, the domain is quarantined instead.
    pub(crate) fn pmu_loss_starts(&mut self, window: u64, chronic: bool) {
        if chronic {
            if self
                .ladder
                .demote(
                    window,
                    ProtectionLevel::Quarantine,
                    LadderCause::ChronicPmuLoss,
                )
                .is_some()
            {
                self.enter_quarantine();
            }
        } else {
            self.ladder.demote(
                window,
                ProtectionLevel::BlanketRefresh,
                LadderCause::PmuLoss,
            );
        }
        self.ladder.fault_window();
    }

    /// Runs one PMU-blind window. The detector cannot be serviced; the
    /// locked-on attacker hammers at full rate; blanket refresh covers
    /// the window only once the episode is `engaged` (past the exposure
    /// windows) or the ladder is pinned (already refreshing every
    /// window).
    pub(crate) fn blind_window(
        &mut self,
        targeted: bool,
        engaged: bool,
        hammer: &CrossDomainHammer,
    ) {
        if self.level() == ProtectionLevel::Quarantine {
            self.ladder.fault_window();
            return;
        }
        if targeted {
            self.evidence = self
                .evidence
                .saturating_add(hammer.blind_window_activations());
        }
        self.check_flip(true);
        if engaged || self.ladder.is_pinned() {
            self.evidence = 0;
            self.blanket_refreshes += 1;
        }
        self.ladder.fault_window();
    }

    /// Runs one healthy-machine window: a supervised service at the
    /// degraded rung's policy, or quarantine idling with clean-streak
    /// accrual.
    pub(crate) fn window(
        &mut self,
        w: u64,
        targeted: bool,
        hammer: &CrossDomainHammer,
        cfg: &FleetConfig,
        clock: CpuClock,
        mapping: &AddressMapping,
    ) {
        match self.level() {
            ProtectionLevel::Quarantine => {
                if let Some(t) = self.ladder.clean_window(w) {
                    debug_assert_eq!(t.to, ProtectionLevel::BlanketRefresh);
                    self.rebuild_supervisor(cfg, clock);
                }
                return;
            }
            ProtectionLevel::BlanketRefresh if self.sup.is_none() => {
                // Pinned sub-envelope DIMM: no detector, unconditional
                // per-window blanket refresh.
                if targeted {
                    self.evidence = self.evidence.saturating_add(hammer.paced_activations());
                }
                self.check_flip(true);
                self.evidence = 0;
                self.blanket_refreshes += 1;
                return;
            }
            _ => {}
        }

        let paced = if targeted {
            hammer.paced_activations()
        } else {
            0
        };
        let benign = 200 + self.traffic.below(2_801);
        let sup = self.sup.as_mut().expect("active rungs keep a supervisor");
        let deadline = sup.deadline();
        let sampled = sup.detector().stage() == DetectorStage::Sampling;
        if sampled {
            let span = deadline
                .saturating_sub(self.last_serviced)
                .max(SAMPLED_OPS + 1);
            for i in 0..SAMPLED_OPS {
                let t = self.last_serviced + span * (i + 1) / (SAMPLED_OPS + 1);
                let op = if !targeted || i % 16 == 15 {
                    dram_read(self.traffic.below(1 << 30) & !63, BENIGN_PID)
                } else {
                    dram_read(self.aggressors[(i % 2) as usize], ATTACKER_PID)
                };
                self.pmu.observe_at(&op, t);
            }
            bulk_misses(
                &mut self.pmu,
                (paced + benign).saturating_sub(SAMPLED_OPS),
                deadline.saturating_sub(1),
            );
        } else {
            bulk_misses(&mut self.pmu, paced + benign, deadline.saturating_sub(1));
        }
        self.evidence = self.evidence.saturating_add(paced);

        let mut clean = true;
        match sup.service(deadline, &mut self.pmu, mapping, &mut |_, v| Some(v)) {
            Ok(SupervisedOutcome::Serviced {
                outcome,
                serviced_at,
            }) => {
                self.last_serviced = serviced_at;
                match outcome {
                    ServiceOutcome::Quiet { .. } => {}
                    ServiceOutcome::Armed { .. } => self.threshold_crossings += 1,
                    ServiceOutcome::Analyzed {
                        report, refreshes, ..
                    } => {
                        if report.detected() {
                            self.detections += 1;
                        }
                        self.selective_refreshes += refreshes.len() as u64;
                        if refreshes.iter().any(|(row, _)| *row == self.victim) {
                            self.evidence = 0;
                        }
                    }
                    ServiceOutcome::Degraded {
                        report,
                        refreshes,
                        banks,
                        ..
                    } => {
                        if report.detected() {
                            self.detections += 1;
                        }
                        self.selective_refreshes += refreshes.len() as u64;
                        if refreshes.iter().any(|(row, _)| *row == self.victim)
                            || banks.contains(&self.victim.bank)
                        {
                            self.evidence = 0;
                        }
                    }
                }
            }
            Ok(SupervisedOutcome::Restarted(recovery)) => {
                clean = false;
                self.last_serviced = recovery.resumed_at;
                // The attacker bursts into the unobserved gap; the check
                // runs before the recovery blanket refresh lands.
                self.evidence = self
                    .evidence
                    .saturating_add(CrossDomainHammer::gap_activations(recovery.gap));
                self.check_flip(self.level() != ProtectionLevel::Hardened);
                self.evidence = 0;
            }
            Err(_) => {
                // Restart budget exhausted: the supervisor gave up.
                self.fold_sup_stats();
                self.sup = None;
                if self
                    .ladder
                    .demote(
                        w,
                        ProtectionLevel::Quarantine,
                        LadderCause::RestartBudgetExhausted,
                    )
                    .is_some()
                {
                    self.enter_quarantine();
                }
                self.ladder.fault_window();
                return;
            }
        }

        match self.level() {
            ProtectionLevel::SampleSurvival
                if cfg.survival_refresh_every > 0
                    && w.is_multiple_of(cfg.survival_refresh_every) =>
            {
                self.evidence = 0;
                self.blanket_refreshes += 1;
            }
            ProtectionLevel::BlanketRefresh => {
                self.evidence = 0;
                self.blanket_refreshes += 1;
            }
            _ => {}
        }
        // Post-service safety net: any evidence past the weakest cell is
        // a flip, undeclared when the domain claimed full protection.
        self.check_flip(self.level() != ProtectionLevel::Hardened);

        if clean {
            self.ladder.clean_window(w);
        } else {
            self.ladder.fault_window();
        }
    }

    /// Charges a flip if the accumulated evidence reaches the weakest
    /// cell, classifying it by whether the window was declared degraded.
    fn check_flip(&mut self, declared: bool) {
        if self.evidence >= self.population.min_flip_threshold {
            if declared {
                self.exposure_flips += 1;
            } else {
                self.undeclared_flips += 1;
            }
            self.evidence = 0;
        }
    }

    /// Drops the supervisor into quarantine: its counters fold into the
    /// domain accumulators and its state is discarded.
    fn enter_quarantine(&mut self) {
        self.quarantined = true;
        self.fold_sup_stats();
        self.sup = None;
        self.evidence = 0;
    }

    /// Cold-boots a fresh supervisor after a promotion out of
    /// quarantine. The rebuilt instance draws its lifecycle faults from
    /// a rebuild-indexed stream so the schedule does not replay.
    fn rebuild_supervisor(&mut self, cfg: &FleetConfig, clock: CpuClock) {
        self.rebuilds += 1;
        let runtime = anvil_runtime::RuntimeConfig {
            jitter_seed: self.seed,
            ..cfg.runtime
        };
        let mut sup = Supervisor::new(
            self.anvil,
            runtime,
            clock,
            cfg.envelope.refresh_period,
            self.last_serviced,
            &mut self.pmu,
        );
        sup.set_faults(Some(
            LifecycleInjector::new(
                cfg.lifecycle,
                FaultRng::new(self.seed).fork(LIFECYCLE_SITE + REBUILD_STRIDE * self.rebuilds),
            )
            .with_torn_writes(cfg.correlated.torn_write_rate),
        ));
        self.sup = Some(sup);
    }

    /// Adds the live supervisor's counters into the domain accumulators.
    fn fold_sup_stats(&mut self) {
        if let Some(sup) = self.sup.as_ref() {
            let s = sup.stats();
            self.acc_services += s.services;
            self.acc_crashes += s.crashes;
            self.acc_restarts += s.restarts;
            self.acc_cold_starts += s.cold_starts;
            self.acc_torn += s.checkpoints_torn;
            self.acc_rejections += s.checkpoint_rejections;
            self.acc_worst_gap = self.acc_worst_gap.max(s.worst_recovery_gap);
            self.acc_downtime += s.total_downtime;
        }
    }

    /// Finalizes the domain into its serializable summary.
    pub(crate) fn finish(mut self) -> DomainSummary {
        self.fold_sup_stats();
        self.sup = None;
        DomainSummary {
            domain: self.id.0,
            channel: self.channel,
            min_flip_threshold: self.population.min_flip_threshold,
            weak_cells: self.population.weak_cells,
            sub_envelope: self.population.sub_envelope,
            final_level: self.ladder.level().name().to_string(),
            undeclared_flips: self.undeclared_flips,
            exposure_flips: self.exposure_flips,
            threshold_crossings: self.threshold_crossings,
            detections: self.detections,
            selective_refreshes: self.selective_refreshes,
            blanket_refreshes: self.blanket_refreshes,
            services: self.acc_services,
            crashes: self.acc_crashes,
            restarts: self.acc_restarts,
            cold_starts: self.acc_cold_starts,
            checkpoints_torn: self.acc_torn,
            checkpoint_rejections: self.acc_rejections,
            worst_recovery_gap: self.acc_worst_gap,
            total_downtime: self.acc_downtime,
            downtime_budget: self.downtime_budget,
            within_budget: self.acc_worst_gap <= self.downtime_budget,
            demotions: self.ladder.demotions(),
            promotions: self
                .ladder
                .transitions()
                .iter()
                .filter(|t| t.cause == LadderCause::FaultsCleared)
                .count() as u64,
            windows_hardened: self.ladder.windows_at()[0],
            windows_sample_survival: self.ladder.windows_at()[1],
            windows_blanket: self.ladder.windows_at()[2],
            windows_quarantine: self.ladder.windows_at()[3],
            quarantined: self.quarantined,
        }
    }
}

/// A DRAM-sourced read the PMU can sample (mirrors the soak engine's
/// traffic model): identity-mapped, with a latency above the row-miss
/// cutoff so it counts as activation evidence.
fn dram_read(paddr: u64, pid: u32) -> RetiredOp {
    RetiredOp {
        vaddr: paddr,
        pid,
        outcome: AccessOutcome {
            paddr,
            kind: AccessKind::Read,
            level: HitLevel::Memory,
            advance: 184,
            dram: None,
        },
    }
}

/// Bulk-charges `n` LLC-missing loads to both stage-1 counters at `t`.
fn bulk_misses(pmu: &mut Pmu, n: u64, t: Cycle) {
    pmu.counter_mut(EventKind::LongestLatCacheMiss).add(n, t);
    pmu.counter_mut(EventKind::MemLoadUopsRetiredLlcMiss)
        .add(n, t);
}

#[cfg(test)]
mod tests {
    use super::*;
    use anvil_dram::DramGeometry;

    /// The thundering-herd fix: after a correlated outage kills every
    /// detector on a machine at once, the seeded backoff jitter must
    /// bring them back at distinct instants.
    #[test]
    fn coresident_domains_restart_at_distinct_instants() {
        let cfg = FleetConfig::standard(1, 100, 0xF1EE7);
        let clock = CpuClock::SANDY_BRIDGE_2_6GHZ;
        let mapping = AddressMapping::new(DramGeometry::ddr3_4gb());
        let mut gaps = Vec::new();
        for id in cfg.topology.iter() {
            let mut d =
                DomainRuntime::boot(&cfg, 0, id, cfg.topology.channel_of(id), clock, &mapping);
            let Some(sup) = d.sup.as_mut() else {
                continue;
            };
            sup.force_crash();
            let deadline = sup.deadline();
            let out = sup
                .service(deadline, &mut d.pmu, &mapping, &mut |_, v| Some(v))
                .unwrap();
            let SupervisedOutcome::Restarted(r) = out else {
                panic!("forced crash must restart, got {out:?}");
            };
            gaps.push(r.gap);
        }
        assert!(gaps.len() >= 2, "need co-resident supervised domains");
        let distinct: std::collections::BTreeSet<_> = gaps.iter().collect();
        assert_eq!(
            distinct.len(),
            gaps.len(),
            "correlated restart instants: {gaps:?}"
        );
    }
}
