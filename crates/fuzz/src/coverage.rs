//! Coverage feedback: detector-state signatures and frontier energy.
//!
//! The coverage map is keyed on [`ScenarioOutcome::coverage_key`]
//! (bucketed detector counters + outcome flags); a candidate whose key
//! was never seen joins the mutation pool. Pool picks are weighted by
//! *energy* — how close the candidate's configuration sits to the
//! symbolic guarantee frontier (`anvil_analyze::frontier_distance`) —
//! so mutation concentrates where a small change can flip the
//! guarantee.
//!
//! [`ScenarioOutcome::coverage_key`]: crate::ScenarioOutcome::coverage_key

use crate::scenario::Scenario;
use anvil_analyze::frontier_distance;
use anvil_dram::CpuClock;
use std::collections::BTreeSet;

/// The set of coverage keys observed so far.
#[derive(Debug, Clone, Default)]
pub struct CoverageMap {
    seen: BTreeSet<u64>,
}

impl CoverageMap {
    /// An empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `key`; returns `true` when it was novel.
    pub fn observe(&mut self, key: u64) -> bool {
        self.seen.insert(key)
    }

    /// Distinct coverage points observed.
    pub fn len(&self) -> usize {
        self.seen.len()
    }

    /// Whether nothing has been observed yet.
    pub fn is_empty(&self) -> bool {
        self.seen.is_empty()
    }
}

/// Mutation energy for a scenario: 1..=16, peaking when the scenario's
/// configuration sits on the guarantee frontier and decaying as the
/// symbolic margin (in either direction) grows.
pub fn energy(s: &Scenario) -> u64 {
    let d = frontier_distance(
        &s.config,
        &CpuClock::SANDY_BRIDGE_2_6GHZ,
        &s.envelope_params(),
    );
    (16.0 / (1.0 + 24.0 * d.abs())).round().clamp(1.0, 16.0) as u64
}

/// The weighted mutation pool: scenarios that produced novel coverage,
/// picked with probability proportional to their frontier energy.
/// Bounded: once full, new entries replace the lowest-energy incumbent
/// (only when strictly more energetic), so the pool drifts toward the
/// frontier as the campaign runs.
#[derive(Debug, Clone)]
pub struct Pool {
    entries: Vec<(Scenario, u64)>,
    cap: usize,
}

impl Pool {
    /// An empty pool holding at most `cap` scenarios.
    pub fn new(cap: usize) -> Self {
        Pool {
            entries: Vec::new(),
            cap: cap.max(1),
        }
    }

    /// Number of pooled scenarios.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the pool has no scenarios yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Adds a scenario with its energy weight.
    pub fn add(&mut self, s: Scenario) {
        let w = energy(&s);
        if self.entries.len() < self.cap {
            self.entries.push((s, w));
            return;
        }
        if let Some((i, &(_, low))) = self.entries.iter().enumerate().min_by_key(|(_, (_, w))| *w) {
            if w > low {
                self.entries[i] = (s, w);
            }
        }
    }

    /// Energy-weighted pick. `draw(n)` must return a uniform value in
    /// `[0, n)`; `None` when the pool is empty.
    pub fn pick(&self, draw: &mut dyn FnMut(u64) -> u64) -> Option<&Scenario> {
        let total: u64 = self.entries.iter().map(|(_, w)| *w).sum();
        if total == 0 {
            return None;
        }
        let mut r = draw(total);
        for (s, w) in &self.entries {
            if r < *w {
                return Some(s);
            }
            r -= w;
        }
        self.entries.last().map(|(s, _)| s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::FuzzDomain;
    use anvil_core::AnvilConfig;

    #[test]
    fn coverage_map_reports_novelty_once() {
        let mut map = CoverageMap::new();
        assert!(map.is_empty());
        assert!(map.observe(42));
        assert!(!map.observe(42));
        assert!(map.observe(43));
        assert_eq!(map.len(), 2);
    }

    #[test]
    fn frontier_scenarios_carry_more_energy_than_far_ones() {
        let domain = FuzzDomain::standard();
        // Hardened on the paper platform sits just under the 220K
        // frontier (the symbolic straddle bound is ~212K); the same
        // config judged against future DRAM's 110K threshold is deep
        // on the *wrong* side — far from the frontier either way.
        let near = domain.seeds(1)[0].clone();
        assert!(!near.future_dram);
        let mut far = near.clone();
        far.future_dram = true;
        assert!(
            energy(&near) > energy(&far),
            "near {} vs far {}",
            energy(&near),
            energy(&far)
        );
        assert!((1..=16).contains(&energy(&near)));
        assert!((1..=16).contains(&energy(&far)));
    }

    #[test]
    fn pool_picks_are_weighted_and_bounded() {
        let domain = FuzzDomain::standard();
        let mut pool = Pool::new(4);
        for (i, s) in domain.seeds(2).into_iter().enumerate() {
            let mut s = s;
            s.seed ^= i as u64;
            pool.add(s);
        }
        assert!(pool.len() <= 4);
        // A deterministic draw cycles through the weight space; every
        // pick must come from the pool.
        let mut tick = 0u64;
        let mut draw = |n: u64| {
            tick = tick.wrapping_add(7);
            tick % n.max(1)
        };
        for _ in 0..32 {
            assert!(pool.pick(&mut draw).is_some());
        }
        // Overflow replaces only lower-energy incumbents.
        let mut low = domain.seeds(3)[0].clone();
        low.future_dram = false;
        low.config = AnvilConfig::hardened();
        pool.add(low);
        assert_eq!(pool.len(), 4);
    }

    #[test]
    fn empty_pool_picks_nothing() {
        let pool = Pool::new(8);
        let mut draw = |_n: u64| 0;
        assert!(pool.pick(&mut draw).is_none());
    }
}
