//! Scenario mutation: one structured edit per call.
//!
//! The mutator owns a deterministic [`FaultRng`] stream and applies
//! exactly one edit per [`Mutator::mutate`] call — perturb an adversary
//! spec, move one detector-config parameter, perturb the fault plan,
//! grow/shrink/re-time the schedule, toggle the DRAM generation, or
//! reseed. The per-spec and per-plan edits delegate to the owning
//! crates' `mutated` hooks (closure-RNG, generator-agnostic); the result
//! is always projected back into the domain box by the caller via
//! [`crate::FuzzDomain::clamp`].

use crate::domain::FuzzDomain;
use crate::scenario::{Event, Scenario};
use anvil_adversary::ArchetypeSpec;
use anvil_core::AnvilConfig;
use anvil_faults::FaultRng;
use anvil_workloads::SpecBenchmark;

/// Deterministic scenario mutator (see module docs).
#[derive(Debug, Clone)]
pub struct Mutator {
    rng: FaultRng,
}

impl Mutator {
    /// A mutator drawing from the given seed.
    pub fn new(seed: u64) -> Self {
        Mutator {
            rng: FaultRng::new(seed),
        }
    }

    /// Returns a mutated copy of `s`, clamped into `domain`.
    #[must_use]
    pub fn mutate(&mut self, s: &Scenario, domain: &FuzzDomain) -> Scenario {
        let mut next = s.clone();
        let op = self.rng.below(8);
        match op {
            0 => self.mutate_spec(&mut next),
            1 => self.mutate_config(&mut next.config),
            2 => {
                let rng = &mut self.rng;
                let mut draw = |n: u64| rng.below(n);
                next.faults.seed = next.seed;
                next.faults = next.faults.mutated(&mut draw);
            }
            3 => self.add_event(&mut next, domain),
            4 => {
                if next.schedule.len() > 1 {
                    let i = self.rng.below(next.schedule.len() as u64) as usize;
                    next.schedule.remove(i);
                }
            }
            5 => {
                if !next.schedule.is_empty() {
                    let i = self.rng.below(next.schedule.len() as u64) as usize;
                    let factor = if self.rng.below(2) == 0 { 0.75 } else { 1.25 };
                    let ev = next.schedule[i];
                    next.schedule[i] = ev.with_ms(ev.ms() * factor);
                }
            }
            6 => {
                if domain.force_future.is_none() {
                    next.future_dram = !next.future_dram;
                } else {
                    // Forced generation: spend the edit on the spec
                    // instead of wasting the candidate.
                    self.mutate_spec(&mut next);
                }
            }
            _ => next.seed = self.rng.next_u64(),
        }
        domain.clamp(next)
    }

    /// Perturbs one hammer event's spec (or converts an idle event into
    /// a hammer when the schedule has none).
    fn mutate_spec(&mut self, s: &mut Scenario) {
        let hammers: Vec<usize> = s
            .schedule
            .iter()
            .enumerate()
            .filter_map(|(i, ev)| matches!(ev, Event::Hammer { .. }).then_some(i))
            .collect();
        if hammers.is_empty() {
            let spec = self.fresh_spec();
            if let Some(ev) = s.schedule.first_mut() {
                *ev = Event::Hammer { spec, ms: ev.ms() };
            } else {
                s.schedule.push(Event::Hammer { spec, ms: 40.0 });
            }
            return;
        }
        let i = hammers[self.rng.below(hammers.len() as u64) as usize];
        if let Event::Hammer { spec, ms } = s.schedule[i] {
            let rng = &mut self.rng;
            let mut draw = |n: u64| rng.below(n);
            s.schedule[i] = Event::Hammer {
                spec: spec.mutated(&mut draw),
                ms,
            };
        }
    }

    fn fresh_spec(&mut self) -> ArchetypeSpec {
        let defaults = ArchetypeSpec::defaults();
        defaults[self.rng.below(defaults.len() as u64) as usize]
    }

    fn add_event(&mut self, s: &mut Scenario, domain: &FuzzDomain) {
        if s.schedule.len() >= domain.max_events {
            return;
        }
        let ms = 4.0 + self.rng.below(48) as f64;
        let ev = match self.rng.below(3) {
            0 => Event::Hammer {
                spec: self.fresh_spec(),
                ms,
            },
            1 => {
                let all = SpecBenchmark::all();
                Event::Load {
                    bench: all[self.rng.below(all.len() as u64) as usize],
                    ms,
                }
            }
            _ => Event::Idle { ms },
        };
        let at = self.rng.below(s.schedule.len() as u64 + 1) as usize;
        s.schedule.insert(at, ev);
    }

    /// Moves exactly one detector-config parameter to a neighbouring
    /// value. Values are drawn from small legal-looking sets; moves that
    /// break structural validity (e.g. a window pair whose sustained
    /// budget clears the envelope) are *meant* to be produced — the
    /// campaign counts their rejection by `AnvilConfig::validate`.
    fn mutate_config(&mut self, c: &mut AnvilConfig) {
        let scale = |v: u64, pick: u64| match pick {
            0 => v / 2,
            1 => v.saturating_mul(3) / 4,
            2 => v.saturating_mul(9) / 8,
            _ => v.saturating_mul(5) / 4,
        };
        match self.rng.below(14) {
            0 => {
                let pick = self.rng.below(4);
                c.llc_miss_threshold = scale(c.llc_miss_threshold, pick).max(1);
            }
            1 => {
                let windows = [2.0, 3.0, 6.0];
                c.tc_ms = windows[self.rng.below(3) as usize];
                c.ts_ms = c.ts_ms.min(c.tc_ms);
            }
            2 => {
                let windows = [2.0, 3.0, 6.0];
                c.ts_ms = windows[self.rng.below(3) as usize];
            }
            3 => c.rate_safety = [0.1, 0.3, 0.5, 0.9][self.rng.below(4) as usize],
            4 => c.row_sample_floor = 1 + self.rng.below(8) as u32,
            5 => c.bank_support_min = 1 + self.rng.below(64) as u32,
            6 => c.victim_radius = 1 + self.rng.below(3) as u32,
            7 => {
                let pick = self.rng.below(4);
                c.sampling.interval = scale(c.sampling.interval, pick).max(1);
            }
            8 => c.hardening.stage1_carry = [0.0, 0.25, 0.5, 0.75][self.rng.below(4) as usize],
            9 => c.hardening.phase_jitter = [0.0, 0.1, 0.25, 0.5][self.rng.below(4) as usize],
            10 => c.hardening.max_resample_windows = self.rng.below(7) as u32,
            11 => c.hardening.hit_weight = [0.0, 0.2, 0.5, 1.0][self.rng.below(4) as usize],
            12 => {
                c.hardening.ledger_decay = [0.0, 0.25, 0.5, 0.75][self.rng.below(4) as usize];
                c.hardening.ledger_factor = [0.75, 1.0, 1.5, 2.0][self.rng.below(4) as usize];
            }
            _ => c.degraded.enabled = !c.degraded.enabled,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::FuzzDomain;

    #[test]
    fn mutation_is_deterministic_in_the_seed() {
        let domain = FuzzDomain::standard();
        let seed = domain.seeds(9)[0].clone();
        let mut a = Mutator::new(41);
        let mut b = Mutator::new(41);
        let mut sa = seed.clone();
        let mut sb = seed;
        for _ in 0..32 {
            sa = a.mutate(&sa, &domain);
            sb = b.mutate(&sb, &domain);
            assert_eq!(sa, sb);
        }
    }

    #[test]
    fn mutants_stay_inside_the_box() {
        for domain in [FuzzDomain::standard(), FuzzDomain::weakened_canary()] {
            let mut m = Mutator::new(4242);
            let mut s = domain.seeds(4)[1].clone();
            for _ in 0..256 {
                s = m.mutate(&s, &domain);
                assert_eq!(s, domain.clamp(s.clone()), "{} mutant escaped", domain.name);
                assert!(!s.schedule.is_empty());
            }
        }
    }

    #[test]
    fn mutation_eventually_produces_invalid_configs() {
        // The rejection-rate statistic depends on the mutator actually
        // reaching structurally invalid configurations (e.g. envelope-
        // breaking window/threshold pairs).
        let domain = FuzzDomain::standard();
        let mut m = Mutator::new(7);
        let mut s = domain.seeds(5)[0].clone();
        let mut rejected = 0;
        for _ in 0..400 {
            let cand = m.mutate(&s, &domain);
            if cand.config.validate().is_err() {
                rejected += 1;
            } else {
                s = cand;
            }
        }
        assert!(rejected > 0, "no invalid config in 400 mutations");
    }
}
