//! The fuzzer's scenario IR: one complete, replayable simulator run.
//!
//! A [`Scenario`] bundles everything a run depends on — the detector
//! configuration, the fault plan, the DRAM generation, the seed, and a
//! small *schedule* of programs joining the platform over time — into
//! plain serializable data, the same way `anvil-analyze`'s `Witness`
//! does for single-attack replays. [`Scenario::run`] is deterministic in
//! the scenario's fields, so a case written to the corpus replays
//! byte-for-byte forever.

use anvil_adversary::ArchetypeSpec;
use anvil_core::{
    AnvilConfig, DetectorStats, EnvelopeParams, GuaranteeEnvelope, Platform, PlatformConfig,
    StateSignature,
};
use anvil_dram::{CpuClock, DisturbanceConfig};
use anvil_faults::FaultPlan;
use anvil_workloads::SpecBenchmark;
use serde::{Deserialize, Serialize};

/// One entry in a scenario's schedule. Each event adds a program to the
/// platform (or nothing, for [`Event::Idle`]) and then advances simulated
/// time by `ms`; programs added by earlier events keep running.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[serde(tag = "event", rename_all = "kebab-case")]
pub enum Event {
    /// An adaptive adversary joins and the run advances `ms`.
    Hammer {
        /// The concrete adversary instance.
        spec: ArchetypeSpec,
        /// Milliseconds simulated after the adversary joins.
        ms: f64,
    },
    /// A benign SPEC workload joins and the run advances `ms`.
    Load {
        /// The workload model.
        bench: SpecBenchmark,
        /// Milliseconds simulated after the workload joins.
        ms: f64,
    },
    /// No program joins; existing programs run for `ms` more.
    Idle {
        /// Milliseconds simulated.
        ms: f64,
    },
}

impl Event {
    /// The event's simulated duration in milliseconds.
    pub fn ms(&self) -> f64 {
        match self {
            Event::Hammer { ms, .. } | Event::Load { ms, .. } | Event::Idle { ms } => *ms,
        }
    }

    /// The same event with its duration replaced.
    #[must_use]
    pub fn with_ms(self, new_ms: f64) -> Event {
        match self {
            Event::Hammer { spec, .. } => Event::Hammer { spec, ms: new_ms },
            Event::Load { bench, .. } => Event::Load { bench, ms: new_ms },
            Event::Idle { .. } => Event::Idle { ms: new_ms },
        }
    }
}

/// A complete fuzz case: config + faults + DRAM generation + seed +
/// schedule. Serializable, mutable, shrinkable, and replayable.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// The detector configuration under test.
    pub config: AnvilConfig,
    /// The fault plan active during the run ([`FaultPlan::none`] for a
    /// clean substrate).
    pub faults: FaultPlan,
    /// Run on future (half-threshold) DRAM rather than the paper's.
    pub future_dram: bool,
    /// Scenario seed: threaded into the hardened phase schedule, the
    /// DRAM weak-cell map, and workload generators.
    pub seed: u64,
    /// Programs joining the platform over time.
    pub schedule: Vec<Event>,
}

/// What one scenario run produced.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioOutcome {
    /// Bit flips the run accumulated.
    pub flips: u64,
    /// Whether the detector flagged any aggressor.
    pub detected: bool,
    /// Milliseconds to the first detection, if any.
    pub detect_ms: Option<f64>,
    /// The detector's activity counters at the end of the run.
    pub stats: DetectorStats,
    /// The bucketed detector-state signature (the coverage map's key).
    pub signature: StateSignature,
    /// Per-event platform errors (an attack that failed to prepare, a
    /// run that aborted); empty on a clean run.
    pub errors: Vec<String>,
}

impl ScenarioOutcome {
    /// The coverage-map key: the detector-state signature's 48 bits of
    /// bucketed counters, tagged with the outcome bits that matter to
    /// the oracle (flipped / detected / errored).
    pub fn coverage_key(&self) -> u64 {
        let flags = u64::from(self.flips > 0)
            | (u64::from(self.detected) << 1)
            | (u64::from(!self.errors.is_empty()) << 2);
        self.signature.0 | (flags << 48)
    }
}

impl Scenario {
    /// The envelope parameters this scenario's safety claim is audited
    /// against: the paper platform's constants, with the flip threshold
    /// lowered to future DRAM's when the scenario runs there.
    pub fn envelope_params(&self) -> EnvelopeParams {
        let base = EnvelopeParams::paper_platform();
        if self.future_dram {
            base.with_flip_threshold(
                DisturbanceConfig::future_half_threshold().double_sided_threshold,
            )
        } else {
            base
        }
    }

    /// The oracle's safety claim: the configuration is structurally
    /// valid *and* the guarantee-envelope audit says no adversary inside
    /// the modeled families can flip a bit. A scenario that flips bits
    /// while this holds is a counterexample; flips under a non-holding
    /// envelope are expected leaks.
    pub fn supposedly_safe(&self) -> bool {
        self.config.validate().is_ok()
            && GuaranteeEnvelope::audit(
                &self.config,
                &CpuClock::SANDY_BRIDGE_2_6GHZ,
                &self.envelope_params(),
            )
            .holds()
    }

    /// Sum of the schedule's event durations, in milliseconds.
    pub fn total_ms(&self) -> f64 {
        self.schedule.iter().map(Event::ms).sum()
    }

    /// A stable content hash of the scenario's JSON encoding, used to
    /// name corpus files and deduplicate cases.
    pub fn content_key(&self) -> u64 {
        let text = serde_json::to_string(self).expect("scenario serializes");
        anvil_core::fnv1a64(text.as_bytes())
    }

    /// Replays the scenario through the full dynamic simulator.
    ///
    /// Platform construction follows the witness-replay convention: the
    /// scenario seed goes into the hardened phase schedule and the DRAM
    /// weak-cell map, future DRAM halves the flip threshold, and the
    /// fault plan attaches only when non-empty. Events then join the
    /// platform in order; a platform error is recorded (not panicked)
    /// and ends the schedule early.
    pub fn run(&self) -> ScenarioOutcome {
        let mut cfg = self.config;
        cfg.hardening.phase_seed = self.seed;
        let mut pc = PlatformConfig::with_anvil(cfg);
        if self.future_dram {
            pc.memory.dram.disturbance = DisturbanceConfig::future_half_threshold();
        }
        pc.memory.dram.seed ^= self.seed;
        if self.faults != FaultPlan::none() {
            pc = pc.with_faults(self.faults);
        }
        let mut p = Platform::new(pc);
        let mut errors = Vec::new();
        let mut ran_any = false;
        for (i, ev) in self.schedule.iter().enumerate() {
            let added = match ev {
                Event::Hammer { spec, .. } => p.add_attack(spec.build()).map(|_| true),
                Event::Load { bench, .. } => p
                    .add_workload(bench.build(self.seed ^ i as u64))
                    .map(|_| true),
                // An idle stretch before any program exists would be
                // rejected by the platform (nothing to run); skip it.
                Event::Idle { .. } => Ok(ran_any),
            };
            match added {
                Ok(has_programs) => {
                    if has_programs {
                        ran_any = true;
                        if let Err(e) = p.run_ms(ev.ms()) {
                            errors.push(format!("event {i}: {e:?}"));
                            break;
                        }
                    }
                }
                Err(e) => errors.push(format!("event {i}: {e:?}")),
            }
        }
        let stats = p.detector_stats().copied().unwrap_or_default();
        ScenarioOutcome {
            flips: p.total_flips(),
            detected: p.first_detection_ms().is_some(),
            detect_ms: p.first_detection_ms(),
            stats,
            signature: stats.signature(),
            errors,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Scenario {
        Scenario {
            config: AnvilConfig::hardened(),
            faults: FaultPlan::none(),
            future_dram: false,
            seed: 7,
            schedule: vec![Event::Load {
                bench: SpecBenchmark::Mcf,
                ms: 8.0,
            }],
        }
    }

    #[test]
    fn scenarios_round_trip_through_json() {
        let s = tiny();
        let text = serde_json::to_string(&s).unwrap();
        let back: Scenario = serde_json::from_str(&text).unwrap();
        assert_eq!(s, back);
        assert_eq!(s.content_key(), back.content_key());
    }

    #[test]
    fn runs_are_deterministic() {
        let s = tiny();
        let a = s.run();
        let b = s.run();
        assert_eq!(a, b);
        assert_eq!(a.coverage_key(), b.coverage_key());
        assert!(a.errors.is_empty(), "{:?}", a.errors);
    }

    #[test]
    fn idle_before_any_program_is_skipped_not_an_error() {
        let mut s = tiny();
        s.schedule.insert(0, Event::Idle { ms: 6.0 });
        let out = s.run();
        assert!(out.errors.is_empty(), "{:?}", out.errors);
    }

    #[test]
    fn safety_claim_tracks_config_and_dram_generation() {
        let mut s = tiny();
        // Hardened on the paper platform: the envelope holds.
        assert!(s.supposedly_safe());
        assert_eq!(s.envelope_params().flip_threshold, 220_000);
        // Hardened makes no claim at future DRAM's halved threshold
        // (its straddle budget clears 110K) — flips there are expected
        // leaks, not counterexamples.
        s.future_dram = true;
        assert!(!s.supposedly_safe());
        assert_eq!(s.envelope_params().flip_threshold, 110_000);
        // The unhardened envelope leaks on either generation.
        s.future_dram = false;
        s.config = AnvilConfig::baseline();
        assert!(!s.supposedly_safe());
    }

    #[test]
    fn coverage_key_separates_outcome_flags() {
        let s = tiny();
        let mut out = s.run();
        let clean = out.coverage_key();
        out.flips = 3;
        assert_ne!(out.coverage_key(), clean);
        out.flips = 0;
        out.errors.push("event 0: boom".into());
        assert_ne!(out.coverage_key(), clean);
    }
}
