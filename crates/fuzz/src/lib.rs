//! `anvil-fuzz` — coverage-guided scenario fuzzing for the ANVIL
//! no-flip guarantee.
//!
//! The symbolic verifier (`anvil-analyze`) proves the guarantee for the
//! archetype families it models; this crate attacks everything the
//! model *doesn't* cover. A deterministic, seeded campaign mutates whole
//! [`Scenario`]s — detector configuration, adaptive-adversary schedule,
//! fault plan, DRAM generation — one structured edit at a time, guided
//! by two feedback signals:
//!
//! * **detector-state coverage** — [`anvil_core::StateSignature`]
//!   bucketizes every `DetectorStats` counter to its log₂ magnitude;
//!   a scenario whose signature (plus flip/detect/error outcome flags)
//!   was never seen joins the mutation pool;
//! * **frontier energy** — `anvil_analyze::frontier_distance` scores
//!   how close a configuration sits to its symbolic guarantee frontier;
//!   pool picks are weighted toward the frontier, where one small edit
//!   can break the claim.
//!
//! The oracle is the guarantee itself: a scenario that flips bits while
//! [`Scenario::supposedly_safe`] holds is a counterexample. Each one is
//! automatically [`shrink`]-ed — drop schedule events, clear fault
//! sites, reset config fields, bisect adversary intensities — to a
//! 1-minimal replayable case. Novel zero-flip cases are promoted into
//! the committed regression corpus under `corpus/`, replayed by
//! `tests/fuzz_corpus.rs` on every CI run.
//!
//! Everything is deterministic in the campaign seed: generation happens
//! before each batch is dispatched and results fold back in submission
//! order, so the serial executor and `anvil-bench`'s parallel
//! `run_cells_checked` produce byte-identical reports at any
//! `--threads`.

pub mod campaign;
pub mod corpus;
pub mod coverage;
pub mod domain;
pub mod mutate;
pub mod scenario;
pub mod shrink;

pub use campaign::{run_campaign, serial_exec, Counterexample, FuzzOptions, FuzzReport};
pub use corpus::{load_dir, write_dir, CorpusEntry};
pub use coverage::{energy, CoverageMap, Pool};
pub use domain::{
    FuzzDomain, CANARY_BANK_SUPPORT, CANARY_LEDGER_MIN_WINDOWS, CANARY_LLC_THRESHOLD,
    CANARY_SEED_PACE,
};
pub use mutate::Mutator;
pub use scenario::{Event, Scenario, ScenarioOutcome};
pub use shrink::{reduction_steps, reproduces_flip, shrink, ShrinkResult};
