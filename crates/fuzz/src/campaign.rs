//! The fuzz campaign loop: seeded, batched, coverage-guided.
//!
//! [`run_campaign`] drives the whole pipeline. Candidates are generated
//! deterministically — domain seeds first, then energy-weighted pool
//! picks mutated one edit at a time — and evaluated through a
//! caller-supplied *executor* (a function from a batch of scenarios to
//! their outcomes). The serial executor and any deterministic parallel
//! executor (e.g. `anvil-bench`'s `run_cells_checked`) produce
//! byte-identical reports, because generation happens before the batch
//! is dispatched and results fold back in submission order; the batch
//! size is fixed by the options, never by the worker count.
//!
//! Oracle: a scenario that flips bits while [`Scenario::supposedly_safe`]
//! holds is a counterexample — it is immediately shrunk to a 1-minimal
//! replayable case. Flips under a non-holding envelope are counted as
//! expected leaks. Structurally invalid mutants are rejected up front by
//! `AnvilConfig::validate` and tallied per reason (the rejection-rate
//! statistic).

use crate::corpus::CorpusEntry;
use crate::coverage::{CoverageMap, Pool};
use crate::domain::FuzzDomain;
use crate::mutate::Mutator;
use crate::scenario::{Scenario, ScenarioOutcome};
use crate::shrink::{reproduces_flip, shrink, ShrinkResult};
use anvil_core::ConfigError;
use anvil_faults::FaultRng;
use serde::Serialize;
use std::collections::BTreeMap;

/// Campaign sizing and seeding.
#[derive(Debug, Clone)]
pub struct FuzzOptions {
    /// Scenarios to evaluate (seeds included).
    pub budget: usize,
    /// Scenarios dispatched per executor call. Fixed by the options —
    /// never derived from the worker count — so reports are identical
    /// at any parallelism.
    pub batch: usize,
    /// Maximum corpus entries recorded.
    pub corpus_cap: usize,
    /// Maximum oracle runs per counterexample shrink.
    pub max_shrink_runs: usize,
    /// Campaign seed: drives generation, mutation, and pool picks.
    pub seed: u64,
    /// The domain fuzzed over.
    pub domain: FuzzDomain,
}

impl FuzzOptions {
    /// The CI smoke campaign: small budget, standard domain.
    pub fn smoke(seed: u64) -> Self {
        FuzzOptions {
            budget: 24,
            batch: 8,
            corpus_cap: 12,
            max_shrink_runs: 64,
            seed,
            domain: FuzzDomain::standard(),
        }
    }

    /// The full campaign the `fuzz` binary runs by default.
    pub fn full(seed: u64) -> Self {
        FuzzOptions {
            budget: 160,
            batch: 16,
            corpus_cap: 32,
            max_shrink_runs: 160,
            seed,
            domain: FuzzDomain::standard(),
        }
    }

    /// The weakened-envelope canary campaign (the domain plants a
    /// bank-support blind spot the fuzzer must find and shrink).
    pub fn canary(seed: u64) -> Self {
        FuzzOptions {
            budget: 64,
            batch: 8,
            corpus_cap: 8,
            max_shrink_runs: 160,
            seed,
            domain: FuzzDomain::weakened_canary(),
        }
    }
}

/// A confirmed envelope violation, shrunk to a minimal replayable case.
#[derive(Debug, Clone, Serialize)]
pub struct Counterexample {
    /// The scenario as the fuzzer first found it.
    pub original: Scenario,
    /// The 1-minimal shrunk scenario.
    pub shrunk: Scenario,
    /// Flips the shrunk scenario reproduces.
    pub flips: u64,
    /// Oracle runs the shrink spent.
    pub shrink_runs: usize,
    /// Whether the shrink reached 1-minimality within its budget.
    pub minimal: bool,
}

/// Everything one campaign produced.
#[derive(Debug, Clone, Serialize)]
pub struct FuzzReport {
    /// The domain fuzzed.
    pub domain: &'static str,
    /// Campaign seed.
    pub seed: u64,
    /// Scenarios evaluated.
    pub executed: usize,
    /// Mutants rejected up front by `AnvilConfig::validate`.
    pub rejected: usize,
    /// Rejection tallies keyed by reason.
    pub rejection_reasons: BTreeMap<String, usize>,
    /// Distinct coverage keys observed.
    pub coverage_points: usize,
    /// Scenarios that produced novel coverage.
    pub novel: usize,
    /// Flips under configurations whose envelope already admits leaks.
    pub expected_leaks: usize,
    /// Cells that panicked inside the executor (index + message).
    pub cell_failures: Vec<String>,
    /// Shrunk envelope violations (must be empty for the gate to pass).
    pub counterexamples: Vec<Counterexample>,
    /// Novel zero-flip cases recorded for the regression corpus.
    pub corpus: Vec<CorpusEntry>,
    /// `true` when generation could not fill the budget with valid
    /// mutants (the domain collapsed); a gate failure.
    pub exhausted: bool,
}

fn rejection_reason(err: &ConfigError) -> String {
    match err {
        ConfigError::Invalid(msg) => msg.clone(),
        ConfigError::GuaranteeEnvelope { .. } => "guarantee_envelope".to_string(),
    }
}

/// Runs one campaign (see module docs). `exec` evaluates a batch of
/// scenarios; `Err` entries are executor-level cell failures (e.g. a
/// caught panic), reported but not fatal.
pub fn run_campaign<E>(opts: &FuzzOptions, exec: E) -> FuzzReport
where
    E: Fn(Vec<Scenario>) -> Vec<Result<ScenarioOutcome, String>>,
{
    let mut pick_rng = FaultRng::new(opts.seed ^ 0x9c07_e57a);
    let mut mutator = Mutator::new(opts.seed ^ 0x5eed_f00d);
    let mut map = CoverageMap::new();
    let mut pool = Pool::new(opts.corpus_cap.max(16) * 2);
    let mut pending: Vec<Scenario> = opts.domain.seeds(opts.seed);
    pending.reverse(); // popped back-to-front below, seeds run in order

    let mut report = FuzzReport {
        domain: opts.domain.name,
        seed: opts.seed,
        executed: 0,
        rejected: 0,
        rejection_reasons: BTreeMap::new(),
        coverage_points: 0,
        novel: 0,
        expected_leaks: 0,
        cell_failures: Vec::new(),
        counterexamples: Vec::new(),
        corpus: Vec::new(),
        exhausted: false,
    };

    // Each generation attempt either yields a valid candidate or a
    // rejection; the attempt cap bounds the campaign when the domain
    // collapses into an all-invalid region.
    let max_attempts = opts.budget.saturating_mul(32).max(256);
    let mut attempts = 0usize;

    'campaign: while report.executed < opts.budget {
        // Generate the whole batch *before* dispatch: the executor's
        // parallelism then cannot perturb the RNG streams, so reports
        // are byte-identical at any thread count.
        let mut batch: Vec<Scenario> = Vec::with_capacity(opts.batch);
        while batch.len() < opts.batch && report.executed + batch.len() < opts.budget {
            if attempts >= max_attempts {
                report.exhausted = true;
                break;
            }
            let cand = if let Some(seeded) = pending.pop() {
                seeded
            } else {
                let rng = &mut pick_rng;
                let mut draw = |n: u64| rng.below(n);
                if let Some(base) = pool.pick(&mut draw) {
                    let base = base.clone();
                    mutator.mutate(&base, &opts.domain)
                } else {
                    // Nothing interesting survived: restart from the
                    // domain seeds rather than giving up.
                    pending = opts.domain.seeds(opts.seed ^ attempts as u64);
                    pending.reverse();
                    continue;
                }
            };
            attempts += 1;
            match cand.config.validate() {
                Ok(()) => batch.push(cand),
                Err(e) => {
                    report.rejected += 1;
                    *report
                        .rejection_reasons
                        .entry(rejection_reason(&e))
                        .or_insert(0) += 1;
                }
            }
        }
        if batch.is_empty() {
            report.exhausted = true;
            break;
        }

        let outcomes = exec(batch.clone());
        debug_assert_eq!(outcomes.len(), batch.len());
        for (scenario, result) in batch.into_iter().zip(outcomes) {
            report.executed += 1;
            let out = match result {
                Ok(out) => out,
                Err(failure) => {
                    report.cell_failures.push(failure);
                    continue;
                }
            };
            let novel = map.observe(out.coverage_key());
            if novel {
                report.novel += 1;
                pool.add(scenario.clone());
            }
            if out.flips > 0 {
                if scenario.supposedly_safe() {
                    let shrunk = shrink(
                        scenario.clone(),
                        &opts.domain,
                        opts.max_shrink_runs,
                        &mut reproduces_flip,
                    );
                    report
                        .counterexamples
                        .push(to_counterexample(scenario, shrunk));
                } else {
                    report.expected_leaks += 1;
                }
            } else if novel && report.corpus.len() < opts.corpus_cap {
                report.corpus.push(CorpusEntry {
                    scenario,
                    signature: out.signature,
                    detected: out.detected,
                });
            }
        }
        if report.exhausted {
            break 'campaign;
        }
    }
    report.coverage_points = map.len();
    report
}

fn to_counterexample(original: Scenario, shrunk: ShrinkResult) -> Counterexample {
    let flips = shrunk.scenario.run().flips;
    Counterexample {
        original,
        shrunk: shrunk.scenario,
        flips,
        shrink_runs: shrunk.runs,
        minimal: shrunk.minimal,
    }
}

/// The serial executor: runs each scenario inline on the calling
/// thread. The reference implementation parallel executors must match
/// byte-for-byte.
pub fn serial_exec(batch: Vec<Scenario>) -> Vec<Result<ScenarioOutcome, String>> {
    batch.into_iter().map(|s| Ok(s.run())).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_campaign_is_deterministic_and_fills_its_budget() {
        let opts = FuzzOptions::smoke(11);
        let a = run_campaign(&opts, serial_exec);
        let b = run_campaign(&opts, serial_exec);
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap()
        );
        assert_eq!(a.executed, opts.budget);
        assert!(!a.exhausted);
        assert!(a.coverage_points > 0);
        assert!(a.novel > 0);
        assert!(!a.corpus.is_empty(), "smoke found no corpus-worthy case");
        assert!(a.corpus.len() <= opts.corpus_cap);
    }

    #[test]
    fn standard_domain_yields_no_counterexample() {
        let report = run_campaign(&FuzzOptions::smoke(3), serial_exec);
        assert!(
            report.counterexamples.is_empty(),
            "hardened envelope violated: {:?}",
            report.counterexamples
        );
        assert!(
            report.cell_failures.is_empty(),
            "{:?}",
            report.cell_failures
        );
    }

    #[test]
    fn executor_errors_are_collected_not_fatal() {
        let opts = FuzzOptions::smoke(5);
        let report = run_campaign(&opts, |batch| {
            batch
                .into_iter()
                .enumerate()
                .map(|(i, s)| {
                    if i == 0 {
                        Err("cell 0 panicked: injected".to_string())
                    } else {
                        Ok(s.run())
                    }
                })
                .collect()
        });
        assert!(!report.cell_failures.is_empty());
        assert_eq!(report.executed, opts.budget);
    }
}
