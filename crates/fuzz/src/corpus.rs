//! The committed regression corpus: interesting scenarios on disk.
//!
//! Each corpus file under `corpus/` holds one [`CorpusEntry`] — a
//! scenario that produced novel detector-state coverage while keeping
//! the guarantee (zero flips), plus the outcome fingerprint it had when
//! recorded. File names are content-addressed
//! (`case-<fnv1a64-of-scenario-json>.json`), so re-running the fuzzer
//! never duplicates a case and a changed scenario is a new file. The
//! `fuzz_corpus` integration test replays every entry and fails the
//! merge if any now flips bits — the regression gate.

use crate::scenario::Scenario;
use anvil_core::StateSignature;
use serde::{Deserialize, Serialize};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// One committed corpus case.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CorpusEntry {
    /// The replayable scenario.
    pub scenario: Scenario,
    /// The detector-state signature the scenario produced when recorded
    /// (informational: shows *why* the case was interesting).
    pub signature: StateSignature,
    /// Whether the detector fired when the case was recorded.
    pub detected: bool,
}

impl CorpusEntry {
    /// The entry's content-addressed file name.
    pub fn filename(&self) -> String {
        format!("case-{:016x}.json", self.scenario.content_key())
    }
}

/// Loads every `*.json` corpus entry under `dir`, sorted by file name
/// for deterministic iteration. A missing directory is an empty corpus,
/// not an error; an unreadable or undecodable file is.
pub fn load_dir(dir: &Path) -> io::Result<Vec<(PathBuf, CorpusEntry)>> {
    let mut paths: Vec<PathBuf> = match fs::read_dir(dir) {
        Ok(entries) => entries
            .filter_map(Result::ok)
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|x| x == "json"))
            .collect(),
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(e),
    };
    paths.sort();
    let mut out = Vec::with_capacity(paths.len());
    for p in paths {
        let text = fs::read_to_string(&p)?;
        let entry: CorpusEntry = serde_json::from_str(&text).map_err(|e| {
            io::Error::new(io::ErrorKind::InvalidData, format!("{}: {e}", p.display()))
        })?;
        out.push((p, entry));
    }
    Ok(out)
}

/// Writes each entry to its content-addressed file under `dir`
/// (creating the directory), skipping files that already exist. Returns
/// the number of new files written.
pub fn write_dir(dir: &Path, entries: &[CorpusEntry]) -> io::Result<usize> {
    fs::create_dir_all(dir)?;
    let mut written = 0;
    for entry in entries {
        let path = dir.join(entry.filename());
        if path.exists() {
            continue;
        }
        let mut text = serde_json::to_string_pretty(entry)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        text.push('\n');
        fs::write(&path, text)?;
        written += 1;
    }
    Ok(written)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::FuzzDomain;

    fn sample_entries() -> Vec<CorpusEntry> {
        FuzzDomain::standard()
            .seeds(21)
            .into_iter()
            .map(|scenario| CorpusEntry {
                scenario,
                signature: StateSignature(0x123),
                detected: false,
            })
            .collect()
    }

    #[test]
    fn corpus_round_trips_through_a_directory() {
        let dir = std::env::temp_dir().join(format!("anvil-fuzz-corpus-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let entries = sample_entries();
        let wrote = write_dir(&dir, &entries).unwrap();
        assert_eq!(wrote, entries.len());
        // Idempotent: content addressing skips existing files.
        assert_eq!(write_dir(&dir, &entries).unwrap(), 0);
        let loaded = load_dir(&dir).unwrap();
        assert_eq!(loaded.len(), entries.len());
        let mut expected: Vec<String> = entries.iter().map(CorpusEntry::filename).collect();
        expected.sort();
        let names: Vec<String> = loaded
            .iter()
            .map(|(p, _)| p.file_name().unwrap().to_string_lossy().into_owned())
            .collect();
        assert_eq!(names, expected);
        for (_, entry) in &loaded {
            assert!(entries.contains(entry));
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_directory_is_an_empty_corpus() {
        let dir = Path::new("/definitely/not/a/real/anvil/corpus/dir");
        assert!(load_dir(dir).unwrap().is_empty());
    }
}
