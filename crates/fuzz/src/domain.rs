//! Fuzz domains: the box of scenarios a campaign explores.
//!
//! A [`FuzzDomain`] bounds every dimension the mutator can move —
//! schedule length and durations, adversary intensities, config
//! parameter ranges, fault magnitudes — and supplies the seed scenarios
//! the pool starts from. [`FuzzDomain::clamp`] projects an arbitrary
//! mutated scenario back into the box, so the campaign explores the
//! *intended* space no matter what sequence of mutations produced a
//! candidate.
//!
//! Two built-in domains:
//!
//! * [`FuzzDomain::standard`] fuzzes around the hardened shipping
//!   configuration on the paper's DRAM generation — the region where
//!   the guarantee envelope *holds* (hardened does not claim safety at
//!   future DRAM's halved threshold; flips there are expected leaks,
//!   not counterexamples). Fault magnitudes are capped at the
//!   resilience suite's calibrated scenario maxima, so any flip found
//!   under a holding envelope is a real violation, not a re-discovery
//!   of a known out-of-model regime.
//! * [`FuzzDomain::weakened_canary`] deliberately opens the known
//!   bank-support blind spot (neither `AnvilConfig::validate` nor the
//!   envelope auditor models `bank_support_min`, but row conviction
//!   requires it), seeding a paced adversary just under the flip
//!   threshold. The fuzzer must find the one-mutation flip and shrink
//!   it — the end-to-end canary test.

use crate::scenario::{Event, Scenario};
use anvil_adversary::{ArchetypeSpec, EST_STAGE1_WINDOW_CYCLES};
use anvil_core::AnvilConfig;
use anvil_dram::Cycle;
use anvil_faults::FaultPlan;
use anvil_workloads::SpecBenchmark;

/// Bounds and seeds for one fuzz campaign.
#[derive(Debug, Clone)]
pub struct FuzzDomain {
    /// Domain name, recorded in reports.
    pub name: &'static str,
    /// The configuration mutations start from and shrinking resets
    /// toward.
    pub base: AnvilConfig,
    /// When `Some`, every scenario is forced onto this DRAM generation;
    /// when `None` the mutator may toggle it.
    pub force_future: Option<bool>,
    /// Maximum schedule length.
    pub max_events: usize,
    /// Per-event duration bounds, ms.
    pub event_ms: (f64, f64),
    /// Maximum total schedule duration, ms.
    pub max_total_ms: f64,
    /// Cap on duty-cycle burst misses.
    pub max_burst: u64,
    /// Cap on paced misses per window.
    pub max_pace: u64,
    /// Cap on camouflage dilution.
    pub max_dilution: u64,
    /// Cap on distributed aggressor pairs.
    pub max_pairs: usize,
    /// Stage-1 miss-threshold range.
    pub llc_range: (u64, u64),
    /// Bank-support range (the canary domain opens this wide).
    pub bank_support_range: (u32, u32),
    /// Ledger window-floor range (the canary domain opens this past the
    /// number of stage-2 windows a schedule can contain).
    pub ledger_min_windows_range: (u32, u32),
    /// PEBS sampling-interval range, cycles.
    pub sampling_interval_range: (Cycle, Cycle),
}

/// The canary domain's planted miss threshold: low enough that stage 1
/// still arms against the seeded pace, leaving conviction — blinded by
/// the oversized bank-support floor — as the only broken link.
pub const CANARY_LLC_THRESHOLD: u64 = 12_000;

/// The canary domain's planted bank-support floor: far above the ~30
/// samples a stage-2 window yields, so direct row conviction can never
/// gather enough same-bank corroboration. The envelope auditor does not
/// model this parameter — the planted gap the fuzzer must find
/// dynamically.
pub const CANARY_BANK_SUPPORT: u32 = 48;

/// The canary domain's planted ledger patience: the suspicion ledger
/// only convicts a row it has watched for `ledger_min_windows` stage-2
/// windows, and a schedule capped at 140 ms never yields 32 of them —
/// the cross-window pathway that would otherwise catch what bank
/// support misses is quietly disarmed. The auditor models the ledger's
/// *score* cap (`required × factor × (1 − decay)`) but not its window
/// floor, so this plant is invisible to the envelope audit — the second
/// half of the blind spot.
pub const CANARY_LEDGER_MIN_WINDOWS: u32 = 32;

/// The canary seed's pace: ~213K activations per refresh interval
/// (19,999 misses per 6 ms stage-1 window × 10.67 windows per 64 ms),
/// just under the paper platform's 220K flip threshold. One ×9⁄8
/// intensity mutation crosses it.
pub const CANARY_SEED_PACE: u64 = 19_999;

impl FuzzDomain {
    /// The shipping-configuration domain (see module docs).
    pub fn standard() -> Self {
        FuzzDomain {
            name: "standard",
            base: AnvilConfig::hardened(),
            force_future: None,
            max_events: 6,
            event_ms: (4.0, 60.0),
            max_total_ms: 140.0,
            max_burst: 45_000,
            max_pace: 40_000,
            max_dilution: 24,
            max_pairs: 12,
            llc_range: (5_000, 30_000),
            bank_support_range: (1, 4),
            ledger_min_windows_range: (1, 4),
            sampling_interval_range: (130_000, 2_080_000),
        }
    }

    /// The weakened-envelope canary domain (see module docs).
    pub fn weakened_canary() -> Self {
        let mut base = AnvilConfig::hardened();
        base.llc_miss_threshold = CANARY_LLC_THRESHOLD;
        base.bank_support_min = CANARY_BANK_SUPPORT;
        base.hardening.ledger_min_windows = CANARY_LEDGER_MIN_WINDOWS;
        FuzzDomain {
            name: "weakened-canary",
            base,
            force_future: Some(false),
            bank_support_range: (1, 64),
            ledger_min_windows_range: (1, 48),
            llc_range: (5_000, 14_000),
            ..Self::standard()
        }
    }

    /// The domain's seed scenarios, all inside the box: one per
    /// archetype family, parked near the guarantee frontier.
    pub fn seeds(&self, seed: u64) -> Vec<Scenario> {
        let window = EST_STAGE1_WINDOW_CYCLES;
        let future = self.force_future.unwrap_or(false);
        let mk = |schedule: Vec<Event>, salt: u64| Scenario {
            config: self.base,
            faults: FaultPlan::none(),
            future_dram: future,
            seed: seed ^ salt,
            schedule,
        };
        let specs = [
            // Threshold prober pacing just under the canary/standard
            // frontier (quiet EWMA rate ≈ 2 × pace).
            ArchetypeSpec::Paced {
                misses_per_window: CANARY_SEED_PACE,
                window_cycles: window,
            },
            ArchetypeSpec::DutyCycle {
                burst_misses: self.base.llc_miss_threshold.saturating_mul(7) / 5,
                window_cycles: window,
            },
            ArchetypeSpec::Camouflage { dilution: 10 },
            ArchetypeSpec::Distributed { pairs: 7 },
        ];
        let mut out = Vec::new();
        for (i, spec) in specs.into_iter().enumerate() {
            out.push(mk(
                vec![Event::Hammer { spec, ms: 60.0 }],
                0x5eed ^ ((i as u64) << 8),
            ));
        }
        // One mixed schedule: benign load, then a straddler joins.
        out.push(mk(
            vec![
                Event::Load {
                    bench: SpecBenchmark::Mcf,
                    ms: 12.0,
                },
                Event::Hammer {
                    spec: specs_duty(self.base.llc_miss_threshold),
                    ms: 48.0,
                },
            ],
            0x6d17,
        ));
        out.into_iter().map(|s| self.clamp(s)).collect()
    }

    /// Projects a scenario into the domain box: schedule length and
    /// durations, adversary intensity caps, config parameter ranges,
    /// and fault-magnitude calibration limits. Structural validity
    /// (e.g. `ts ≤ tc`) is *not* repaired here — invalid configs are
    /// the rejection-rate statistic's job.
    #[must_use]
    pub fn clamp(&self, mut s: Scenario) -> Scenario {
        if let Some(f) = self.force_future {
            s.future_dram = f;
        }
        s.schedule.truncate(self.max_events.max(1));
        let (lo_ms, hi_ms) = self.event_ms;
        for ev in &mut s.schedule {
            *ev = ev.with_ms(ev.ms().clamp(lo_ms, hi_ms));
        }
        while s.schedule.len() > 1 && s.total_ms() > self.max_total_ms {
            s.schedule.pop();
        }
        for ev in &mut s.schedule {
            if let Event::Hammer { spec, .. } = ev {
                *spec = self.clamp_spec(*spec);
            }
        }
        s.config = self.clamp_config(s.config);
        s.faults = clamp_faults(s.faults);
        s
    }

    fn clamp_spec(&self, spec: ArchetypeSpec) -> ArchetypeSpec {
        let window_lo = EST_STAGE1_WINDOW_CYCLES / 2;
        let window_hi = EST_STAGE1_WINDOW_CYCLES * 2;
        match spec {
            ArchetypeSpec::DutyCycle {
                burst_misses,
                window_cycles,
            } => ArchetypeSpec::DutyCycle {
                burst_misses: burst_misses.clamp(2, self.max_burst),
                window_cycles: window_cycles.clamp(window_lo, window_hi),
            },
            ArchetypeSpec::Paced {
                misses_per_window,
                window_cycles,
            } => ArchetypeSpec::Paced {
                misses_per_window: misses_per_window.clamp(2, self.max_pace),
                window_cycles: window_cycles.clamp(window_lo, window_hi),
            },
            ArchetypeSpec::Camouflage { dilution } => ArchetypeSpec::Camouflage {
                dilution: dilution.clamp(1, self.max_dilution),
            },
            ArchetypeSpec::Distributed { pairs } => ArchetypeSpec::Distributed {
                pairs: pairs.clamp(2, self.max_pairs),
            },
        }
    }

    fn clamp_config(&self, mut c: AnvilConfig) -> AnvilConfig {
        c.llc_miss_threshold = c
            .llc_miss_threshold
            .clamp(self.llc_range.0, self.llc_range.1);
        let (blo, bhi) = self.bank_support_range;
        c.bank_support_min = c.bank_support_min.clamp(blo, bhi);
        c.victim_radius = c.victim_radius.clamp(1, 3);
        c.row_sample_floor = c.row_sample_floor.clamp(1, 8);
        let (slo, shi) = self.sampling_interval_range;
        c.sampling.interval = c.sampling.interval.clamp(slo, shi);
        c.rate_safety = c.rate_safety.clamp(0.05, 1.0);
        let h = &mut c.hardening;
        h.stage1_carry = h.stage1_carry.clamp(0.0, 0.9);
        h.phase_jitter = h.phase_jitter.clamp(0.0, 0.9);
        h.ledger_decay = h.ledger_decay.clamp(0.0, 0.9);
        h.ledger_factor = h.ledger_factor.clamp(0.1, 4.0);
        let (llo, lhi) = self.ledger_min_windows_range;
        h.ledger_min_windows = h.ledger_min_windows.clamp(llo, lhi);
        h.hit_weight = h.hit_weight.clamp(0.0, 1.0);
        h.max_resample_windows = h.max_resample_windows.min(6);
        c
    }
}

fn specs_duty(threshold: u64) -> ArchetypeSpec {
    ArchetypeSpec::DutyCycle {
        burst_misses: threshold.saturating_mul(7) / 5,
        window_cycles: EST_STAGE1_WINDOW_CYCLES,
    }
}

/// Clamps fault magnitudes at the resilience suite's calibrated scenario
/// maxima, inside which the guarantee is claimed to hold. The counter
/// site keeps a *floor* instead of a cap: saturating the miss counter
/// below the stage-1 threshold silently blinds the detector — the known
/// out-of-model regime the standard domain must not wander into. The
/// lifecycle site is zeroed: the platform executor consumes the other
/// seven sites; lifecycle faults belong to the supervisor's runtime.
/// State-corruption flips are bounded and kept *replica-uncorrelated*
/// (`correlated_rate = 0`): a single-replica flip is always repaired or
/// out-voted by the guarded cell, so the no-flip claim still holds,
/// while replica-correlated damage defeats any majority scheme and is
/// out of the guarantee's model (the `selfdefense` campaign owns that
/// regime, with restart escalation as the answer).
fn clamp_faults(mut f: FaultPlan) -> FaultPlan {
    f.pebs.drop_rate = f.pebs.drop_rate.clamp(0.0, 0.02);
    f.pebs.burst_len = f.pebs.burst_len.min(64);
    f.pebs.corrupt_rate = f.pebs.corrupt_rate.clamp(0.0, 0.35);
    if let Some(s) = f.counter.saturate_at {
        f.counter.saturate_at = Some(s.max(32_768));
    }
    f.translation.fail_rate = f.translation.fail_rate.clamp(0.0, 0.25);
    f.translation.stale_rate = f.translation.stale_rate.clamp(0.0, 0.25);
    f.interrupt.jitter_rate = f.interrupt.jitter_rate.clamp(0.0, 1.0);
    f.interrupt.max_jitter = f.interrupt.max_jitter.min(260_000);
    f.service.preempt_rate = f.service.preempt_rate.clamp(0.0, 0.35);
    f.service.max_delay = f.service.max_delay.min(1_300_000);
    f.refresh.postpone_rate = f.refresh.postpone_rate.clamp(0.0, 0.5);
    f.refresh.max_postpone = f.refresh.max_postpone.min(162_500);
    f.state.flip_rate = f.state.flip_rate.clamp(0.0, 0.05);
    f.state.max_flips = f.state.max_flips.min(4);
    f.state.correlated_rate = 0.0;
    f.state.scrub_race_rate = f.state.scrub_race_rate.clamp(0.0, 0.5);
    f = f.without_site(6);
    f
}

#[cfg(test)]
mod tests {
    use super::*;
    use anvil_faults::FaultScenario;

    #[test]
    fn seeds_are_inside_their_domain_and_validate() {
        for domain in [FuzzDomain::standard(), FuzzDomain::weakened_canary()] {
            let seeds = domain.seeds(0xF00D);
            assert!(seeds.len() >= 4, "{}", domain.name);
            for s in &seeds {
                assert_eq!(s, &domain.clamp(s.clone()), "seed escaped the box");
                s.config
                    .validate()
                    .unwrap_or_else(|e| panic!("{} seed config invalid: {e}", domain.name));
                assert!(s.total_ms() <= domain.max_total_ms);
            }
        }
    }

    #[test]
    fn canary_base_is_supposedly_safe_but_blinded() {
        let domain = FuzzDomain::weakened_canary();
        let s = &domain.seeds(1)[0];
        assert!(
            !s.future_dram,
            "canary runs on paper DRAM, where the hardened envelope holds"
        );
        assert!(
            s.supposedly_safe(),
            "the planted config must pass the audit (the audit ignores bank support)"
        );
        assert_eq!(s.config.bank_support_min, CANARY_BANK_SUPPORT);
    }

    #[test]
    fn clamp_caps_fault_magnitudes_and_drops_lifecycle() {
        let domain = FuzzDomain::standard();
        let mut s = domain.seeds(2)[0].clone();
        s.faults = FaultScenario::Combined.plan(10.0, 3);
        s.faults.counter.saturate_at = Some(10);
        s.faults.lifecycle.crash_rate = 0.5;
        let c = domain.clamp(s);
        assert!(c.faults.translation.fail_rate <= 0.25);
        assert!(c.faults.service.max_delay <= 1_300_000);
        assert_eq!(c.faults.counter.saturate_at, Some(32_768));
        assert!(!c.faults.site_active(6), "lifecycle site must be cleared");
    }

    #[test]
    // The clamp writes a literal 0.0; exact equality is the contract.
    #[allow(clippy::float_cmp)]
    fn clamp_bounds_the_state_corruption_dimension() {
        let domain = FuzzDomain::standard();
        let mut s = domain.seeds(6)[0].clone();
        s.faults.state.flip_rate = 0.9;
        s.faults.state.max_flips = 99;
        s.faults.state.correlated_rate = 0.8;
        s.faults.state.scrub_race_rate = 0.9;
        let c = domain.clamp(s);
        assert!(c.faults.state.flip_rate <= 0.05);
        assert!(c.faults.state.max_flips <= 4);
        assert_eq!(
            c.faults.state.correlated_rate, 0.0,
            "correlated replica damage is out of the fuzz guarantee model"
        );
        assert!(c.faults.state.scrub_race_rate <= 0.5);
        assert!(c.faults.site_active(7), "bounded, not dropped");
    }

    #[test]
    fn clamp_enforces_schedule_and_config_bounds() {
        let domain = FuzzDomain::standard();
        let mut s = domain.seeds(3)[0].clone();
        s.schedule = vec![Event::Idle { ms: 500.0 }; 20];
        s.config.llc_miss_threshold = 1_000_000;
        s.config.victim_radius = 9;
        let c = domain.clamp(s);
        assert!(c.schedule.len() <= domain.max_events);
        assert!(c.total_ms() <= domain.max_total_ms || c.schedule.len() == 1);
        assert_eq!(c.config.llc_miss_threshold, domain.llc_range.1);
        assert_eq!(c.config.victim_radius, 3);
    }
}
