//! Automatic counterexample shrinking: greedy delta-debugging to a
//! 1-minimal replayable case.
//!
//! [`reduction_steps`] enumerates every single-step simplification of a
//! scenario — drop one schedule event, clear one fault site, reset one
//! config field to the domain base, bisect one adversary parameter
//! toward its floor, halve one event duration, move back to paper DRAM.
//! [`shrink`] greedily applies the first step whose result still
//! *reproduces* (the oracle, typically "supposedly safe and still
//! flips"), restarting from the top after each acceptance. Every
//! accepted step strictly decreases a well-founded measure (event count,
//! parameter distance, active sites, differing fields), so the loop
//! terminates; at exit no single further reduction reproduces — the
//! result is 1-minimal with respect to the step set (unless the run
//! budget was exhausted first, which the result records).

use crate::domain::FuzzDomain;
use crate::scenario::{Event, Scenario};
use anvil_adversary::{ArchetypeSpec, EST_STAGE1_WINDOW_CYCLES};
use anvil_core::AnvilConfig;
use serde::Serialize;

/// The outcome of one shrink run.
#[derive(Debug, Clone, Serialize)]
pub struct ShrinkResult {
    /// The smallest reproducing scenario found.
    pub scenario: Scenario,
    /// Oracle invocations spent.
    pub runs: usize,
    /// `true` when no single further reduction step reproduces; `false`
    /// when the run budget ended the search early.
    pub minimal: bool,
}

/// The default shrink oracle: the scenario still claims safety and the
/// dynamic run still flips bits — the counterexample survives.
pub fn reproduces_flip(s: &Scenario) -> bool {
    s.supposedly_safe() && s.run().flips > 0
}

fn bisect_down(v: u64, lo: u64) -> Option<u64> {
    (v > lo).then(|| lo + (v - lo) / 2)
}

fn bisect_toward(v: u64, target: u64) -> Option<u64> {
    match v.cmp(&target) {
        std::cmp::Ordering::Equal => None,
        std::cmp::Ordering::Greater => Some(target + (v - target) / 2),
        std::cmp::Ordering::Less => Some(v + (target - v).div_ceil(2)),
    }
}

fn spec_reductions(spec: ArchetypeSpec) -> Vec<ArchetypeSpec> {
    let mut out = Vec::new();
    match spec {
        ArchetypeSpec::DutyCycle {
            burst_misses,
            window_cycles,
        } => {
            if let Some(b) = bisect_down(burst_misses, 2) {
                out.push(ArchetypeSpec::DutyCycle {
                    burst_misses: b,
                    window_cycles,
                });
            }
            if let Some(w) = bisect_toward(window_cycles, EST_STAGE1_WINDOW_CYCLES) {
                out.push(ArchetypeSpec::DutyCycle {
                    burst_misses,
                    window_cycles: w,
                });
            }
        }
        ArchetypeSpec::Paced {
            misses_per_window,
            window_cycles,
        } => {
            if let Some(m) = bisect_down(misses_per_window, 2) {
                out.push(ArchetypeSpec::Paced {
                    misses_per_window: m,
                    window_cycles,
                });
            }
            if let Some(w) = bisect_toward(window_cycles, EST_STAGE1_WINDOW_CYCLES) {
                out.push(ArchetypeSpec::Paced {
                    misses_per_window,
                    window_cycles: w,
                });
            }
        }
        ArchetypeSpec::Camouflage { dilution } => {
            if let Some(d) = bisect_down(dilution, 1) {
                out.push(ArchetypeSpec::Camouflage { dilution: d });
            }
        }
        ArchetypeSpec::Distributed { pairs } => {
            if let Some(p) = bisect_down(pairs as u64, 2) {
                out.push(ArchetypeSpec::Distributed { pairs: p as usize });
            }
        }
    }
    out
}

fn config_resets(s: &Scenario, base: &AnvilConfig) -> Vec<Scenario> {
    let c = s.config;
    let fields: Vec<fn(&mut AnvilConfig, &AnvilConfig)> = vec![
        |f, b| f.llc_miss_threshold = b.llc_miss_threshold,
        |f, b| {
            f.tc_ms = b.tc_ms;
            f.ts_ms = b.ts_ms;
        },
        |f, b| f.sampling = b.sampling,
        |f, b| f.rate_safety = b.rate_safety,
        |f, b| f.row_sample_floor = b.row_sample_floor,
        |f, b| f.bank_support_min = b.bank_support_min,
        |f, b| f.victim_radius = b.victim_radius,
        |f, b| f.hardening = b.hardening,
        |f, b| f.degraded = b.degraded,
    ];
    let mut out = Vec::new();
    for reset in fields {
        let mut cfg = c;
        reset(&mut cfg, base);
        if cfg != c {
            let mut next = s.clone();
            next.config = cfg;
            out.push(next);
        }
    }
    out
}

/// Every single-step simplification of `s`, in application order:
/// schedule deletions, fault-site clears, config-field resets, adversary
/// parameter bisections, duration halvings, and the DRAM-generation
/// downgrade. Steps that would not change the scenario are omitted.
pub fn reduction_steps(s: &Scenario, domain: &FuzzDomain) -> Vec<Scenario> {
    let mut out = Vec::new();
    // 1. Drop one schedule event.
    if s.schedule.len() > 1 {
        for i in 0..s.schedule.len() {
            let mut next = s.clone();
            next.schedule.remove(i);
            out.push(next);
        }
    }
    // 2. Clear one fault site.
    for idx in s.faults.active_sites() {
        let mut next = s.clone();
        next.faults = next.faults.without_site(idx);
        out.push(next);
    }
    // 3. Reset one config field to the domain base.
    out.extend(config_resets(s, &domain.base));
    // 4. Bisect one adversary parameter toward its floor.
    for (i, ev) in s.schedule.iter().enumerate() {
        if let Event::Hammer { spec, ms } = ev {
            for reduced in spec_reductions(*spec) {
                let mut next = s.clone();
                next.schedule[i] = Event::Hammer {
                    spec: reduced,
                    ms: *ms,
                };
                out.push(next);
            }
        }
    }
    // 5. Halve one event duration toward the domain floor.
    let floor = domain.event_ms.0;
    for (i, ev) in s.schedule.iter().enumerate() {
        let halved = (ev.ms() / 2.0).max(floor);
        if halved < ev.ms() {
            let mut next = s.clone();
            next.schedule[i] = ev.with_ms(halved);
            out.push(next);
        }
    }
    // 6. Downgrade to paper DRAM (when the domain allows it).
    if s.future_dram && domain.force_future.is_none() {
        let mut next = s.clone();
        next.future_dram = false;
        out.push(next);
    }
    out
}

/// Greedy first-improvement shrink (see module docs). `reproduces` is
/// invoked at most `budget` times; each `true` answer commits that
/// reduction and restarts the scan.
pub fn shrink(
    start: Scenario,
    domain: &FuzzDomain,
    budget: usize,
    reproduces: &mut dyn FnMut(&Scenario) -> bool,
) -> ShrinkResult {
    let mut current = start;
    let mut runs = 0;
    loop {
        let mut improved = false;
        for cand in reduction_steps(&current, domain) {
            if runs >= budget {
                return ShrinkResult {
                    scenario: current,
                    runs,
                    minimal: false,
                };
            }
            runs += 1;
            if reproduces(&cand) {
                current = cand;
                improved = true;
                break;
            }
        }
        if !improved {
            return ShrinkResult {
                scenario: current,
                runs,
                minimal: true,
            };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::FuzzDomain;
    use anvil_faults::FaultScenario;
    use anvil_workloads::SpecBenchmark;

    fn bulky(domain: &FuzzDomain) -> Scenario {
        let mut s = domain.seeds(11)[0].clone();
        s.schedule.push(Event::Load {
            bench: SpecBenchmark::Gcc,
            ms: 20.0,
        });
        s.schedule.push(Event::Idle { ms: 10.0 });
        s.faults = FaultScenario::Combined.plan(1.0, 5);
        s.config.victim_radius = 3;
        domain.clamp(s)
    }

    #[test]
    fn permissive_oracle_shrinks_to_the_floor() {
        let domain = FuzzDomain::standard();
        let start = bulky(&domain);
        let mut always = |_: &Scenario| true;
        let r = shrink(start, &domain, 10_000, &mut always);
        assert!(r.minimal);
        assert_eq!(r.scenario.schedule.len(), 1);
        assert!(r.scenario.faults.active_sites().is_empty());
        assert_eq!(r.scenario.config, domain.base);
        assert!(!r.scenario.future_dram);
        // 1-minimal under "everything reproduces": no step remains.
        assert!(reduction_steps(&r.scenario, &domain).is_empty());
    }

    #[test]
    fn refusing_oracle_returns_the_original() {
        let domain = FuzzDomain::standard();
        let start = bulky(&domain);
        let mut never = |_: &Scenario| false;
        let r = shrink(start.clone(), &domain, 10_000, &mut never);
        assert!(r.minimal);
        assert_eq!(r.scenario, start);
        assert_eq!(r.runs, reduction_steps(&start, &domain).len());
    }

    #[test]
    fn budget_exhaustion_is_reported() {
        let domain = FuzzDomain::standard();
        let start = bulky(&domain);
        let mut never = |_: &Scenario| false;
        let r = shrink(start, &domain, 2, &mut never);
        assert!(!r.minimal);
        assert_eq!(r.runs, 2);
    }

    #[test]
    fn every_reduction_step_changes_the_scenario() {
        let domain = FuzzDomain::standard();
        let start = bulky(&domain);
        for cand in reduction_steps(&start, &domain) {
            assert_ne!(cand, start);
        }
    }

    #[test]
    fn bisection_helpers_terminate() {
        let mut v = 45_000u64;
        let mut steps = 0;
        while let Some(next) = bisect_down(v, 2) {
            assert!(next < v);
            v = next;
            steps += 1;
            assert!(steps < 64);
        }
        assert_eq!(v, 2);
        let mut w = 1_000u64;
        let mut steps = 0;
        while let Some(next) = bisect_toward(w, 15_600_000) {
            assert!(w.abs_diff(15_600_000) > next.abs_diff(15_600_000));
            w = next;
            steps += 1;
            assert!(steps < 64);
        }
        assert_eq!(w, 15_600_000);
    }
}
