//! Virtual memory: frame allocation and per-process page tables.
//!
//! The CLFLUSH-free attack "uses the Linux /proc/pagemap utility to convert
//! virtual addresses to physical addresses in order to create conflicting
//! LLC access patterns" (Section 2.3), and ANVIL itself translates sampled
//! virtual addresses through the owning process's descriptor (Section 3.3).
//! Both need a virtual-memory substrate; this module provides 4 KB paging
//! with pluggable frame-allocation policies.

use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};

/// Page size used throughout (4 KB, as on the paper's test system).
pub const PAGE_SIZE: u64 = 4096;
/// log2 of [`PAGE_SIZE`].
pub const PAGE_SHIFT: u32 = 12;

/// How physical frames are handed out to new mappings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AllocationPolicy {
    /// Sequential frames: virtually contiguous regions are physically
    /// contiguous (the easy case for attackers; models a freshly booted
    /// machine or transparent huge pages).
    Contiguous,
    /// Pseudo-random frames (seeded): models a fragmented system, where
    /// the attacker genuinely needs pagemap to find same-bank rows.
    Randomized {
        /// Seed for the frame permutation.
        seed: u64,
    },
}

/// Hands out physical frames, never the same frame twice.
#[derive(Debug)]
pub struct FrameAllocator {
    policy: AllocationPolicy,
    total_frames: u64,
    next: u64,
    used: HashSet<u64>,
    state: u64,
}

impl FrameAllocator {
    /// Creates an allocator over a physical memory of `capacity_bytes`.
    ///
    /// # Panics
    ///
    /// Panics if capacity is smaller than one page.
    pub fn new(capacity_bytes: u64, policy: AllocationPolicy) -> Self {
        assert!(capacity_bytes >= PAGE_SIZE, "capacity below one page");
        FrameAllocator {
            policy,
            total_frames: capacity_bytes / PAGE_SIZE,
            next: 0,
            used: HashSet::new(),
            state: match policy {
                AllocationPolicy::Contiguous => 0,
                AllocationPolicy::Randomized { seed } => seed | 1,
            },
        }
    }

    /// Frames not yet allocated.
    pub fn free_frames(&self) -> u64 {
        self.total_frames - self.used.len() as u64
    }

    /// Allocates one frame, returning its frame number (physical address
    /// >> [`PAGE_SHIFT`]).
    ///
    /// # Errors
    ///
    /// Returns `Err` when physical memory is exhausted.
    pub fn alloc(&mut self) -> Result<u64, OutOfMemory> {
        if self.used.len() as u64 >= self.total_frames {
            return Err(OutOfMemory);
        }
        let frame = match self.policy {
            AllocationPolicy::Contiguous => {
                while self.used.contains(&self.next) {
                    self.next = (self.next + 1) % self.total_frames;
                }
                self.next
            }
            AllocationPolicy::Randomized { .. } => loop {
                // xorshift64*; skip used frames.
                let mut x = self.state;
                x ^= x >> 12;
                x ^= x << 25;
                x ^= x >> 27;
                self.state = x;
                let f = x.wrapping_mul(0x2545_f491_4f6c_dd1d) % self.total_frames;
                if !self.used.contains(&f) {
                    break f;
                }
            },
        };
        self.used.insert(frame);
        Ok(frame)
    }

    /// Returns a frame to the pool.
    pub fn free(&mut self, frame: u64) {
        self.used.remove(&frame);
    }
}

/// Error: physical memory exhausted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutOfMemory;

impl std::fmt::Display for OutOfMemory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("out of physical memory")
    }
}

impl std::error::Error for OutOfMemory {}

/// A single-level page table mapping virtual page numbers to frames.
#[derive(Debug, Default, Clone)]
pub struct PageTable {
    entries: HashMap<u64, u64>,
}

impl PageTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Maps virtual page `vpn` to physical frame `pfn`.
    ///
    /// # Panics
    ///
    /// Panics if `vpn` is already mapped (the simulator has no demand
    /// remapping).
    pub fn map(&mut self, vpn: u64, pfn: u64) {
        let prev = self.entries.insert(vpn, pfn);
        assert!(prev.is_none(), "vpn {vpn:#x} double-mapped");
    }

    /// Removes the mapping for `vpn`, returning the frame it covered.
    pub fn unmap(&mut self, vpn: u64) -> Option<u64> {
        self.entries.remove(&vpn)
    }

    /// Translates a virtual address to physical.
    pub fn translate(&self, vaddr: u64) -> Option<u64> {
        let pfn = self.entries.get(&(vaddr >> PAGE_SHIFT))?;
        Some((pfn << PAGE_SHIFT) | (vaddr & (PAGE_SIZE - 1)))
    }

    /// Number of mapped pages.
    pub fn mapped_pages(&self) -> usize {
        self.entries.len()
    }

    /// Iterates over (vpn, pfn) pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.entries.iter().map(|(&v, &p)| (v, p))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contiguous_allocation_is_sequential() {
        let mut a = FrameAllocator::new(16 * PAGE_SIZE, AllocationPolicy::Contiguous);
        assert_eq!(a.alloc().unwrap(), 0);
        assert_eq!(a.alloc().unwrap(), 1);
        a.free(0);
        // Freed frames are reused only after wrapping.
        assert_eq!(a.alloc().unwrap(), 2);
    }

    #[test]
    fn randomized_allocation_is_a_permutation() {
        let mut a = FrameAllocator::new(64 * PAGE_SIZE, AllocationPolicy::Randomized { seed: 5 });
        let mut seen = HashSet::new();
        for _ in 0..64 {
            assert!(seen.insert(a.alloc().unwrap()), "duplicate frame");
        }
        assert_eq!(a.alloc(), Err(OutOfMemory));
    }

    #[test]
    fn randomized_is_deterministic_per_seed() {
        let mut a = FrameAllocator::new(64 * PAGE_SIZE, AllocationPolicy::Randomized { seed: 5 });
        let mut b = FrameAllocator::new(64 * PAGE_SIZE, AllocationPolicy::Randomized { seed: 5 });
        for _ in 0..10 {
            assert_eq!(a.alloc().unwrap(), b.alloc().unwrap());
        }
    }

    #[test]
    fn exhaustion_reports_oom() {
        let mut a = FrameAllocator::new(2 * PAGE_SIZE, AllocationPolicy::Contiguous);
        a.alloc().unwrap();
        a.alloc().unwrap();
        assert_eq!(a.alloc(), Err(OutOfMemory));
        a.free(1);
        assert!(a.alloc().is_ok());
    }

    #[test]
    fn translate_splits_offset() {
        let mut t = PageTable::new();
        t.map(0x10, 0x99);
        assert_eq!(t.translate(0x10_123), Some(0x99_123));
        assert_eq!(t.translate(0x11_000), None);
    }

    #[test]
    fn unmap_removes() {
        let mut t = PageTable::new();
        t.map(1, 2);
        assert_eq!(t.unmap(1), Some(2));
        assert_eq!(t.translate(PAGE_SIZE), None);
    }

    #[test]
    #[should_panic(expected = "double-mapped")]
    fn double_map_panics() {
        let mut t = PageTable::new();
        t.map(1, 2);
        t.map(1, 3);
    }
}
