//! Fleet domain topology: channels × DIMMs as independently protected
//! memory domains.
//!
//! A production machine does not run one ANVIL instance over one memory
//! system: each channel/DIMM pair is an independent *protection domain*
//! with its own detector, its own weak-cell population, and its own
//! tenants — but domains on the same channel share a refresh controller,
//! and every domain on the machine shares the PMU and the kernel. This
//! module gives those domains stable identities so correlated faults
//! ("everything on channel 1", "everything on this machine") and
//! per-domain detector seeds can be expressed against one topology.

use serde::{Deserialize, Serialize};

/// A protection domain's stable identity within one machine: the
/// flattened index `channel * dimms_per_channel + dimm`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct DomainId(pub u32);

impl DomainId {
    /// The flattened index as a usize (for slice indexing).
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// The channel/DIMM layout of one simulated machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DomainTopology {
    /// Memory channels on the machine. Domains on the same channel share
    /// a refresh controller.
    pub channels: u32,
    /// DIMMs behind each channel; each DIMM is one protection domain.
    pub dimms_per_channel: u32,
}

impl DomainTopology {
    /// The fleet campaign's default machine shape: 2 channels × 2 DIMMs,
    /// matching the dual-channel Sandy Bridge platform the paper
    /// evaluates on (Section 6) extended to both channels.
    #[must_use]
    pub fn paper_fleet() -> Self {
        DomainTopology {
            channels: 2,
            dimms_per_channel: 2,
        }
    }

    /// Total protection domains on the machine.
    #[must_use]
    pub fn domains(self) -> u32 {
        self.channels * self.dimms_per_channel
    }

    /// The channel a domain sits behind.
    #[must_use]
    pub fn channel_of(self, domain: DomainId) -> u32 {
        domain.0 / self.dimms_per_channel.max(1)
    }

    /// The DIMM slot a domain occupies on its channel.
    #[must_use]
    pub fn dimm_of(self, domain: DomainId) -> u32 {
        domain.0 % self.dimms_per_channel.max(1)
    }

    /// Iterates every domain in flattened order (channel-major).
    pub fn iter(self) -> impl Iterator<Item = DomainId> {
        (0..self.domains()).map(DomainId)
    }
}

/// Derives a domain-unique 64-bit seed from the fleet seed, the machine
/// index, and the domain id, via an splitmix64-style avalanche mix so
/// adjacent (machine, domain) pairs land on unrelated streams.
#[must_use]
pub fn domain_seed(fleet_seed: u64, machine: u64, domain: DomainId) -> u64 {
    let mut z = fleet_seed
        .wrapping_add(machine.wrapping_mul(0x9e37_79b9_7f4a_7c15))
        .wrapping_add(u64::from(domain.0).wrapping_mul(0xbf58_476d_1ce4_e5b9));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flattened_ids_round_trip_through_channel_and_dimm() {
        let topo = DomainTopology {
            channels: 3,
            dimms_per_channel: 4,
        };
        assert_eq!(topo.domains(), 12);
        let ids: Vec<DomainId> = topo.iter().collect();
        assert_eq!(ids.len(), 12);
        for d in ids {
            let rebuilt = topo.channel_of(d) * topo.dimms_per_channel + topo.dimm_of(d);
            assert_eq!(rebuilt, d.0);
            assert!(topo.channel_of(d) < topo.channels);
            assert!(topo.dimm_of(d) < topo.dimms_per_channel);
        }
    }

    #[test]
    fn paper_fleet_is_two_by_two() {
        let topo = DomainTopology::paper_fleet();
        assert_eq!(topo.domains(), 4);
        assert_eq!(topo.channel_of(DomainId(0)), 0);
        assert_eq!(topo.channel_of(DomainId(1)), 0);
        assert_eq!(topo.channel_of(DomainId(2)), 1);
        assert_eq!(topo.channel_of(DomainId(3)), 1);
    }

    #[test]
    fn domain_seeds_are_distinct_and_deterministic() {
        let mut seen = std::collections::HashSet::new();
        for machine in 0..64u64 {
            for d in 0..8u32 {
                let s = domain_seed(0xF1EE7, machine, DomainId(d));
                assert_eq!(s, domain_seed(0xF1EE7, machine, DomainId(d)));
                assert!(seen.insert(s), "collision at machine {machine} domain {d}");
            }
        }
        // A different fleet seed moves every stream.
        assert_ne!(
            domain_seed(1, 0, DomainId(0)),
            domain_seed(2, 0, DomainId(0))
        );
    }
}
