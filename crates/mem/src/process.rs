//! Process contexts: address spaces and the pagemap interface.

use crate::paging::{FrameAllocator, OutOfMemory, PageTable, PAGE_SHIFT, PAGE_SIZE};
use serde::{Deserialize, Serialize};

/// Whether unprivileged processes may read their own virtual-to-physical
/// mappings.
///
/// Models the Linux hardening the paper discusses (Section 5.2.1): "the
/// Linux kernel was updated to disallow the use of the pagemap interface
/// from the user space, as a measure to make it more difficult to do
/// double-sided rowhammering."
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum PagemapPolicy {
    /// Pre-hardening kernels: any process can translate its addresses.
    #[default]
    Open,
    /// Hardened kernels: translation denied to user processes (the kernel
    /// — and therefore ANVIL — can still translate).
    Restricted,
}

/// Error: pagemap access denied by [`PagemapPolicy::Restricted`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PagemapDenied;

impl std::fmt::Display for PagemapDenied {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("pagemap access denied to user space")
    }
}

impl std::error::Error for PagemapDenied {}

/// A simulated process: a name, an address space, and an allocation cursor.
///
/// # Examples
///
/// ```
/// use anvil_mem::{AllocationPolicy, FrameAllocator, Process};
///
/// let mut frames = FrameAllocator::new(1 << 20, AllocationPolicy::Contiguous);
/// let mut p = Process::new(1, "victim");
/// let va = p.mmap(8192, &mut frames)?;
/// assert!(p.translate(va).is_some());
/// # Ok::<(), anvil_mem::OutOfMemory>(())
/// ```
#[derive(Debug)]
pub struct Process {
    pid: u32,
    name: String,
    table: PageTable,
    next_va: u64,
}

impl Process {
    /// Creates a process with an empty address space.
    pub fn new(pid: u32, name: impl Into<String>) -> Self {
        Process {
            pid,
            name: name.into(),
            table: PageTable::new(),
            // Leave VA 0 unmapped (null guard), like a real process image.
            next_va: 0x1_0000,
        }
    }

    /// Process id.
    pub fn pid(&self) -> u32 {
        self.pid
    }

    /// Process name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The process's page table — the `task_struct` analogue ANVIL samples
    /// to translate virtual addresses (Section 3.3).
    pub fn page_table(&self) -> &PageTable {
        &self.table
    }

    /// Maps `len` bytes (rounded up to whole pages) of fresh memory and
    /// returns the base virtual address.
    ///
    /// # Errors
    ///
    /// Returns [`OutOfMemory`] when the frame allocator is exhausted.
    pub fn mmap(&mut self, len: u64, frames: &mut FrameAllocator) -> Result<u64, OutOfMemory> {
        let pages = len.div_ceil(PAGE_SIZE).max(1);
        let base = self.next_va;
        for i in 0..pages {
            let pfn = frames.alloc()?;
            self.table.map((base >> PAGE_SHIFT) + i, pfn);
        }
        self.next_va = base + pages * PAGE_SIZE;
        Ok(base)
    }

    /// Maps existing physical frames into this address space (a shared
    /// mapping, as `mmap` of a shared file or library produces). Returns
    /// the base virtual address.
    ///
    /// This is the ingredient of Flush+Reload-style side channels: two
    /// processes sharing physical pages (paper Section 2.2 notes the
    /// CLFLUSH-free eviction technique extends Flush+Reload to
    /// environments without CLFLUSH).
    ///
    /// # Panics
    ///
    /// Panics if `pfns` is empty.
    pub fn mmap_shared(&mut self, pfns: &[u64]) -> u64 {
        assert!(!pfns.is_empty(), "shared mapping needs at least one frame");
        let base = self.next_va;
        for (i, &pfn) in pfns.iter().enumerate() {
            self.table.map((base >> PAGE_SHIFT) + i as u64, pfn);
        }
        self.next_va = base + pfns.len() as u64 * PAGE_SIZE;
        base
    }

    /// Kernel-side translation (always allowed; used by ANVIL).
    pub fn translate(&self, vaddr: u64) -> Option<u64> {
        self.table.translate(vaddr)
    }

    /// Kernel-side translation subject to injected pagemap faults: the
    /// walk may fail outright (the sample becomes unresolvable) or return
    /// a stale frame — the races with reclaim and migration that a real
    /// software page-table walk is exposed to (see `anvil-faults`).
    pub fn translate_with_faults(
        &self,
        vaddr: u64,
        faults: &mut anvil_faults::TranslationInjector,
    ) -> Option<u64> {
        self.translate(vaddr).and_then(|paddr| faults.apply(paddr))
    }

    /// User-side translation through the pagemap interface; denied under
    /// [`PagemapPolicy::Restricted`].
    ///
    /// # Errors
    ///
    /// Returns [`PagemapDenied`] under a restricted policy.
    pub fn pagemap(&self, vaddr: u64, policy: PagemapPolicy) -> Result<Option<u64>, PagemapDenied> {
        match policy {
            PagemapPolicy::Open => Ok(self.translate(vaddr)),
            PagemapPolicy::Restricted => Err(PagemapDenied),
        }
    }

    /// Total mapped bytes.
    pub fn mapped_bytes(&self) -> u64 {
        self.table.mapped_pages() as u64 * PAGE_SIZE
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paging::AllocationPolicy;

    fn frames() -> FrameAllocator {
        FrameAllocator::new(1 << 22, AllocationPolicy::Contiguous)
    }

    #[test]
    fn mmap_maps_whole_pages() {
        let mut f = frames();
        let mut p = Process::new(1, "t");
        let va = p.mmap(1, &mut f).unwrap();
        assert_eq!(p.mapped_bytes(), PAGE_SIZE);
        assert!(p.translate(va).is_some());
        assert!(p.translate(va + PAGE_SIZE).is_none());
        let va2 = p.mmap(2 * PAGE_SIZE + 1, &mut f).unwrap();
        assert_eq!(p.mapped_bytes(), 4 * PAGE_SIZE);
        assert!(va2 > va);
    }

    #[test]
    fn contiguous_va_is_contiguous_pa() {
        let mut f = frames();
        let mut p = Process::new(1, "t");
        let va = p.mmap(4 * PAGE_SIZE, &mut f).unwrap();
        let pa0 = p.translate(va).unwrap();
        for i in 1..4 {
            assert_eq!(p.translate(va + i * PAGE_SIZE), Some(pa0 + i * PAGE_SIZE));
        }
    }

    #[test]
    fn separate_processes_get_disjoint_frames() {
        let mut f = frames();
        let mut a = Process::new(1, "a");
        let mut b = Process::new(2, "b");
        let va_a = a.mmap(PAGE_SIZE, &mut f).unwrap();
        let va_b = b.mmap(PAGE_SIZE, &mut f).unwrap();
        assert_ne!(a.translate(va_a), b.translate(va_b));
    }

    #[test]
    fn pagemap_respects_policy() {
        let mut f = frames();
        let mut p = Process::new(1, "attacker");
        let va = p.mmap(PAGE_SIZE, &mut f).unwrap();
        assert!(p.pagemap(va, PagemapPolicy::Open).unwrap().is_some());
        assert_eq!(p.pagemap(va, PagemapPolicy::Restricted), Err(PagemapDenied));
        // The kernel path is unaffected.
        assert!(p.translate(va).is_some());
    }

    #[test]
    fn translate_offset_within_page() {
        let mut f = frames();
        let mut p = Process::new(1, "t");
        let va = p.mmap(PAGE_SIZE, &mut f).unwrap();
        let pa = p.translate(va).unwrap();
        assert_eq!(p.translate(va + 123), Some(pa + 123));
    }
}
