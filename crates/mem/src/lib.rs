#![warn(missing_docs)]

//! # anvil-mem
//!
//! Memory-system substrate for the ANVIL (ASPLOS 2016) reproduction. It
//! ties the `anvil-cache` hierarchy and the `anvil-dram` module together
//! behind a cycle-accounted access engine, and provides the virtual-memory
//! pieces both sides of the arms race need:
//!
//! * [`MemorySystem`] — caches + DRAM + a global cycle clock; rowhammer
//!   flips land in a sparse [`PhysicalMemory`] backing store so corruption
//!   is observable end-to-end.
//! * [`Process`], [`PageTable`], [`FrameAllocator`] — 4 KB paging with
//!   contiguous or randomized frame allocation.
//! * [`PagemapPolicy`] — the `/proc/pagemap` interface the CLFLUSH-free
//!   attack uses for virtual-to-physical translation, including the
//!   hardened (restricted) mode Linux later deployed.
//! * [`DomainTopology`] — the channel × DIMM protection-domain layout of
//!   one fleet machine, with stable [`DomainId`]s and per-domain seed
//!   derivation for the fleet campaign.
//! * [`StateRowMap`] — where the detector's *own* replicated state cells
//!   live in DRAM, so disturbance can corrupt the defense itself (naive
//!   co-located layout vs. the interleaved layout that keeps replicas
//!   outside any single aggressor's blast radius).
//!
//! ## Quick start
//!
//! ```
//! use anvil_mem::{AccessKind, AllocationPolicy, FrameAllocator, MemoryConfig,
//!                 MemorySystem, Process};
//!
//! let mut sys = MemorySystem::new(MemoryConfig::tiny());
//! let mut frames = FrameAllocator::new(sys.phys().capacity(), AllocationPolicy::Contiguous);
//! let mut proc_ = Process::new(1, "demo");
//! let va = proc_.mmap(4096, &mut frames)?;
//! let pa = proc_.translate(va).expect("just mapped");
//! let outcome = sys.access(pa, AccessKind::Read);
//! assert!(outcome.llc_miss()); // cold miss goes to DRAM
//! # Ok::<(), anvil_mem::OutOfMemory>(())
//! ```

mod paging;
mod phys;
mod process;
mod state_map;
mod system;
mod topology;

pub use paging::{AllocationPolicy, FrameAllocator, OutOfMemory, PageTable, PAGE_SHIFT, PAGE_SIZE};
pub use phys::PhysicalMemory;
pub use process::{PagemapDenied, PagemapPolicy, Process};
pub use state_map::{
    StateLayout, StateRowMap, REPLICA_ROW_STRIDE, STATE_CELLS_PER_ROW, STATE_REPLICAS,
};
pub use system::{AccessKind, AccessOutcome, CoreModel, MemStats, MemoryConfig, MemorySystem};
pub use topology::{domain_seed, DomainId, DomainTopology};
