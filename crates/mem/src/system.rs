//! The CPU-side memory access engine: cache hierarchy + DRAM + cycle clock.

use crate::phys::PhysicalMemory;
use anvil_cache::{CacheHierarchy, HierarchyConfig, HitLevel};
use anvil_dram::{CpuClock, Cycle, DramConfig, DramFlip, DramLocation, DramModule};
use serde::{Deserialize, Serialize};

/// Cycle costs of the simulated out-of-order core.
///
/// The simulator is latency-accurate for DRAM and throughput-accurate for
/// cache hits: a modern core overlaps independent cache hits, so the clock
/// advances by a *throughput* cost per hit rather than the full load-to-use
/// latency, while LLC misses serialize and charge full DRAM latency. The
/// defaults are calibrated so the paper's attack timings come out right
/// (Table 1: 58 ms / 15 ms / 45 ms; Section 2.2's ~338 ns CLFLUSH-free
/// iteration).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CoreModel {
    /// Clock advance for an L1 hit.
    pub l1_hit_cost: Cycle,
    /// Clock advance for an L2 hit.
    pub l2_hit_cost: Cycle,
    /// Clock advance for an L3 hit.
    pub l3_hit_cost: Cycle,
    /// Core-side overhead added on top of DRAM latency for an LLC miss.
    pub miss_overhead: Cycle,
    /// Non-overlapped cost of a CLFLUSH instruction.
    pub clflush_cost: Cycle,
}

impl CoreModel {
    /// The calibrated Sandy Bridge model (see struct docs).
    pub fn sandy_bridge() -> Self {
        CoreModel {
            l1_hit_cost: 2,
            l2_hit_cost: 6,
            l3_hit_cost: 9,
            miss_overhead: 4,
            clflush_cost: 4,
        }
    }
}

impl Default for CoreModel {
    fn default() -> Self {
        Self::sandy_bridge()
    }
}

/// Read or write.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccessKind {
    /// A load.
    Read,
    /// A store.
    Write,
}

/// What one memory access did, as observed by the core (and by the PMU).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessOutcome {
    /// Physical address accessed.
    pub paddr: u64,
    /// Load or store.
    pub kind: AccessKind,
    /// Level that served the access.
    pub level: HitLevel,
    /// Cycles the core spent on it (the clock already advanced by this).
    pub advance: Cycle,
    /// DRAM location touched, when the access missed the LLC.
    pub dram: Option<DramLocation>,
}

impl AccessOutcome {
    /// Whether this access missed the last-level cache.
    pub fn llc_miss(&self) -> bool {
        self.level.is_llc_miss()
    }
}

/// Aggregate memory-system counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemStats {
    /// Total accesses issued.
    pub accesses: u64,
    /// Loads.
    pub reads: u64,
    /// Stores.
    pub writes: u64,
    /// LLC misses (loads + stores).
    pub llc_misses: u64,
    /// LLC misses that were loads.
    pub llc_miss_loads: u64,
    /// CLFLUSH instructions executed.
    pub clflushes: u64,
}

/// Configuration of a [`MemorySystem`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MemoryConfig {
    /// Cache hierarchy.
    pub hierarchy: HierarchyConfig,
    /// DRAM module.
    pub dram: DramConfig,
    /// Core cost model.
    pub core: CoreModel,
    /// Core clock (for cycle <-> wall-clock conversions).
    pub clock: CpuClock,
}

impl MemoryConfig {
    /// The paper's platform: Sandy Bridge i5-2540M + 4 GB DDR3 at 2.6 GHz.
    pub fn paper_platform() -> Self {
        MemoryConfig {
            hierarchy: HierarchyConfig::sandy_bridge_i5_2540m(),
            dram: DramConfig::paper_ddr3(),
            core: CoreModel::sandy_bridge(),
            clock: CpuClock::SANDY_BRIDGE_2_6GHZ,
        }
    }

    /// A small configuration for fast tests (tiny caches, 16 MB DRAM).
    pub fn tiny() -> Self {
        MemoryConfig {
            hierarchy: HierarchyConfig::tiny(),
            dram: DramConfig::tiny(),
            core: CoreModel::sandy_bridge(),
            clock: CpuClock::SANDY_BRIDGE_2_6GHZ,
        }
    }
}

impl Default for MemoryConfig {
    fn default() -> Self {
        Self::paper_platform()
    }
}

/// The full memory system: caches in front of DRAM, a global cycle clock,
/// and a data backing store in which rowhammer flips are observable.
///
/// # Examples
///
/// ```
/// use anvil_mem::{AccessKind, MemoryConfig, MemorySystem};
///
/// let mut sys = MemorySystem::new(MemoryConfig::tiny());
/// let cold = sys.access(0x8000, AccessKind::Read);
/// let warm = sys.access(0x8000, AccessKind::Read);
/// assert!(cold.advance > warm.advance);
/// ```
#[derive(Debug)]
pub struct MemorySystem {
    config: MemoryConfig,
    hierarchy: CacheHierarchy,
    dram: DramModule,
    phys: PhysicalMemory,
    now: Cycle,
    stats: MemStats,
    flip_log: Vec<DramFlip>,
    /// Reusable buffers for displaced dirty lines / prefetch fills —
    /// `access_at` runs once per simulated memory access, so these must
    /// not allocate in steady state.
    wb_scratch: Vec<u64>,
    pf_scratch: Vec<u64>,
}

impl MemorySystem {
    /// Creates a memory system.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails validation.
    pub fn new(config: MemoryConfig) -> Self {
        let phys = PhysicalMemory::new(config.dram.geometry.total_bytes());
        MemorySystem {
            hierarchy: CacheHierarchy::new(config.hierarchy),
            dram: DramModule::new(config.dram),
            phys,
            now: 0,
            stats: MemStats::default(),
            flip_log: Vec::new(),
            wb_scratch: Vec::new(),
            pf_scratch: Vec::new(),
            config,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &MemoryConfig {
        &self.config
    }

    /// Current time in cycles.
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Current time in milliseconds.
    pub fn now_ms(&self) -> f64 {
        self.config.clock.cycles_to_ms(self.now)
    }

    /// Advances the clock by `cycles` of non-memory work.
    pub fn advance(&mut self, cycles: Cycle) {
        self.now += cycles;
    }

    /// The cache hierarchy (immutable; for probing and set queries).
    pub fn hierarchy(&self) -> &CacheHierarchy {
        &self.hierarchy
    }

    /// The DRAM module (immutable; for mapping and stats queries).
    pub fn dram(&self) -> &DramModule {
        &self.dram
    }

    /// Installs (or clears) auto-refresh postponement on the DRAM module
    /// (fault model; see [`DramModule::set_refresh_postpone`]).
    pub fn set_refresh_postpone(&mut self, postpone: Option<anvil_faults::RefreshPostpone>) {
        self.dram.set_refresh_postpone(postpone);
    }

    /// Blanket-refreshes every disturbed row of `bank` at time `now` —
    /// ANVIL's degraded-mode fallback. Returns the number of rows reset.
    pub fn refresh_bank(&mut self, bank: anvil_dram::BankId, now: Cycle) -> usize {
        self.now = now.max(self.now);
        self.dram.refresh_bank(bank, self.now)
    }

    /// Memory-system counters.
    pub fn stats(&self) -> &MemStats {
        &self.stats
    }

    /// Issues one memory access and advances the clock.
    pub fn access(&mut self, paddr: u64, kind: AccessKind) -> AccessOutcome {
        let outcome = self.access_at(paddr, kind, self.now);
        self.now += outcome.advance;
        outcome
    }

    /// Issues one memory access at an externally supplied time, without
    /// advancing the internal clock past `now + advance`.
    ///
    /// This is the multi-core entry point: the platform runner keeps one
    /// logical clock per core and serializes operations in (approximately)
    /// global time order, so `now` may trail the internal clock by up to
    /// one operation. The internal clock only ever moves forward.
    pub fn access_at(&mut self, paddr: u64, kind: AccessKind, now: Cycle) -> AccessOutcome {
        let now = now.max(self.now);
        self.now = now;
        let write = matches!(kind, AccessKind::Write);
        let mut wb = std::mem::take(&mut self.wb_scratch);
        let mut pf = std::mem::take(&mut self.pf_scratch);
        let (level, _latency) = self.hierarchy.access_into(paddr, write, &mut wb, &mut pf);

        self.stats.accesses = self.stats.accesses.saturating_add(1);
        match kind {
            AccessKind::Read => self.stats.reads = self.stats.reads.saturating_add(1),
            AccessKind::Write => self.stats.writes = self.stats.writes.saturating_add(1),
        }

        let (advance, dram_loc) = match level {
            HitLevel::L1 => (self.config.core.l1_hit_cost, None),
            HitLevel::L2 => (self.config.core.l2_hit_cost, None),
            HitLevel::L3 => (self.config.core.l3_hit_cost, None),
            HitLevel::Memory => {
                self.stats.llc_misses = self.stats.llc_misses.saturating_add(1);
                if matches!(kind, AccessKind::Read) {
                    self.stats.llc_miss_loads = self.stats.llc_miss_loads.saturating_add(1);
                }
                let d = self.dram.access(paddr, self.now);
                (d.latency + self.config.core.miss_overhead, Some(d.location))
            }
        };

        // Dirty lines displaced out of the hierarchy are written to DRAM
        // off the critical path (no clock advance), but they do open rows.
        for &line in &wb {
            self.dram.access(line, self.now);
        }
        // Prefetch fills are DRAM reads off the critical path too — and
        // therefore real row activations.
        for &line in &pf {
            self.dram.access(line, self.now);
        }
        wb.clear();
        pf.clear();
        self.wb_scratch = wb;
        self.pf_scratch = pf;
        if self.dram.total_flips() > 0 {
            self.apply_new_flips();
        }

        AccessOutcome {
            paddr,
            kind,
            level,
            advance,
            dram: dram_loc,
        }
    }

    /// Executes CLFLUSH on `paddr`'s line and advances the clock.
    pub fn clflush(&mut self, paddr: u64) {
        let now = self.now;
        self.clflush_at(paddr, now);
        self.now += self.config.core.clflush_cost;
    }

    /// Executes CLFLUSH at an externally supplied time (multi-core entry
    /// point; see [`access_at`](Self::access_at)).
    pub fn clflush_at(&mut self, paddr: u64, now: Cycle) {
        self.now = now.max(self.now);
        self.stats.clflushes = self.stats.clflushes.saturating_add(1);
        if let Some(dirty_line) = self.hierarchy.clflush(paddr) {
            self.dram.access(dirty_line, self.now);
            self.apply_new_flips();
        }
    }

    fn apply_new_flips(&mut self) {
        for f in self.dram.drain_flips() {
            self.phys.flip_bit(f.paddr, f.flip.bit);
            self.flip_log.push(f);
        }
    }

    /// Drains the log of bit flips applied to memory since the last call.
    pub fn drain_flips(&mut self) -> Vec<DramFlip> {
        std::mem::take(&mut self.flip_log)
    }

    /// Total bit flips the DRAM has produced.
    pub fn total_flips(&self) -> u64 {
        self.dram.total_flips()
    }

    /// Loads a u64: one simulated access plus the data from the backing
    /// store.
    pub fn load_u64(&mut self, paddr: u64) -> (u64, AccessOutcome) {
        let outcome = self.access(paddr, AccessKind::Read);
        (self.phys.read_u64(paddr), outcome)
    }

    /// Stores a u64: one simulated access plus the data write. Rewriting a
    /// byte repairs any flipped cells in it.
    pub fn store_u64(&mut self, paddr: u64, value: u64) -> AccessOutcome {
        let outcome = self.access(paddr, AccessKind::Write);
        self.phys.write_u64(paddr, value);
        if self.dram.total_flips() > 0 {
            for i in 0..8 {
                self.dram.repair_at(paddr + i);
            }
        }
        outcome
    }

    /// Direct (un-simulated) view of the backing store, for test setup and
    /// result inspection.
    pub fn phys(&self) -> &PhysicalMemory {
        &self.phys
    }

    /// Direct (un-simulated) mutable view of the backing store.
    pub fn phys_mut(&mut self) -> &mut PhysicalMemory {
        &mut self.phys
    }

    /// Releases disturbance-tracking memory; call once per simulated
    /// refresh window on long runs.
    pub fn compact(&mut self) {
        self.dram.compact();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_advances_per_access() {
        let mut sys = MemorySystem::new(MemoryConfig::tiny());
        let t0 = sys.now();
        let a = sys.access(0x1000, AccessKind::Read);
        assert_eq!(sys.now(), t0 + a.advance);
        assert!(a.llc_miss());
        let b = sys.access(0x1000, AccessKind::Read);
        assert_eq!(b.level, HitLevel::L1);
        assert_eq!(b.advance, CoreModel::sandy_bridge().l1_hit_cost);
    }

    #[test]
    fn llc_miss_counters_split_loads_and_stores() {
        let mut sys = MemorySystem::new(MemoryConfig::tiny());
        sys.access(0x0, AccessKind::Read);
        sys.access(0x10000, AccessKind::Write);
        let s = sys.stats();
        assert_eq!(s.llc_misses, 2);
        assert_eq!(s.llc_miss_loads, 1);
    }

    #[test]
    fn clflush_forces_next_access_to_dram() {
        let mut sys = MemorySystem::new(MemoryConfig::tiny());
        sys.access(0x2000, AccessKind::Read);
        sys.clflush(0x2000);
        let a = sys.access(0x2000, AccessKind::Read);
        assert!(a.llc_miss());
        assert_eq!(sys.stats().clflushes, 1);
    }

    #[test]
    fn data_round_trips_through_load_store() {
        let mut sys = MemorySystem::new(MemoryConfig::tiny());
        sys.store_u64(0x3000, 0xfeed_face);
        let (v, _) = sys.load_u64(0x3000);
        assert_eq!(v, 0xfeed_face);
    }

    #[test]
    fn hammering_flips_bits_in_the_backing_store() {
        use anvil_dram::{is_vulnerable_row, BankId, DramLocation, RowId};
        let config = MemoryConfig::paper_platform();
        let victim = (2..30_000u32)
            .map(|r| RowId::new(BankId(0), r))
            .find(|r| is_vulnerable_row(&config.dram.disturbance, *r))
            .unwrap();
        let mut sys = MemorySystem::new(config);
        let map = *sys.dram().mapping();
        let above = map.address_of(DramLocation {
            bank: victim.bank,
            row: victim.row + 1,
            col: 0,
        });
        let below = map.address_of(DramLocation {
            bank: victim.bank,
            row: victim.row - 1,
            col: 0,
        });
        for _ in 0..120_000 {
            sys.access(above, AccessKind::Read);
            sys.clflush(above);
            sys.access(below, AccessKind::Read);
            sys.clflush(below);
        }
        assert!(sys.total_flips() > 0, "hammer must flip");
        let flips = sys.drain_flips();
        let f = flips[0];
        // The flip is visible in the data.
        assert_eq!(sys.phys().read_u8(f.paddr), 1 << f.flip.bit);
        // Rewriting repairs the cell.
        sys.store_u64(f.paddr & !7, 0);
        assert_eq!(sys.phys().read_u8(f.paddr), 0);
    }

    #[test]
    fn dram_misses_cost_more_than_hits() {
        let mut sys = MemorySystem::new(MemoryConfig::tiny());
        let miss = sys.access(0x40_000, AccessKind::Read).advance;
        let hit = sys.access(0x40_000, AccessKind::Read).advance;
        assert!(miss > 10 * hit, "miss {miss} vs hit {hit}");
    }

    #[test]
    fn advance_moves_clock_without_memory_traffic() {
        let mut sys = MemorySystem::new(MemoryConfig::tiny());
        sys.advance(500);
        assert_eq!(sys.now(), 500);
        assert_eq!(sys.stats().accesses, 0);
    }
}
