//! Sparse physical memory backing store.
//!
//! The simulator tracks data values so that rowhammer bit-flips are
//! observable end-to-end: a flip reported by the DRAM model is XOR-ed into
//! the byte here, and a victim process reading its data back sees the
//! corruption, exactly as the paper's attack demonstrations do.
//!
//! Storage is allocated page-by-page on first write (or first flip), so a
//! 4 GB module costs nothing until touched.

use std::collections::HashMap;

const PAGE_SHIFT: u32 = 12;
const PAGE_SIZE: usize = 1 << PAGE_SHIFT;

/// Byte-addressable sparse physical memory. Untouched bytes read as zero.
///
/// # Examples
///
/// ```
/// use anvil_mem::PhysicalMemory;
///
/// let mut mem = PhysicalMemory::new(1 << 30);
/// mem.write_u64(0x1000, 0xdead_beef);
/// assert_eq!(mem.read_u64(0x1000), 0xdead_beef);
/// assert_eq!(mem.read_u64(0x2000), 0);
/// ```
#[derive(Debug, Default)]
pub struct PhysicalMemory {
    capacity: u64,
    pages: HashMap<u64, Box<[u8; PAGE_SIZE]>>,
}

impl PhysicalMemory {
    /// Creates a memory of `capacity` bytes.
    pub fn new(capacity: u64) -> Self {
        PhysicalMemory {
            capacity,
            pages: HashMap::new(),
        }
    }

    /// The capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Number of pages currently materialized (diagnostic).
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }

    fn check(&self, paddr: u64, len: u64) {
        assert!(
            paddr + len <= self.capacity,
            "physical access {paddr:#x}+{len} beyond capacity {:#x}",
            self.capacity
        );
    }

    /// Reads one byte.
    ///
    /// # Panics
    ///
    /// Panics if `paddr` is beyond capacity.
    pub fn read_u8(&self, paddr: u64) -> u8 {
        self.check(paddr, 1);
        self.pages
            .get(&(paddr >> PAGE_SHIFT))
            .map_or(0, |p| p[(paddr as usize) & (PAGE_SIZE - 1)])
    }

    /// Writes one byte.
    ///
    /// # Panics
    ///
    /// Panics if `paddr` is beyond capacity.
    pub fn write_u8(&mut self, paddr: u64, value: u8) {
        self.check(paddr, 1);
        let page = self
            .pages
            .entry(paddr >> PAGE_SHIFT)
            .or_insert_with(|| Box::new([0; PAGE_SIZE]));
        page[(paddr as usize) & (PAGE_SIZE - 1)] = value;
    }

    /// Reads a little-endian u64 (need not be aligned).
    ///
    /// # Panics
    ///
    /// Panics if the range is beyond capacity.
    pub fn read_u64(&self, paddr: u64) -> u64 {
        let mut bytes = [0u8; 8];
        for (i, b) in bytes.iter_mut().enumerate() {
            *b = self.read_u8(paddr + i as u64);
        }
        u64::from_le_bytes(bytes)
    }

    /// Writes a little-endian u64 (need not be aligned).
    ///
    /// # Panics
    ///
    /// Panics if the range is beyond capacity.
    pub fn write_u64(&mut self, paddr: u64, value: u64) {
        for (i, b) in value.to_le_bytes().iter().enumerate() {
            self.write_u8(paddr + i as u64, *b);
        }
    }

    /// Fills `[paddr, paddr+len)` with `value`.
    ///
    /// # Panics
    ///
    /// Panics if the range is beyond capacity.
    pub fn fill(&mut self, paddr: u64, len: u64, value: u8) {
        self.check(paddr, len);
        for a in paddr..paddr + len {
            self.write_u8(a, value);
        }
    }

    /// XORs one bit — how a rowhammer flip lands in memory. Returns the
    /// new byte value.
    ///
    /// # Panics
    ///
    /// Panics if `paddr` is beyond capacity or `bit >= 8`.
    pub fn flip_bit(&mut self, paddr: u64, bit: u8) -> u8 {
        assert!(bit < 8, "bit index out of range");
        let v = self.read_u8(paddr) ^ (1 << bit);
        self.write_u8(paddr, v);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_by_default() {
        let mem = PhysicalMemory::new(1 << 20);
        assert_eq!(mem.read_u8(0), 0);
        assert_eq!(mem.read_u64(4096), 0);
        assert_eq!(mem.resident_pages(), 0);
    }

    #[test]
    fn read_back_what_was_written() {
        let mut mem = PhysicalMemory::new(1 << 20);
        mem.write_u64(100, 0x0123_4567_89ab_cdef);
        assert_eq!(mem.read_u64(100), 0x0123_4567_89ab_cdef);
        assert_eq!(mem.read_u8(100), 0xef); // little endian
    }

    #[test]
    fn unaligned_u64_spans_pages() {
        let mut mem = PhysicalMemory::new(1 << 20);
        mem.write_u64(4093, u64::MAX);
        assert_eq!(mem.read_u64(4093), u64::MAX);
        assert_eq!(mem.resident_pages(), 2);
    }

    #[test]
    fn flip_bit_xors() {
        let mut mem = PhysicalMemory::new(1 << 20);
        mem.write_u8(7, 0b0000_1000);
        assert_eq!(mem.flip_bit(7, 3), 0);
        assert_eq!(mem.flip_bit(7, 0), 1);
    }

    #[test]
    fn fill_region() {
        let mut mem = PhysicalMemory::new(1 << 20);
        mem.fill(10, 20, 0x55);
        assert_eq!(mem.read_u8(10), 0x55);
        assert_eq!(mem.read_u8(29), 0x55);
        assert_eq!(mem.read_u8(30), 0);
    }

    #[test]
    #[should_panic(expected = "beyond capacity")]
    fn out_of_bounds_panics() {
        PhysicalMemory::new(4096).read_u8(4096);
    }
}
