//! Where the detector's own state lives in DRAM.
//!
//! ANVIL is software: its carry accumulators, suspicion ledger, and
//! replica copies occupy rows of the very DRAM it protects, so a
//! next-generation attacker can hammer the *detector's* rows. This module
//! models that exposure: it places every `(cell, replica)` pair of the
//! guarded state into simulated rows, so disturbance near those rows can
//! be converted into physical bit flips in specific replicas.
//!
//! Two placements matter:
//!
//! * [`StateLayout::Naive`] — the obvious struct-of-replicas layout: all
//!   three copies of a cell sit in the same row (adjacent bytes). One
//!   aggressor pair disturbs every replica at once, defeating
//!   majority-vote repair — the layout a hardened deployment must avoid.
//! * [`StateLayout::Interleaved`] — replicas separated by
//!   [`REPLICA_ROW_STRIDE`] rows, so any single aggressor's blast radius
//!   (±2 rows) touches at most one replica of any cell and majority vote
//!   always has two clean copies to repair from.

use anvil_dram::{BankId, RowId};
use serde::{Deserialize, Serialize};

/// Guarded cells packed into one DRAM row. A replica is 16 bytes (encoded
/// word + checksum); 64 cells of one replica fill 1 KB of an 8 KB row,
/// keeping the whole state inside a handful of rows — a small, findable
/// target, as it would be for a real kernel module's static arrays.
pub const STATE_CELLS_PER_ROW: u32 = 64;

/// Row distance between consecutive replicas under
/// [`StateLayout::Interleaved`]: far beyond any disturbance blast radius,
/// so correlated physical corruption of two replicas of the same cell
/// requires two independent aggressor pairs.
pub const REPLICA_ROW_STRIDE: u32 = 512;

/// Replica copies per guarded cell (mirrors `anvil-core`'s `REPLICAS`;
/// kept local so `anvil-mem` stays below `anvil-core` in the crate DAG).
pub const STATE_REPLICAS: u8 = 3;

/// How guarded-cell replicas are placed into DRAM rows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StateLayout {
    /// All replicas of a cell share a row (contiguous struct layout).
    Naive,
    /// Replicas separated by [`REPLICA_ROW_STRIDE`] rows.
    Interleaved,
}

/// The placement of every detector state cell into simulated DRAM rows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StateRowMap {
    layout: StateLayout,
    bank: BankId,
    base_row: u32,
    cell_count: u32,
}

impl StateRowMap {
    /// Places `cell_count` cells starting at `base_row` of `bank`.
    #[must_use]
    pub fn new(layout: StateLayout, bank: BankId, base_row: u32, cell_count: usize) -> Self {
        StateRowMap {
            layout,
            bank,
            base_row,
            cell_count: u32::try_from(cell_count).unwrap_or(u32::MAX),
        }
    }

    /// The placement policy.
    #[must_use]
    pub fn layout(&self) -> StateLayout {
        self.layout
    }

    /// Cells this map places.
    #[must_use]
    pub fn cell_count(&self) -> usize {
        self.cell_count as usize
    }

    /// The row holding replica `replica` of cell `cell`.
    ///
    /// Out-of-range cells wrap into the mapped region (the map is a model,
    /// not an allocator); replicas wrap modulo [`STATE_REPLICAS`].
    #[must_use]
    pub fn row_of(&self, cell: usize, replica: u8) -> RowId {
        let cell = if self.cell_count == 0 {
            0
        } else {
            (cell as u64 % u64::from(self.cell_count)) as u32
        };
        let group = cell / STATE_CELLS_PER_ROW;
        let offset = match self.layout {
            StateLayout::Naive => group,
            StateLayout::Interleaved => {
                group + u32::from(replica % STATE_REPLICAS) * REPLICA_ROW_STRIDE
            }
        };
        RowId::new(self.bank, self.base_row + offset)
    }

    /// Every distinct row holding state, in ascending row order — the
    /// target list a state-hunting adversary works from.
    #[must_use]
    pub fn state_rows(&self) -> Vec<RowId> {
        let mut rows = Vec::new();
        for cell in (0..self.cell_count as usize).step_by(STATE_CELLS_PER_ROW as usize) {
            for replica in 0..STATE_REPLICAS {
                rows.push(self.row_of(cell, replica));
            }
        }
        rows.sort_unstable();
        rows.dedup();
        rows
    }

    /// The `(cell, replica_mask)` pairs stored in `row`: which replicas of
    /// which cells take flips when `row` is disturbed. Empty when the row
    /// holds no state.
    #[must_use]
    pub fn cells_in(&self, row: RowId) -> Vec<(usize, u8)> {
        if row.bank != self.bank || row.row < self.base_row {
            return Vec::new();
        }
        let mut hits = Vec::new();
        for cell in 0..self.cell_count as usize {
            let mut mask = 0u8;
            for replica in 0..STATE_REPLICAS {
                if self.row_of(cell, replica) == row {
                    mask |= 1 << replica;
                }
            }
            if mask != 0 {
                hits.push((cell, mask));
            }
        }
        hits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map(layout: StateLayout, cells: usize) -> StateRowMap {
        StateRowMap::new(layout, BankId(3), 10_000, cells)
    }

    #[test]
    fn naive_layout_co_locates_replicas() {
        let m = map(StateLayout::Naive, 100);
        for cell in 0..100 {
            let r0 = m.row_of(cell, 0);
            assert_eq!(r0, m.row_of(cell, 1));
            assert_eq!(r0, m.row_of(cell, 2));
        }
        // One aggressor next to the state row therefore reaches every
        // replica: a single (cell, 0b111) entry per cell.
        let hits = m.cells_in(m.row_of(0, 0));
        assert_eq!(hits.len(), 64);
        assert!(hits.iter().all(|&(_, mask)| mask == 0b111));
    }

    #[test]
    fn interleaved_layout_separates_replicas_beyond_blast_radius() {
        let m = map(StateLayout::Interleaved, 100);
        for cell in 0..100 {
            let rows = [m.row_of(cell, 0), m.row_of(cell, 1), m.row_of(cell, 2)];
            for i in 0..3 {
                for j in (i + 1)..3 {
                    let gap = rows[i].row.abs_diff(rows[j].row);
                    assert!(
                        gap >= REPLICA_ROW_STRIDE - 2,
                        "gap {gap} within blast radius"
                    );
                }
            }
        }
        // Any one state row holds exactly one replica of its cells.
        for row in m.state_rows() {
            for (_, mask) in m.cells_in(row) {
                assert_eq!(mask.count_ones(), 1);
            }
        }
    }

    #[test]
    fn cells_in_inverts_row_of() {
        for layout in [StateLayout::Naive, StateLayout::Interleaved] {
            let m = map(layout, 150);
            for cell in 0..150usize {
                for replica in 0..STATE_REPLICAS {
                    let row = m.row_of(cell, replica);
                    let hit = m
                        .cells_in(row)
                        .into_iter()
                        .find(|&(c, _)| c == cell)
                        .expect("cell present in its own row");
                    assert_ne!(hit.1 & (1 << replica), 0);
                }
            }
        }
    }

    #[test]
    fn state_rows_cover_every_replica() {
        let m = map(StateLayout::Interleaved, 150);
        let rows = m.state_rows();
        // 150 cells → 3 row groups × 3 replicas = 9 distinct rows.
        assert_eq!(rows.len(), 9);
        for cell in 0..150usize {
            for replica in 0..STATE_REPLICAS {
                assert!(rows.contains(&m.row_of(cell, replica)));
            }
        }
        // Foreign rows hold nothing.
        assert!(m.cells_in(RowId::new(BankId(0), 10_000)).is_empty());
        assert!(m.cells_in(RowId::new(BankId(3), 0)).is_empty());
    }

    #[test]
    fn empty_map_is_inert() {
        let m = map(StateLayout::Naive, 0);
        assert!(m.state_rows().is_empty());
        assert_eq!(m.cell_count(), 0);
        assert_eq!(m.row_of(5, 1).row, 10_000);
    }
}
