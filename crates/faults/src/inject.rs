//! Stateful injectors: the objects substrates consult at fault sites.
//!
//! Each injector owns a forked [`FaultRng`] stream and mutable episode
//! state (e.g. how many samples remain in a drop burst). Substrates call
//! them at the relevant point — the sampler per PEBS record, the pagemap
//! walk per translation, the platform per service deadline — and the
//! injector answers deterministically for its stream.

use crate::plan::{LifecycleFaults, PebsFaults, StateCorruptionFaults, TranslationFaults};
use crate::rng::FaultRng;

/// What happens to one PEBS sample record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SampleFate {
    /// The sample survives intact.
    Keep,
    /// The sample is lost (debug-store overflow).
    Drop,
    /// The sample survives but its linear address is replaced.
    Corrupt(u64),
}

/// PEBS debug-store fault injector: bursty drops and address corruption.
#[derive(Debug, Clone)]
pub struct PebsInjector {
    cfg: PebsFaults,
    rng: FaultRng,
    burst_left: u32,
    dropped: u64,
    corrupted: u64,
}

impl PebsInjector {
    /// Creates an injector over its own forked stream.
    #[must_use]
    pub fn new(cfg: PebsFaults, rng: FaultRng) -> Self {
        PebsInjector {
            cfg,
            rng,
            burst_left: 0,
            dropped: 0,
            corrupted: 0,
        }
    }

    /// Decides the fate of a sample carrying virtual address `vaddr`.
    ///
    /// Drops arrive in bursts: once a burst starts, the next
    /// `burst_len` samples are all lost, modeling a wrapped debug-store
    /// buffer rather than independent per-record loss. Corruption flips
    /// the page of a surviving sample to a nearby page (latency skid).
    pub fn on_sample(&mut self, vaddr: u64) -> SampleFate {
        if self.burst_left > 0 {
            self.burst_left -= 1;
            self.dropped += 1;
            return SampleFate::Drop;
        }
        if self.cfg.burst_len > 0 && self.rng.chance(self.cfg.drop_rate) {
            self.burst_left = self.cfg.burst_len - 1;
            self.dropped += 1;
            return SampleFate::Drop;
        }
        if self.rng.chance(self.cfg.corrupt_rate) {
            self.corrupted += 1;
            // Shift the address by 1..=8 pages, wrapping at zero.
            let pages = 1 + self.rng.below(8);
            let skewed = vaddr.wrapping_add(pages << 12);
            return SampleFate::Corrupt(skewed);
        }
        SampleFate::Keep
    }

    /// Samples dropped so far.
    #[must_use]
    pub fn drops(&self) -> u64 {
        self.dropped
    }

    /// Samples corrupted so far.
    #[must_use]
    pub fn corruptions(&self) -> u64 {
        self.corrupted
    }
}

/// Pagemap translation fault injector: failed or stale walks.
#[derive(Debug, Clone)]
pub struct TranslationInjector {
    cfg: TranslationFaults,
    rng: FaultRng,
    failed: u64,
    stale: u64,
}

impl TranslationInjector {
    /// Creates an injector over its own forked stream.
    #[must_use]
    pub fn new(cfg: TranslationFaults, rng: FaultRng) -> Self {
        TranslationInjector {
            cfg,
            rng,
            failed: 0,
            stale: 0,
        }
    }

    /// Applies translation faults to a successful walk result.
    ///
    /// Returns `None` when the walk fails (the caller should discard the
    /// sample as unresolvable), or a possibly-stale physical address.
    /// A stale result points at a neighbouring frame — the page was
    /// migrated after the walk read the old entry.
    pub fn apply(&mut self, paddr: u64) -> Option<u64> {
        if self.rng.chance(self.cfg.fail_rate) {
            self.failed += 1;
            return None;
        }
        if self.rng.chance(self.cfg.stale_rate) {
            self.stale += 1;
            return Some(paddr ^ (1 << 12));
        }
        Some(paddr)
    }

    /// Walks that failed so far.
    #[must_use]
    pub fn failures(&self) -> u64 {
        self.failed
    }

    /// Walks that returned a stale frame so far.
    #[must_use]
    pub fn stale(&self) -> u64 {
        self.stale
    }
}

/// A bounded random delay source, used for both sampling-interrupt
/// jitter and detector-service preemption.
#[derive(Debug, Clone)]
pub struct DelayInjector {
    rate: f64,
    max: u64,
    rng: FaultRng,
    events: u64,
    total: u64,
    worst: u64,
}

impl DelayInjector {
    /// Creates a delay source firing with probability `rate`, drawing
    /// delays uniformly in `[1, max]` cycles.
    #[must_use]
    pub fn new(rate: f64, max: u64, rng: FaultRng) -> Self {
        DelayInjector {
            rate,
            max,
            rng,
            events: 0,
            total: 0,
            worst: 0,
        }
    }

    /// Draws the delay for the next event: zero when the fault does not
    /// fire, otherwise `1..=max` cycles.
    pub fn draw(&mut self) -> u64 {
        if self.max == 0 || !self.rng.chance(self.rate) {
            return 0;
        }
        let d = 1 + self.rng.below(self.max);
        self.events += 1;
        self.total += d;
        self.worst = self.worst.max(d);
        d
    }

    /// Events that actually incurred a delay.
    #[must_use]
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Sum of all delays drawn, in cycles.
    #[must_use]
    pub fn total_delay(&self) -> u64 {
        self.total
    }

    /// Largest single delay drawn, in cycles.
    #[must_use]
    pub fn worst_delay(&self) -> u64 {
        self.worst
    }
}

/// Detector-lifecycle fault injector: crashes, stalls, and checkpoint
/// corruption at rest.
///
/// The supervisor consults it at three sites: once per detector service
/// for a crash decision ([`crash_now`](Self::crash_now)), once per
/// service for a stall ([`stall_cycles`](Self::stall_cycles)), and once
/// per checkpoint write for at-rest corruption
/// ([`corrupt`](Self::corrupt)). Each site draws from the same forked
/// One service's bundled lifecycle draws — see
/// [`LifecycleInjector::service_draws`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceDraws {
    /// Scheduler-starvation stall, in cycles (zero when the fault did not
    /// fire).
    pub stall: u64,
    /// Whether the detector panics at this service.
    pub crash: bool,
}

/// stream in a fixed order, so a given seed replays the exact same
/// crash/stall/corruption schedule.
#[derive(Debug, Clone)]
pub struct LifecycleInjector {
    cfg: LifecycleFaults,
    torn_rate: f64,
    rng: FaultRng,
    crashes: u64,
    stalls: u64,
    total_stall: u64,
    worst_stall: u64,
    corrupted: u64,
    torn: u64,
    force_crash: bool,
}

impl LifecycleInjector {
    /// Creates an injector over its own forked stream.
    #[must_use]
    pub fn new(cfg: LifecycleFaults, rng: FaultRng) -> Self {
        LifecycleInjector {
            cfg,
            torn_rate: 0.0,
            rng,
            crashes: 0,
            stalls: 0,
            total_stall: 0,
            worst_stall: 0,
            corrupted: 0,
            torn: 0,
            force_crash: false,
        }
    }

    /// Enables torn checkpoint writes at `rate` per write: a torn write
    /// persists only a prefix of the checkpoint bytes (power loss
    /// mid-write). The rate lives outside [`LifecycleFaults`] so the
    /// serialized plan format — and every committed fault schedule
    /// derived from it — is unchanged; a zero rate draws nothing.
    #[must_use]
    pub fn with_torn_writes(mut self, rate: f64) -> Self {
        self.torn_rate = rate;
        self
    }

    /// Forces the next [`crash_now`](Self::crash_now) to report a crash
    /// without consuming a draw — the hook fleet engines use to crash
    /// every detector on a machine at the same instant (the machine-wide
    /// outage recovery path), while keeping the probabilistic schedule
    /// aligned.
    pub fn force_crash(&mut self) {
        self.force_crash = true;
    }

    /// Decides whether the detector panics at this service.
    pub fn crash_now(&mut self) -> bool {
        if self.force_crash {
            self.force_crash = false;
            self.crashes += 1;
            return true;
        }
        if self.rng.chance(self.cfg.crash_rate) {
            self.crashes += 1;
            true
        } else {
            false
        }
    }

    /// Draws the stall for this service: zero when the fault does not
    /// fire, otherwise `1..=max_stall` cycles of scheduler starvation.
    pub fn stall_cycles(&mut self) -> u64 {
        if self.cfg.max_stall == 0 || !self.rng.chance(self.cfg.stall_rate) {
            return 0;
        }
        let d = 1 + self.rng.below(self.cfg.max_stall);
        self.stalls += 1;
        self.total_stall += d;
        self.worst_stall = self.worst_stall.max(d);
        d
    }

    /// Draws one service's stall and crash decisions as a bundle, in the
    /// supervisor's canonical order (stall first, then crash). Both the
    /// per-op service path and the event-driven quiet path call this one
    /// method, so a window serviced by either engine consumes exactly the
    /// same RNG draws — the draw-parity contract the epoch-skipping
    /// engine's byte-identical-output guarantee rests on.
    pub fn service_draws(&mut self) -> ServiceDraws {
        let stall = self.stall_cycles();
        let crash = self.crash_now();
        ServiceDraws { stall, crash }
    }

    /// Possibly corrupts checkpoint bytes at rest by flipping one bit of
    /// one byte. Returns `true` when corruption fired.
    pub fn corrupt(&mut self, bytes: &mut [u8]) -> bool {
        if bytes.is_empty() || !self.corrupt_fires() {
            return false;
        }
        self.corrupt_in_place(bytes);
        true
    }

    /// Draws the per-checkpoint-write corruption chance alone (the first
    /// draw [`corrupt`](Self::corrupt) makes). Callers that keep their
    /// checkpoints unserialized use this to decide whether bytes must be
    /// materialized at all; on `true` they follow up with
    /// [`corrupt_in_place`](Self::corrupt_in_place), reproducing
    /// `corrupt`'s draw sequence exactly.
    pub fn corrupt_fires(&mut self) -> bool {
        self.rng.chance(self.cfg.corrupt_rate)
    }

    /// Flips one bit of one byte (the position and bit draws `corrupt`
    /// makes after its chance draw fires) and counts the corruption.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is empty.
    pub fn corrupt_in_place(&mut self, bytes: &mut [u8]) {
        assert!(!bytes.is_empty(), "cannot corrupt an empty checkpoint");
        let idx = self.rng.below(bytes.len() as u64) as usize;
        let bit = self.rng.below(8) as u8;
        bytes[idx] ^= 1 << bit;
        self.corrupted += 1;
    }

    /// Draws the per-checkpoint-write torn-write chance (see
    /// [`with_torn_writes`](Self::with_torn_writes)). A zero rate
    /// consumes nothing, so callers may draw unconditionally without
    /// perturbing schedules recorded before torn writes existed. On
    /// `true`, follow up with [`tear_in_place`](Self::tear_in_place).
    pub fn tear_fires(&mut self) -> bool {
        self.rng.chance(self.torn_rate)
    }

    /// Tears the checkpoint write: truncates `bytes` to a drawn prefix
    /// (possibly empty — the write never started) and counts the tear.
    pub fn tear_in_place(&mut self, bytes: &mut Vec<u8>) {
        let keep = self.rng.below(bytes.len() as u64) as usize;
        bytes.truncate(keep);
        self.torn += 1;
    }

    /// Crashes injected so far.
    #[must_use]
    pub fn crashes(&self) -> u64 {
        self.crashes
    }

    /// Services stalled so far.
    #[must_use]
    pub fn stalls(&self) -> u64 {
        self.stalls
    }

    /// Sum of all stalls drawn, in cycles.
    #[must_use]
    pub fn total_stall(&self) -> u64 {
        self.total_stall
    }

    /// Largest single stall drawn, in cycles.
    #[must_use]
    pub fn worst_stall(&self) -> u64 {
        self.worst_stall
    }

    /// Checkpoint writes corrupted so far.
    #[must_use]
    pub fn corruptions(&self) -> u64 {
        self.corrupted
    }

    /// Checkpoint writes torn so far.
    #[must_use]
    pub fn torn_writes(&self) -> u64 {
        self.torn
    }
}

/// One injected flip into the detector's own state cells.
///
/// `cell` indexes the detector's global state-cell space (the order
/// `AnvilDetector::corrupt_state_cell` uses); `replica_mask` selects which
/// of the three replicas receive the flip; `bit` selects the flipped bit —
/// `0..64` hit the encoded word, `64..128` hit its checksum. `after_scrub`
/// marks a scrub-window race: the flip lands after the window's scrub
/// slice ran, so it survives until the next pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StateFlip {
    /// Global state-cell index to corrupt (modulo the live cell count).
    pub cell: usize,
    /// Replica mask: bit `i` set ⇒ replica `i` takes the flip.
    pub replica_mask: u8,
    /// Bit position: `0..64` word bits, `64..128` checksum bits.
    pub bit: u8,
    /// True when the flip races past this window's scrub slice.
    pub after_scrub: bool,
}

/// Detector-state corruption injector: deterministic per-window flips
/// into the detector's own guarded cells.
///
/// The platform consults it once per stage-1 window
/// ([`window_flips`](Self::window_flips)); each firing window yields
/// `1..=max_flips` flips with drawn cell, replica mask, bit, and
/// scrub-race timing. All draws come from one forked stream in a fixed
/// order, so a seed replays the identical corruption schedule.
#[derive(Debug, Clone)]
pub struct StateCorruptionInjector {
    cfg: StateCorruptionFaults,
    rng: FaultRng,
    flips: u64,
    correlated: u64,
    races: u64,
}

impl StateCorruptionInjector {
    /// Creates an injector over its own forked stream.
    #[must_use]
    pub fn new(cfg: StateCorruptionFaults, rng: FaultRng) -> Self {
        StateCorruptionInjector {
            cfg,
            rng,
            flips: 0,
            correlated: 0,
            races: 0,
        }
    }

    /// Draws this window's flips into a state space of `cell_count`
    /// cells. Returns an empty schedule when the window does not fire or
    /// the detector has no cells.
    #[allow(clippy::cast_possible_truncation)]
    pub fn window_flips(&mut self, cell_count: usize) -> Vec<StateFlip> {
        if cell_count == 0 || !self.rng.chance(self.cfg.flip_rate) {
            return Vec::new();
        }
        let n = 1 + self.rng.below(u64::from(self.cfg.max_flips));
        let mut out = Vec::with_capacity(n as usize);
        for _ in 0..n {
            let cell = self.rng.below(cell_count as u64) as usize;
            let correlated = self.rng.chance(self.cfg.correlated_rate);
            let replica_mask = if correlated {
                // Same bit in at least two of the three replicas — the
                // in-DRAM analogue of one aggressor disturbing the rows
                // holding multiple copies.
                self.correlated += 1;
                match self.rng.below(4) {
                    0 => 0b011,
                    1 => 0b101,
                    2 => 0b110,
                    _ => 0b111,
                }
            } else {
                1u8 << self.rng.below(3)
            };
            let bit = self.rng.below(128) as u8;
            let after_scrub = self.rng.chance(self.cfg.scrub_race_rate);
            if after_scrub {
                self.races += 1;
            }
            self.flips += 1;
            out.push(StateFlip {
                cell,
                replica_mask,
                bit,
                after_scrub,
            });
        }
        out
    }

    /// Flips injected so far.
    #[must_use]
    pub fn flips(&self) -> u64 {
        self.flips
    }

    /// Replica-correlated flips injected so far.
    #[must_use]
    pub fn correlated(&self) -> u64 {
        self.correlated
    }

    /// Scrub-race flips injected so far.
    #[must_use]
    pub fn scrub_races(&self) -> u64 {
        self.races
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pebs(drop_rate: f64, burst_len: u32, corrupt_rate: f64) -> PebsFaults {
        PebsFaults {
            drop_rate,
            burst_len,
            corrupt_rate,
        }
    }

    #[test]
    fn drops_arrive_in_full_bursts() {
        let mut inj = PebsInjector::new(pebs(0.01, 16, 0.0), FaultRng::new(4));
        let fates: Vec<_> = (0..5_000).map(|i| inj.on_sample(i * 64)).collect();
        assert!(inj.drops() > 0);
        // Every drop run (except possibly one truncated by the end of
        // the sequence) is a multiple of the burst length.
        let mut run = 0u32;
        let mut runs = Vec::new();
        for f in &fates {
            if matches!(f, SampleFate::Drop) {
                run += 1;
            } else if run > 0 {
                runs.push(run);
                run = 0;
            }
        }
        assert!(!runs.is_empty());
        for r in runs {
            assert_eq!(r % 16, 0, "partial burst of {r}");
        }
    }

    #[test]
    fn corruption_changes_the_page_only() {
        let mut inj = PebsInjector::new(pebs(0.0, 0, 1.0), FaultRng::new(8));
        for i in 0..100u64 {
            let va = i * 4096 + 123;
            match inj.on_sample(va) {
                SampleFate::Corrupt(bad) => {
                    assert_ne!(bad, va);
                    assert_eq!(bad & 0xfff, va & 0xfff, "offset must survive skid");
                }
                other => panic!("expected corruption, got {other:?}"),
            }
        }
        assert_eq!(inj.corruptions(), 100);
    }

    #[test]
    fn translation_faults_partition() {
        let mut inj = TranslationInjector::new(
            TranslationFaults {
                fail_rate: 0.3,
                stale_rate: 0.3,
            },
            FaultRng::new(12),
        );
        let mut ok = 0u64;
        for i in 0..10_000u64 {
            match inj.apply(i << 12) {
                Some(p) if p == i << 12 => ok += 1,
                None | Some(_) => {}
            }
        }
        assert_eq!(inj.failures() + inj.stale() + ok, 10_000);
        assert!(inj.failures() > 2_000 && inj.failures() < 4_000);
        assert!(inj.stale() > 1_000, "stale {}", inj.stale());
    }

    #[test]
    fn delay_injector_bounds_and_counts() {
        let mut inj = DelayInjector::new(0.5, 1_000, FaultRng::new(21));
        let mut fired = 0u64;
        for _ in 0..10_000 {
            let d = inj.draw();
            assert!(d <= 1_000);
            if d > 0 {
                fired += 1;
            }
        }
        assert_eq!(inj.events(), fired);
        assert!(inj.worst_delay() <= 1_000);
        assert!(inj.total_delay() >= inj.worst_delay());
        assert!((4_000..=6_000).contains(&fired), "{fired}");
    }

    #[test]
    fn injectors_replay_identically() {
        let cfg = pebs(0.05, 8, 0.2);
        let mut a = PebsInjector::new(cfg, FaultRng::new(33).fork(1));
        let mut b = PebsInjector::new(cfg, FaultRng::new(33).fork(1));
        for i in 0..2_000u64 {
            assert_eq!(a.on_sample(i * 64), b.on_sample(i * 64));
        }
    }

    #[test]
    fn lifecycle_injector_counts_and_bounds() {
        let cfg = LifecycleFaults {
            crash_rate: 0.1,
            stall_rate: 0.3,
            max_stall: 50_000,
            corrupt_rate: 0.5,
        };
        let mut inj = LifecycleInjector::new(cfg, FaultRng::new(7).fork(5));
        let mut crashes = 0u64;
        let mut stalls = 0u64;
        let mut corruptions = 0u64;
        let pristine = vec![0u8; 64];
        for _ in 0..5_000 {
            if inj.crash_now() {
                crashes += 1;
            }
            let d = inj.stall_cycles();
            assert!(d <= 50_000);
            if d > 0 {
                stalls += 1;
            }
            let mut bytes = pristine.clone();
            if inj.corrupt(&mut bytes) {
                corruptions += 1;
                // Exactly one bit of one byte flipped.
                let flipped: u32 = bytes
                    .iter()
                    .zip(&pristine)
                    .map(|(a, b)| (a ^ b).count_ones())
                    .sum();
                assert_eq!(flipped, 1);
            } else {
                assert_eq!(bytes, pristine);
            }
        }
        assert_eq!(inj.crashes(), crashes);
        assert_eq!(inj.stalls(), stalls);
        assert_eq!(inj.corruptions(), corruptions);
        assert!((300..=700).contains(&crashes), "{crashes}");
        assert!((1_000..=2_000).contains(&stalls), "{stalls}");
        assert!((2_000..=3_000).contains(&corruptions), "{corruptions}");
        assert!(inj.worst_stall() <= 50_000);
        assert!(inj.total_stall() >= inj.worst_stall());
    }

    #[test]
    fn lifecycle_injector_replays_identically() {
        let cfg = LifecycleFaults {
            crash_rate: 0.05,
            stall_rate: 0.2,
            max_stall: 10_000,
            corrupt_rate: 0.1,
        };
        let mut a = LifecycleInjector::new(cfg, FaultRng::new(99).fork(5));
        let mut b = LifecycleInjector::new(cfg, FaultRng::new(99).fork(5));
        for _ in 0..2_000 {
            assert_eq!(a.crash_now(), b.crash_now());
            assert_eq!(a.stall_cycles(), b.stall_cycles());
            let mut ba = [0xAAu8; 16];
            let mut bb = [0xAAu8; 16];
            assert_eq!(a.corrupt(&mut ba), b.corrupt(&mut bb));
            assert_eq!(ba, bb);
        }
    }

    #[test]
    fn forced_crashes_skip_the_draw_and_count() {
        let cfg = LifecycleFaults {
            crash_rate: 0.0,
            stall_rate: 0.0,
            max_stall: 0,
            corrupt_rate: 0.0,
        };
        let mut inj = LifecycleInjector::new(cfg, FaultRng::new(2).fork(5));
        assert!(!inj.crash_now());
        inj.force_crash();
        assert!(inj.crash_now());
        assert!(!inj.crash_now(), "the force flag is one-shot");
        assert_eq!(inj.crashes(), 1);
    }

    #[test]
    fn torn_writes_truncate_to_a_prefix() {
        let cfg = LifecycleFaults {
            crash_rate: 0.0,
            stall_rate: 0.0,
            max_stall: 0,
            corrupt_rate: 0.0,
        };
        let mut inj = LifecycleInjector::new(cfg, FaultRng::new(13).fork(5)).with_torn_writes(1.0);
        let pristine: Vec<u8> = (0..64).collect();
        for _ in 0..200 {
            assert!(inj.tear_fires());
            let mut bytes = pristine.clone();
            inj.tear_in_place(&mut bytes);
            assert!(bytes.len() < pristine.len(), "a tear must lose bytes");
            assert_eq!(bytes[..], pristine[..bytes.len()], "tears keep a prefix");
        }
        assert_eq!(inj.torn_writes(), 200);
    }

    #[test]
    fn zero_torn_rate_consumes_no_draws() {
        let cfg = LifecycleFaults {
            crash_rate: 0.3,
            stall_rate: 0.0,
            max_stall: 0,
            corrupt_rate: 0.0,
        };
        // Interleaving disabled tear draws must not perturb the crash
        // schedule: committed soak schedules predate torn writes.
        let mut plain = LifecycleInjector::new(cfg, FaultRng::new(31).fork(5));
        let mut tearing = LifecycleInjector::new(cfg, FaultRng::new(31).fork(5));
        for _ in 0..2_000 {
            assert!(!tearing.tear_fires());
            assert_eq!(plain.crash_now(), tearing.crash_now());
        }
    }

    #[test]
    fn state_injector_bounds_and_counts() {
        let cfg = StateCorruptionFaults {
            flip_rate: 0.4,
            max_flips: 3,
            correlated_rate: 0.25,
            scrub_race_rate: 0.5,
        };
        let mut inj = StateCorruptionInjector::new(cfg, FaultRng::new(17).fork(6));
        let mut flips = 0u64;
        let mut correlated = 0u64;
        let mut races = 0u64;
        for _ in 0..5_000 {
            let schedule = inj.window_flips(24);
            assert!(schedule.len() <= 3);
            for f in schedule {
                assert!(f.cell < 24);
                assert!(f.bit < 128);
                assert!(f.replica_mask != 0 && f.replica_mask < 8);
                flips += 1;
                if f.replica_mask.count_ones() > 1 {
                    correlated += 1;
                }
                if f.after_scrub {
                    races += 1;
                }
            }
        }
        assert_eq!(inj.flips(), flips);
        assert_eq!(inj.correlated(), correlated);
        assert_eq!(inj.scrub_races(), races);
        // rate 0.4 × mean 2 flips → roughly 4000 flips over 5000 windows.
        assert!((3_000..=5_000).contains(&flips), "{flips}");
        assert!(correlated > 500, "{correlated}");
        assert!(races > 1_000, "{races}");
    }

    #[test]
    fn state_injector_replays_identically() {
        let cfg = StateCorruptionFaults {
            flip_rate: 0.2,
            max_flips: 2,
            correlated_rate: 0.3,
            scrub_race_rate: 0.1,
        };
        let mut a = StateCorruptionInjector::new(cfg, FaultRng::new(5).fork(6));
        let mut b = StateCorruptionInjector::new(cfg, FaultRng::new(5).fork(6));
        for _ in 0..2_000 {
            assert_eq!(a.window_flips(10), b.window_flips(10));
        }
    }

    #[test]
    fn zero_cell_count_never_fires() {
        let cfg = StateCorruptionFaults {
            flip_rate: 1.0,
            max_flips: 4,
            correlated_rate: 0.0,
            scrub_race_rate: 0.0,
        };
        let mut inj = StateCorruptionInjector::new(cfg, FaultRng::new(1).fork(6));
        for _ in 0..100 {
            assert!(inj.window_flips(0).is_empty());
        }
        assert_eq!(inj.flips(), 0);
    }

    #[test]
    fn empty_checkpoint_is_never_corrupted() {
        let cfg = LifecycleFaults {
            crash_rate: 0.0,
            stall_rate: 0.0,
            max_stall: 0,
            corrupt_rate: 1.0,
        };
        let mut inj = LifecycleInjector::new(cfg, FaultRng::new(1).fork(5));
        let mut empty: [u8; 0] = [];
        assert!(!inj.corrupt(&mut empty));
        assert_eq!(inj.corruptions(), 0);
    }
}
