//! Fault plans: serializable descriptions of what to break and how hard.
//!
//! A [`FaultPlan`] is pure data — probabilities and magnitudes for each
//! fault source. The platform turns a plan into live injectors by forking
//! per-site streams from the campaign seed, so the plan itself can be
//! embedded verbatim in campaign JSON and replayed byte-for-byte.

use serde::{Deserialize, Serialize};

use crate::inject::{
    DelayInjector, LifecycleInjector, PebsInjector, StateCorruptionInjector, TranslationInjector,
};
use crate::rng::{hash64, FaultRng};

/// PEBS debug-store faults: dropped and corrupted samples.
///
/// Real analogue: the DS area is a fixed-size buffer drained by the PMI
/// handler; when the handler is starved the buffer wraps and samples are
/// lost in bursts. Corruption models latency-skid writing a neighbouring
/// linear address into the record.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PebsFaults {
    /// Probability that a sample starts a drop burst (per sample).
    pub drop_rate: f64,
    /// Number of consecutive samples lost once a burst starts.
    pub burst_len: u32,
    /// Probability that a surviving sample's address is corrupted.
    pub corrupt_rate: f64,
}

/// Performance-counter faults.
///
/// Real analogue: fixed-width counters saturating (or being clipped by a
/// hypervisor) before the overflow interrupt fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CounterFaults {
    /// Cap the counter value at this many events per window, if set.
    pub saturate_at: Option<u64>,
}

/// VA→PA translation faults in the pagemap walk.
///
/// Real analogue: `/proc/pid/pagemap` reads racing with reclaim or
/// migration — the walk fails outright, or returns a frame the page no
/// longer occupies.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TranslationFaults {
    /// Probability a translation fails (sample discarded).
    pub fail_rate: f64,
    /// Probability a translation silently returns a stale frame.
    pub stale_rate: f64,
}

/// Sampling-interrupt delivery jitter.
///
/// Real analogue: PMIs held off by interrupt-masked kernel sections, so
/// the stage boundary lands late by a bounded amount.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InterruptFaults {
    /// Probability a given stage boundary is jittered.
    pub jitter_rate: f64,
    /// Maximum jitter, in cycles.
    pub max_jitter: u64,
}

/// Detector service-deadline faults.
///
/// Real analogue: the ANVIL kernel thread preempted or delayed by
/// higher-priority work, servicing its timer late.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServiceFaults {
    /// Probability a service deadline is overrun.
    pub preempt_rate: f64,
    /// Maximum service delay, in cycles.
    pub max_delay: u64,
}

/// Detector-lifecycle faults: crashes, stalls, and checkpoint corruption.
///
/// Real analogue: the ANVIL kernel module is software with a lifecycle —
/// a bug or resource exhaustion panics the detector thread, scheduler
/// starvation stalls it for whole windows, and the checkpoint it left on
/// disk can rot. These fire at the *supervisor's* fault sites (one
/// crash/stall decision per detector service, one corruption decision per
/// checkpoint write), unlike the substrate faults above which fire inside
/// the measurement pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LifecycleFaults {
    /// Probability the detector panics at a given service (per service).
    pub crash_rate: f64,
    /// Probability a service is stalled (per service).
    pub stall_rate: f64,
    /// Maximum stall, in cycles; actual stalls are uniform in
    /// `[1, max_stall]`.
    pub max_stall: u64,
    /// Probability a checkpoint write is corrupted at rest (per write).
    pub corrupt_rate: f64,
}

impl Default for LifecycleFaults {
    fn default() -> Self {
        LifecycleFaults {
            crash_rate: 0.0,
            stall_rate: 0.0,
            max_stall: 0,
            corrupt_rate: 0.0,
        }
    }
}

/// Detector-state corruption faults: bit flips landing in the detector's
/// own in-memory state cells.
///
/// Real analogue: ANVIL's counters, carry accumulators, and suspicion
/// ledger live in the very DRAM it protects. A disturbance-class attacker
/// (or plain at-rest rot) can flip bits in that state directly, so the
/// detector itself becomes a target. These fire once per stage-1 window
/// at the platform's state-scrub site.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StateCorruptionFaults {
    /// Probability a window injects at least one state flip (per window).
    pub flip_rate: f64,
    /// Maximum flips per firing window; actual counts are uniform in
    /// `[1, max_flips]`.
    pub max_flips: u32,
    /// Probability a flip hits the same bit across multiple replicas
    /// (replica-correlated corruption, e.g. adjacent rows of the same
    /// aggressor).
    pub correlated_rate: f64,
    /// Probability a flip lands *after* the window's scrub slice — the
    /// scrub-window race, where corruption survives until the next pass.
    pub scrub_race_rate: f64,
}

impl Default for StateCorruptionFaults {
    fn default() -> Self {
        StateCorruptionFaults {
            flip_rate: 0.0,
            max_flips: 0,
            correlated_rate: 0.0,
            scrub_race_rate: 0.0,
        }
    }
}

/// Auto-refresh postponement faults.
///
/// Real analogue: DDR3 controllers may legally postpone up to 8 refresh
/// commands (8 × tREFI) under load, stretching the window in which a row
/// accumulates disturbance.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RefreshFaults {
    /// Fraction of refresh commands that are postponed.
    pub postpone_rate: f64,
    /// Maximum postponement, in cycles (DDR3 caps this at 8 tREFI).
    pub max_postpone: u64,
}

/// Stateless per-command refresh delay, derived by hashing the command
/// index with a seed.
///
/// Stateless (and `Eq`) so it can live inside the `Copy + Eq` refresh
/// schedule: the schedule's lazy `last_refresh` arithmetic asks for the
/// delay of an arbitrary past command without replaying a stream.
/// The rate is stored in permille to keep the type `Eq`-safe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RefreshPostpone {
    /// Probability a command is postponed, in permille (0..=1000).
    pub permille: u32,
    /// Maximum postponement in cycles; actual delays are uniform in
    /// `[1, max_postpone]`.
    pub max_postpone: u64,
    /// Seed mixing into the per-command hash.
    pub seed: u64,
}

impl RefreshPostpone {
    /// The postponement, in cycles, applied to refresh command
    /// `cmd_index`. Deterministic: the same `(seed, cmd_index)` always
    /// yields the same delay.
    #[must_use]
    pub fn delay_for(&self, cmd_index: u64) -> u64 {
        if self.permille == 0 || self.max_postpone == 0 {
            return 0;
        }
        let h = hash64(self.seed ^ hash64(cmd_index));
        if h % 1000 < u64::from(self.permille.min(1000)) {
            // Second hash decorrelates magnitude from the gate.
            1 + hash64(h) % self.max_postpone
        } else {
            0
        }
    }
}

/// A complete, serializable fault-injection plan.
///
/// All rates default to zero via [`FaultPlan::none`]; the platform treats
/// a zero-rate source as absent and builds no injector for it, so a
/// faultless run draws nothing from the fault streams.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Campaign seed; all injector streams are forked from it.
    pub seed: u64,
    /// PEBS debug-store faults.
    pub pebs: PebsFaults,
    /// Counter saturation.
    pub counter: CounterFaults,
    /// Pagemap translation faults.
    pub translation: TranslationFaults,
    /// Sampling-interrupt jitter.
    pub interrupt: InterruptFaults,
    /// Detector service preemption.
    pub service: ServiceFaults,
    /// Auto-refresh postponement.
    pub refresh: RefreshFaults,
    /// Detector-lifecycle faults (crash / stall / checkpoint corruption).
    /// Defaults to disabled so plans serialized before this site existed
    /// still deserialize.
    #[serde(default)]
    pub lifecycle: LifecycleFaults,
    /// Detector-state corruption faults (bit flips in the detector's own
    /// cells). Defaults to disabled so plans serialized before this site
    /// existed still deserialize.
    #[serde(default)]
    pub state: StateCorruptionFaults,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::none()
    }
}

impl FaultPlan {
    /// A plan with every fault source disabled.
    #[must_use]
    pub fn none() -> Self {
        FaultPlan {
            seed: 0,
            pebs: PebsFaults {
                drop_rate: 0.0,
                burst_len: 0,
                corrupt_rate: 0.0,
            },
            counter: CounterFaults { saturate_at: None },
            translation: TranslationFaults {
                fail_rate: 0.0,
                stale_rate: 0.0,
            },
            interrupt: InterruptFaults {
                jitter_rate: 0.0,
                max_jitter: 0,
            },
            service: ServiceFaults {
                preempt_rate: 0.0,
                max_delay: 0,
            },
            refresh: RefreshFaults {
                postpone_rate: 0.0,
                max_postpone: 0,
            },
            lifecycle: LifecycleFaults::default(),
            state: StateCorruptionFaults::default(),
        }
    }

    /// True when no fault source is active.
    #[must_use]
    pub fn is_none(&self) -> bool {
        self.pebs.drop_rate <= 0.0
            && self.pebs.corrupt_rate <= 0.0
            && self.counter.saturate_at.is_none()
            && self.translation.fail_rate <= 0.0
            && self.translation.stale_rate <= 0.0
            && (self.interrupt.jitter_rate <= 0.0 || self.interrupt.max_jitter == 0)
            && (self.service.preempt_rate <= 0.0 || self.service.max_delay == 0)
            && (self.refresh.postpone_rate <= 0.0 || self.refresh.max_postpone == 0)
            && self.lifecycle.crash_rate <= 0.0
            && (self.lifecycle.stall_rate <= 0.0 || self.lifecycle.max_stall == 0)
            && self.lifecycle.corrupt_rate <= 0.0
            && (self.state.flip_rate <= 0.0 || self.state.max_flips == 0)
    }

    /// Builds the PEBS injector for this plan, or `None` when PEBS
    /// faults are disabled.
    #[must_use]
    pub fn pebs_injector(&self, rng: FaultRng) -> Option<PebsInjector> {
        if self.pebs.drop_rate > 0.0 || self.pebs.corrupt_rate > 0.0 {
            Some(PebsInjector::new(self.pebs, rng))
        } else {
            None
        }
    }

    /// Builds the translation injector, or `None` when translation
    /// faults are disabled.
    #[must_use]
    pub fn translation_injector(&self, rng: FaultRng) -> Option<TranslationInjector> {
        if self.translation.fail_rate > 0.0 || self.translation.stale_rate > 0.0 {
            Some(TranslationInjector::new(self.translation, rng))
        } else {
            None
        }
    }

    /// Builds the sampling-interrupt jitter source, or `None` when
    /// disabled.
    #[must_use]
    pub fn interrupt_delay(&self, rng: FaultRng) -> Option<DelayInjector> {
        if self.interrupt.jitter_rate > 0.0 && self.interrupt.max_jitter > 0 {
            Some(DelayInjector::new(
                self.interrupt.jitter_rate,
                self.interrupt.max_jitter,
                rng,
            ))
        } else {
            None
        }
    }

    /// Builds the service-preemption delay source, or `None` when
    /// disabled.
    #[must_use]
    pub fn service_delay(&self, rng: FaultRng) -> Option<DelayInjector> {
        if self.service.preempt_rate > 0.0 && self.service.max_delay > 0 {
            Some(DelayInjector::new(
                self.service.preempt_rate,
                self.service.max_delay,
                rng,
            ))
        } else {
            None
        }
    }

    /// Builds the detector-lifecycle injector, or `None` when lifecycle
    /// faults are disabled.
    #[must_use]
    pub fn lifecycle_injector(&self, rng: FaultRng) -> Option<LifecycleInjector> {
        if self.lifecycle.crash_rate > 0.0
            || (self.lifecycle.stall_rate > 0.0 && self.lifecycle.max_stall > 0)
            || self.lifecycle.corrupt_rate > 0.0
        {
            Some(LifecycleInjector::new(self.lifecycle, rng))
        } else {
            None
        }
    }

    /// Builds the detector-state corruption injector, or `None` when
    /// state faults are disabled.
    #[must_use]
    pub fn state_injector(&self, rng: FaultRng) -> Option<StateCorruptionInjector> {
        if self.state.flip_rate > 0.0 && self.state.max_flips > 0 {
            Some(StateCorruptionInjector::new(self.state, rng))
        } else {
            None
        }
    }

    /// Names of the plan's independently clearable fault sites, in the
    /// index order [`FaultPlan::site_active`] and
    /// [`FaultPlan::without_site`] use.
    pub const SITE_NAMES: [&'static str; 8] = [
        "pebs",
        "counter",
        "translation",
        "interrupt",
        "service",
        "refresh",
        "lifecycle",
        "state",
    ];

    /// Whether fault site `idx` (see [`Self::SITE_NAMES`]) injects
    /// anything. Out-of-range indices are inactive.
    #[must_use]
    pub fn site_active(&self, idx: usize) -> bool {
        match idx {
            0 => self.pebs.drop_rate > 0.0 || self.pebs.corrupt_rate > 0.0,
            1 => self.counter.saturate_at.is_some(),
            2 => self.translation.fail_rate > 0.0 || self.translation.stale_rate > 0.0,
            3 => self.interrupt.jitter_rate > 0.0 && self.interrupt.max_jitter > 0,
            4 => self.service.preempt_rate > 0.0 && self.service.max_delay > 0,
            5 => self.refresh.postpone_rate > 0.0 && self.refresh.max_postpone > 0,
            6 => {
                self.lifecycle.crash_rate > 0.0
                    || (self.lifecycle.stall_rate > 0.0 && self.lifecycle.max_stall > 0)
                    || self.lifecycle.corrupt_rate > 0.0
            }
            7 => self.state.flip_rate > 0.0 && self.state.max_flips > 0,
            _ => false,
        }
    }

    /// The indices of every active fault site, in
    /// [`Self::SITE_NAMES`] order.
    #[must_use]
    pub fn active_sites(&self) -> Vec<usize> {
        (0..Self::SITE_NAMES.len())
            .filter(|&i| self.site_active(i))
            .collect()
    }

    /// A copy of the plan with fault site `idx` disabled — the
    /// shrinker's "drop one fault site" reduction step. Out-of-range
    /// indices return the plan unchanged.
    #[must_use]
    pub fn without_site(&self, idx: usize) -> FaultPlan {
        let none = FaultPlan::none();
        let mut plan = *self;
        match idx {
            0 => plan.pebs = none.pebs,
            1 => plan.counter = none.counter,
            2 => plan.translation = none.translation,
            3 => plan.interrupt = none.interrupt,
            4 => plan.service = none.service,
            5 => plan.refresh = none.refresh,
            6 => plan.lifecycle = none.lifecycle,
            7 => plan.state = none.state,
            _ => {}
        }
        plan
    }

    /// Returns a mutated copy of the plan, for the scenario fuzzer.
    ///
    /// `draw(n)` must return a uniform value in `[0, n)`; the RNG comes
    /// in as a closure so this crate stays generator-agnostic. One
    /// active-or-chosen site is perturbed per call: its rate is scaled
    /// by a factor from {0, ½, ¾, 1¼} (clamped to `[0, 1]`) or its
    /// magnitude by {½, ¾, 1¼} — mutation never *raises* a magnitude
    /// cap beyond 1¼× per step, and callers clamp the result into their
    /// calibrated bounds afterwards.
    #[must_use]
    pub fn mutated(mut self, draw: &mut dyn FnMut(u64) -> u64) -> FaultPlan {
        fn rate(r: f64, pick: u64) -> f64 {
            let next = match pick {
                0 => 0.0,
                1 => r * 0.5,
                2 => r * 0.75,
                _ => (r * 1.25).max(0.01),
            };
            next.clamp(0.0, 1.0)
        }
        fn mag(m: u64, pick: u64) -> u64 {
            match pick {
                0 => m / 2,
                1 => m.saturating_mul(3) / 4,
                _ => m.saturating_mul(5) / 4,
            }
        }
        match draw(7) {
            0 => {
                if draw(2) == 0 {
                    self.pebs.drop_rate = rate(self.pebs.drop_rate, draw(4));
                    if self.pebs.drop_rate > 0.0 && self.pebs.burst_len == 0 {
                        self.pebs.burst_len = 32;
                    }
                } else {
                    self.pebs.corrupt_rate = rate(self.pebs.corrupt_rate, draw(4));
                }
            }
            1 => {
                self.counter.saturate_at = match (self.counter.saturate_at, draw(3)) {
                    (_, 0) => None,
                    (Some(s), p) => Some(mag(s, p)),
                    (None, _) => Some(32_768),
                };
            }
            2 => {
                if draw(2) == 0 {
                    self.translation.fail_rate = rate(self.translation.fail_rate, draw(4));
                } else {
                    self.translation.stale_rate = rate(self.translation.stale_rate, draw(4));
                }
            }
            3 => {
                self.interrupt.jitter_rate = rate(self.interrupt.jitter_rate, draw(4));
                if self.interrupt.jitter_rate > 0.0 && self.interrupt.max_jitter == 0 {
                    self.interrupt.max_jitter = 130_000;
                } else if self.interrupt.max_jitter > 0 {
                    self.interrupt.max_jitter = mag(self.interrupt.max_jitter, draw(3));
                }
            }
            4 => {
                self.service.preempt_rate = rate(self.service.preempt_rate, draw(4));
                if self.service.preempt_rate > 0.0 && self.service.max_delay == 0 {
                    self.service.max_delay = 650_000;
                } else if self.service.max_delay > 0 {
                    self.service.max_delay = mag(self.service.max_delay, draw(3));
                }
            }
            5 => {
                self.refresh.postpone_rate = rate(self.refresh.postpone_rate, draw(4));
                if self.refresh.postpone_rate > 0.0 && self.refresh.max_postpone == 0 {
                    self.refresh.max_postpone = 81_250;
                } else if self.refresh.max_postpone > 0 {
                    self.refresh.max_postpone = mag(self.refresh.max_postpone, draw(3));
                }
            }
            _ => {
                if draw(2) == 0 {
                    self.state.flip_rate = rate(self.state.flip_rate, draw(4));
                    if self.state.flip_rate > 0.0 && self.state.max_flips == 0 {
                        self.state.max_flips = 2;
                    }
                } else {
                    match draw(2) {
                        0 => {
                            self.state.correlated_rate = rate(self.state.correlated_rate, draw(4));
                        }
                        _ => {
                            self.state.scrub_race_rate = rate(self.state.scrub_race_rate, draw(4));
                        }
                    }
                }
            }
        }
        self
    }

    /// The stateless refresh-postponement parameters for the DRAM
    /// schedule, or `None` when disabled.
    #[must_use]
    pub fn refresh_postpone(&self) -> Option<RefreshPostpone> {
        if self.refresh.postpone_rate > 0.0 && self.refresh.max_postpone > 0 {
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            let permille = (self.refresh.postpone_rate.clamp(0.0, 1.0) * 1000.0).round() as u32;
            Some(RefreshPostpone {
                permille,
                max_postpone: self.refresh.max_postpone,
                seed: hash64(self.seed ^ 0x5e1f),
            })
        } else {
            None
        }
    }
}

/// The built-in fault scenarios exercised by the resilience suite.
///
/// Each maps to a [`FaultPlan`] via [`FaultScenario::plan`], scaled by an
/// intensity knob. Default intensities are calibrated so ANVIL (with
/// degraded mode available) still protects: e.g. preemption delays stay
/// well under the ~3 ms slack between detection (~12 ms) and the first
/// CLFLUSH-attack flip (~15 ms).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultScenario {
    /// No faults — the control arm.
    Baseline,
    /// Heavy PEBS debug-store overflow: bursts of dropped samples.
    PebsOverflow,
    /// Latency-skid corruption of sampled linear addresses.
    SampleCorruption,
    /// Delayed sampling interrupts jitter the stage boundaries.
    InterruptJitter,
    /// LLC-miss counter saturates above the stage-1 threshold.
    CounterSaturation,
    /// Pagemap walks fail or return stale frames.
    StaleTranslation,
    /// The detector thread is preempted past its service deadline.
    KernelPreemption,
    /// The memory controller postpones auto-refresh commands.
    RefreshPostponement,
    /// A mild mixture of all of the above.
    Combined,
}

impl FaultScenario {
    /// Every built-in scenario, in sweep order.
    pub const ALL: [FaultScenario; 9] = [
        FaultScenario::Baseline,
        FaultScenario::PebsOverflow,
        FaultScenario::SampleCorruption,
        FaultScenario::InterruptJitter,
        FaultScenario::CounterSaturation,
        FaultScenario::StaleTranslation,
        FaultScenario::KernelPreemption,
        FaultScenario::RefreshPostponement,
        FaultScenario::Combined,
    ];

    /// Stable `snake_case` name used in JSON output and CLI filters.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            FaultScenario::Baseline => "baseline",
            FaultScenario::PebsOverflow => "pebs_overflow",
            FaultScenario::SampleCorruption => "sample_corruption",
            FaultScenario::InterruptJitter => "interrupt_jitter",
            FaultScenario::CounterSaturation => "counter_saturation",
            FaultScenario::StaleTranslation => "stale_translation",
            FaultScenario::KernelPreemption => "kernel_preemption",
            FaultScenario::RefreshPostponement => "refresh_postponement",
            FaultScenario::Combined => "combined",
        }
    }

    /// Builds the scenario's [`FaultPlan`] at the given intensity
    /// (1.0 = the calibrated default; rates clamp at 1.0, magnitudes
    /// scale linearly) with the given campaign seed.
    #[must_use]
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    pub fn plan(&self, intensity: f64, seed: u64) -> FaultPlan {
        let intensity = intensity.max(0.0);
        let rate = |r: f64| (r * intensity).clamp(0.0, 1.0);
        let mag = |m: u64| {
            let scaled = (m as f64 * intensity).round();
            if scaled <= 0.0 {
                0
            } else {
                scaled as u64
            }
        };
        let mut plan = FaultPlan {
            seed,
            ..FaultPlan::none()
        };
        match self {
            FaultScenario::Baseline => {}
            FaultScenario::PebsOverflow => {
                plan.pebs.drop_rate = rate(0.02);
                plan.pebs.burst_len = 64;
            }
            FaultScenario::SampleCorruption => {
                plan.pebs.corrupt_rate = rate(0.35);
            }
            FaultScenario::InterruptJitter => {
                plan.interrupt.jitter_rate = rate(1.0);
                // ~0.1 ms at 2.6 GHz per jittered boundary.
                plan.interrupt.max_jitter = mag(260_000);
            }
            FaultScenario::CounterSaturation => {
                // Above the 20K stage-1 threshold so stage 2 still arms,
                // but far below real hammer-window miss counts.
                plan.counter.saturate_at = Some(32_768);
            }
            FaultScenario::StaleTranslation => {
                plan.translation.fail_rate = rate(0.25);
                plan.translation.stale_rate = rate(0.25);
            }
            FaultScenario::KernelPreemption => {
                plan.service.preempt_rate = rate(0.35);
                // ~0.5 ms at 2.6 GHz — inside the detection slack.
                plan.service.max_delay = mag(1_300_000);
            }
            FaultScenario::RefreshPostponement => {
                plan.refresh.postpone_rate = rate(0.5);
                // 8 × tREFI (~62 µs at 2.6 GHz) — DDR3's legal maximum.
                plan.refresh.max_postpone = mag(162_500);
            }
            FaultScenario::Combined => {
                plan.pebs.drop_rate = rate(0.005);
                plan.pebs.burst_len = 32;
                plan.pebs.corrupt_rate = rate(0.1);
                plan.translation.fail_rate = rate(0.1);
                plan.translation.stale_rate = rate(0.05);
                plan.interrupt.jitter_rate = rate(0.5);
                plan.interrupt.max_jitter = mag(130_000);
                plan.service.preempt_rate = rate(0.2);
                plan.service.max_delay = mag(650_000);
                plan.refresh.postpone_rate = rate(0.25);
                plan.refresh.max_postpone = mag(81_250);
            }
        }
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_plan_is_none() {
        let plan = FaultPlan::none();
        assert!(plan.is_none());
        assert!(plan.pebs_injector(FaultRng::new(0)).is_none());
        assert!(plan.translation_injector(FaultRng::new(0)).is_none());
        assert!(plan.interrupt_delay(FaultRng::new(0)).is_none());
        assert!(plan.service_delay(FaultRng::new(0)).is_none());
        assert!(plan.refresh_postpone().is_none());
        assert!(plan.state_injector(FaultRng::new(0)).is_none());
    }

    #[test]
    fn baseline_scenario_is_faultless() {
        assert!(FaultScenario::Baseline.plan(1.0, 7).is_none());
    }

    #[test]
    fn every_non_baseline_scenario_activates_something() {
        for sc in FaultScenario::ALL {
            if sc == FaultScenario::Baseline {
                continue;
            }
            assert!(!sc.plan(1.0, 7).is_none(), "{} inert", sc.name());
        }
    }

    #[test]
    fn zero_intensity_disables_rates() {
        for sc in FaultScenario::ALL {
            let plan = sc.plan(0.0, 7);
            // Counter saturation is a cap, not a rate; everything else
            // must vanish at intensity 0.
            if sc == FaultScenario::CounterSaturation {
                continue;
            }
            assert!(plan.is_none(), "{} active at intensity 0", sc.name());
        }
    }

    #[test]
    fn intensity_scales_rates_with_clamp() {
        let p = FaultScenario::StaleTranslation.plan(2.0, 7);
        assert!((p.translation.fail_rate - 0.5).abs() < 1e-12);
        let p = FaultScenario::InterruptJitter.plan(3.0, 7);
        assert!((p.interrupt.jitter_rate - 1.0).abs() < 1e-12);
        assert_eq!(p.interrupt.max_jitter, 780_000);
    }

    #[test]
    fn refresh_postpone_is_deterministic_and_bounded() {
        let plan = FaultScenario::RefreshPostponement.plan(1.0, 99);
        let pp = plan.refresh_postpone().unwrap();
        let mut postponed = 0u64;
        for cmd in 0..10_000u64 {
            let d = pp.delay_for(cmd);
            assert_eq!(d, pp.delay_for(cmd));
            assert!(d <= pp.max_postpone);
            if d > 0 {
                postponed += 1;
            }
        }
        // rate 0.5 → roughly half the commands postponed.
        assert!((4_000..=6_000).contains(&postponed), "{postponed}");
    }

    #[test]
    fn site_helpers_cover_every_site() {
        // The combined scenario plus lifecycle and counter faults
        // activates every site; clearing each one must deactivate
        // exactly it, and clearing all must yield the none plan.
        let mut plan = FaultScenario::Combined.plan(1.0, 3);
        plan.counter.saturate_at = Some(40_000);
        plan.lifecycle.crash_rate = 0.01;
        plan.state.flip_rate = 0.02;
        plan.state.max_flips = 2;
        assert_eq!(
            plan.active_sites(),
            (0..FaultPlan::SITE_NAMES.len()).collect::<Vec<_>>()
        );
        for idx in 0..FaultPlan::SITE_NAMES.len() {
            let cleared = plan.without_site(idx);
            assert!(!cleared.site_active(idx), "site {idx} survived clearing");
            for other in 0..FaultPlan::SITE_NAMES.len() {
                if other != idx {
                    assert!(
                        cleared.site_active(other),
                        "site {other} collaterally cleared"
                    );
                }
            }
        }
        let mut bare = plan;
        for idx in 0..FaultPlan::SITE_NAMES.len() {
            bare = bare.without_site(idx);
        }
        assert!(bare.is_none());
        // Out-of-range indices are inert.
        assert_eq!(plan.without_site(99), plan);
        assert!(!plan.site_active(99));
    }

    #[test]
    fn mutation_keeps_rates_in_unit_range() {
        let mut tick = 7u64;
        let mut plan = FaultScenario::Combined.plan(1.0, 3);
        for _ in 0..512 {
            let mut draw = |n: u64| {
                tick = tick.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
                (tick >> 33) % n.max(1)
            };
            plan = plan.mutated(&mut draw);
            for r in [
                plan.pebs.drop_rate,
                plan.pebs.corrupt_rate,
                plan.translation.fail_rate,
                plan.translation.stale_rate,
                plan.interrupt.jitter_rate,
                plan.service.preempt_rate,
                plan.refresh.postpone_rate,
                plan.state.flip_rate,
                plan.state.correlated_rate,
                plan.state.scrub_race_rate,
            ] {
                assert!((0.0..=1.0).contains(&r), "rate {r} escaped [0,1]");
            }
        }
    }

    #[test]
    fn plans_serialize_round_trip() {
        let plan = FaultScenario::Combined.plan(1.0, 1234);
        let json = serde_json::to_string(&plan).unwrap();
        let back: FaultPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(plan, back);
    }

    #[test]
    fn scenario_names_are_unique() {
        let mut names: Vec<_> = FaultScenario::ALL.iter().map(FaultScenario::name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), FaultScenario::ALL.len());
    }

    #[test]
    fn lifecycle_site_gates_its_injector_and_is_none() {
        let mut plan = FaultPlan::none();
        assert!(plan.lifecycle_injector(FaultRng::new(1).fork(5)).is_none());

        plan.lifecycle.crash_rate = 0.01;
        assert!(!plan.is_none());
        assert!(plan.lifecycle_injector(FaultRng::new(1).fork(5)).is_some());

        // A stall rate with a zero bound is inert, like the other sites.
        let mut stalled = FaultPlan::none();
        stalled.lifecycle.stall_rate = 0.5;
        assert!(stalled.is_none());
        assert!(stalled
            .lifecycle_injector(FaultRng::new(1).fork(5))
            .is_none());
        stalled.lifecycle.max_stall = 1_000;
        assert!(!stalled.is_none());
        assert!(stalled
            .lifecycle_injector(FaultRng::new(1).fork(5))
            .is_some());
    }

    #[test]
    fn state_site_gates_its_injector_and_is_none() {
        let mut plan = FaultPlan::none();
        assert!(plan.state_injector(FaultRng::new(1).fork(6)).is_none());

        // A flip rate with a zero flip budget is inert, like the other
        // rate-plus-magnitude sites.
        plan.state.flip_rate = 0.5;
        assert!(plan.is_none());
        assert!(plan.state_injector(FaultRng::new(1).fork(6)).is_none());

        plan.state.max_flips = 2;
        assert!(!plan.is_none());
        assert!(plan.state_injector(FaultRng::new(1).fork(6)).is_some());
    }

    #[test]
    fn plans_without_a_state_site_still_deserialize() {
        // A plan serialized before the state site existed carries no
        // `state` key; it must decode to the disabled default.
        let plan = FaultScenario::Combined.plan(1.0, 1234);
        let json = serde_json::to_string(&plan).unwrap();
        let legacy = json.replacen(
            ",\"state\":{\"flip_rate\":0.0,\"max_flips\":0,\"correlated_rate\":0.0,\"scrub_race_rate\":0.0}",
            "",
            1,
        );
        assert_ne!(legacy, json, "state key not found in encoding");
        let back: FaultPlan = serde_json::from_str(&legacy).unwrap();
        assert_eq!(back.state, StateCorruptionFaults::default());
        assert_eq!(back.pebs, plan.pebs);
    }

    #[test]
    fn plans_without_a_lifecycle_site_still_deserialize() {
        // A plan serialized before the lifecycle site existed carries no
        // `lifecycle` key; it must decode to the disabled default.
        let plan = FaultScenario::Combined.plan(1.0, 1234);
        let json = serde_json::to_string(&plan).unwrap();
        let legacy = json.replacen(
            ",\"lifecycle\":{\"crash_rate\":0.0,\"stall_rate\":0.0,\"max_stall\":0,\"corrupt_rate\":0.0}",
            "",
            1,
        );
        assert_ne!(legacy, json, "lifecycle key not found in encoding");
        let back: FaultPlan = serde_json::from_str(&legacy).unwrap();
        assert_eq!(back.lifecycle, LifecycleFaults::default());
        assert_eq!(back.pebs, plan.pebs);
    }
}
