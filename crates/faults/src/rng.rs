//! The deterministic random stream behind every injected fault.
//!
//! splitmix64 (Steele et al., "Fast splittable pseudorandom number
//! generators"): a counter-based generator whose streams can be *forked*
//! per fault site. Forking matters for reproducibility under refactoring:
//! each substrate consumes its own stream, so adding a draw in one
//! injector never perturbs the fault sequence of another.

/// splitmix64's finalizer: a cheap, well-distributed stateless hash.
///
/// Exposed because the stateless [`RefreshPostpone`](crate::RefreshPostpone)
/// derives per-command delays from it without carrying mutable state.
pub fn hash64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// A seeded, forkable splitmix64 stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultRng {
    state: u64,
}

impl FaultRng {
    /// Creates a stream from a seed. Distinct seeds give independent
    /// streams; the same seed always reproduces the same draws.
    pub fn new(seed: u64) -> Self {
        FaultRng {
            state: hash64(seed ^ 0x5eed_0ffa_u64.rotate_left(17)),
        }
    }

    /// Derives an independent stream for the fault site tagged `tag`,
    /// without consuming from this stream.
    #[must_use]
    pub fn fork(&self, tag: u64) -> Self {
        FaultRng {
            state: hash64(self.state ^ hash64(tag.wrapping_mul(0x9e37_79b9_7f4a_7c15))),
        }
    }

    /// The next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut x = self.state;
        x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        x ^ (x >> 31)
    }

    /// A uniform draw in `[0, n)`; returns 0 when `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            self.next_u64() % n
        }
    }

    /// A Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    ///
    /// `p <= 0` consumes nothing and returns `false`, so a disabled fault
    /// source leaves its stream untouched.
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            // Consume a draw anyway so intensity sweeps across 1.0 stay
            // aligned draw-for-draw.
            self.next_u64();
            return true;
        }
        // 53-bit mantissa: uniform in [0, 1).
        let u = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        u < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = FaultRng::new(7);
        let mut b = FaultRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = FaultRng::new(1);
        let mut b = FaultRng::new(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn forks_are_independent_and_deterministic() {
        let root = FaultRng::new(9);
        let mut f1 = root.fork(1);
        let mut f2 = root.fork(2);
        let mut f1_again = root.fork(1);
        assert_ne!(f1.next_u64(), f2.next_u64());
        let _ = f1_again.next_u64();
        // Forking never consumed from the root.
        assert_eq!(root, FaultRng::new(9));
    }

    #[test]
    fn chance_extremes() {
        let mut r = FaultRng::new(3);
        assert!(!r.chance(0.0));
        assert!(!r.chance(-1.0));
        assert!(r.chance(1.0));
        assert!(r.chance(2.0));
    }

    #[test]
    fn chance_tracks_probability() {
        let mut r = FaultRng::new(11);
        let hits = (0..10_000).filter(|_| r.chance(0.3)).count();
        assert!((2_600..=3_400).contains(&hits), "hits {hits}");
    }

    #[test]
    fn below_bounds() {
        let mut r = FaultRng::new(5);
        assert_eq!(r.below(0), 0);
        for _ in 0..1000 {
            assert!(r.below(17) < 17);
        }
    }

    #[test]
    fn hash64_is_stable() {
        // Pin the function so serialized plans keep meaning the same
        // fault sequence across versions.
        assert_eq!(hash64(0), 0xe220a8397b1dcdaf);
        assert_eq!(hash64(1), 0x910a2dec89025cc1);
    }
}
