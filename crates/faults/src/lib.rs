#![warn(missing_docs)]

//! # anvil-faults
//!
//! Deterministic, seeded fault injection for the ANVIL (ASPLOS 2016)
//! reproduction. ANVIL's protection guarantee rests on a measurement
//! pipeline that can silently lose inputs on real hardware: PEBS
//! debug-store buffers overflow, sampling interrupts are delayed by
//! interrupt-masked kernel sections, performance counters saturate,
//! software page-table walks race with remapping, and memory controllers
//! legally postpone auto-refresh commands (DDR3 allows up to 8 tREFI of
//! postponement). This crate models those imperfections so the detector's
//! behaviour under a degraded substrate can be evaluated — the point
//! `HammerSim` makes about simulators being the right place to study
//! mitigation failure modes.
//!
//! Every fault source is driven by a [`FaultRng`] stream forked from one
//! campaign seed, so a fault campaign is reproducible byte-for-byte:
//! the same seed and configuration produce the identical fault sequence,
//! and therefore the identical simulation.
//!
//! The pieces:
//!
//! * [`FaultPlan`] — a serializable description of every fault source's
//!   probability and magnitude; [`FaultPlan::none`] disables everything
//!   and is the default.
//! * [`FaultScenario`] — named built-in scenarios (PEBS overflow, sample
//!   corruption, interrupt jitter, counter saturation, stale translation,
//!   kernel preemption, refresh postponement, combined) with calibrated
//!   default intensities.
//! * Stateful injectors ([`PebsInjector`], [`TranslationInjector`],
//!   [`DelayInjector`]) that the substrates consult at the relevant
//!   points, plus the stateless [`RefreshPostpone`] that the DRAM
//!   refresh schedule folds into its lazy last-refresh arithmetic.
//! * [`CorrelatedFaults`] / [`CorrelatedInjector`] — machine-scoped
//!   fault domains for fleet campaigns: whole-node outages, PMU-loss
//!   episodes blinding every detector on the machine, and shared
//!   refresh-controller postponement hitting every DIMM on a channel.
//!
//! ## Quick start
//!
//! ```
//! use anvil_faults::{FaultPlan, FaultRng, FaultScenario, SampleFate};
//!
//! let plan: FaultPlan = FaultScenario::PebsOverflow.plan(1.0, 42);
//! let mut pebs = plan.pebs_injector(FaultRng::new(plan.seed).fork(1)).unwrap();
//! let fates: Vec<SampleFate> = (0..1000).map(|i| pebs.on_sample(i * 64)).collect();
//! assert!(fates.iter().any(|f| matches!(f, SampleFate::Drop)));
//! // The same plan and seed reproduce the same fates.
//! let mut again = plan.pebs_injector(FaultRng::new(plan.seed).fork(1)).unwrap();
//! assert_eq!(fates, (0..1000).map(|i| again.on_sample(i * 64)).collect::<Vec<_>>());
//! ```

mod correlated;
mod inject;
mod plan;
mod rng;

pub use correlated::{CorrelatedFaults, CorrelatedInjector};
pub use inject::{
    DelayInjector, LifecycleInjector, PebsInjector, SampleFate, ServiceDraws,
    StateCorruptionInjector, StateFlip, TranslationInjector,
};
pub use plan::{
    CounterFaults, FaultPlan, FaultScenario, InterruptFaults, LifecycleFaults, PebsFaults,
    RefreshFaults, RefreshPostpone, ServiceFaults, StateCorruptionFaults, TranslationFaults,
};
pub use rng::{hash64, FaultRng};
