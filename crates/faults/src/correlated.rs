//! Correlated fault domains: failures that hit many detectors at once.
//!
//! The per-detector lifecycle faults ([`LifecycleFaults`]) model
//! *independent* crashes, stalls, and checkpoint corruption. Production
//! fleets also fail in correlated ways: a kernel panic takes down every
//! detector on the node at the same instant, a PMU driver regression
//! blinds every domain sharing the machine's performance-monitoring
//! hardware, and a memory-controller firmware hiccup postpones the
//! auto-refresh of every DIMM behind one channel. These are the failure
//! modes that turn "one detector's downtime budget" into a fleet-risk
//! question, so they get their own injector with per-site forked
//! [`FaultRng`] streams — adding a draw to one site never perturbs the
//! schedule of another, and a fleet campaign replays byte-for-byte from
//! its seed.
//!
//! [`LifecycleFaults`]: crate::LifecycleFaults

use crate::rng::FaultRng;
use serde::{Deserialize, Serialize};

/// Stream tags for the correlated fault sites (distinct from the
/// per-detector lifecycle site tags so the streams never collide).
const OUTAGE_SITE: u64 = 0x101;
const PMU_SITE: u64 = 0x102;
const REFRESH_SITE_BASE: u64 = 0x180;

/// Intensities and episode lengths of the machine-scoped correlated
/// faults. All rates are per detector window; `none` disables every
/// source (and, because disabled draws consume nothing, leaves the
/// streams of enabled sources untouched).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CorrelatedFaults {
    /// Probability per window that the whole machine goes down (kernel
    /// panic, power event): every detector on the node stops, and so do
    /// its co-resident tenants — including the attacker VM.
    pub machine_outage_rate: f64,
    /// Length of a machine outage, in detector windows.
    pub outage_windows: u64,
    /// Probability per window that the machine's PMU hardware disappears
    /// (driver unload, virtualization fault): every domain's detector is
    /// blind until the episode ends.
    pub pmu_loss_rate: f64,
    /// Length of a PMU-loss episode, in detector windows.
    pub pmu_loss_windows: u64,
    /// Probability per refresh epoch, per channel, that the shared
    /// refresh controller postpones the epoch's auto-refresh for every
    /// DIMM on that channel (DDR3 legally allows up to 8 tREFI of
    /// postponement).
    pub refresh_delay_rate: f64,
    /// Extra windows a postponed refresh epoch lasts on the affected
    /// channel.
    pub refresh_delay_windows: u64,
    /// Probability per checkpoint write that the write tears: only a
    /// prefix of the bytes reaches stable storage (power loss mid-write).
    /// Consumed by [`LifecycleInjector::with_torn_writes`].
    ///
    /// [`LifecycleInjector::with_torn_writes`]: crate::LifecycleInjector::with_torn_writes
    pub torn_write_rate: f64,
}

impl CorrelatedFaults {
    /// Every correlated source disabled.
    #[must_use]
    pub fn none() -> Self {
        CorrelatedFaults {
            machine_outage_rate: 0.0,
            outage_windows: 0,
            pmu_loss_rate: 0.0,
            pmu_loss_windows: 0,
            refresh_delay_rate: 0.0,
            refresh_delay_windows: 0,
            torn_write_rate: 0.0,
        }
    }

    /// The fleet campaign's accelerated default intensities: outages and
    /// PMU losses are drawn orders of magnitude more often than real
    /// hardware fails, so a seconds-long simulated run still exercises
    /// every correlated path several times per machine.
    #[must_use]
    pub fn standard() -> Self {
        CorrelatedFaults {
            machine_outage_rate: 4e-4,
            outage_windows: 24,
            pmu_loss_rate: 4e-4,
            pmu_loss_windows: 12,
            refresh_delay_rate: 0.05,
            refresh_delay_windows: 1,
            torn_write_rate: 0.02,
        }
    }
}

/// Stateful injector for the machine-scoped correlated faults.
///
/// One instance serves one simulated machine. Each fault site draws from
/// its own forked stream in a fixed per-window order (outage, then PMU
/// loss, then one refresh draw per channel per epoch boundary), so a
/// machine's correlated schedule is a pure function of its seed.
#[derive(Debug, Clone)]
pub struct CorrelatedInjector {
    cfg: CorrelatedFaults,
    outage_rng: FaultRng,
    pmu_rng: FaultRng,
    refresh_rngs: Vec<FaultRng>,
    outages: u64,
    pmu_losses: u64,
    refresh_delays: u64,
}

impl CorrelatedInjector {
    /// Creates the injector for a machine with `channels` memory
    /// channels, forking one stream per fault site from `rng`.
    #[must_use]
    pub fn new(cfg: CorrelatedFaults, rng: &FaultRng, channels: u32) -> Self {
        CorrelatedInjector {
            cfg,
            outage_rng: rng.fork(OUTAGE_SITE),
            pmu_rng: rng.fork(PMU_SITE),
            refresh_rngs: (0..channels)
                .map(|c| rng.fork(REFRESH_SITE_BASE + u64::from(c)))
                .collect(),
            outages: 0,
            pmu_losses: 0,
            refresh_delays: 0,
        }
    }

    /// The configured intensities.
    #[must_use]
    pub fn config(&self) -> &CorrelatedFaults {
        &self.cfg
    }

    /// Draws whether a machine-wide outage starts this window.
    pub fn outage_starts(&mut self) -> bool {
        if self.outage_rng.chance(self.cfg.machine_outage_rate) {
            self.outages += 1;
            true
        } else {
            false
        }
    }

    /// Draws whether a PMU-loss episode starts this window.
    pub fn pmu_loss_starts(&mut self) -> bool {
        if self.pmu_rng.chance(self.cfg.pmu_loss_rate) {
            self.pmu_losses += 1;
            true
        } else {
            false
        }
    }

    /// Draws, at a refresh-epoch boundary, whether `channel`'s shared
    /// refresh controller postpones this epoch for every DIMM behind it.
    pub fn refresh_delayed(&mut self, channel: usize) -> bool {
        let Some(rng) = self.refresh_rngs.get_mut(channel) else {
            return false;
        };
        if rng.chance(self.cfg.refresh_delay_rate) {
            self.refresh_delays += 1;
            true
        } else {
            false
        }
    }

    /// Machine outages started so far.
    #[must_use]
    pub fn outages(&self) -> u64 {
        self.outages
    }

    /// PMU-loss episodes started so far.
    #[must_use]
    pub fn pmu_losses(&self) -> u64 {
        self.pmu_losses
    }

    /// Channel refresh postponements drawn so far.
    #[must_use]
    pub fn refresh_delays(&self) -> u64 {
        self.refresh_delays
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cranked() -> CorrelatedFaults {
        CorrelatedFaults {
            machine_outage_rate: 0.1,
            outage_windows: 5,
            pmu_loss_rate: 0.2,
            pmu_loss_windows: 3,
            refresh_delay_rate: 0.3,
            refresh_delay_windows: 1,
            torn_write_rate: 0.1,
        }
    }

    #[test]
    fn sites_draw_at_their_configured_rates() {
        let mut inj = CorrelatedInjector::new(cranked(), &FaultRng::new(7), 2);
        let mut outages = 0u64;
        let mut losses = 0u64;
        let mut delays = 0u64;
        for _ in 0..10_000 {
            if inj.outage_starts() {
                outages += 1;
            }
            if inj.pmu_loss_starts() {
                losses += 1;
            }
            for c in 0..2 {
                if inj.refresh_delayed(c) {
                    delays += 1;
                }
            }
        }
        assert_eq!(inj.outages(), outages);
        assert_eq!(inj.pmu_losses(), losses);
        assert_eq!(inj.refresh_delays(), delays);
        assert!((700..=1_300).contains(&outages), "{outages}");
        assert!((1_600..=2_400).contains(&losses), "{losses}");
        assert!((5_200..=6_800).contains(&delays), "{delays}");
    }

    #[test]
    fn disabled_sources_consume_nothing() {
        // A config with only PMU loss enabled must draw the same PMU
        // schedule as one with everything enabled: per-site forked
        // streams plus draw-free disabled sites.
        let everything = CorrelatedInjector::new(cranked(), &FaultRng::new(9), 1);
        let mut only_pmu_cfg = CorrelatedFaults::none();
        only_pmu_cfg.pmu_loss_rate = cranked().pmu_loss_rate;
        only_pmu_cfg.pmu_loss_windows = cranked().pmu_loss_windows;
        let only_pmu = CorrelatedInjector::new(only_pmu_cfg, &FaultRng::new(9), 1);
        let mut a = everything;
        let mut b = only_pmu;
        for _ in 0..2_000 {
            let _ = a.outage_starts();
            let _ = a.refresh_delayed(0);
            let _ = b.outage_starts();
            let _ = b.refresh_delayed(0);
            assert_eq!(a.pmu_loss_starts(), b.pmu_loss_starts());
        }
        assert_eq!(b.outages(), 0);
        assert_eq!(b.refresh_delays(), 0);
    }

    #[test]
    fn replays_identically_from_the_same_seed() {
        let mut a = CorrelatedInjector::new(cranked(), &FaultRng::new(21), 3);
        let mut b = CorrelatedInjector::new(cranked(), &FaultRng::new(21), 3);
        for w in 0..3_000usize {
            assert_eq!(a.outage_starts(), b.outage_starts(), "window {w}");
            assert_eq!(a.pmu_loss_starts(), b.pmu_loss_starts());
            assert_eq!(a.refresh_delayed(w % 3), b.refresh_delayed(w % 3));
        }
    }

    #[test]
    fn out_of_range_channel_never_delays() {
        let mut inj = CorrelatedInjector::new(cranked(), &FaultRng::new(4), 1);
        for _ in 0..100 {
            assert!(!inj.refresh_delayed(7));
        }
        assert_eq!(inj.refresh_delays(), 0);
    }
}
