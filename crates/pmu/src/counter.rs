//! Programmable event counters with overflow interrupts.
//!
//! Counters accumulate for the whole soak horizon, so every update in
//! this module must be saturating — the lint below makes unchecked
//! integer arithmetic a compile error (see `[workspace.lints]`).
#![deny(clippy::arithmetic_side_effects)]

use anvil_dram::Cycle;

/// One hardware event counter.
///
/// Mirrors the facility ANVIL uses for stage 1: "the last-level cache miss
/// counter facility that generates an interrupt after N misses. The count
/// is set such that if the miss interrupt arrives before the sample window
/// timer interrupt, we know that the miss threshold has been breached."
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Counter {
    value: u64,
    overflow_at: Option<u64>,
    overflowed: bool,
    last_overflow_cycle: Option<Cycle>,
    saturate_at: Option<u64>,
}

impl Counter {
    /// Creates a free-running counter (no interrupt).
    pub fn new() -> Self {
        Counter {
            value: 0,
            overflow_at: None,
            overflowed: false,
            last_overflow_cycle: None,
            saturate_at: None,
        }
    }

    /// Caps the counter value at `cap` counts (a fault model: a clipped
    /// or narrow counter that stops counting before its interrupt fires).
    /// `None` restores normal unbounded counting.
    pub fn set_saturation(&mut self, cap: Option<u64>) {
        self.saturate_at = cap;
    }

    /// Programs the counter to raise an interrupt when it reaches
    /// `threshold` counts from now, and clears it.
    pub fn arm(&mut self, threshold: u64) {
        self.value = 0;
        self.overflow_at = Some(threshold);
        self.overflowed = false;
    }

    /// Disarms the interrupt (the counter keeps counting).
    pub fn disarm(&mut self) {
        self.overflow_at = None;
        self.overflowed = false;
    }

    /// Current count.
    pub fn read(&self) -> u64 {
        self.value
    }

    /// Clears the count (and the overflow latch).
    pub fn clear(&mut self) {
        self.value = 0;
        self.overflowed = false;
    }

    /// Adds `n` events at time `now`; returns `true` the first time the
    /// armed threshold is crossed.
    pub fn add(&mut self, n: u64, now: Cycle) -> bool {
        self.value = self.value.saturating_add(n);
        if let Some(cap) = self.saturate_at {
            self.value = self.value.min(cap);
        }
        if let Some(t) = self.overflow_at {
            if !self.overflowed && self.value >= t {
                self.overflowed = true;
                self.last_overflow_cycle = Some(now);
                return true;
            }
        }
        false
    }

    /// Whether the armed threshold has been crossed since the last
    /// [`arm`](Self::arm)/[`clear`](Self::clear).
    pub fn overflowed(&self) -> bool {
        self.overflowed
    }

    /// Cycle of the most recent overflow, if any.
    pub fn last_overflow_cycle(&self) -> Option<Cycle> {
        self.last_overflow_cycle
    }
}

impl Default for Counter {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_without_interrupt() {
        let mut c = Counter::new();
        assert!(!c.add(100, 5));
        assert_eq!(c.read(), 100);
        assert!(!c.overflowed());
    }

    #[test]
    fn interrupt_fires_once_at_threshold() {
        let mut c = Counter::new();
        c.arm(10);
        assert!(!c.add(9, 1));
        assert!(c.add(1, 2));
        assert!(c.overflowed());
        assert_eq!(c.last_overflow_cycle(), Some(2));
        // Further counts do not re-raise until re-armed.
        assert!(!c.add(100, 3));
        c.arm(10);
        assert_eq!(c.read(), 0);
        assert!(c.add(15, 4));
    }

    #[test]
    fn saturation_caps_value_and_blocks_interrupt() {
        let mut c = Counter::new();
        c.set_saturation(Some(50));
        c.arm(100);
        assert!(!c.add(200, 1), "saturated counter must not overflow");
        assert_eq!(c.read(), 50);
        // A threshold at or below the cap still fires.
        c.arm(50);
        assert!(c.add(200, 2));
        // Clearing saturation restores normal behavior.
        c.set_saturation(None);
        c.arm(100);
        assert!(c.add(200, 3));
    }

    #[test]
    fn long_horizon_counts_saturate_instead_of_wrapping() {
        // A free-running counter fed bulk increments for millions of
        // windows must never wrap (a wrap would panic in debug builds
        // and silently reset the count in release).
        let mut c = Counter::new();
        c.add(u64::MAX - 10, 1);
        assert!(!c.add(u64::MAX, 2));
        assert_eq!(c.read(), u64::MAX);
        // Saturated counts still trip an armed threshold.
        let mut armed = Counter::new();
        armed.add(u64::MAX - 1, 1);
        armed.disarm();
        armed.overflow_at = Some(u64::MAX);
        assert!(armed.add(u64::MAX, 2));
    }

    #[test]
    fn disarm_stops_interrupts_but_not_counting() {
        let mut c = Counter::new();
        c.arm(5);
        c.disarm();
        assert!(!c.add(100, 1));
        assert_eq!(c.read(), 100);
    }
}
