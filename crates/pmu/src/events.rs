//! Performance-monitoring events, named after the Intel events ANVIL
//! programs (paper Section 3.3).

use anvil_cache::HitLevel;
use serde::{Deserialize, Serialize};

/// A countable PMU event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EventKind {
    /// `LONGEST_LAT_CACHE.MISS` — all last-level cache misses (loads and
    /// stores). Drives ANVIL's stage-1 miss-rate check.
    LongestLatCacheMiss,
    /// `MEM_LOAD_UOPS_MISC_RETIRED.LLC_MISS` — retired loads that missed
    /// the LLC. ANVIL compares this with the total to choose which
    /// sampling facility to arm.
    MemLoadUopsRetiredLlcMiss,
}

impl std::fmt::Display for EventKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            EventKind::LongestLatCacheMiss => "LONGEST_LAT_CACHE.MISS",
            EventKind::MemLoadUopsRetiredLlcMiss => "MEM_LOAD_UOPS_MISC_RETIRED.LLC_MISS",
        };
        f.write_str(s)
    }
}

/// Where a sampled memory operation's data came from — the PEBS record's
/// "data source" field, which ANVIL uses "to ensure the load is accessing
/// DRAM".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum DataSource {
    /// Served by the L1 data cache.
    L1,
    /// Served by the L2.
    L2,
    /// Served by the last-level cache.
    L3,
    /// Served by DRAM (an LLC miss).
    Dram,
}

impl DataSource {
    /// Whether the operation reached DRAM.
    pub fn is_dram(&self) -> bool {
        matches!(self, DataSource::Dram)
    }
}

impl From<HitLevel> for DataSource {
    fn from(level: HitLevel) -> Self {
        match level {
            HitLevel::L1 => DataSource::L1,
            HitLevel::L2 => DataSource::L2,
            HitLevel::L3 => DataSource::L3,
            HitLevel::Memory => DataSource::Dram,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_source_from_level() {
        assert_eq!(DataSource::from(HitLevel::Memory), DataSource::Dram);
        assert!(DataSource::from(HitLevel::Memory).is_dram());
        assert!(!DataSource::from(HitLevel::L3).is_dram());
    }

    #[test]
    fn event_names_match_intel_manual() {
        assert_eq!(
            EventKind::LongestLatCacheMiss.to_string(),
            "LONGEST_LAT_CACHE.MISS"
        );
    }
}
