#![warn(missing_docs)]

//! # anvil-pmu
//!
//! Performance-monitoring-unit model for the ANVIL (ASPLOS 2016)
//! reproduction. ANVIL is built entirely on existing Intel performance
//! counters; this crate provides their simulated equivalents:
//!
//! * event counters with interrupt-on-overflow
//!   (`LONGEST_LAT_CACHE.MISS`, `MEM_LOAD_UOPS_MISC_RETIRED.LLC_MISS`),
//! * the PEBS **Load Latency** facility (latency-thresholded load
//!   sampling), and
//! * the PEBS **Precise Store** facility (store sampling with data-source
//!   information).
//!
//! The platform feeds every retired memory operation to [`Pmu::observe_at`];
//! the detector in `anvil-core` arms counters and drains sample records
//! exactly as the kernel module does on real hardware.
//!
//! ## Quick start
//!
//! ```
//! use anvil_pmu::{EventKind, Pmu, SampleFilter, SamplerConfig};
//!
//! let mut pmu = Pmu::new(SamplerConfig::anvil_default());
//! pmu.counter_mut(EventKind::LongestLatCacheMiss).arm(20_000);
//! pmu.enable_sampling(SampleFilter::LoadsOnly, 0);
//! // ... the platform calls pmu.observe_at(op, now) per retired op ...
//! let _samples = pmu.drain_samples();
//! ```

mod counter;
mod events;
mod pmu;
mod sampling;

pub use counter::Counter;
pub use events::{DataSource, EventKind};
pub use pmu::{EpochSummary, Pmu, PmuEffect, RetiredOp};
pub use sampling::{SampleFilter, SampleRecord, Sampler, SamplerConfig};
