//! PEBS-style sampling facilities.
//!
//! Two facilities, mirroring the paper's Section 3.3:
//!
//! * **Load Latency** (`MEM_TRANS_RETIRED.LOAD_LATENCY`): probabilistically
//!   samples retired loads whose latency exceeds a programmable threshold.
//!   ANVIL sets the threshold to the LLC-miss latency so only DRAM-bound
//!   loads qualify.
//! * **Precise Store** (`MEM_TRANS_RETIRED.PRECISE_STORE`): samples retired
//!   stores; the record's data source reveals whether the store missed.
//!
//! Each sampled record carries the virtual address, data source, and
//! latency, and is appended to a debug-store buffer the kernel module
//! drains. Sampling is rate-limited (ANVIL uses 5000 samples/s ≈ 30
//! samples per 6 ms window) with deterministic jitter so the sampler does
//! not alias with periodic attack loops.

use crate::events::DataSource;
use anvil_dram::Cycle;
use anvil_faults::{PebsInjector, SampleFate};
use anvil_mem::AccessKind;
use serde::{Deserialize, Serialize};

/// One PEBS record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SampleRecord {
    /// Virtual address of the sampled operation.
    pub vaddr: u64,
    /// Process that issued it (from the interrupted context).
    pub pid: u32,
    /// Load or store.
    pub kind: AccessKind,
    /// Where the data came from.
    pub source: DataSource,
    /// Measured latency in cycles.
    pub latency: Cycle,
    /// Completion time.
    pub cycle: Cycle,
}

/// Sampler configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SamplerConfig {
    /// Minimum latency for a load to qualify (the load-latency facility's
    /// threshold register). Stores qualify regardless, as on real PEBS.
    pub latency_threshold: Cycle,
    /// Mean cycles between samples (rate limiting).
    pub interval: Cycle,
    /// Debug-store buffer capacity; overflowing samples are dropped (the
    /// drop count is reported).
    pub buffer_capacity: usize,
}

impl SamplerConfig {
    /// ANVIL's configuration at a 2.6 GHz clock: 5000 samples/s and a
    /// latency threshold just below DRAM latency.
    pub fn anvil_default() -> Self {
        SamplerConfig {
            latency_threshold: 100,
            interval: 520_000, // 2.6 GHz / 5000 per second
            buffer_capacity: 4096,
        }
    }
}

/// Which operations the sampler currently accepts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SampleFilter {
    /// Only the load-latency facility is armed.
    LoadsOnly,
    /// Only the precise-store facility is armed.
    StoresOnly,
    /// Both facilities are armed.
    LoadsAndStores,
}

impl SampleFilter {
    fn accepts(self, kind: AccessKind) -> bool {
        matches!(
            (self, kind),
            (SampleFilter::LoadsOnly, AccessKind::Read)
                | (SampleFilter::StoresOnly, AccessKind::Write)
                | (SampleFilter::LoadsAndStores, _)
        )
    }
}

/// The sampling engine: rate-limited, latency-filtered, jittered.
#[derive(Debug, Clone)]
pub struct Sampler {
    config: SamplerConfig,
    filter: SampleFilter,
    enabled: bool,
    next_sample_at: Cycle,
    buffer: Vec<SampleRecord>,
    dropped: u64,
    taken: u64,
    jitter_state: u64,
    faults: Option<PebsInjector>,
}

impl Sampler {
    /// Creates a disabled sampler.
    pub fn new(config: SamplerConfig) -> Self {
        Sampler {
            config,
            filter: SampleFilter::LoadsAndStores,
            enabled: false,
            next_sample_at: 0,
            buffer: Vec::new(),
            dropped: 0,
            taken: 0,
            jitter_state: 0x5eed_1234_abcd_ef01,
            faults: None,
        }
    }

    /// Installs (or clears) a PEBS fault injector. Injected drops are
    /// counted in [`samples_dropped`](Self::samples_dropped) alongside
    /// buffer-overflow drops, exactly as a wrapped debug-store buffer
    /// would present to software.
    pub fn set_fault_injector(&mut self, faults: Option<PebsInjector>) {
        self.faults = faults;
    }

    /// The installed fault injector, if any (for fault-campaign stats).
    pub fn fault_injector(&self) -> Option<&PebsInjector> {
        self.faults.as_ref()
    }

    /// The active configuration.
    pub fn config(&self) -> &SamplerConfig {
        &self.config
    }

    /// Arms the sampler with the given filter, starting at `now`.
    pub fn enable(&mut self, filter: SampleFilter, now: Cycle) {
        self.enabled = true;
        self.filter = filter;
        self.next_sample_at = now; // first qualifying op is sampled
    }

    /// Disarms the sampler (the buffer is kept until drained).
    pub fn disable(&mut self) {
        self.enabled = false;
    }

    /// Whether the sampler is armed.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Total samples taken (for the detector's overhead accounting: each
    /// sample costs a PEBS assist).
    pub fn samples_taken(&self) -> u64 {
        self.taken
    }

    /// Samples dropped to buffer overflow.
    pub fn samples_dropped(&self) -> u64 {
        self.dropped
    }

    /// The sample-spacing jitter stream's current state. Unlike the
    /// debug-store buffer (volatile), the stream position is part of the
    /// sampler's *programmed* state: a detector checkpoint carries it so
    /// a restored run draws the same sample-spacing sequence an
    /// uninterrupted one would.
    pub fn jitter_state(&self) -> u64 {
        self.jitter_state
    }

    /// Restores the sample-spacing jitter stream (checkpoint restore).
    pub fn set_jitter_state(&mut self, state: u64) {
        self.jitter_state = state;
    }

    fn jitter(&mut self) -> Cycle {
        let mut x = self.jitter_state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.jitter_state = x;
        // +/- 25% of the interval.
        let span = self.config.interval / 2;
        if span == 0 {
            return 0;
        }
        x.wrapping_mul(0x2545_f491_4f6c_dd1d) % span
    }

    /// Offers one retired memory operation to the sampler. Returns `true`
    /// if it was sampled (the caller charges the PEBS-assist cost).
    pub fn observe(
        &mut self,
        vaddr: u64,
        pid: u32,
        kind: AccessKind,
        source: DataSource,
        latency: Cycle,
        now: Cycle,
    ) -> bool {
        if !self.enabled || !self.filter.accepts(kind) {
            return false;
        }
        if matches!(kind, AccessKind::Read) && latency < self.config.latency_threshold {
            return false;
        }
        if now < self.next_sample_at {
            return false;
        }
        let jitter = self.jitter();
        self.next_sample_at = now + self.config.interval / 2 + jitter;
        self.taken = self.taken.saturating_add(1);
        let mut vaddr = vaddr;
        if let Some(inj) = self.faults.as_mut() {
            match inj.on_sample(vaddr) {
                SampleFate::Keep => {}
                SampleFate::Drop => {
                    self.dropped = self.dropped.saturating_add(1);
                    return true;
                }
                SampleFate::Corrupt(skewed) => vaddr = skewed,
            }
        }
        if self.buffer.len() >= self.config.buffer_capacity {
            self.dropped = self.dropped.saturating_add(1);
            return true;
        }
        self.buffer.push(SampleRecord {
            vaddr,
            pid,
            kind,
            source,
            latency,
            cycle: now,
        });
        true
    }

    /// Drains the debug-store buffer.
    pub fn drain(&mut self) -> Vec<SampleRecord> {
        std::mem::take(&mut self.buffer)
    }

    /// Drains the debug-store buffer into `out` (cleared first). Both the
    /// internal buffer and `out` keep their capacity, so a detector that
    /// drains every stage-2 window reuses the same two allocations for
    /// the whole run instead of regrowing a fresh `Vec` each time.
    pub fn drain_into(&mut self, out: &mut Vec<SampleRecord>) {
        out.clear();
        out.append(&mut self.buffer);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sampler() -> Sampler {
        let mut s = Sampler::new(SamplerConfig {
            latency_threshold: 100,
            interval: 1000,
            buffer_capacity: 64,
        });
        s.enable(SampleFilter::LoadsAndStores, 0);
        s
    }

    #[test]
    fn disabled_sampler_takes_nothing() {
        let mut s = Sampler::new(SamplerConfig::anvil_default());
        assert!(!s.observe(1, 1, AccessKind::Read, DataSource::Dram, 200, 0));
        assert!(s.drain().is_empty());
    }

    #[test]
    fn latency_threshold_filters_fast_loads() {
        let mut s = sampler();
        assert!(!s.observe(1, 1, AccessKind::Read, DataSource::L2, 12, 0));
        assert!(s.observe(2, 1, AccessKind::Read, DataSource::Dram, 200, 0));
        let records = s.drain();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].vaddr, 2);
    }

    #[test]
    fn stores_ignore_latency_threshold() {
        let mut s = sampler();
        assert!(s.observe(3, 1, AccessKind::Write, DataSource::L1, 2, 0));
    }

    #[test]
    fn filter_loads_only() {
        let mut s = sampler();
        s.enable(SampleFilter::LoadsOnly, 0);
        assert!(!s.observe(1, 1, AccessKind::Write, DataSource::Dram, 200, 0));
        assert!(s.observe(1, 1, AccessKind::Read, DataSource::Dram, 200, 0));
    }

    #[test]
    fn rate_limit_spaces_samples() {
        let mut s = sampler();
        let mut taken = 0;
        for t in 0..10_000u64 {
            if s.observe(t, 1, AccessKind::Read, DataSource::Dram, 200, t) {
                taken += 1;
            }
        }
        // interval 1000 over 10_000 cycles: about 10-20 samples given the
        // half-interval + jitter schedule; definitely not thousands.
        assert!((5..=30).contains(&taken), "taken {taken}");
    }

    #[test]
    fn average_rate_tracks_interval() {
        let mut s = Sampler::new(SamplerConfig {
            latency_threshold: 0,
            interval: 520_000,
            buffer_capacity: 1 << 16,
        });
        s.enable(SampleFilter::LoadsOnly, 0);
        // Offer a qualifying load every 400 cycles for 15.6 M cycles (6 ms
        // at 2.6 GHz): ANVIL expects ~30 samples.
        let mut t = 0u64;
        while t < 15_600_000 {
            s.observe(t, 1, AccessKind::Read, DataSource::Dram, 200, t);
            t += 400;
        }
        let n = s.drain().len();
        assert!((20..=45).contains(&n), "got {n} samples, want ~30");
    }

    #[test]
    fn fault_injector_drops_count_as_dropped() {
        use anvil_faults::{FaultPlan, FaultRng, FaultScenario};
        let mut s = Sampler::new(SamplerConfig {
            latency_threshold: 0,
            interval: 0,
            buffer_capacity: 1 << 16,
        });
        let plan: FaultPlan = FaultScenario::PebsOverflow.plan(1.0, 7);
        s.set_fault_injector(plan.pebs_injector(FaultRng::new(plan.seed).fork(1)));
        s.enable(SampleFilter::LoadsOnly, 0);
        for t in 0..10_000u64 {
            s.observe(t * 64, 1, AccessKind::Read, DataSource::Dram, 200, t);
        }
        let buffered = s.drain().len() as u64;
        assert!(s.samples_dropped() > 0, "overflow scenario dropped nothing");
        assert_eq!(s.samples_taken(), buffered + s.samples_dropped());
    }

    #[test]
    fn fault_injector_corruption_skews_addresses() {
        use anvil_faults::{FaultPlan, FaultRng, FaultScenario};
        let mut s = Sampler::new(SamplerConfig {
            latency_threshold: 0,
            interval: 0,
            buffer_capacity: 1 << 16,
        });
        let plan: FaultPlan = FaultScenario::SampleCorruption.plan(1.0, 7);
        s.set_fault_injector(plan.pebs_injector(FaultRng::new(plan.seed).fork(1)));
        s.enable(SampleFilter::LoadsOnly, 0);
        for t in 0..1_000u64 {
            s.observe(t * 64, 1, AccessKind::Read, DataSource::Dram, 200, t);
        }
        let records = s.drain();
        let skewed = records.iter().filter(|r| r.vaddr != r.cycle * 64).count();
        assert!(skewed > 0, "corruption scenario corrupted nothing");
        assert_eq!(
            s.fault_injector().unwrap().corruptions(),
            skewed as u64,
            "corruption counter tracks skewed records"
        );
    }

    #[test]
    fn buffer_overflow_drops_and_counts() {
        let mut s = Sampler::new(SamplerConfig {
            latency_threshold: 0,
            interval: 0,
            buffer_capacity: 4,
        });
        s.enable(SampleFilter::LoadsOnly, 0);
        for t in 0..10u64 {
            s.observe(t, 1, AccessKind::Read, DataSource::Dram, 200, t);
        }
        assert_eq!(s.drain().len(), 4);
        assert_eq!(s.samples_dropped(), 6);
        assert_eq!(s.samples_taken(), 10);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// The sampler's buffer never exceeds its capacity, the taken
        /// counter equals buffered + dropped, and disabled samplers take
        /// nothing — for arbitrary qualifying streams.
        #[test]
        fn accounting_invariants(
            ops in prop::collection::vec((0u64..1_000_000, any::<bool>(), 0u64..400), 1..300),
            cap in 1usize..16,
            interval in 0u64..2_000,
        ) {
            let mut s = Sampler::new(SamplerConfig {
                latency_threshold: 100,
                interval,
                buffer_capacity: cap,
            });
            s.enable(SampleFilter::LoadsAndStores, 0);
            let mut t = 0u64;
            for &(vaddr, store, latency) in &ops {
                t += 50;
                let kind = if store { AccessKind::Write } else { AccessKind::Read };
                s.observe(vaddr, 1, kind, DataSource::Dram, latency, t);
            }
            let buffered = s.drain().len() as u64;
            prop_assert!(buffered <= cap as u64);
            prop_assert_eq!(s.samples_taken(), buffered + s.samples_dropped());
        }

        /// Loads strictly below the latency threshold are never sampled.
        #[test]
        fn latency_threshold_is_strict(lat in 0u64..100) {
            let mut s = Sampler::new(SamplerConfig {
                latency_threshold: 100,
                interval: 0,
                buffer_capacity: 8,
            });
            s.enable(SampleFilter::LoadsOnly, 0);
            prop_assert!(!s.observe(1, 1, AccessKind::Read, DataSource::L3, lat, 5));
        }
    }
}
