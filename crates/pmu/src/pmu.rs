//! The performance monitoring unit: counters + sampling behind one
//! `observe` call per retired memory operation.

use crate::counter::Counter;
use crate::events::{DataSource, EventKind};
use crate::sampling::{SampleFilter, SampleRecord, Sampler, SamplerConfig};
use anvil_dram::Cycle;
use anvil_faults::PebsInjector;
use anvil_mem::{AccessKind, AccessOutcome};

/// One epoch's aggregate counter traffic, accumulated in closed form by
/// the event-driven engine instead of one [`Pmu::observe_at`] call per
/// op. See [`Pmu::observe_epoch`] for the validity conditions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EpochSummary {
    /// LLC misses to charge to `LONGEST_LAT_CACHE.MISS`.
    pub llc_misses: u64,
    /// LLC-missing loads to charge to
    /// `MEM_LOAD_UOPS_MISC_RETIRED.LLC_MISS`.
    pub llc_miss_loads: u64,
    /// The cycle the epoch's traffic is attributed to (only observable
    /// through an armed counter's overflow edge, which the closed form
    /// excludes — kept for the fallback boundary's bookkeeping).
    pub at: u64,
}

/// A retired memory operation as seen by the PMU: the architectural
/// outcome plus the software context (virtual address and pid) that PEBS
/// records capture.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetiredOp {
    /// Virtual address the instruction accessed.
    pub vaddr: u64,
    /// Issuing process.
    pub pid: u32,
    /// The memory system's view of the access.
    pub outcome: AccessOutcome,
}

/// The PMU of the simulated core.
///
/// # Examples
///
/// ```
/// use anvil_pmu::{EventKind, Pmu, SamplerConfig};
///
/// let mut pmu = Pmu::new(SamplerConfig::anvil_default());
/// pmu.counter_mut(EventKind::LongestLatCacheMiss).arm(20_000);
/// assert_eq!(pmu.counter(EventKind::LongestLatCacheMiss).read(), 0);
/// ```
#[derive(Debug)]
pub struct Pmu {
    llc_miss: Counter,
    llc_miss_loads: Counter,
    sampler: Sampler,
    interrupts: u64,
}

impl Pmu {
    /// Creates a PMU with the given sampling configuration; counters
    /// free-run, sampling starts disabled.
    pub fn new(sampling: SamplerConfig) -> Self {
        Pmu {
            llc_miss: Counter::new(),
            llc_miss_loads: Counter::new(),
            sampler: Sampler::new(sampling),
            interrupts: 0,
        }
    }

    /// Read-only access to a counter.
    pub fn counter(&self, event: EventKind) -> &Counter {
        match event {
            EventKind::LongestLatCacheMiss => &self.llc_miss,
            EventKind::MemLoadUopsRetiredLlcMiss => &self.llc_miss_loads,
        }
    }

    /// Mutable access to a counter (to arm/clear it).
    pub fn counter_mut(&mut self, event: EventKind) -> &mut Counter {
        match event {
            EventKind::LongestLatCacheMiss => &mut self.llc_miss,
            EventKind::MemLoadUopsRetiredLlcMiss => &mut self.llc_miss_loads,
        }
    }

    /// Bulk-advances the counters for one epoch of LLC-missing traffic
    /// in closed form — the event-driven engine's alternative to feeding
    /// `epoch.misses` individual ops through [`observe_at`].
    ///
    /// Observationally identical to per-op counting **only while the
    /// counters are unarmed and sampling is off or the epoch carries no
    /// sampleable ops**: an armed counter's overflow edge and the PEBS
    /// sample spacing both depend on individual op timestamps, which an
    /// aggregate cannot reconstruct. Callers (the epoch-skipping soak
    /// engine) fall back to per-op observation whenever either facility
    /// is live; `DESIGN.md` §16 records the rule.
    ///
    /// [`observe_at`]: Self::observe_at
    pub fn observe_epoch(&mut self, epoch: &EpochSummary) {
        self.llc_miss.add(epoch.llc_misses, epoch.at);
        self.llc_miss_loads.add(epoch.llc_miss_loads, epoch.at);
    }

    /// The sampling engine.
    pub fn sampler(&self) -> &Sampler {
        &self.sampler
    }

    /// Mutable access to the sampling engine (checkpoint restore needs to
    /// re-seed the sample-spacing jitter stream).
    pub fn sampler_mut(&mut self) -> &mut Sampler {
        &mut self.sampler
    }

    /// Installs (or clears) a PEBS fault injector on the sampler.
    pub fn set_fault_injector(&mut self, faults: Option<PebsInjector>) {
        self.sampler.set_fault_injector(faults);
    }

    /// Caps every event counter at `cap` counts (counter-saturation
    /// fault); `None` restores unbounded counting.
    pub fn set_counter_saturation(&mut self, cap: Option<u64>) {
        self.llc_miss.set_saturation(cap);
        self.llc_miss_loads.set_saturation(cap);
    }

    /// Arms PEBS sampling with `filter`, starting at `now`.
    pub fn enable_sampling(&mut self, filter: SampleFilter, now: Cycle) {
        self.sampler.enable(filter, now);
    }

    /// Disarms PEBS sampling.
    pub fn disable_sampling(&mut self) {
        self.sampler.disable();
    }

    /// Drains the PEBS buffer.
    pub fn drain_samples(&mut self) -> Vec<SampleRecord> {
        self.sampler.drain()
    }

    /// Drains the PEBS buffer into `out` (cleared first), preserving both
    /// allocations — see [`Sampler::drain_into`].
    pub fn drain_samples_into(&mut self, out: &mut Vec<SampleRecord>) {
        self.sampler.drain_into(out);
    }

    /// Total counter-overflow interrupts raised (for overhead accounting).
    pub fn interrupts_raised(&self) -> u64 {
        self.interrupts
    }

    /// Total PEBS samples taken (each costs a microcode assist).
    pub fn samples_taken(&self) -> u64 {
        self.sampler.samples_taken()
    }

    /// Feeds one retired memory operation completing at `now`. Returns
    /// what the hardware did (interrupt raised? sample taken?) so the
    /// platform can charge the corresponding costs.
    pub fn observe_at(&mut self, op: &RetiredOp, now: Cycle) -> PmuEffect {
        let mut effect = PmuEffect::default();
        if op.outcome.llc_miss() {
            if self.llc_miss.add(1, now) {
                effect.interrupt = Some(EventKind::LongestLatCacheMiss);
                self.interrupts = self.interrupts.saturating_add(1);
            }
            if matches!(op.outcome.kind, AccessKind::Read) && self.llc_miss_loads.add(1, now) {
                effect.interrupt = Some(EventKind::MemLoadUopsRetiredLlcMiss);
                self.interrupts = self.interrupts.saturating_add(1);
            }
        }
        effect.sampled = self.sampler.observe(
            op.vaddr,
            op.pid,
            op.outcome.kind,
            DataSource::from(op.outcome.level),
            op.outcome.advance,
            now,
        );
        effect
    }
}

/// What the PMU did in response to one retired operation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PmuEffect {
    /// A counter crossed its armed threshold.
    pub interrupt: Option<EventKind>,
    /// A PEBS sample was recorded (costs a microcode assist).
    pub sampled: bool,
}

impl PmuEffect {
    /// Whether anything happened that costs CPU time.
    pub fn any(&self) -> bool {
        self.interrupt.is_some() || self.sampled
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anvil_cache::HitLevel;

    fn op(level: HitLevel, kind: AccessKind, advance: u64) -> RetiredOp {
        RetiredOp {
            vaddr: 0x1000,
            pid: 7,
            outcome: AccessOutcome {
                paddr: 0x2000,
                kind,
                level,
                advance,
                dram: None,
            },
        }
    }

    #[test]
    fn miss_counter_counts_only_llc_misses() {
        let mut pmu = Pmu::new(SamplerConfig::anvil_default());
        pmu.observe_at(&op(HitLevel::L1, AccessKind::Read, 2), 0);
        pmu.observe_at(&op(HitLevel::L3, AccessKind::Read, 9), 10);
        pmu.observe_at(&op(HitLevel::Memory, AccessKind::Read, 180), 20);
        pmu.observe_at(&op(HitLevel::Memory, AccessKind::Write, 180), 30);
        assert_eq!(pmu.counter(EventKind::LongestLatCacheMiss).read(), 2);
        assert_eq!(pmu.counter(EventKind::MemLoadUopsRetiredLlcMiss).read(), 1);
    }

    #[test]
    fn armed_counter_raises_interrupt() {
        let mut pmu = Pmu::new(SamplerConfig::anvil_default());
        pmu.counter_mut(EventKind::LongestLatCacheMiss).arm(3);
        let mut fired = 0;
        for t in 0..5u64 {
            let e = pmu.observe_at(&op(HitLevel::Memory, AccessKind::Read, 180), t);
            if e.interrupt == Some(EventKind::LongestLatCacheMiss) {
                fired += 1;
            }
        }
        assert_eq!(fired, 1, "interrupt exactly once per arm");
        assert_eq!(pmu.interrupts_raised(), 1);
    }

    #[test]
    fn sampling_records_dram_loads() {
        let mut pmu = Pmu::new(SamplerConfig::anvil_default());
        pmu.enable_sampling(SampleFilter::LoadsOnly, 0);
        let e = pmu.observe_at(&op(HitLevel::Memory, AccessKind::Read, 180), 0);
        assert!(e.sampled);
        let records = pmu.drain_samples();
        assert_eq!(records.len(), 1);
        assert!(records[0].source.is_dram());
        assert_eq!(records[0].pid, 7);
    }

    #[test]
    fn l1_hits_never_sampled_as_loads() {
        let mut pmu = Pmu::new(SamplerConfig::anvil_default());
        pmu.enable_sampling(SampleFilter::LoadsOnly, 0);
        let e = pmu.observe_at(&op(HitLevel::L1, AccessKind::Read, 2), 0);
        assert!(!e.sampled);
    }
}
