//! Eviction-set construction (paper Section 2.2).
//!
//! "We create an eviction set by first picking the aggressor address and
//! then using its physical address to find 12 more addresses with matching
//! cache set mappings ... Conflicting addresses will have the same cache
//! slice and cache set bits."

use crate::error::AttackError;
use anvil_cache::CacheHierarchy;
use anvil_mem::{PagemapPolicy, Process, PAGE_SIZE};

/// A set of virtual addresses that all map to the same LLC slice and set
/// as the target.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EvictionSet {
    /// The aggressor address the set evicts.
    pub target_va: u64,
    /// Conflicting addresses (as many as the LLC has ways).
    pub conflict_vas: Vec<u64>,
}

impl EvictionSet {
    /// Number of conflict addresses.
    pub fn len(&self) -> usize {
        self.conflict_vas.len()
    }

    /// Whether the set has no conflicts.
    pub fn is_empty(&self) -> bool {
        self.conflict_vas.is_empty()
    }
}

/// Builds an eviction set of `ways` conflicts for `target_va` from the
/// attacker's arena, translating candidates through pagemap and matching
/// the (reverse-engineered) slice and set mapping of `hierarchy`.
///
/// # Errors
///
/// * [`AttackError::PagemapDenied`] under a restricted pagemap policy —
///   this is precisely why the Linux pagemap hardening hampers (but does
///   not stop; see the paper's discussion of side-channel alternatives)
///   the CLFLUSH-free attack.
/// * [`AttackError::EvictionSetTooSmall`] when the arena lacks enough
///   same-slice/same-set lines.
pub fn build_eviction_set(
    process: &Process,
    pagemap: PagemapPolicy,
    hierarchy: &CacheHierarchy,
    arena_va: u64,
    arena_len: u64,
    target_va: u64,
) -> Result<EvictionSet, AttackError> {
    let ways = hierarchy.llc_ways();
    let target_pa = process
        .pagemap(target_va, pagemap)?
        .expect("target must be mapped");
    let target_key = hierarchy.llc_set_of(target_pa);
    let target_line = target_pa & !63;

    let line_bytes = 64u64;
    let lines_per_page = PAGE_SIZE / line_bytes;
    // Within any page, only lines whose set index matches the target can
    // conflict; compute them directly instead of scanning every line.
    let mut conflicts = Vec::with_capacity(ways);
    let mut va = arena_va;
    'pages: while va < arena_va + arena_len {
        if let Some(page_pa) = process.pagemap(va, pagemap)? {
            for i in 0..lines_per_page {
                let pa = page_pa + i * line_bytes;
                if pa & !63 == target_line {
                    continue;
                }
                if hierarchy.llc_set_of(pa) == target_key {
                    conflicts.push(va + i * line_bytes);
                    if conflicts.len() == ways {
                        break 'pages;
                    }
                }
            }
        }
        va += PAGE_SIZE;
    }

    if conflicts.len() < ways {
        return Err(AttackError::EvictionSetTooSmall {
            found: conflicts.len(),
            needed: ways,
        });
    }
    Ok(EvictionSet {
        target_va,
        conflict_vas: conflicts,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use anvil_cache::HierarchyConfig;
    use anvil_mem::{AllocationPolicy, FrameAllocator};

    fn setup() -> (Process, CacheHierarchy, u64, u64) {
        let hierarchy = CacheHierarchy::new(HierarchyConfig::sandy_bridge_i5_2540m());
        let mut frames = FrameAllocator::new(1 << 30, AllocationPolicy::Contiguous);
        let mut p = Process::new(1, "attacker");
        let len = 16 << 20;
        let va = p.mmap(len, &mut frames).unwrap();
        (p, hierarchy, va, len)
    }

    #[test]
    fn builds_full_set_with_matching_slice_and_set() {
        let (p, h, va, len) = setup();
        let target = va + 4096 + 128;
        let set = build_eviction_set(&p, PagemapPolicy::Open, &h, va, len, target).unwrap();
        assert_eq!(set.len(), h.llc_ways());
        let target_key = h.llc_set_of(p.translate(target).unwrap());
        for &c in &set.conflict_vas {
            let pa = p.translate(c).unwrap();
            assert_eq!(h.llc_set_of(pa), target_key, "conflict in wrong set");
            assert_ne!(pa & !63, p.translate(target).unwrap() & !63);
        }
    }

    #[test]
    fn conflicts_are_distinct_lines() {
        let (p, h, va, len) = setup();
        let target = va;
        let set = build_eviction_set(&p, PagemapPolicy::Open, &h, va, len, target).unwrap();
        let mut lines: Vec<u64> = set
            .conflict_vas
            .iter()
            .map(|&c| p.translate(c).unwrap() & !63)
            .collect();
        lines.sort();
        lines.dedup();
        assert_eq!(lines.len(), set.len());
    }

    #[test]
    fn restricted_pagemap_denies() {
        let (p, h, va, len) = setup();
        let err = build_eviction_set(&p, PagemapPolicy::Restricted, &h, va, len, va).unwrap_err();
        assert_eq!(err, AttackError::PagemapDenied);
    }

    #[test]
    fn small_arena_reports_shortfall() {
        let h = CacheHierarchy::new(HierarchyConfig::sandy_bridge_i5_2540m());
        let mut frames = FrameAllocator::new(1 << 30, AllocationPolicy::Contiguous);
        let mut p = Process::new(1, "a");
        // 256 KB arena: roughly 2 candidates per slice-set out of 12 needed.
        let len = 256 << 10;
        let va = p.mmap(len, &mut frames).unwrap();
        match build_eviction_set(&p, PagemapPolicy::Open, &h, va, len, va) {
            Err(AttackError::EvictionSetTooSmall { found, needed }) => {
                assert!(found < needed);
                assert_eq!(needed, 12);
            }
            other => panic!("expected shortfall, got {other:?}"),
        }
    }

    #[test]
    fn eviction_set_actually_evicts_through_the_hierarchy() {
        let (p, mut h, va, len) = setup();
        let target = va + 64;
        let set = build_eviction_set(&p, PagemapPolicy::Open, &h, va, len, target).unwrap();
        let target_pa = p.translate(target).unwrap();
        // Load target, then touch every conflict: inclusion forces the
        // target out of the whole hierarchy.
        h.access(target_pa, false);
        assert!(h.llc_probe(target_pa));
        for &c in &set.conflict_vas {
            h.access(p.translate(c).unwrap(), false);
        }
        assert!(
            !h.llc_probe(target_pa),
            "touching a full eviction set must evict the target"
        );
    }
}
