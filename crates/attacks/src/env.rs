//! The attack's view of the machine, and the operation vocabulary shared
//! with the platform runner.

use anvil_mem::{AccessKind, AccessOutcome, FrameAllocator, MemorySystem, PagemapPolicy, Process};

/// Everything an unprivileged attacker program can touch: its own process,
/// the machine's memory system, and (policy permitting) the pagemap
/// interface.
#[derive(Debug)]
pub struct AttackEnv<'a> {
    /// The machine.
    pub sys: &'a mut MemorySystem,
    /// The attacker's process.
    pub process: &'a mut Process,
    /// The kernel's frame allocator (used indirectly through `mmap`).
    pub frames: &'a mut FrameAllocator,
    /// Whether `/proc/pagemap` is readable from user space.
    pub pagemap: PagemapPolicy,
}

/// One step of an attack program. Unlike plain workloads, attacks may
/// issue CLFLUSH.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttackOp {
    /// A load or store to a virtual address.
    Access {
        /// Virtual address in the attacker's address space.
        vaddr: u64,
        /// Load or store.
        kind: AccessKind,
    },
    /// CLFLUSH of the line containing a virtual address.
    Clflush {
        /// Virtual address in the attacker's address space.
        vaddr: u64,
    },
    /// Pure compute (loop overhead).
    Compute {
        /// Cycles of non-memory work.
        cycles: u64,
    },
}

/// Executes one [`AttackOp`] directly against the memory system (used by
/// the standalone runner; the platform in `anvil-core` has its own
/// instrumented execution path).
///
/// Returns the access outcome for `Access` ops, `None` otherwise.
///
/// # Panics
///
/// Panics if an `Access`/`Clflush` virtual address is unmapped — attack
/// programs only emit addresses they mapped in `prepare`.
pub fn exec_op(op: AttackOp, process: &Process, sys: &mut MemorySystem) -> Option<AccessOutcome> {
    match op {
        AttackOp::Access { vaddr, kind } => {
            let paddr = process
                .translate(vaddr)
                .unwrap_or_else(|| panic!("attack accessed unmapped va {vaddr:#x}"));
            Some(sys.access(paddr, kind))
        }
        AttackOp::Clflush { vaddr } => {
            let paddr = process
                .translate(vaddr)
                .unwrap_or_else(|| panic!("attack flushed unmapped va {vaddr:#x}"));
            sys.clflush(paddr);
            None
        }
        AttackOp::Compute { cycles } => {
            sys.advance(cycles);
            None
        }
    }
}

/// An attack program: set up in `prepare`, then an endless hammer loop.
pub trait Attack: std::fmt::Debug {
    /// Attack name as used in the paper's tables (e.g.
    /// `"double-sided-clflush"`).
    fn name(&self) -> &str;

    /// Maps memory, locates aggressor/victim rows, builds eviction sets.
    /// Must be called once before [`next_op`](Self::next_op).
    ///
    /// # Errors
    ///
    /// Returns an [`AttackError`](crate::AttackError) when the environment
    /// denies a required capability (pagemap, memory) or the arena lacks
    /// usable aggressor rows.
    fn prepare(&mut self, env: &mut AttackEnv<'_>) -> Result<(), crate::AttackError>;

    /// The next step of the hammer loop.
    ///
    /// # Panics
    ///
    /// Panics if called before a successful [`prepare`](Self::prepare).
    fn next_op(&mut self) -> AttackOp;

    /// Physical addresses of the aggressor rows being hammered (one
    /// representative address per row). Empty before `prepare`.
    fn aggressor_paddrs(&self) -> Vec<u64>;

    /// Physical addresses of the victim rows (one representative address
    /// per row). Empty before `prepare`.
    fn victim_paddrs(&self) -> Vec<u64>;
}
