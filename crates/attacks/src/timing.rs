//! Timing side channels: attack construction without `/proc/pagemap`.
//!
//! The paper observes that the Linux pagemap restriction "still leaves
//! room for potential attacks that rely on side-channel information to
//! make inferences about the physical memory layout" (Section 5.2.1), and
//! the JavaScript follow-up work (Gruss et al., the paper's reference
//! \[8\]) built exactly that. This module provides the two side-channel
//! primitives such an attacker needs, measured purely through access
//! latency:
//!
//! * [`build_eviction_set_by_timing`] — group-testing reduction of a
//!   candidate pool to a minimal eviction set, verified by whether walking
//!   the set makes the target's reload slow;
//! * [`same_bank_by_timing`] — DRAM row-conflict detection: alternating
//!   accesses to two uncached addresses are slow (precharge + activate
//!   each time) when the addresses share a bank but not a row.
//!
//! Neither primitive reads a single kernel interface. They do assume the
//! attacker's virtual memory is *physically contiguous* (a freshly booted
//! machine, or transparent huge pages) when choosing candidate strides —
//! the same assumption the real JavaScript attack leans on.

use crate::error::AttackError;
use crate::eviction::EvictionSet;
use anvil_dram::Cycle;
use anvil_mem::{AccessKind, MemorySystem, Process};

/// Latency threshold separating LLC hits from DRAM accesses, in cycles.
/// (L3 hits cost ~9 cycles in the core model; DRAM ~150+.)
pub const MISS_LATENCY_THRESHOLD: Cycle = 60;

fn access(sys: &mut MemorySystem, process: &Process, va: u64) -> Cycle {
    let pa = process
        .translate(va)
        .expect("attacker accesses its own mapping");
    sys.access(pa, AccessKind::Read).advance
}

/// Whether walking `set` evicts `target` *repeatedly* — the property the
/// hammer loop needs (a set that evicts only from a particular stale state
/// is useless for hammering).
///
/// Two sources of probe noise are handled: lines from previous probes
/// linger in the cache (flushed by first walking the disjoint `cleaner`
/// region), and a one-conflict-short set can evict *once* from a polluted
/// state under Bit-PLRU (caught by requiring eviction in the majority of
/// consecutive rounds, where the under-sized set reaches a stable
/// all-resident state and stops evicting).
fn evicts(
    sys: &mut MemorySystem,
    process: &Process,
    target: u64,
    set: &[u64],
    cleaner: &[u64],
) -> bool {
    for _ in 0..2 {
        for &c in cleaner {
            access(sys, process, c);
        }
    }
    access(sys, process, target); // ensure cached
    let mut evictions = 0;
    for _ in 0..3 {
        for _ in 0..2 {
            for &c in set {
                access(sys, process, c);
            }
        }
        if access(sys, process, target) >= MISS_LATENCY_THRESHOLD {
            evictions += 1;
        }
    }
    // Require eviction in EVERY round: an under-sized set can evict once
    // or twice from polluted state, but only a full set keeps evicting
    // from its own steady state — which is what the hammer loop needs.
    evictions == 3
}

/// Builds an eviction set for `target_va` using only load timing.
///
/// Candidates are drawn at the LLC way-stride (sets x line bytes) from the
/// arena — under contiguous physical allocation these share the target's
/// set-index bits; the slice bit is whatever it is, so roughly half the
/// candidates conflict. Group testing then discards candidates whose
/// removal leaves the set still evicting, until exactly `ways` remain.
///
/// # Errors
///
/// [`AttackError::EvictionSetTooSmall`] when the arena (or a violated
/// contiguity assumption) leaves too few conflicting candidates.
pub fn build_eviction_set_by_timing(
    sys: &mut MemorySystem,
    process: &Process,
    arena_va: u64,
    arena_len: u64,
    target_va: u64,
) -> Result<EvictionSet, AttackError> {
    let ways = sys.hierarchy().llc_ways();
    let sets_per_slice = sys.hierarchy().config().l3.sets() / sys.hierarchy().config().l3_slices;
    let stride = (sets_per_slice * sys.hierarchy().config().l3.line_bytes) as u64;

    // Candidate pool: same set-index stride across the arena; the tail of
    // the candidate sequence serves as the disjoint cleaner region.
    let phase = (target_va - arena_va) % stride;
    let mut candidates = (0..arena_len / stride)
        .map(|k| arena_va + phase + k * stride)
        .filter(|&va| va != target_va && va + 64 <= arena_va + arena_len);
    let mut pool: Vec<u64> = candidates.by_ref().take(6 * ways).collect();
    let cleaner: Vec<u64> = candidates.take(4 * ways).collect();

    if !evicts(sys, process, target_va, &pool, &cleaner) {
        return Err(AttackError::EvictionSetTooSmall {
            found: 0,
            needed: ways,
        });
    }

    // Group-testing reduction: repeatedly drop candidates whose removal
    // leaves the set still evicting. Residual replacement state makes
    // individual probes noisy, so run passes until a fixpoint; a handful
    // of surplus members is acceptable (the hammer loop just gets a few
    // accesses longer), exactly as in real timing-based attacks.
    let mut changed = true;
    while changed && pool.len() > ways {
        changed = false;
        let mut i = 0;
        while i < pool.len() && pool.len() > ways {
            let candidate = pool.remove(i);
            if evicts(sys, process, target_va, &pool, &cleaner) {
                changed = true; // not needed; keep it removed
            } else {
                pool.insert(i, candidate);
                i += 1;
            }
        }
    }

    if pool.len() > ways + 4 || !evicts(sys, process, target_va, &pool, &cleaner) {
        return Err(AttackError::EvictionSetTooSmall {
            found: pool.len().min(ways.saturating_sub(1)),
            needed: ways,
        });
    }
    Ok(EvictionSet {
        target_va,
        conflict_vas: pool,
    })
}

/// Decides whether two addresses share a DRAM bank (in different rows)
/// using the row-conflict timing channel. All probe addresses must have
/// eviction sets so they can be forced out of the cache between rounds.
///
/// Protocol (per round): evict everything; open `a`'s row by accessing
/// `a`; access `b`; then access `a_row_buddy` — another line in *`a`'s
/// own row*. If `b` shares the bank, its access closed `a`'s row and the
/// buddy access is a slow row *conflict*; if not, the row is still open
/// and the buddy access is a fast row-buffer *hit*. Measuring the
/// disturbance on `a`'s own bank makes the verdict immune to whatever
/// rows the eviction walks happened to open elsewhere.
///
/// The buddy must be a second line in the same DRAM row as `a` (e.g.
/// `a + 64` — rows are KBs long, lines 64 B).
pub fn same_bank_by_timing(
    sys: &mut MemorySystem,
    process: &Process,
    a: (u64, &EvictionSet),
    a_row_buddy: (u64, &EvictionSet),
    b: (u64, &EvictionSet),
    rounds: u32,
) -> bool {
    // Boundary between a DRAM row-buffer hit (~100 cycles) and a
    // precharge+activate conflict (~180 cycles).
    const ROW_CONFLICT_THRESHOLD: Cycle = 140;
    let mut slow = 0u32;
    let mut total = 0u32;
    for _ in 0..rounds {
        for set in [a.1, a_row_buddy.1, b.1] {
            for _ in 0..2 {
                for &c in &set.conflict_vas {
                    access(sys, process, c);
                }
            }
        }
        let ta = access(sys, process, a.0); // opens a's row
        let _tb = access(sys, process, b.0); // closes it iff same bank
        let t_buddy = access(sys, process, a_row_buddy.0);
        if ta >= MISS_LATENCY_THRESHOLD && t_buddy >= MISS_LATENCY_THRESHOLD {
            total += 1;
            if t_buddy >= ROW_CONFLICT_THRESHOLD {
                slow += 1;
            }
        }
    }
    total > 0 && slow * 2 > total
}

#[cfg(test)]
mod tests {
    use super::*;
    use anvil_mem::{AllocationPolicy, FrameAllocator, MemoryConfig};

    fn setup() -> (MemorySystem, Process, u64, u64) {
        let mut sys = MemorySystem::new(MemoryConfig::paper_platform());
        let mut frames = FrameAllocator::new(sys.phys().capacity(), AllocationPolicy::Contiguous);
        let mut p = Process::new(9, "timing-attacker");
        let len = 24 << 20;
        let va = p.mmap(len, &mut frames).unwrap();
        let _ = &mut sys;
        (sys, p, va, len)
    }

    #[test]
    fn timing_eviction_set_matches_ground_truth() {
        let (mut sys, p, va, len) = setup();
        let target = va + 128;
        let set = build_eviction_set_by_timing(&mut sys, &p, va, len, target).unwrap();
        let ways = sys.hierarchy().llc_ways();
        assert!(
            (ways..=ways + 4).contains(&set.len()),
            "set size {} out of range",
            set.len()
        );
        // Ground truth: at least `ways` members map to the target's
        // slice+set (noise may leave a few stragglers).
        let key = sys.hierarchy().llc_set_of(p.translate(target).unwrap());
        let same_set = set
            .conflict_vas
            .iter()
            .filter(|&&c| sys.hierarchy().llc_set_of(p.translate(c).unwrap()) == key)
            .count();
        assert!(same_set >= ways, "only {same_set} true conflicts");
    }

    #[test]
    fn timing_set_actually_evicts() {
        let (mut sys, p, va, len) = setup();
        let target = va + 4096;
        let set = build_eviction_set_by_timing(&mut sys, &p, va, len, target).unwrap();
        assert!(evicts(&mut sys, &p, target, &set.conflict_vas, &[]));
    }

    #[test]
    fn same_bank_detection_agrees_with_mapping() {
        let (mut sys, p, va, len) = setup();
        let mapping = *sys.dram().mapping();

        let a = va;
        let buddy = va + 64; // same DRAM row as `a`
        let set_a = build_eviction_set_by_timing(&mut sys, &p, va, len, a).unwrap();
        let set_buddy = build_eviction_set_by_timing(&mut sys, &p, va, len, buddy).unwrap();
        let mut checked_same = false;
        let mut checked_diff = false;
        // Try several candidate partners; compare the timing verdict with
        // the (ground-truth) mapping.
        for j in 0..10u64 {
            let b = va + 2 * (128 << 10) + j * 8192;
            if b >= va + len {
                break;
            }
            let set_b = match build_eviction_set_by_timing(&mut sys, &p, va, len, b) {
                Ok(s) => s,
                Err(_) => continue,
            };
            let verdict = same_bank_by_timing(
                &mut sys,
                &p,
                (a, &set_a),
                (buddy, &set_buddy),
                (b, &set_b),
                8,
            );
            let la = mapping.location_of(p.translate(a).unwrap());
            let lb = mapping.location_of(p.translate(b).unwrap());
            let truth = la.bank == lb.bank && la.row != lb.row;
            assert_eq!(verdict, truth, "timing verdict wrong for j={j}");
            checked_same |= truth;
            checked_diff |= !truth;
            if checked_same && checked_diff {
                return;
            }
        }
        assert!(checked_same, "never saw a same-bank pair among candidates");
    }
}
