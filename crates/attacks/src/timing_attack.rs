//! The pagemap-free CLFLUSH-free attack.
//!
//! The Linux response to double-sided rowhammering was to restrict
//! `/proc/pagemap`; the paper points out this "still leaves room for
//! potential attacks that rely on side-channel information to make
//! inferences about the physical memory layout" (Section 5.2.1). This
//! attack is that next escalation: it needs *neither CLFLUSH nor pagemap*.
//!
//! * Eviction sets are discovered by group testing with load timing
//!   ([`build_eviction_set_by_timing`]).
//! * Same-bank aggressor pairs are found with the DRAM row-conflict
//!   timing channel ([`same_bank_by_timing`]), scanning the candidate
//!   strides implied by physically contiguous allocation (the huge-page /
//!   fresh-boot assumption the JavaScript attack also makes).
//!
//! It fails — honestly — when the contiguity assumption is violated
//! (randomized frame allocation), which is exactly the defense trade-off
//! the experiment harness quantifies (`--bin pagemap_hardening`).

use crate::env::{Attack, AttackEnv, AttackOp};
use crate::error::AttackError;
use crate::eviction::EvictionSet;
use crate::pattern::{discover_pattern, HammerPattern};
use crate::timing::{build_eviction_set_by_timing, same_bank_by_timing};
use anvil_cache::CacheHierarchy;
use anvil_mem::AccessKind;

const MB: u64 = 1 << 20;
const ROW_STRIDE: u64 = 128 << 10; // one row advance under contiguity (PA bit 17)
const BANK_STRIDE: u64 = 8 << 10; // one bank-bit step (PA bit 13)

#[derive(Debug)]
struct Prepared {
    /// One-time cache-cleaning preamble, executed before the loop.
    preamble: Vec<AttackOp>,
    /// Position within the preamble (== len once done).
    preamble_cursor: usize,
    ops: Vec<AttackOp>,
    cursor: usize,
    aggressors: Vec<u64>,
    victims: Vec<u64>,
}

/// Double-sided, CLFLUSH-free, pagemap-free rowhammering.
#[derive(Debug)]
pub struct TimingClflushFree {
    arena_bytes: u64,
    prepared: Option<Prepared>,
}

impl TimingClflushFree {
    /// Creates the attack with the default 24 MB arena.
    pub fn new() -> Self {
        TimingClflushFree {
            arena_bytes: 24 * MB,
            prepared: None,
        }
    }

    /// Overrides the arena size.
    #[must_use]
    pub fn with_arena_bytes(mut self, bytes: u64) -> Self {
        self.arena_bytes = bytes;
        self
    }
}

impl Default for TimingClflushFree {
    fn default() -> Self {
        Self::new()
    }
}

/// Synthetic same-set physical addresses for the attacker's *offline*
/// pattern simulator: pattern quality depends only on set behaviour, so
/// any addresses that share a slice+set stand in for the real (unknown)
/// ones.
fn synthetic_same_set(hierarchy_config: &anvil_cache::HierarchyConfig, n: usize) -> Vec<u64> {
    let probe = CacheHierarchy::new(*hierarchy_config);
    let key = probe.llc_set_of(0);
    let mut out = Vec::with_capacity(n);
    let mut pa = 0u64;
    while out.len() < n {
        if probe.llc_set_of(pa) == key {
            out.push(pa);
        }
        pa += 64;
    }
    out
}

impl Attack for TimingClflushFree {
    fn name(&self) -> &'static str {
        "timing-clflush-free"
    }

    fn prepare(&mut self, env: &mut AttackEnv<'_>) -> Result<(), AttackError> {
        let arena = env.process.mmap(self.arena_bytes, env.frames)?;
        let arena_len = self.arena_bytes;

        // Scan (base, j) candidates for a same-bank pair two row-strides
        // apart. j sweeps the bank bits that the controller XORs with the
        // row, including one extra bit for the carry case.
        let mut found: Option<(u64, u64, EvictionSet, EvictionSet)> = None;
        'search: for base_step in 0..12u64 {
            let below = arena + 64 + base_step * BANK_STRIDE;
            let buddy = below + 64; // second line in the same DRAM row
            let Ok(set_below) =
                build_eviction_set_by_timing(env.sys, env.process, arena, arena_len, below)
            else {
                continue;
            };
            let Ok(set_buddy) =
                build_eviction_set_by_timing(env.sys, env.process, arena, arena_len, buddy)
            else {
                continue;
            };
            for j in 0..16u64 {
                let above = below + 2 * ROW_STRIDE + j * BANK_STRIDE;
                if above + 64 > arena + arena_len {
                    break;
                }
                let Ok(set_above) =
                    build_eviction_set_by_timing(env.sys, env.process, arena, arena_len, above)
                else {
                    continue;
                };
                if same_bank_by_timing(
                    env.sys,
                    env.process,
                    (below, &set_below),
                    (buddy, &set_buddy),
                    (above, &set_above),
                    10,
                ) {
                    found = Some((below, above, set_below, set_above));
                    break 'search;
                }
            }
        }
        let (below, above, set_below, set_above) = found.ok_or(AttackError::NoAggressorPair)?;

        // Tune the hammer pattern on the attacker's private simulator with
        // synthetic same-set addresses.
        let hierarchy_config = *env.sys.hierarchy().config();
        let core = env.sys.config().core;
        let mut patterns: Vec<HammerPattern> = Vec::new();
        for set in [&set_below, &set_above] {
            let synth = synthetic_same_set(&hierarchy_config, set.len() + 1);
            let target = (set.target_va, synth[0]);
            let conflicts: Vec<(u64, u64)> = set
                .conflict_vas
                .iter()
                .zip(&synth[1..])
                .map(|(&va, &pa)| (va, pa))
                .collect();
            patterns.push(discover_pattern(
                &hierarchy_config,
                &core,
                target,
                &conflicts,
            ));
        }

        // The timing probes left the two cache sets in an arbitrary
        // replacement state; Bit-PLRU access patterns can converge to a
        // different (non-hammering) orbit from such a state. Start the
        // hammer loop with a one-time cleaning preamble that evicts both
        // sets completely, reproducing the cold start the pattern was
        // tuned for.
        let sets_per_slice = hierarchy_config.l3.sets() / hierarchy_config.l3_slices;
        let stride = (sets_per_slice * hierarchy_config.l3.line_bytes) as u64;
        let ways = set_below.len();
        let mut preamble = Vec::new();
        for target in [below, above] {
            let phase = (target - arena) % stride;
            for _ in 0..2 {
                for k in (6 * ways as u64)..(10 * ways as u64) {
                    let va = arena + phase + k * stride;
                    if va + 64 <= arena + arena_len {
                        preamble.push(AttackOp::Access {
                            vaddr: va,
                            kind: AccessKind::Read,
                        });
                    }
                }
            }
        }

        let mut ops = Vec::new();
        for p in &patterns {
            ops.extend(p.sequence.iter().map(|&vaddr| AttackOp::Access {
                vaddr,
                kind: AccessKind::Read,
            }));
        }

        // Ground truth for the experiment harness (translated through the
        // kernel view — the attack logic above never used it).
        let mapping = *env.sys.dram().mapping();
        let below_pa = env.process.translate(below).expect("mapped");
        let above_pa = env.process.translate(above).expect("mapped");
        let lb = mapping.location_of(below_pa);
        let la = mapping.location_of(above_pa);
        let mut victims = Vec::new();
        if lb.bank == la.bank && la.row.abs_diff(lb.row) == 2 {
            let mid = lb.row.min(la.row) + 1;
            victims.push(mapping.address_of(anvil_dram::DramLocation {
                bank: lb.bank,
                row: mid,
                col: 0,
            }));
        } else {
            // Same bank but not a perfect sandwich: the neighbors of both
            // aggressors are the victims.
            for (pa, _) in [(below_pa, lb), (above_pa, la)] {
                for d in [-1i64, 1] {
                    if let Some(v) = mapping.same_bank_row_offset(pa, d) {
                        victims.push(v);
                    }
                }
            }
        }

        self.prepared = Some(Prepared {
            preamble,
            preamble_cursor: 0,
            ops,
            cursor: 0,
            aggressors: vec![below_pa, above_pa],
            victims,
        });
        Ok(())
    }

    fn next_op(&mut self) -> AttackOp {
        let p = self.prepared.as_mut().expect("prepare the attack first");
        if p.preamble_cursor < p.preamble.len() {
            let op = p.preamble[p.preamble_cursor];
            p.preamble_cursor += 1;
            return op;
        }
        let op = p.ops[p.cursor];
        p.cursor = (p.cursor + 1) % p.ops.len();
        op
    }

    fn aggressor_paddrs(&self) -> Vec<u64> {
        self.prepared
            .as_ref()
            .map_or(Vec::new(), |p| p.aggressors.clone())
    }

    fn victim_paddrs(&self) -> Vec<u64> {
        self.prepared
            .as_ref()
            .map_or(Vec::new(), |p| p.victims.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::StandaloneHarness;
    use anvil_mem::{AllocationPolicy, MemoryConfig, PagemapPolicy};

    #[test]
    fn prepares_without_pagemap_on_contiguous_memory() {
        let mut harness =
            StandaloneHarness::new(MemoryConfig::paper_platform(), AllocationPolicy::Contiguous);
        harness.pagemap = PagemapPolicy::Restricted; // the Linux hardening
        let mut attack = TimingClflushFree::new();
        harness
            .prepare(&mut attack)
            .expect("timing attack needs no pagemap");

        // Ground truth: the timing-derived aggressors really share a bank.
        let map = harness.sys.dram().mapping();
        let aggs = attack.aggressor_paddrs();
        let a = map.location_of(aggs[0]);
        let b = map.location_of(aggs[1]);
        assert_eq!(a.bank, b.bank, "timing channel found a wrong-bank pair");
        assert_ne!(a.row, b.row);
    }

    #[test]
    fn hammers_both_aggressor_rows() {
        let mut harness =
            StandaloneHarness::new(MemoryConfig::paper_platform(), AllocationPolicy::Contiguous);
        harness.pagemap = PagemapPolicy::Restricted;
        let mut attack = TimingClflushFree::new();
        harness.prepare(&mut attack).unwrap();
        let (accesses, cycles) =
            crate::runner::measure_hammer_rate(&mut attack, &mut harness, 44 * 2_000);
        assert!(
            accesses > 3_000,
            "aggressor rows barely touched: {accesses}"
        );
        // Fast enough to matter: > 110K aggressor-row accesses per 64 ms.
        let per_64ms = accesses as f64 * 166_400_000.0 / cycles as f64;
        assert!(
            per_64ms > 110_000.0,
            "too slow: {per_64ms:.0} accesses/64ms"
        );
    }

    #[test]
    fn randomized_allocation_defeats_the_contiguity_assumption() {
        let mut harness = StandaloneHarness::new(
            MemoryConfig::paper_platform(),
            AllocationPolicy::Randomized { seed: 17 },
        );
        harness.pagemap = PagemapPolicy::Restricted;
        let mut attack = TimingClflushFree::new();
        let result = harness.prepare(&mut attack);
        assert!(
            result.is_err(),
            "scattered frames must break the stride heuristics"
        );
    }
}
