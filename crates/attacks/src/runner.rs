//! Standalone attack execution (no detector in the way).
//!
//! Used by the Table 1 and refresh-sweep experiments: prepare an attack on
//! a bare machine, hammer, and report when (and whether) the first bit
//! flipped.

use crate::env::{exec_op, Attack, AttackEnv, AttackOp};
use crate::error::AttackError;
use anvil_dram::{Cycle, DramFlip, RowId};
use anvil_mem::{
    AccessKind, AllocationPolicy, FrameAllocator, MemoryConfig, MemorySystem, PagemapPolicy,
    Process,
};
use std::collections::HashSet;

/// A bare machine with a single attacker process on it.
#[derive(Debug)]
pub struct StandaloneHarness {
    /// The memory system under attack.
    pub sys: MemorySystem,
    /// The kernel's frame allocator.
    pub frames: FrameAllocator,
    /// The attacker process.
    pub process: Process,
    /// Pagemap policy in effect.
    pub pagemap: PagemapPolicy,
}

impl StandaloneHarness {
    /// Boots a machine with the given memory configuration and frame
    /// allocation policy; pagemap open (the pre-hardening default).
    pub fn new(config: MemoryConfig, allocation: AllocationPolicy) -> Self {
        let sys = MemorySystem::new(config);
        let frames = FrameAllocator::new(sys.phys().capacity(), allocation);
        StandaloneHarness {
            sys,
            frames,
            process: Process::new(1000, "attacker"),
            pagemap: PagemapPolicy::Open,
        }
    }

    /// Prepares `attack` on this machine.
    ///
    /// # Errors
    ///
    /// Propagates the attack's preparation error.
    pub fn prepare(&mut self, attack: &mut dyn Attack) -> Result<(), AttackError> {
        attack.prepare(&mut AttackEnv {
            sys: &mut self.sys,
            process: &mut self.process,
            frames: &mut self.frames,
            pagemap: self.pagemap,
        })
    }
}

/// Outcome of a hammer run.
#[derive(Debug, Clone, PartialEq)]
pub struct HammerResult {
    /// Whether any bit flipped.
    pub flipped: bool,
    /// Accesses that activated an *aggressor* row — the paper's
    /// "number of DRAM row accesses" metric (Table 1).
    pub aggressor_accesses: u64,
    /// Cycle at which hammering started.
    pub start_cycle: Cycle,
    /// Cycle of the first flip, if any.
    pub first_flip_cycle: Option<Cycle>,
    /// All flips observed.
    pub flips: Vec<DramFlip>,
}

impl HammerResult {
    /// Wall-clock time from hammer start to the first flip, in ms.
    pub fn time_to_first_flip_ms(&self, clock: &anvil_dram::CpuClock) -> Option<f64> {
        self.first_flip_cycle
            .map(|c| clock.cycles_to_ms(c - self.start_cycle))
    }
}

/// Hammers until the first bit flip or until the aggressor rows have been
/// accessed `max_aggressor_accesses` times.
///
/// The attack must already be prepared.
pub fn hammer_until_flip(
    attack: &mut dyn Attack,
    harness: &mut StandaloneHarness,
    max_aggressor_accesses: u64,
) -> HammerResult {
    let mapping = *harness.sys.dram().mapping();
    let aggressor_rows: HashSet<RowId> = attack
        .aggressor_paddrs()
        .iter()
        .map(|&pa| mapping.location_of(pa).row_id())
        .collect();
    assert!(!aggressor_rows.is_empty(), "attack not prepared");

    let start_cycle = harness.sys.now();
    let flips_before = harness.sys.total_flips();
    let mut aggressor_accesses = 0u64;
    let mut flips = Vec::new();
    let mut first_flip_cycle = None;

    while aggressor_accesses < max_aggressor_accesses {
        let op = attack.next_op();
        let outcome = exec_op(op, &harness.process, &mut harness.sys);
        if let Some(o) = outcome {
            if let Some(loc) = o.dram {
                if aggressor_rows.contains(&loc.row_id()) {
                    aggressor_accesses += 1;
                }
            }
        }
        if harness.sys.total_flips() > flips_before {
            let new = harness.sys.drain_flips();
            first_flip_cycle = Some(new[0].flip.cycle);
            flips = new;
            break;
        }
    }

    HammerResult {
        flipped: first_flip_cycle.is_some(),
        aggressor_accesses,
        start_cycle,
        first_flip_cycle,
        flips,
    }
}

/// Measures the wall-clock cost of `iterations` hammer iterations without
/// caring about flips (for access-rate reporting).
pub fn measure_hammer_rate(
    attack: &mut dyn Attack,
    harness: &mut StandaloneHarness,
    ops: u64,
) -> (u64, Cycle) {
    let start = harness.sys.now();
    let mut aggressor_accesses = 0;
    let mapping = *harness.sys.dram().mapping();
    let aggressor_rows: HashSet<RowId> = attack
        .aggressor_paddrs()
        .iter()
        .map(|&pa| mapping.location_of(pa).row_id())
        .collect();
    for _ in 0..ops {
        let op = attack.next_op();
        if let Some(o) = exec_op(op, &harness.process, &mut harness.sys) {
            if let Some(loc) = o.dram {
                if aggressor_rows.contains(&loc.row_id()) {
                    aggressor_accesses += 1;
                }
            }
        }
    }
    (aggressor_accesses, harness.sys.now() - start)
}

/// Convenience: ensure ops other than plain accesses never appear in a
/// CLFLUSH-free stream (used by tests and the detection harness).
pub fn uses_clflush(ops: &[AttackOp]) -> bool {
    ops.iter().any(|op| matches!(op, AttackOp::Clflush { .. }))
}

/// Runs an attack for a fixed number of *ops* (not iterations), returning
/// observed flips. Used when driving attacks under a refresh sweep.
pub fn hammer_for_ops(
    attack: &mut dyn Attack,
    harness: &mut StandaloneHarness,
    ops: u64,
) -> Vec<DramFlip> {
    for _ in 0..ops {
        let op = attack.next_op();
        exec_op(op, &harness.process, &mut harness.sys);
    }
    harness.sys.drain_flips()
}

/// Helper used across experiments: a read access to `paddr` expressed as
/// an [`AttackOp`] for symmetry (e.g. verification probes).
pub fn probe_op(vaddr: u64) -> AttackOp {
    AttackOp::Access {
        vaddr,
        kind: AccessKind::Read,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clflush::{DoubleSidedClflush, SingleSidedClflush};
    use crate::clflush_free::ClflushFreeDoubleSided;
    use anvil_dram::CpuClock;

    fn harness() -> StandaloneHarness {
        StandaloneHarness::new(MemoryConfig::paper_platform(), AllocationPolicy::Contiguous)
    }

    /// Finds a pair index whose victim row is minimum-threshold, so tests
    /// observe the paper's minimum access counts.
    fn vulnerable_pair_index<F>(make: F) -> usize
    where
        F: Fn(usize) -> Box<dyn Attack>,
    {
        for i in 0..32 {
            let mut h = harness();
            let mut attack = make(i);
            h.prepare(attack.as_mut()).unwrap();
            let victim = h
                .sys
                .dram()
                .mapping()
                .location_of(attack.victim_paddrs()[0])
                .row_id();
            if h.sys.dram().is_vulnerable_row(victim) {
                return i;
            }
        }
        panic!("no vulnerable victim among 32 candidate pairs");
    }

    #[test]
    fn double_sided_clflush_flips_at_the_paper_minimum() {
        let idx = vulnerable_pair_index(|i| Box::new(DoubleSidedClflush::new().with_pair_index(i)));
        let mut h = harness();
        let mut attack = DoubleSidedClflush::new().with_pair_index(idx);
        h.prepare(&mut attack).unwrap();
        let r = hammer_until_flip(&mut attack, &mut h, 250_000);
        assert!(r.flipped, "vulnerable victim must flip");
        assert!(
            (215_000..=225_000).contains(&r.aggressor_accesses),
            "Table 1 says 220K accesses; got {}",
            r.aggressor_accesses
        );
        let ms = r
            .time_to_first_flip_ms(&CpuClock::SANDY_BRIDGE_2_6GHZ)
            .unwrap();
        assert!(
            (10.0..25.0).contains(&ms),
            "Table 1 says ~15 ms; got {ms:.1} ms"
        );
    }

    #[test]
    fn single_sided_clflush_is_slower() {
        let mut h = harness();
        let mut attack = SingleSidedClflush::new();
        h.prepare(&mut attack).unwrap();
        // The single-sided victim may or may not be minimum-threshold; we
        // only check the rate here (Table 1's time column shape).
        let (accesses, cycles) = measure_hammer_rate(&mut attack, &mut h, 40_000);
        let clock = CpuClock::SANDY_BRIDGE_2_6GHZ;
        let ns_per_access = clock.cycles_to_ns(cycles) / accesses as f64;
        // Paper: 400K accesses in 58 ms = 145 ns per aggressor access.
        assert!(
            (100.0..220.0).contains(&ns_per_access),
            "expected ~145 ns per access, got {ns_per_access:.0}"
        );
    }

    #[test]
    fn clflush_free_flips_within_one_refresh_window() {
        let idx =
            vulnerable_pair_index(|i| Box::new(ClflushFreeDoubleSided::new().with_pair_index(i)));
        let mut h = harness();
        let mut attack = ClflushFreeDoubleSided::new().with_pair_index(idx);
        h.prepare(&mut attack).unwrap();
        let r = hammer_until_flip(&mut attack, &mut h, 250_000);
        assert!(r.flipped, "CLFLUSH-free attack must flip");
        let ms = r
            .time_to_first_flip_ms(&CpuClock::SANDY_BRIDGE_2_6GHZ)
            .unwrap();
        assert!(
            ms < 64.0,
            "flip must land inside one 64 ms refresh window; took {ms:.1} ms"
        );
        assert!(
            (215_000..=230_000).contains(&r.aggressor_accesses),
            "Table 1 says 220K accesses; got {}",
            r.aggressor_accesses
        );
    }

    #[test]
    fn non_vulnerable_victim_does_not_flip_at_the_minimum() {
        // Find a NON-vulnerable pair and hammer it to just past the
        // minimum: no flip.
        for i in 0..32 {
            let mut h = harness();
            let mut attack = DoubleSidedClflush::new().with_pair_index(i);
            h.prepare(&mut attack).unwrap();
            let victim = h
                .sys
                .dram()
                .mapping()
                .location_of(attack.victim_paddrs()[0])
                .row_id();
            if !h.sys.dram().is_vulnerable_row(victim) {
                let r = hammer_until_flip(&mut attack, &mut h, 230_000);
                assert!(!r.flipped, "non-vulnerable victim flipped early");
                return;
            }
        }
        panic!("all pairs vulnerable?");
    }
}
