//! The CLFLUSH-based rowhammer attacks (paper Section 2.1, Figure 1a).

use crate::env::{Attack, AttackEnv, AttackOp};
use crate::error::AttackError;
use crate::rowfind::find_aggressor_pairs;
use anvil_dram::DramLocation;
use anvil_mem::AccessKind;

const MB: u64 = 1 << 20;

#[derive(Debug)]
struct Prepared {
    /// One iteration of the hammer loop.
    ops: Vec<AttackOp>,
    cursor: usize,
    aggressors: Vec<u64>,
    victims: Vec<u64>,
}

impl Prepared {
    fn next(&mut self) -> AttackOp {
        let op = self.ops[self.cursor];
        self.cursor = (self.cursor + 1) % self.ops.len();
        op
    }
}

/// Double-sided CLFLUSH hammering: alternately access the two rows
/// adjacent to the victim, flushing each line after use so every access
/// re-activates its row (the paper's fastest attack: 220K accesses /
/// 15 ms to the first flip, Table 1).
#[derive(Debug)]
pub struct DoubleSidedClflush {
    arena_bytes: u64,
    pair_index: usize,
    prepared: Option<Prepared>,
}

impl DoubleSidedClflush {
    /// Creates the attack with the default 8 MB arena.
    pub fn new() -> Self {
        DoubleSidedClflush {
            arena_bytes: 8 * MB,
            pair_index: 0,
            prepared: None,
        }
    }

    /// Selects which discovered aggressor pair to hammer (attackers scan
    /// pairs until they find a flippable victim; experiment harnesses use
    /// this to iterate candidates).
    #[must_use]
    pub fn with_pair_index(mut self, index: usize) -> Self {
        self.pair_index = index;
        self
    }

    /// Overrides the arena size.
    #[must_use]
    pub fn with_arena_bytes(mut self, bytes: u64) -> Self {
        self.arena_bytes = bytes;
        self
    }
}

impl Default for DoubleSidedClflush {
    fn default() -> Self {
        Self::new()
    }
}

impl Attack for DoubleSidedClflush {
    fn name(&self) -> &'static str {
        "double-sided-clflush"
    }

    fn prepare(&mut self, env: &mut AttackEnv<'_>) -> Result<(), AttackError> {
        let va = env.process.mmap(self.arena_bytes, env.frames)?;
        let mapping = *env.sys.dram().mapping();
        let pairs = find_aggressor_pairs(
            env.process,
            env.pagemap,
            &mapping,
            va,
            self.arena_bytes,
            self.pair_index + 1,
        )?;
        let pair = *pairs
            .get(self.pair_index)
            .ok_or(AttackError::NoAggressorPair)?;
        let victim_pa = mapping.address_of(DramLocation {
            bank: pair.victim.bank,
            row: pair.victim.row,
            col: 0,
        });
        self.prepared = Some(Prepared {
            ops: vec![
                AttackOp::Access {
                    vaddr: pair.below_va,
                    kind: AccessKind::Read,
                },
                AttackOp::Clflush {
                    vaddr: pair.below_va,
                },
                AttackOp::Access {
                    vaddr: pair.above_va,
                    kind: AccessKind::Read,
                },
                AttackOp::Clflush {
                    vaddr: pair.above_va,
                },
            ],
            cursor: 0,
            aggressors: vec![pair.below_pa, pair.above_pa],
            victims: vec![victim_pa],
        });
        Ok(())
    }

    fn next_op(&mut self) -> AttackOp {
        self.prepared
            .as_mut()
            .expect("prepare the attack first")
            .next()
    }

    fn aggressor_paddrs(&self) -> Vec<u64> {
        self.prepared
            .as_ref()
            .map_or(Vec::new(), |p| p.aggressors.clone())
    }

    fn victim_paddrs(&self) -> Vec<u64> {
        self.prepared
            .as_ref()
            .map_or(Vec::new(), |p| p.victims.clone())
    }
}

/// Single-sided CLFLUSH hammering: hammer one aggressor, plus a same-bank
/// conflict address to keep closing the aggressor's row (the original
/// attack shape; 400K accesses / 58 ms to the first flip, Table 1).
#[derive(Debug)]
pub struct SingleSidedClflush {
    arena_bytes: u64,
    pair_index: usize,
    prepared: Option<Prepared>,
}

impl SingleSidedClflush {
    /// Creates the attack with the default 8 MB arena.
    pub fn new() -> Self {
        SingleSidedClflush {
            arena_bytes: 8 * MB,
            pair_index: 0,
            prepared: None,
        }
    }

    /// Selects which discovered aggressor to hammer (see
    /// [`DoubleSidedClflush::with_pair_index`]).
    #[must_use]
    pub fn with_pair_index(mut self, index: usize) -> Self {
        self.pair_index = index;
        self
    }

    /// Overrides the arena size.
    #[must_use]
    pub fn with_arena_bytes(mut self, bytes: u64) -> Self {
        self.arena_bytes = bytes;
        self
    }
}

impl Default for SingleSidedClflush {
    fn default() -> Self {
        Self::new()
    }
}

impl Attack for SingleSidedClflush {
    fn name(&self) -> &'static str {
        "single-sided-clflush"
    }

    fn prepare(&mut self, env: &mut AttackEnv<'_>) -> Result<(), AttackError> {
        let va = env.process.mmap(self.arena_bytes, env.frames)?;
        let mapping = *env.sys.dram().mapping();
        let pairs = crate::rowfind::find_same_bank_pairs(
            env.process,
            env.pagemap,
            &mapping,
            va,
            self.arena_bytes,
            4, // keep the conflict row well away from the victims
            self.pair_index + 1,
        )?;
        let pair = *pairs
            .get(self.pair_index)
            .ok_or(AttackError::NoAggressorPair)?;
        // Victims: the rows adjacent to the aggressor.
        let victims = [-1i64, 1]
            .iter()
            .filter_map(|&d| mapping.same_bank_row_offset(pair.aggressor_pa, d))
            .collect();
        self.prepared = Some(Prepared {
            ops: vec![
                AttackOp::Access {
                    vaddr: pair.aggressor_va,
                    kind: AccessKind::Read,
                },
                AttackOp::Clflush {
                    vaddr: pair.aggressor_va,
                },
                AttackOp::Access {
                    vaddr: pair.conflict_va,
                    kind: AccessKind::Read,
                },
                AttackOp::Clflush {
                    vaddr: pair.conflict_va,
                },
            ],
            cursor: 0,
            aggressors: vec![pair.aggressor_pa],
            victims,
        });
        Ok(())
    }

    fn next_op(&mut self) -> AttackOp {
        self.prepared
            .as_mut()
            .expect("prepare the attack first")
            .next()
    }

    fn aggressor_paddrs(&self) -> Vec<u64> {
        self.prepared
            .as_ref()
            .map_or(Vec::new(), |p| p.aggressors.clone())
    }

    fn victim_paddrs(&self) -> Vec<u64> {
        self.prepared
            .as_ref()
            .map_or(Vec::new(), |p| p.victims.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anvil_mem::{
        AllocationPolicy, FrameAllocator, MemoryConfig, MemorySystem, PagemapPolicy, Process,
    };

    fn env(sys: &mut MemorySystem) -> (Process, FrameAllocator) {
        let frames = FrameAllocator::new(sys.phys().capacity(), AllocationPolicy::Contiguous);
        (Process::new(100, "attacker"), frames)
    }

    #[test]
    fn double_sided_prepares_a_sandwich() {
        let mut sys = MemorySystem::new(MemoryConfig::paper_platform());
        let (mut process, mut frames) = env(&mut sys);
        let mut attack = DoubleSidedClflush::new();
        attack
            .prepare(&mut AttackEnv {
                sys: &mut sys,
                process: &mut process,
                frames: &mut frames,
                pagemap: PagemapPolicy::Open,
            })
            .unwrap();
        let aggs = attack.aggressor_paddrs();
        let victims = attack.victim_paddrs();
        assert_eq!(aggs.len(), 2);
        assert_eq!(victims.len(), 1);
        let map = sys.dram().mapping();
        let a = map.location_of(aggs[0]);
        let b = map.location_of(aggs[1]);
        let v = map.location_of(victims[0]);
        assert_eq!(a.bank, b.bank);
        assert_eq!(a.bank, v.bank);
        assert_eq!(v.row, a.row + 1);
        assert_eq!(b.row, v.row + 1);
    }

    #[test]
    fn iteration_is_access_flush_access_flush() {
        let mut sys = MemorySystem::new(MemoryConfig::paper_platform());
        let (mut process, mut frames) = env(&mut sys);
        let mut attack = DoubleSidedClflush::new();
        attack
            .prepare(&mut AttackEnv {
                sys: &mut sys,
                process: &mut process,
                frames: &mut frames,
                pagemap: PagemapPolicy::Open,
            })
            .unwrap();
        let ops: Vec<AttackOp> = (0..8).map(|_| attack.next_op()).collect();
        assert!(matches!(ops[0], AttackOp::Access { .. }));
        assert!(matches!(ops[1], AttackOp::Clflush { .. }));
        assert!(matches!(ops[2], AttackOp::Access { .. }));
        assert!(matches!(ops[3], AttackOp::Clflush { .. }));
        assert_eq!(ops[0], ops[4], "loop repeats");
    }

    #[test]
    fn restricted_pagemap_stops_preparation() {
        let mut sys = MemorySystem::new(MemoryConfig::paper_platform());
        let (mut process, mut frames) = env(&mut sys);
        let mut attack = DoubleSidedClflush::new();
        let err = attack
            .prepare(&mut AttackEnv {
                sys: &mut sys,
                process: &mut process,
                frames: &mut frames,
                pagemap: PagemapPolicy::Restricted,
            })
            .unwrap_err();
        assert_eq!(err, AttackError::PagemapDenied);
    }

    #[test]
    fn single_sided_victims_flank_the_aggressor() {
        let mut sys = MemorySystem::new(MemoryConfig::paper_platform());
        let (mut process, mut frames) = env(&mut sys);
        let mut attack = SingleSidedClflush::new();
        attack
            .prepare(&mut AttackEnv {
                sys: &mut sys,
                process: &mut process,
                frames: &mut frames,
                pagemap: PagemapPolicy::Open,
            })
            .unwrap();
        let agg = attack.aggressor_paddrs()[0];
        let map = sys.dram().mapping();
        let a = map.location_of(agg);
        for v in attack.victim_paddrs() {
            let loc = map.location_of(v);
            assert_eq!(loc.bank, a.bank);
            assert_eq!(loc.row.abs_diff(a.row), 1);
        }
    }

    #[test]
    #[should_panic(expected = "prepare the attack first")]
    fn next_op_before_prepare_panics() {
        DoubleSidedClflush::new().next_op();
    }
}
