//! Locating aggressor rows through the pagemap interface.
//!
//! A double-sided attack needs two addresses whose physical locations are
//! in the *same DRAM bank*, in rows exactly two apart, so the row between
//! them becomes the victim (Figure 1). The attacker mmaps a large arena,
//! translates it page-by-page via `/proc/pagemap` (Section 2.3), decodes
//! each physical address with the reverse-engineered DRAM mapping, and
//! searches for row triples.

use crate::error::AttackError;
use anvil_dram::{AddressMapping, RowId};
use anvil_mem::{PagemapPolicy, Process, PAGE_SIZE};
use std::collections::HashMap;

/// A pair of same-bank aggressor addresses sandwiching a victim row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AggressorPair {
    /// Virtual address in the row *below* the victim (victim row - 1).
    pub below_va: u64,
    /// Virtual address in the row *above* the victim (victim row + 1).
    pub above_va: u64,
    /// Physical address of `below_va`.
    pub below_pa: u64,
    /// Physical address of `above_va`.
    pub above_pa: u64,
    /// The victim row between the two aggressors.
    pub victim: RowId,
}

/// A pair of same-bank addresses in rows at least two apart — what a
/// single-sided attack needs (the second address forces row-buffer
/// conflicts so every access to the aggressor re-activates its row).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SameBankPair {
    /// The aggressor address (its neighbors are the victims).
    pub aggressor_va: u64,
    /// Physical address of the aggressor.
    pub aggressor_pa: u64,
    /// A same-bank address far from the aggressor, used to close its row.
    pub conflict_va: u64,
}

/// Translates every page of `[arena_va, arena_va + arena_len)` and indexes
/// it by DRAM row.
fn row_index(
    process: &Process,
    pagemap: PagemapPolicy,
    mapping: &AddressMapping,
    arena_va: u64,
    arena_len: u64,
) -> Result<HashMap<RowId, u64>, AttackError> {
    let mut by_row: HashMap<RowId, u64> = HashMap::new();
    let mut va = arena_va;
    while va < arena_va + arena_len {
        if let Some(pa) = process.pagemap(va, pagemap)? {
            let loc = mapping.location_of(pa);
            by_row.entry(loc.row_id()).or_insert(va);
        }
        va += PAGE_SIZE;
    }
    Ok(by_row)
}

/// Finds up to `max` aggressor pairs in the arena.
///
/// # Errors
///
/// [`AttackError::PagemapDenied`] under a restricted pagemap policy, or
/// [`AttackError::NoAggressorPair`] when the arena contains no usable
/// triple.
pub fn find_aggressor_pairs(
    process: &Process,
    pagemap: PagemapPolicy,
    mapping: &AddressMapping,
    arena_va: u64,
    arena_len: u64,
    max: usize,
) -> Result<Vec<AggressorPair>, AttackError> {
    let by_row = row_index(process, pagemap, mapping, arena_va, arena_len)?;
    let mut pairs = Vec::new();
    let mut rows: Vec<&RowId> = by_row.keys().collect();
    rows.sort();
    for &row in &rows {
        if pairs.len() >= max {
            break;
        }
        if row.row < 1 {
            continue;
        }
        let below = *row;
        let above = RowId::new(row.bank, row.row + 2);
        if let Some(&above_va) = by_row.get(&above) {
            let below_va = by_row[&below];
            pairs.push(AggressorPair {
                below_va,
                above_va,
                below_pa: process.pagemap(below_va, pagemap)?.expect("mapped"),
                above_pa: process.pagemap(above_va, pagemap)?.expect("mapped"),
                victim: RowId::new(row.bank, row.row + 1),
            });
        }
    }
    if pairs.is_empty() {
        return Err(AttackError::NoAggressorPair);
    }
    Ok(pairs)
}

/// Finds a same-bank pair for single-sided hammering: an aggressor and a
/// conflict address at least `min_distance` rows away in the same bank.
///
/// # Errors
///
/// [`AttackError::PagemapDenied`] or [`AttackError::NoAggressorPair`].
pub fn find_same_bank_pair(
    process: &Process,
    pagemap: PagemapPolicy,
    mapping: &AddressMapping,
    arena_va: u64,
    arena_len: u64,
    min_distance: u32,
) -> Result<SameBankPair, AttackError> {
    find_same_bank_pairs(
        process,
        pagemap,
        mapping,
        arena_va,
        arena_len,
        min_distance,
        1,
    )
    .map(|mut v| v.remove(0))
}

/// Finds up to `max` same-bank pairs with distinct aggressor rows (see
/// [`find_same_bank_pair`]). Attackers iterate these candidates until one
/// has a flippable victim next to it.
///
/// # Errors
///
/// [`AttackError::PagemapDenied`] or [`AttackError::NoAggressorPair`].
pub fn find_same_bank_pairs(
    process: &Process,
    pagemap: PagemapPolicy,
    mapping: &AddressMapping,
    arena_va: u64,
    arena_len: u64,
    min_distance: u32,
    max: usize,
) -> Result<Vec<SameBankPair>, AttackError> {
    let by_row = row_index(process, pagemap, mapping, arena_va, arena_len)?;
    let mut rows: Vec<&RowId> = by_row.keys().collect();
    rows.sort();
    let mut pairs = Vec::new();
    for &a in &rows {
        if pairs.len() >= max {
            break;
        }
        for &b in &rows {
            if a.bank == b.bank && b.row >= a.row + min_distance {
                let aggressor_va = by_row[a];
                pairs.push(SameBankPair {
                    aggressor_va,
                    aggressor_pa: process.pagemap(aggressor_va, pagemap)?.expect("mapped"),
                    conflict_va: by_row[b],
                });
                break;
            }
        }
    }
    if pairs.is_empty() {
        return Err(AttackError::NoAggressorPair);
    }
    Ok(pairs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use anvil_dram::DramGeometry;
    use anvil_mem::{AllocationPolicy, FrameAllocator};

    fn setup(policy: AllocationPolicy) -> (Process, FrameAllocator, AddressMapping, u64, u64) {
        let geometry = DramGeometry::ddr3_4gb();
        let mapping = AddressMapping::new(geometry);
        let mut frames = FrameAllocator::new(geometry.total_bytes(), policy);
        let mut p = Process::new(1, "attacker");
        let len = 8 << 20;
        let va = p.mmap(len, &mut frames).unwrap();
        (p, frames, mapping, va, len)
    }

    #[test]
    fn finds_pairs_with_contiguous_allocation() {
        let (p, _f, mapping, va, len) = setup(AllocationPolicy::Contiguous);
        let pairs = find_aggressor_pairs(&p, PagemapPolicy::Open, &mapping, va, len, 8).unwrap();
        assert!(!pairs.is_empty());
        for pair in &pairs {
            let below = mapping.location_of(pair.below_pa);
            let above = mapping.location_of(pair.above_pa);
            assert_eq!(below.bank, above.bank, "same bank");
            assert_eq!(below.row + 2, above.row, "rows two apart");
            assert_eq!(pair.victim, RowId::new(below.bank, below.row + 1));
            // The attacker really owns these addresses.
            assert_eq!(p.translate(pair.below_va), Some(pair.below_pa));
        }
    }

    #[test]
    fn restricted_pagemap_blocks_the_search() {
        let (p, _f, mapping, va, len) = setup(AllocationPolicy::Contiguous);
        let err =
            find_aggressor_pairs(&p, PagemapPolicy::Restricted, &mapping, va, len, 8).unwrap_err();
        assert_eq!(err, AttackError::PagemapDenied);
    }

    #[test]
    fn same_bank_pair_for_single_sided() {
        let (p, _f, mapping, va, len) = setup(AllocationPolicy::Contiguous);
        let pair = find_same_bank_pair(&p, PagemapPolicy::Open, &mapping, va, len, 4).unwrap();
        let a = mapping.location_of(pair.aggressor_pa);
        let b = mapping.location_of(p.translate(pair.conflict_va).unwrap());
        assert_eq!(a.bank, b.bank);
        assert!(b.row >= a.row + 4);
    }

    #[test]
    fn tiny_arena_has_no_pairs() {
        let geometry = DramGeometry::ddr3_4gb();
        let mapping = AddressMapping::new(geometry);
        let mut frames = FrameAllocator::new(
            geometry.total_bytes(),
            AllocationPolicy::Randomized { seed: 3 },
        );
        let mut p = Process::new(1, "a");
        // 2 scattered pages: no adjacent rows.
        let va = p.mmap(2 * PAGE_SIZE, &mut frames).unwrap();
        let r = find_aggressor_pairs(&p, PagemapPolicy::Open, &mapping, va, 2 * PAGE_SIZE, 4);
        assert_eq!(r.unwrap_err(), AttackError::NoAggressorPair);
    }

    #[test]
    fn randomized_allocation_still_yields_pairs_with_large_arena() {
        let geometry = DramGeometry::ddr3_4gb();
        let mapping = AddressMapping::new(geometry);
        let mut frames = FrameAllocator::new(
            geometry.total_bytes(),
            AllocationPolicy::Randomized { seed: 11 },
        );
        let mut p = Process::new(1, "a");
        let len = 768 << 20; // large spray, as real attacks use
        let va = p.mmap(len, &mut frames).unwrap();
        let pairs = find_aggressor_pairs(&p, PagemapPolicy::Open, &mapping, va, len, 2);
        assert!(pairs.is_ok(), "large spray should find pairs: {pairs:?}");
    }
}
