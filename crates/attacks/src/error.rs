//! Attack errors.

use anvil_mem::{OutOfMemory, PagemapDenied};

/// Why an attack could not be prepared or run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AttackError {
    /// The pagemap interface is restricted (the Linux hardening), so the
    /// attack cannot translate its addresses.
    PagemapDenied,
    /// Physical memory exhausted while mapping the attack arena.
    OutOfMemory,
    /// No pair of same-bank aggressor rows with a victim row between them
    /// was found in the mapped arena.
    NoAggressorPair,
    /// Not enough same-slice/same-set conflict addresses to build an
    /// eviction set of the required size.
    EvictionSetTooSmall {
        /// Conflicts found.
        found: usize,
        /// Conflicts required (LLC associativity).
        needed: usize,
    },
    /// The attack was asked to run before a successful `prepare`.
    NotPrepared,
}

impl std::fmt::Display for AttackError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AttackError::PagemapDenied => f.write_str("pagemap interface is restricted"),
            AttackError::OutOfMemory => f.write_str("out of physical memory"),
            AttackError::NoAggressorPair => {
                f.write_str("no same-bank aggressor row pair found in the arena")
            }
            AttackError::EvictionSetTooSmall { found, needed } => write!(
                f,
                "eviction set too small: found {found} conflicts, need {needed}"
            ),
            AttackError::NotPrepared => f.write_str("attack has not been prepared"),
        }
    }
}

impl std::error::Error for AttackError {}

impl From<PagemapDenied> for AttackError {
    fn from(_: PagemapDenied) -> Self {
        AttackError::PagemapDenied
    }
}

impl From<OutOfMemory> for AttackError {
    fn from(_: OutOfMemory) -> Self {
        AttackError::OutOfMemory
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(AttackError::PagemapDenied.to_string().contains("pagemap"));
        let e = AttackError::EvictionSetTooSmall {
            found: 5,
            needed: 12,
        };
        assert!(e.to_string().contains('5'));
        assert!(e.to_string().contains("12"));
    }

    #[test]
    fn conversions() {
        assert_eq!(AttackError::from(PagemapDenied), AttackError::PagemapDenied);
        assert_eq!(AttackError::from(OutOfMemory), AttackError::OutOfMemory);
    }
}
