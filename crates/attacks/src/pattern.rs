//! Efficient eviction-pattern discovery (paper Section 2.2).
//!
//! "A time efficient memory access pattern misses the last-level cache
//! only on the aggressor address and one additional conflicting address,
//! and hits on the rest of addresses in the eviction set. This works by
//! always driving the aggressor address to the least recently used
//! position in the replacement state."
//!
//! The authors found their pattern by trial against replacement-policy
//! simulators; [`discover_pattern`] does the same mechanically: it scores a
//! family of candidate orderings on a private simulation of the target
//! hierarchy and returns the fastest ordering that still misses on the
//! aggressor every iteration.

use anvil_cache::{CacheHierarchy, HierarchyConfig};
use anvil_mem::CoreModel;
use serde::{Deserialize, Serialize};

/// A candidate ordering of the eviction set within one loop iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PatternTemplate {
    /// The paper's Figure 1(b) shape:
    /// `A, X1..X{w-2}, X{w-1}, X1..X{w-3}, X{w}`.
    Paper,
    /// Naive cyclic thrash over all `w + 1` addresses.
    Cyclic,
    /// Paper shape with the inner runs shortened by `k` (touches fewer
    /// conflicts per iteration; may or may not still evict, depending on
    /// the policy).
    Shortened {
        /// How many conflicts to drop from each inner run.
        k: usize,
    },
}

impl PatternTemplate {
    /// All candidates tried by discovery.
    pub fn candidates() -> Vec<PatternTemplate> {
        let mut v = vec![PatternTemplate::Paper, PatternTemplate::Cyclic];
        for k in 1..=3 {
            v.push(PatternTemplate::Shortened { k });
        }
        v
    }

    /// Expands the template into a sequence of indices, where index 0 is
    /// the aggressor and index `i >= 1` is `conflicts[i - 1]`. `w` is the
    /// number of conflicts (the LLC associativity).
    pub fn expand(&self, w: usize) -> Vec<usize> {
        match *self {
            PatternTemplate::Paper => {
                let mut seq = vec![0];
                seq.extend(1..=w - 2);
                seq.push(w - 1);
                seq.extend(1..=w - 3);
                seq.push(w);
                seq
            }
            PatternTemplate::Cyclic => (0..=w).collect(),
            PatternTemplate::Shortened { k } => {
                let k = k.min(w - 4);
                let mut seq = vec![0];
                seq.extend(1..=w - 2 - k);
                seq.push(w - 1);
                seq.extend(1..=w - 3 - k);
                seq.push(w);
                seq
            }
        }
    }
}

/// A scored hammer pattern for one eviction set.
#[derive(Debug, Clone, PartialEq)]
pub struct HammerPattern {
    /// Virtual addresses in iteration order (the aggressor appears once).
    pub sequence: Vec<u64>,
    /// Template that produced it.
    pub template: PatternTemplate,
    /// Steady-state LLC misses per iteration (measured on the private
    /// simulator).
    pub misses_per_iteration: f64,
    /// Steady-state fraction of iterations in which the *aggressor* access
    /// missed (must be ~1.0 for the hammer to work).
    pub aggressor_miss_rate: f64,
    /// Estimated cycles per iteration under `CoreModel` costs.
    pub est_cycles_per_iteration: f64,
}

/// Measures one template on a fresh simulation of `config`.
///
/// `target` and `conflicts` are (virtual, physical) address pairs; the
/// measurement uses the physical side, the returned sequence the virtual.
fn measure(
    template: PatternTemplate,
    config: &HierarchyConfig,
    core: &CoreModel,
    target: (u64, u64),
    conflicts: &[(u64, u64)],
) -> HammerPattern {
    let w = conflicts.len();
    let idx_seq = template.expand(w);
    let pa = |i: usize| if i == 0 { target.1 } else { conflicts[i - 1].1 };
    let va = |i: usize| if i == 0 { target.0 } else { conflicts[i - 1].0 };

    let mut sim = CacheHierarchy::new(*config);
    let warmup = 30;
    let measured = 30;
    let mut misses = 0u64;
    let mut aggressor_misses = 0u64;
    let mut hits = 0u64;
    for iter in 0..(warmup + measured) {
        for &i in &idx_seq {
            let r = sim.access(pa(i), false);
            if iter >= warmup {
                if r.level.is_llc_miss() {
                    misses += 1;
                    if i == 0 {
                        aggressor_misses += 1;
                    }
                } else {
                    hits += 1;
                }
            }
        }
    }
    // A DRAM access costs roughly conflict latency + core overhead; use a
    // representative 180 cycles for scoring (scoring only needs relative
    // order).
    let miss_cost = 180.0 + core.miss_overhead as f64;
    let hit_cost = core.l3_hit_cost as f64;
    HammerPattern {
        sequence: idx_seq.iter().map(|&i| va(i)).collect(),
        template,
        misses_per_iteration: misses as f64 / measured as f64,
        aggressor_miss_rate: aggressor_misses as f64 / measured as f64,
        est_cycles_per_iteration: (misses as f64 * miss_cost + hits as f64 * hit_cost)
            / measured as f64,
    }
}

/// Finds the fastest hammer ordering for an eviction set: the pattern with
/// the lowest estimated cycles per iteration among those whose aggressor
/// access still misses (almost) every iteration.
///
/// # Panics
///
/// Panics if `conflicts` has fewer than 5 entries (no meaningful pattern
/// space).
pub fn discover_pattern(
    config: &HierarchyConfig,
    core: &CoreModel,
    target: (u64, u64),
    conflicts: &[(u64, u64)],
) -> HammerPattern {
    assert!(conflicts.len() >= 5, "eviction set too small for discovery");
    let mut best: Option<HammerPattern> = None;
    for template in PatternTemplate::candidates() {
        let p = measure(template, config, core, target, conflicts);
        if p.aggressor_miss_rate < 0.95 {
            continue; // not a hammer: the aggressor stays cached
        }
        let better = match &best {
            None => true,
            Some(b) => p.est_cycles_per_iteration < b.est_cycles_per_iteration,
        };
        if better {
            best = Some(p);
        }
    }
    best.unwrap_or_else(|| {
        // Cyclic always evicts (thrash); fall back to it.
        measure(PatternTemplate::Cyclic, config, core, target, conflicts)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds (va, pa) pairs that all land in LLC slice/set of `base`.
    fn same_set_addresses(config: &HierarchyConfig, n: usize) -> Vec<(u64, u64)> {
        let h = CacheHierarchy::new(*config);
        let key = h.llc_set_of(0);
        let mut out = Vec::new();
        let mut pa = 0u64;
        while out.len() < n {
            if h.llc_set_of(pa) == key {
                out.push((pa + 0x10_0000_0000, pa)); // distinct va alias
            }
            pa += 64;
        }
        out
    }

    #[test]
    fn paper_template_shape_matches_figure_1b() {
        let seq = PatternTemplate::Paper.expand(12);
        // A, X1..X10, X11, X1..X9, X12
        assert_eq!(seq.len(), 1 + 10 + 1 + 9 + 1);
        assert_eq!(seq[0], 0);
        assert_eq!(seq[11], 11);
        assert_eq!(*seq.last().unwrap(), 12);
        assert_eq!(seq.iter().filter(|&&i| i == 0).count(), 1);
    }

    #[test]
    fn cyclic_pattern_thrashes() {
        let config = HierarchyConfig::sandy_bridge_i5_2540m();
        let addrs = same_set_addresses(&config, 13);
        let p = measure(
            PatternTemplate::Cyclic,
            &config,
            &CoreModel::sandy_bridge(),
            addrs[0],
            &addrs[1..],
        );
        // Bit-PLRU is not true LRU: cyclic traffic over ways+1 lines
        // misses on many accesses but does NOT reliably evict the one
        // address you care about — exactly the paper's observation that
        // "access patterns that assume true LRU replacement policy often
        // do not result in misses on the required target addresses".
        assert!(
            p.misses_per_iteration > 5.0,
            "cyclic should thrash: {}",
            p.misses_per_iteration
        );
        assert!(
            p.aggressor_miss_rate < 0.95,
            "cyclic unexpectedly reliable: {}",
            p.aggressor_miss_rate
        );
    }

    #[test]
    fn discovery_beats_cyclic_on_bit_plru() {
        let config = HierarchyConfig::sandy_bridge_i5_2540m();
        let addrs = same_set_addresses(&config, 13);
        let core = CoreModel::sandy_bridge();
        let best = discover_pattern(&config, &core, addrs[0], &addrs[1..]);
        let cyclic = measure(
            PatternTemplate::Cyclic,
            &config,
            &core,
            addrs[0],
            &addrs[1..],
        );
        assert!(best.aggressor_miss_rate >= 0.95);
        assert!(
            best.est_cycles_per_iteration < cyclic.est_cycles_per_iteration,
            "discovered {:?} ({} cy) should beat cyclic ({} cy)",
            best.template,
            best.est_cycles_per_iteration,
            cyclic.est_cycles_per_iteration
        );
        // The paper reports 2 misses per iteration per set; allow a little
        // slack for L1/L2 interactions in the full hierarchy.
        assert!(
            best.misses_per_iteration <= 4.0,
            "expected a near-2-miss pattern, got {}",
            best.misses_per_iteration
        );
    }

    #[test]
    fn discovered_sequence_contains_aggressor_once() {
        let config = HierarchyConfig::sandy_bridge_i5_2540m();
        let addrs = same_set_addresses(&config, 13);
        let best = discover_pattern(&config, &CoreModel::sandy_bridge(), addrs[0], &addrs[1..]);
        let target_va = addrs[0].0;
        assert_eq!(best.sequence.iter().filter(|&&v| v == target_va).count(), 1);
    }
}
