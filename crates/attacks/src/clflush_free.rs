//! The CLFLUSH-free double-sided rowhammer attack (paper Section 2.2,
//! Figure 1b) — the paper's headline offensive contribution.
//!
//! Instead of flushing the aggressor lines, the attack evicts them from
//! the inclusive last-level cache by touching an eviction set in an order
//! tuned to the (reverse-engineered) Bit-PLRU replacement policy, so that
//! each iteration misses only on the aggressor and one conflict address.
//! Any program restricted to plain loads and stores can therefore hammer.

use crate::env::{Attack, AttackEnv, AttackOp};
use crate::error::AttackError;
use crate::eviction::build_eviction_set;
use crate::pattern::{discover_pattern, HammerPattern};
use crate::rowfind::find_aggressor_pairs;
use anvil_dram::DramLocation;
use anvil_mem::AccessKind;

const MB: u64 = 1 << 20;

#[derive(Debug)]
struct Prepared {
    ops: Vec<AttackOp>,
    cursor: usize,
    aggressors: Vec<u64>,
    victims: Vec<u64>,
    patterns: (HammerPattern, HammerPattern),
}

/// The CLFLUSH-free double-sided attack.
#[derive(Debug)]
pub struct ClflushFreeDoubleSided {
    arena_bytes: u64,
    pair_index: usize,
    prepared: Option<Prepared>,
}

impl ClflushFreeDoubleSided {
    /// Creates the attack with the default 24 MB arena (large enough to
    /// find aggressor pairs *and* build two 12-way eviction sets).
    pub fn new() -> Self {
        ClflushFreeDoubleSided {
            arena_bytes: 24 * MB,
            pair_index: 0,
            prepared: None,
        }
    }

    /// Selects which discovered aggressor pair to hammer.
    #[must_use]
    pub fn with_pair_index(mut self, index: usize) -> Self {
        self.pair_index = index;
        self
    }

    /// Overrides the arena size.
    #[must_use]
    pub fn with_arena_bytes(mut self, bytes: u64) -> Self {
        self.arena_bytes = bytes;
        self
    }

    /// The discovered eviction patterns (after `prepare`): one per
    /// aggressor. Used by the experiment harness to report the pattern's
    /// cost, mirroring the paper's 880-cycle estimate.
    pub fn patterns(&self) -> Option<(&HammerPattern, &HammerPattern)> {
        self.prepared
            .as_ref()
            .map(|p| (&p.patterns.0, &p.patterns.1))
    }
}

impl Default for ClflushFreeDoubleSided {
    fn default() -> Self {
        Self::new()
    }
}

impl Attack for ClflushFreeDoubleSided {
    fn name(&self) -> &'static str {
        "clflush-free-double-sided"
    }

    fn prepare(&mut self, env: &mut AttackEnv<'_>) -> Result<(), AttackError> {
        let va = env.process.mmap(self.arena_bytes, env.frames)?;
        let mapping = *env.sys.dram().mapping();
        let pairs = find_aggressor_pairs(
            env.process,
            env.pagemap,
            &mapping,
            va,
            self.arena_bytes,
            self.pair_index + 1,
        )?;
        let pair = *pairs
            .get(self.pair_index)
            .ok_or(AttackError::NoAggressorPair)?;

        // Build one eviction set per aggressor and tune the access order
        // against a private simulation of the hierarchy.
        let hierarchy_config = *env.sys.hierarchy().config();
        let core = env.sys.config().core;
        let mut patterns = Vec::new();
        for target_va in [pair.below_va, pair.above_va] {
            let set = build_eviction_set(
                env.process,
                env.pagemap,
                env.sys.hierarchy(),
                va,
                self.arena_bytes,
                target_va,
            )?;
            let target_pa = env
                .process
                .pagemap(target_va, env.pagemap)?
                .expect("mapped");
            let conflicts: Vec<(u64, u64)> = set
                .conflict_vas
                .iter()
                .map(|&c| {
                    let pa = env
                        .process
                        .pagemap(c, env.pagemap)
                        .expect("policy already checked")
                        .expect("mapped");
                    (c, pa)
                })
                .collect();
            patterns.push(discover_pattern(
                &hierarchy_config,
                &core,
                (target_va, target_pa),
                &conflicts,
            ));
        }
        let below_pattern = patterns.remove(0);
        let above_pattern = patterns.remove(0);

        // One iteration interleaves the two per-set patterns, hammering
        // each aggressor exactly once (Figure 1b).
        let mut ops = Vec::new();
        for p in [&below_pattern, &above_pattern] {
            ops.extend(p.sequence.iter().map(|&vaddr| AttackOp::Access {
                vaddr,
                kind: AccessKind::Read,
            }));
        }

        let victim_pa = mapping.address_of(DramLocation {
            bank: pair.victim.bank,
            row: pair.victim.row,
            col: 0,
        });
        self.prepared = Some(Prepared {
            ops,
            cursor: 0,
            aggressors: vec![pair.below_pa, pair.above_pa],
            victims: vec![victim_pa],
            patterns: (below_pattern, above_pattern),
        });
        Ok(())
    }

    fn next_op(&mut self) -> AttackOp {
        let p = self.prepared.as_mut().expect("prepare the attack first");
        let op = p.ops[p.cursor];
        p.cursor = (p.cursor + 1) % p.ops.len();
        op
    }

    fn aggressor_paddrs(&self) -> Vec<u64> {
        self.prepared
            .as_ref()
            .map_or(Vec::new(), |p| p.aggressors.clone())
    }

    fn victim_paddrs(&self) -> Vec<u64> {
        self.prepared
            .as_ref()
            .map_or(Vec::new(), |p| p.victims.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anvil_mem::{
        AllocationPolicy, FrameAllocator, MemoryConfig, MemorySystem, PagemapPolicy, Process,
    };

    fn prepared_attack() -> (MemorySystem, Process, ClflushFreeDoubleSided) {
        let mut sys = MemorySystem::new(MemoryConfig::paper_platform());
        let mut frames = FrameAllocator::new(sys.phys().capacity(), AllocationPolicy::Contiguous);
        let mut process = Process::new(100, "attacker");
        let mut attack = ClflushFreeDoubleSided::new();
        attack
            .prepare(&mut AttackEnv {
                sys: &mut sys,
                process: &mut process,
                frames: &mut frames,
                pagemap: PagemapPolicy::Open,
            })
            .unwrap();
        (sys, process, attack)
    }

    #[test]
    fn prepare_builds_two_patterns_with_no_clflush() {
        let (_sys, _p, attack) = prepared_attack();
        let (a, b) = attack.patterns().unwrap();
        assert!(a.aggressor_miss_rate >= 0.95);
        assert!(b.aggressor_miss_rate >= 0.95);
        // The whole op stream must be loads only — that is the point.
        let mut atk = attack;
        for _ in 0..200 {
            match atk.next_op() {
                AttackOp::Access { kind, .. } => assert_eq!(kind, AccessKind::Read),
                other => panic!("CLFLUSH-free attack emitted {other:?}"),
            }
        }
    }

    #[test]
    fn steady_state_misses_reach_both_aggressor_rows() {
        let (mut sys, process, mut attack) = prepared_attack();
        let map = *sys.dram().mapping();
        let agg_rows: Vec<_> = attack
            .aggressor_paddrs()
            .iter()
            .map(|&pa| map.location_of(pa).row_id())
            .collect();
        // Run a few hundred iterations; both aggressor rows must be
        // activated repeatedly (i.e. the pattern defeats the cache).
        let mut hits = [0u64; 2];
        for _ in 0..500 * 44 {
            let op = attack.next_op();
            if let Some(outcome) = crate::env::exec_op(op, &process, &mut sys) {
                if let Some(loc) = outcome.dram {
                    if let Some(i) = agg_rows.iter().position(|&r| r == loc.row_id()) {
                        hits[i] += 1;
                    }
                }
            }
        }
        assert!(hits[0] > 300, "below-aggressor activations: {hits:?}");
        assert!(hits[1] > 300, "above-aggressor activations: {hits:?}");
    }

    #[test]
    fn iteration_cost_is_in_the_papers_ballpark() {
        // Section 2.2 estimates ~880 cycles for one per-set pattern
        // (latency-weighted). Our discovered pattern should be within a
        // small factor per set.
        let (_sys, _p, attack) = prepared_attack();
        let (a, b) = attack.patterns().unwrap();
        for p in [a, b] {
            assert!(
                (300.0..2000.0).contains(&p.est_cycles_per_iteration),
                "per-set iteration estimate {} out of range",
                p.est_cycles_per_iteration
            );
        }
    }

    #[test]
    fn needs_pagemap() {
        let mut sys = MemorySystem::new(MemoryConfig::paper_platform());
        let mut frames = FrameAllocator::new(sys.phys().capacity(), AllocationPolicy::Contiguous);
        let mut process = Process::new(100, "attacker");
        let mut attack = ClflushFreeDoubleSided::new();
        let err = attack
            .prepare(&mut AttackEnv {
                sys: &mut sys,
                process: &mut process,
                frames: &mut frames,
                pagemap: PagemapPolicy::Restricted,
            })
            .unwrap_err();
        assert_eq!(err, AttackError::PagemapDenied);
    }
}
