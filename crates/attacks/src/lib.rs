#![warn(missing_docs)]

//! # anvil-attacks
//!
//! The rowhammer attacks from the ANVIL paper (ASPLOS 2016), implemented
//! against the simulated Sandy Bridge platform:
//!
//! * [`SingleSidedClflush`] and [`DoubleSidedClflush`] — the classic
//!   CLFLUSH-based attacks (Section 2.1, Figure 1a), including the
//!   demonstration that they beat the vendors' doubled refresh rate.
//! * [`ClflushFreeDoubleSided`] — the paper's first-of-its-kind
//!   CLFLUSH-free attack (Section 2.2, Figure 1b): pagemap-driven
//!   eviction-set construction plus a Bit-PLRU-tuned access order that
//!   misses only on the aggressor and one conflict per iteration.
//!
//! Attacks implement the [`Attack`] trait: `prepare` maps memory and
//! locates aggressor/victim rows, `next_op` yields the endless hammer
//! loop. Run them standalone with [`StandaloneHarness`] +
//! [`hammer_until_flip`], or under the ANVIL detector via the platform in
//! `anvil-core`.
//!
//! ## Quick start
//!
//! ```
//! use anvil_attacks::{DoubleSidedClflush, StandaloneHarness, hammer_until_flip, Attack};
//! use anvil_mem::{AllocationPolicy, MemoryConfig};
//!
//! let mut harness = StandaloneHarness::new(
//!     MemoryConfig::paper_platform(),
//!     AllocationPolicy::Contiguous,
//! );
//! let mut attack = DoubleSidedClflush::new();
//! harness.prepare(&mut attack)?;
//! let result = hammer_until_flip(&mut attack, &mut harness, 250_000);
//! println!("flipped: {} after {} aggressor accesses", result.flipped, result.aggressor_accesses);
//! # Ok::<(), anvil_attacks::AttackError>(())
//! ```

mod clflush;
mod clflush_free;
mod env;
mod error;
mod eviction;
mod pattern;
mod rowfind;
mod runner;
mod timing;
mod timing_attack;

pub use clflush::{DoubleSidedClflush, SingleSidedClflush};
pub use clflush_free::ClflushFreeDoubleSided;
pub use env::{exec_op, Attack, AttackEnv, AttackOp};
pub use error::AttackError;
pub use eviction::{build_eviction_set, EvictionSet};
pub use pattern::{discover_pattern, HammerPattern, PatternTemplate};
pub use rowfind::{
    find_aggressor_pairs, find_same_bank_pair, find_same_bank_pairs, AggressorPair, SameBankPair,
};
pub use runner::{
    hammer_for_ops, hammer_until_flip, measure_hammer_rate, probe_op, uses_clflush, HammerResult,
    StandaloneHarness,
};
pub use timing::{build_eviction_set_by_timing, same_bank_by_timing, MISS_LATENCY_THRESHOLD};
pub use timing_attack::TimingClflushFree;
