//! The supervisor loop: crash capture, bounded-backoff restart, and
//! checkpoint-based recovery.
//!
//! The real ANVIL kernel module runs under the kernel's own lifecycle
//! management: a panic in the detector thread kills it, a watchdog or
//! operator reloads it, and the module resumes from whatever state it
//! persisted. [`Supervisor`] reproduces that loop around
//! [`AnvilDetector`]:
//!
//! * every service call runs under [`std::panic::catch_unwind`], so a
//!   detector panic (injected via [`LifecycleInjector`] or a genuine
//!   bug) is contained instead of unwinding the host;
//! * after a crash the supervisor waits out a bounded exponential
//!   backoff, then restores from the last checkpoint bytes — falling
//!   back to a **cold start** when the checkpoint is corrupt,
//!   version-mismatched, or from a different config — and reports the
//!   downtime gap so the caller can run the recovery protocol's blanket
//!   refresh over it;
//! * hot reloads are queued and applied atomically at the next stage-1
//!   window boundary via [`AnvilDetector::reconfigure`], never tearing
//!   down an armed stage-2 window and never losing ledger evidence.
//!
//! The supervisor deliberately does **not** own the DRAM: selective and
//! blanket refreshes are physical actions of the platform hosting it, so
//! recovery reports say *what* must be refreshed and the caller applies
//! it (the soak engine in [`crate::soak`] does exactly that).

use std::panic::{catch_unwind, AssertUnwindSafe};

use anvil_core::{
    AnvilConfig, AnvilDetector, ConfigError, DetectorCheckpoint, DetectorStage, QuietCheckpoint,
    QuietShadow, RuntimeError, ServiceOutcome, StateCorruption, StateSite,
};
use anvil_dram::{AddressMapping, CpuClock, Cycle};
use anvil_faults::{hash64, LifecycleInjector, ServiceDraws};
use anvil_pmu::Pmu;
use serde::{Deserialize, Serialize};

/// Supervisor policy: restart budget, backoff bounds, checkpoint cadence.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RuntimeConfig {
    /// Consecutive crashes tolerated before the supervisor gives up with
    /// [`RuntimeError::RestartBudgetExhausted`]. A successful service
    /// resets the count.
    pub restart_budget: u32,
    /// Downtime of the first restart, in cycles.
    pub backoff_base: Cycle,
    /// Downtime ceiling, in cycles: backoff doubles per consecutive
    /// crash up to this bound. Keep it under the envelope's
    /// [`downtime_budget`](anvil_core::GuaranteeEnvelope::downtime_budget)
    /// or a crash-timed attacker can flip bits inside the gap.
    pub backoff_cap: Cycle,
    /// Checkpoint every N successful services (window boundaries).
    pub checkpoint_every: u32,
    /// Slices the incremental self-state scrub divides the detector's
    /// cells into: each service verifies one slice, so every cell is
    /// checked at least once per `scrub_slices` windows. Defaults to 4.
    #[serde(default = "default_scrub_slices")]
    pub scrub_slices: u64,
    /// Whether the detector's state cells run guarded (replicated,
    /// checksummed, scrubbed — the default) or unguarded (blind replica-0
    /// reads, the ablation baseline). Re-applied after every restart, so
    /// a restore never silently re-arms the guard on a baseline run.
    #[serde(default = "default_guard_state")]
    pub guard_state: bool,
    /// Seed for deterministic restart-backoff jitter; `0` (the default)
    /// disables jitter. Co-resident domains on one machine must use
    /// *distinct* seeds so a correlated outage does not restart every
    /// detector at the same instant (thundering herd): jitter subtracts
    /// up to a quarter of the nominal gap, keeping every gap within the
    /// `backoff_cap`.
    #[serde(default)]
    pub jitter_seed: u64,
}

fn default_scrub_slices() -> u64 {
    4
}

fn default_guard_state() -> bool {
    true
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            restart_budget: 32,
            backoff_base: 50_000,
            // 4M cycles ≈ 1.5 ms at 2.6 GHz: a quarter of the hardened
            // envelope's ~16.8M-cycle downtime budget.
            backoff_cap: 4_000_000,
            checkpoint_every: 1,
            scrub_slices: default_scrub_slices(),
            guard_state: default_guard_state(),
            jitter_seed: 0,
        }
    }
}

/// Supervisor activity counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RuntimeStats {
    /// Service attempts (successful or crashed).
    pub services: u64,
    /// Detector panics captured.
    pub crashes: u64,
    /// Restarts performed (each crash under budget restarts once).
    pub restarts: u64,
    /// Restarts that could not resume from a checkpoint and cold-started.
    pub cold_starts: u64,
    /// Checkpoints written.
    pub checkpoints_written: u64,
    /// Checkpoint writes corrupted at rest by the injected fault.
    pub checkpoints_corrupted: u64,
    /// Checkpoint writes torn mid-write (only a prefix persisted).
    pub checkpoints_torn: u64,
    /// Restores that rejected the stored checkpoint (corrupt, version or
    /// config mismatch, undecodable).
    pub checkpoint_rejections: u64,
    /// Hot reloads applied at a window boundary.
    pub reloads: u64,
    /// Service calls where a queued reload had to wait for an armed
    /// stage-2 window to end.
    pub reloads_deferred: u64,
    /// Services delayed by an injected stall.
    pub stalled_services: u64,
    /// Detector state-cell corruptions repaired in place by majority
    /// vote (scrub pass or guarded read).
    #[serde(default)]
    pub state_repairs: u64,
    /// Unrepairable state-cell corruptions escalated to a cold restart
    /// from the last good checkpoint.
    #[serde(default)]
    pub state_escalations: u64,
    /// Largest single crash-to-resume downtime gap, in cycles.
    pub worst_recovery_gap: Cycle,
    /// Sum of all downtime gaps, in cycles.
    pub total_downtime: Cycle,
}

/// What happened after a crash: the gap the recovery protocol must cover.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryReport {
    /// When the detector died (the stalled service time).
    pub crashed_at: Cycle,
    /// When the restarted detector resumed watching.
    pub resumed_at: Cycle,
    /// `resumed_at − crashed_at`: the unobserved downtime. The caller
    /// must blanket-refresh every bank over this gap before trusting the
    /// no-flip guarantee again.
    pub gap: Cycle,
    /// Whether recovery fell back to a cold start (no usable checkpoint).
    pub cold_start: bool,
    /// Why the stored checkpoint was rejected, when it was.
    pub checkpoint_error: Option<RuntimeError>,
}

/// The result of one supervised service call.
#[derive(Debug, Clone, PartialEq)]
pub enum SupervisedOutcome {
    /// The detector serviced its window normally.
    Serviced {
        /// The detector's verdict.
        outcome: ServiceOutcome,
        /// When the service actually ran (deadline plus any injected
        /// stall).
        serviced_at: Cycle,
    },
    /// The detector crashed; it has been restarted and the caller must
    /// apply the recovery protocol (blanket refresh over the gap).
    Restarted(RecoveryReport),
}

/// A checkpoint as held in (simulated) stable storage.
///
/// Serializing every write is the single largest cost of a soak-scale
/// campaign, so clean checkpoints stay in decoded form: a
/// [`DetectorCheckpoint`] round-trips bit-exactly through its byte
/// encoding (`from_bytes(to_bytes(c)) == Ok(c)`, pinned by the
/// checkpoint tests), which makes the decoded form observationally
/// identical to re-reading the bytes. Only a write the at-rest
/// corruption fault actually hits materializes bytes, because recovery
/// must then see the flipped bit exactly as storage would present it.
#[derive(Debug)]
enum StoredCheckpoint {
    /// Written clean: kept decoded, serialization deferred forever.
    Clean(DetectorCheckpoint),
    /// Corrupted at rest: the bytes recovery will read back.
    Bytes(Vec<u8>),
}

/// Supervised detector runtime: owns the live [`AnvilDetector`], its
/// checkpoint bytes, the queued hot reload, and the lifecycle fault
/// injector.
#[derive(Debug)]
pub struct Supervisor {
    config: AnvilConfig,
    runtime: RuntimeConfig,
    clock: CpuClock,
    refresh_period: Cycle,
    detector: AnvilDetector,
    /// Last checkpoint as written to (simulated) stable storage — what a
    /// restart reads back, so at-rest corruption is visible to recovery
    /// exactly once.
    checkpoint: Option<StoredCheckpoint>,
    pending_reload: Option<AnvilConfig>,
    faults: Option<LifecycleInjector>,
    stats: RuntimeStats,
    services_since_checkpoint: u32,
    consecutive_crashes: u32,
    scrub_cursor: u64,
    /// Typed corruption reports retained for
    /// [`drain_state_corruptions`](Self::drain_state_corruptions); empty
    /// unless something is actually corrupting state cells.
    corruption_log: Vec<StateCorruption>,
    /// The event-driven engine's open quiet-run shadow: while `Some`, the
    /// detector's guarded carry/phase/scale cells are stale and the shadow
    /// holds the live values. Flushed by [`sync_quiet`](Self::sync_quiet)
    /// before anything observes detector state.
    quiet: Option<QuietShadow>,
    /// A clean checkpoint write deferred by the quiet path: the snapshot's
    /// fields, materialized into a full [`DetectorCheckpoint`] only when
    /// something could read it back (a crash, a fallback, run end).
    deferred_checkpoint: Option<QuietCheckpoint>,
    /// Whether no external corruption has ever been landed on the
    /// detector's state cells ([`corrupt_state_cell`]); while true, a
    /// scrub slice over the cells is a guaranteed no-op and the quiet
    /// path advances the scrub cursor without touching them.
    ///
    /// [`corrupt_state_cell`]: Self::corrupt_state_cell
    state_pristine: bool,
}

impl Supervisor {
    /// Boots a detector under supervision at time `now` and writes its
    /// first checkpoint.
    ///
    /// # Panics
    ///
    /// Panics if `config` fails [`AnvilConfig::validate`] (same contract
    /// as [`AnvilDetector::new`]).
    pub fn new(
        config: AnvilConfig,
        runtime: RuntimeConfig,
        clock: CpuClock,
        refresh_period: Cycle,
        now: Cycle,
        pmu: &mut Pmu,
    ) -> Self {
        let mut detector = AnvilDetector::new(config, &clock, refresh_period, now, pmu);
        detector.set_state_guard(runtime.guard_state);
        let mut sup = Supervisor {
            config,
            runtime,
            clock,
            refresh_period,
            detector,
            checkpoint: None,
            pending_reload: None,
            faults: None,
            stats: RuntimeStats::default(),
            services_since_checkpoint: 0,
            consecutive_crashes: 0,
            scrub_cursor: 0,
            corruption_log: Vec::new(),
            quiet: None,
            deferred_checkpoint: None,
            state_pristine: true,
        };
        sup.write_checkpoint(pmu);
        sup
    }

    /// Installs (or clears) the lifecycle fault injector. Draws happen in
    /// a fixed order — stall, crash, then one corruption draw per
    /// checkpoint write — so a given injector stream replays the same
    /// schedule.
    pub fn set_faults(&mut self, faults: Option<LifecycleInjector>) {
        self.faults = faults;
    }

    /// The live detector.
    pub fn detector(&self) -> &AnvilDetector {
        &self.detector
    }

    /// The next service deadline.
    pub fn deadline(&self) -> Cycle {
        self.detector.deadline()
    }

    /// Supervisor counters.
    pub fn stats(&self) -> &RuntimeStats {
        &self.stats
    }

    /// The active configuration.
    pub fn config(&self) -> &AnvilConfig {
        &self.config
    }

    /// Queues a validated configuration for atomic swap-in at the next
    /// stage-1 window boundary. Rejects invalid configs immediately; a
    /// valid one replaces any previously queued reload.
    pub fn request_reload(&mut self, config: AnvilConfig) -> Result<(), ConfigError> {
        config.validate()?;
        self.pending_reload = Some(config);
        Ok(())
    }

    /// Whether a reload is queued but not yet applied.
    pub fn reload_pending(&self) -> bool {
        self.pending_reload.is_some()
    }

    /// Services the expired window at `now` (the deadline) under
    /// supervision: injects stalls and crashes, captures panics, and
    /// recovers.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::RestartBudgetExhausted`] when consecutive crashes
    /// exceed [`RuntimeConfig::restart_budget`]; the detector is left in
    /// its pre-crash state and the supervisor stops restarting.
    pub fn service(
        &mut self,
        now: Cycle,
        pmu: &mut Pmu,
        mapping: &AddressMapping,
        translate: &mut dyn FnMut(u32, u64) -> Option<u64>,
    ) -> Result<SupervisedOutcome, RuntimeError> {
        // Leaving the quiet fast path: make the detector's cells and the
        // stored checkpoint current before the full machinery looks.
        self.sync_quiet();
        // Self-integrity pass first: verify one slice of the detector's
        // own cells before trusting it with another window. Consumes no
        // fault draws, so lifecycle schedules are unchanged; unrepairable
        // state escalates to a cold restart from the last good checkpoint
        // instead of servicing with untrusted decisions.
        if let Some(out) = self.scrub_self_state(now, pmu) {
            return Ok(out);
        }
        let stall = self
            .faults
            .as_mut()
            .map_or(0, LifecycleInjector::stall_cycles);
        if stall > 0 {
            self.stats.stalled_services = self.stats.stalled_services.saturating_add(1);
        }
        let crash = self
            .faults
            .as_mut()
            .is_some_and(LifecycleInjector::crash_now);
        let at = now + stall;
        self.stats.services = self.stats.services.saturating_add(1);

        let detector = &mut self.detector;
        let result = catch_unwind(AssertUnwindSafe(|| {
            assert!(!crash, "injected detector crash");
            detector.service(at, pmu, mapping, translate)
        }));
        match result {
            Ok(outcome) => {
                self.consecutive_crashes = 0;
                let reloaded = self.apply_pending_reload(at, pmu);
                self.services_since_checkpoint = self.services_since_checkpoint.saturating_add(1);
                if reloaded || self.services_since_checkpoint >= self.runtime.checkpoint_every {
                    self.write_checkpoint(pmu);
                }
                Ok(SupervisedOutcome::Serviced {
                    outcome,
                    serviced_at: at,
                })
            }
            Err(_) => self.recover(at, pmu),
        }
    }

    /// The event-driven engine's quiet-window fast path: services a
    /// stage-1 window whose miss total is already known **without**
    /// `catch_unwind`, guarded-cell traffic, PMU counter reads, or
    /// checkpoint serialization — those costs dominate
    /// [`service`](Self::service) and none of them is observable across a
    /// benign window. Carry/phase/scale live in a register-resident
    /// [`QuietShadow`]; clean checkpoint writes are deferred and
    /// materialized lazily by [`sync_quiet`](Self::sync_quiet).
    ///
    /// Returns `None` when this window needs the full path (detector not
    /// in stage 1, the window would trip, a reload is queued, or state
    /// cells are no longer pristine) — the caller then invokes `service`
    /// with identical arguments and gets a byte-identical outcome, with
    /// every lifecycle fault draw consumed in the same order
    /// ([`LifecycleInjector::service_draws`] is shared by both paths).
    ///
    /// # Errors
    ///
    /// As [`service`](Self::service): `Some(Err(_))` when an injected
    /// crash exhausts the restart budget.
    pub fn service_quiet(
        &mut self,
        now: Cycle,
        misses: u64,
        pmu: &mut Pmu,
    ) -> Option<Result<SupervisedOutcome, RuntimeError>> {
        if !self.state_pristine || self.pending_reload.is_some() {
            self.sync_quiet();
            return None;
        }
        if self.quiet.is_none() {
            // Opens a shadow only in stage 1 (miss counting).
            self.quiet = self.detector.quiet_shadow();
        }
        let shadow = self.quiet.as_ref()?;
        // Peek the trip decision before consuming any draw: a tripping
        // window takes the full path, which re-derives the same decision
        // from the flushed cells.
        if self.detector.quiet_trips(shadow, misses) {
            self.sync_quiet();
            return None;
        }
        // The scrub slice over pristine cells finds nothing by
        // construction; only the cursor advance is observable.
        if self.runtime.guard_state {
            self.scrub_cursor = (self.scrub_cursor + 1) % self.runtime.scrub_slices.max(1);
        }
        let draws = self.faults.as_mut().map_or(
            ServiceDraws {
                stall: 0,
                crash: false,
            },
            LifecycleInjector::service_draws,
        );
        if draws.stall > 0 {
            self.stats.stalled_services = self.stats.stalled_services.saturating_add(1);
        }
        let at = now + draws.stall;
        self.stats.services = self.stats.services.saturating_add(1);
        if draws.crash {
            // The detector is replaced (or, on budget exhaustion, left in
            // its pre-crash state for inspection): flush the shadow and
            // materialize the deferred checkpoint first, so recovery reads
            // exactly what the per-op path would have persisted.
            self.sync_quiet();
            return Some(self.recover(at, pmu));
        }
        let mut shadow = self.quiet.take().expect("checked above");
        let outcome = self.detector.quiet_step(&mut shadow, at, misses);
        self.quiet = Some(shadow);
        self.consecutive_crashes = 0;
        self.services_since_checkpoint = self.services_since_checkpoint.saturating_add(1);
        if self.services_since_checkpoint >= self.runtime.checkpoint_every {
            self.defer_checkpoint(pmu);
        }
        Some(Ok(SupervisedOutcome::Serviced {
            outcome,
            serviced_at: at,
        }))
    }

    /// Closes the quiet fast path: flushes the shadow back into the
    /// detector's guarded cells and materializes any deferred clean
    /// checkpoint. Idempotent; a no-op when the fast path is not open.
    fn sync_quiet(&mut self) {
        if let Some(shadow) = self.quiet.take() {
            self.detector.quiet_flush(&shadow);
        }
        if let Some(q) = self.deferred_checkpoint.take() {
            self.checkpoint = Some(StoredCheckpoint::Clean(
                self.detector.materialize_quiet_checkpoint(&q),
            ));
        }
    }

    /// The quiet path's checkpoint write: draws the corruption and tear
    /// chances in [`write_checkpoint`](Self::write_checkpoint)'s exact
    /// order, but defers the (dominant) snapshot construction when both
    /// miss — a deferred clean checkpoint is observationally identical
    /// because only a restore ever reads it, and `sync_quiet` materializes
    /// it before any restore can happen. A fault firing forces immediate
    /// materialization so the flipped/torn bytes exist exactly as storage
    /// would present them.
    fn defer_checkpoint(&mut self, pmu: &Pmu) {
        let shadow = self.quiet.as_ref().expect("quiet path is open");
        let q = QuietCheckpoint {
            deadline: self.detector.deadline(),
            stats: *self.detector.stats(),
            carry: shadow.carry,
            phase_state: shadow.phase,
            window_scale: shadow.scale,
            pebs_jitter: pmu.sampler().jitter_state(),
        };
        self.stats.checkpoints_written = self.stats.checkpoints_written.saturating_add(1);
        let corrupted = self
            .faults
            .as_mut()
            .is_some_and(LifecycleInjector::corrupt_fires);
        let torn = self
            .faults
            .as_mut()
            .is_some_and(LifecycleInjector::tear_fires);
        if corrupted || torn {
            let mut bytes = self.detector.materialize_quiet_checkpoint(&q).to_bytes();
            let faults = self
                .faults
                .as_mut()
                .expect("a fault fired, so an injector is installed");
            if corrupted {
                faults.corrupt_in_place(&mut bytes);
                self.stats.checkpoints_corrupted =
                    self.stats.checkpoints_corrupted.saturating_add(1);
            }
            if torn {
                faults.tear_in_place(&mut bytes);
                self.stats.checkpoints_torn = self.stats.checkpoints_torn.saturating_add(1);
            }
            self.checkpoint = Some(StoredCheckpoint::Bytes(bytes));
            self.deferred_checkpoint = None;
        } else {
            self.deferred_checkpoint = Some(q);
        }
        self.services_since_checkpoint = 0;
    }

    /// Crash path: bounded-backoff restart from the stored checkpoint
    /// bytes, cold start when they are unusable.
    fn recover(
        &mut self,
        crashed_at: Cycle,
        pmu: &mut Pmu,
    ) -> Result<SupervisedOutcome, RuntimeError> {
        self.stats.crashes = self.stats.crashes.saturating_add(1);
        self.consecutive_crashes = self.consecutive_crashes.saturating_add(1);
        if self.consecutive_crashes > self.runtime.restart_budget {
            return Err(RuntimeError::RestartBudgetExhausted {
                restarts: self.consecutive_crashes,
                budget: self.runtime.restart_budget,
            });
        }
        let gap = self.backoff(self.consecutive_crashes);
        Ok(SupervisedOutcome::Restarted(
            self.restart_from_checkpoint(crashed_at, gap, pmu),
        ))
    }

    /// Shared restart machinery: restore from the stored checkpoint at
    /// `crashed_at + gap` (cold start when it is unusable), charge the
    /// downtime, re-apply the state-guard mode, and write a fresh
    /// checkpoint. Used by both the crash path and the self-corruption
    /// escalation path so downtime accounting is identical.
    fn restart_from_checkpoint(
        &mut self,
        crashed_at: Cycle,
        gap: Cycle,
        pmu: &mut Pmu,
    ) -> RecoveryReport {
        let resumed_at = crashed_at + gap;
        let restore = |ckpt: &DetectorCheckpoint, pmu: &mut Pmu| {
            AnvilDetector::restore(
                self.config,
                &self.clock,
                self.refresh_period,
                resumed_at,
                pmu,
                ckpt,
            )
        };
        let restored: Result<AnvilDetector, RuntimeError> = match &self.checkpoint {
            // A clean checkpoint decodes to itself (round-trip identity),
            // so the stored struct stands in for its bytes.
            Some(StoredCheckpoint::Clean(ckpt)) => restore(ckpt, pmu),
            Some(StoredCheckpoint::Bytes(bytes)) => {
                DetectorCheckpoint::from_bytes(bytes).and_then(|ckpt| restore(&ckpt, pmu))
            }
            None => Err(RuntimeError::CheckpointUndecodable),
        };
        let (detector, cold_start, checkpoint_error) = match restored {
            Ok(det) => (det, false, None),
            Err(e) => {
                self.stats.checkpoint_rejections =
                    self.stats.checkpoint_rejections.saturating_add(1);
                (
                    AnvilDetector::new(
                        self.config,
                        &self.clock,
                        self.refresh_period,
                        resumed_at,
                        pmu,
                    ),
                    true,
                    Some(e),
                )
            }
        };
        self.detector = detector;
        // Restored detectors boot guarded; the baseline arm must stay
        // unguarded across restarts.
        self.detector.set_state_guard(self.runtime.guard_state);
        self.stats.restarts = self.stats.restarts.saturating_add(1);
        if cold_start {
            self.stats.cold_starts = self.stats.cold_starts.saturating_add(1);
        }
        self.stats.total_downtime = self.stats.total_downtime.saturating_add(gap);
        self.stats.worst_recovery_gap = self.stats.worst_recovery_gap.max(gap);
        // Replace the (possibly corrupt) stored checkpoint with a fresh
        // snapshot of the recovered state.
        self.write_checkpoint(pmu);
        RecoveryReport {
            crashed_at,
            resumed_at,
            gap,
            cold_start,
            checkpoint_error,
        }
    }

    /// Runs this service's slice of the incremental state scrub and
    /// accounts every surfaced corruption: repaired ones are counted and
    /// absorbed, an unrepairable one escalates to a cold restart from the
    /// last good checkpoint (returned as a [`SupervisedOutcome::Restarted`]
    /// whose gap the caller's recovery protocol must cover, exactly like
    /// a crash). Returns `None` when the detector state is trusted and
    /// the window service should proceed.
    fn scrub_self_state(&mut self, now: Cycle, pmu: &mut Pmu) -> Option<SupervisedOutcome> {
        if !self.runtime.guard_state {
            return None;
        }
        let slices = self.runtime.scrub_slices.max(1);
        self.detector.scrub_state_slice(self.scrub_cursor, slices);
        self.scrub_cursor = (self.scrub_cursor + 1) % slices;
        let escalate = self.fold_corruptions();
        if !escalate {
            return None;
        }
        // The live state lied to us once; none of it is trusted. Pay one
        // base backoff of declared downtime and reload the last good
        // checkpoint.
        let gap = self.backoff(1);
        Some(SupervisedOutcome::Restarted(
            self.restart_from_checkpoint(now, gap, pmu),
        ))
    }

    /// Drains the detector's typed corruption reports into the runtime
    /// counters and the retained log, returning whether any report was
    /// unrepairable (the caller escalates).
    fn fold_corruptions(&mut self) -> bool {
        let mut escalate = false;
        for c in self.detector.take_state_corruptions() {
            if c.repaired {
                self.stats.state_repairs = self.stats.state_repairs.saturating_add(1);
            } else {
                self.stats.state_escalations = self.stats.state_escalations.saturating_add(1);
                escalate = true;
            }
            self.corruption_log.push(c);
        }
        escalate
    }

    /// Drains the typed [`StateCorruption`] reports accumulated by the
    /// incremental scrub (and by guarded in-service reads) since the
    /// last drain. Campaigns reconcile these against the corruption they
    /// injected, so "repaired or escalated, never silently absorbed" is
    /// checkable per site rather than inferred from counters.
    pub fn drain_state_corruptions(&mut self) -> Vec<StateCorruption> {
        std::mem::take(&mut self.corruption_log)
    }

    /// End-of-run integrity sweep: scrubs every state cell at once,
    /// folds anything found into the counters (an unrepairable cell at
    /// teardown is counted as an escalation but no longer restarts —
    /// the run is over), and returns the full retained corruption log.
    pub fn scrub_state_final(&mut self) -> Vec<StateCorruption> {
        self.sync_quiet();
        if self.runtime.guard_state {
            self.detector.scrub_state_all();
            self.fold_corruptions();
        }
        self.drain_state_corruptions()
    }

    /// Exponential backoff for the `n`-th consecutive crash, clamped to
    /// `[backoff_base, backoff_cap]`, minus deterministic seeded jitter
    /// (up to a quarter of the nominal gap) when `jitter_seed` is set —
    /// co-resident domains seeded distinctly restart at distinct
    /// instants after a correlated outage instead of thundering back in
    /// lockstep.
    fn backoff(&self, n: u32) -> Cycle {
        let doublings = n.saturating_sub(1).min(32);
        let nominal = self
            .runtime
            .backoff_base
            .saturating_mul(1u64 << doublings)
            .min(self.runtime.backoff_cap)
            .max(1);
        if self.runtime.jitter_seed == 0 {
            return nominal;
        }
        let jitter = hash64(self.runtime.jitter_seed ^ u64::from(n)) % (nominal / 4 + 1);
        (nominal - jitter).max(1)
    }

    /// Applies the queued reload if the detector sits at a stage-1
    /// boundary; returns whether a swap happened.
    fn apply_pending_reload(&mut self, now: Cycle, pmu: &mut Pmu) -> bool {
        let Some(config) = self.pending_reload else {
            return false;
        };
        if self.detector.stage() != DetectorStage::MissCount {
            self.stats.reloads_deferred = self.stats.reloads_deferred.saturating_add(1);
            return false;
        }
        self.detector
            .reconfigure(config, &self.clock, now, pmu)
            .expect("queued reload was validated and the stage checked");
        self.config = config;
        self.pending_reload = None;
        self.stats.reloads = self.stats.reloads.saturating_add(1);
        true
    }

    /// Snapshots the live detector to stored-checkpoint form, applying
    /// the at-rest corruption and torn-write faults when they fire.
    ///
    /// Both chances are drawn on every write in a fixed order —
    /// corruption, then tear — keeping the injector's draw schedule
    /// identical to the always-serialize implementation (a disabled
    /// source consumes nothing). Bytes are materialized only when a
    /// fault fires — see [`StoredCheckpoint`].
    fn write_checkpoint(&mut self, pmu: &Pmu) {
        let ckpt = self.detector.checkpoint(pmu);
        self.stats.checkpoints_written = self.stats.checkpoints_written.saturating_add(1);
        let corrupted = self
            .faults
            .as_mut()
            .is_some_and(LifecycleInjector::corrupt_fires);
        let torn = self
            .faults
            .as_mut()
            .is_some_and(LifecycleInjector::tear_fires);
        self.checkpoint = Some(if corrupted || torn {
            let mut bytes = ckpt.to_bytes();
            let faults = self
                .faults
                .as_mut()
                .expect("a fault fired, so an injector is installed");
            if corrupted {
                faults.corrupt_in_place(&mut bytes);
                self.stats.checkpoints_corrupted =
                    self.stats.checkpoints_corrupted.saturating_add(1);
            }
            if torn {
                faults.tear_in_place(&mut bytes);
                self.stats.checkpoints_torn = self.stats.checkpoints_torn.saturating_add(1);
            }
            StoredCheckpoint::Bytes(bytes)
        } else {
            StoredCheckpoint::Clean(ckpt)
        });
        self.services_since_checkpoint = 0;
    }

    /// Forces the next service call to crash (consuming no probabilistic
    /// draw), modelling an external kill such as a machine outage. A
    /// no-op when no injector is installed.
    pub fn force_crash(&mut self) {
        if let Some(faults) = self.faults.as_mut() {
            faults.force_crash();
        }
    }

    /// Number of addressable state cells in the live detector (scalar
    /// accumulators plus two per ledger entry); the index space for
    /// [`Supervisor::corrupt_state_cell`].
    pub fn state_cell_count(&self) -> usize {
        self.detector.state_cell_count()
    }

    /// Flips `bit` in the replicas selected by `replica_mask` of state
    /// cell `index` — the hook the self-defense campaign uses to land
    /// physically modelled disturbance flips on the supervised detector's
    /// own state. Returns the site hit, or `None` if `index` is out of
    /// range.
    pub fn corrupt_state_cell(
        &mut self,
        index: usize,
        replica_mask: u8,
        bit: u8,
    ) -> Option<StateSite> {
        // Corruption must land on the real cells, and from here on the
        // quiet path's "scrubs find nothing" shortcut is off for good.
        self.sync_quiet();
        self.state_pristine = false;
        self.detector.corrupt_state_cell(index, replica_mask, bit)
    }
}

/// Replaces the process panic hook with one that stays silent, so
/// campaign binaries injecting thousands of detector crashes do not spam
/// stderr with panic reports. Call once at startup; unit tests should
/// leave the default hook installed.
pub fn install_quiet_panic_hook() {
    std::panic::set_hook(Box::new(|_| {}));
}

#[cfg(test)]
mod tests {
    use super::*;
    use anvil_dram::DramGeometry;
    use anvil_faults::{FaultRng, LifecycleFaults};
    use anvil_pmu::SamplerConfig;

    const CLOCK: CpuClock = CpuClock::SANDY_BRIDGE_2_6GHZ;
    const PERIOD: Cycle = 166_400_000;

    fn boot(pmu: &mut Pmu) -> Supervisor {
        Supervisor::new(
            AnvilConfig::hardened(),
            RuntimeConfig::default(),
            CLOCK,
            PERIOD,
            0,
            pmu,
        )
    }

    fn crashy(crash_rate: f64) -> LifecycleInjector {
        LifecycleInjector::new(
            LifecycleFaults {
                crash_rate,
                stall_rate: 0.0,
                max_stall: 0,
                corrupt_rate: 0.0,
            },
            FaultRng::new(11).fork(5),
        )
    }

    #[test]
    fn faultless_supervision_is_transparent() {
        let mapping = AddressMapping::new(DramGeometry::ddr3_4gb());
        let mut pmu = Pmu::new(SamplerConfig::anvil_default());
        let mut sup = boot(&mut pmu);
        for _ in 0..5 {
            let d = sup.deadline();
            let out = sup
                .service(d, &mut pmu, &mapping, &mut |_, v| Some(v))
                .unwrap();
            assert!(matches!(
                out,
                SupervisedOutcome::Serviced {
                    outcome: ServiceOutcome::Quiet { .. },
                    ..
                }
            ));
        }
        assert_eq!(sup.stats().crashes, 0);
        assert_eq!(sup.stats().services, 5);
        assert_eq!(sup.detector().stats().stage1_windows, 5);
        // Boot + one checkpoint per service.
        assert_eq!(sup.stats().checkpoints_written, 6);
    }

    #[test]
    fn a_crash_restarts_from_the_checkpoint_with_a_bounded_gap() {
        let mapping = AddressMapping::new(DramGeometry::ddr3_4gb());
        let mut pmu = Pmu::new(SamplerConfig::anvil_default());
        let mut sup = boot(&mut pmu);
        // Two clean windows, then a certain crash.
        for _ in 0..2 {
            let d = sup.deadline();
            sup.service(d, &mut pmu, &mapping, &mut |_, v| Some(v))
                .unwrap();
        }
        let windows_before = sup.detector().stats().stage1_windows;
        sup.set_faults(Some(crashy(1.0)));
        let d = sup.deadline();
        let out = sup
            .service(d, &mut pmu, &mapping, &mut |_, v| Some(v))
            .unwrap();
        let SupervisedOutcome::Restarted(report) = out else {
            panic!("expected Restarted, got {out:?}");
        };
        assert_eq!(report.crashed_at, d);
        assert_eq!(report.gap, RuntimeConfig::default().backoff_base);
        assert!(!report.cold_start);
        assert!(report.checkpoint_error.is_none());
        // The restored detector kept the checkpointed evidence: two
        // completed windows, none lost.
        assert_eq!(sup.detector().stats().stage1_windows, windows_before);
        assert_eq!(sup.stats().worst_recovery_gap, report.gap);
        assert_eq!(sup.stats().total_downtime, report.gap);
        // And its next deadline is after the resume point.
        assert!(sup.deadline() > report.resumed_at);
    }

    #[test]
    fn backoff_doubles_and_clamps() {
        let mut pmu = Pmu::new(SamplerConfig::anvil_default());
        let sup = boot(&mut pmu);
        let base = RuntimeConfig::default().backoff_base;
        let cap = RuntimeConfig::default().backoff_cap;
        assert_eq!(sup.backoff(1), base);
        assert_eq!(sup.backoff(2), 2 * base);
        assert_eq!(sup.backoff(3), 4 * base);
        assert_eq!(sup.backoff(30), cap);
        assert_eq!(sup.backoff(u32::MAX), cap);
    }

    #[test]
    fn restart_budget_exhaustion_is_a_typed_error() {
        let mapping = AddressMapping::new(DramGeometry::ddr3_4gb());
        let mut pmu = Pmu::new(SamplerConfig::anvil_default());
        let mut sup = Supervisor::new(
            AnvilConfig::hardened(),
            RuntimeConfig {
                restart_budget: 3,
                ..RuntimeConfig::default()
            },
            CLOCK,
            PERIOD,
            0,
            &mut pmu,
        );
        sup.set_faults(Some(crashy(1.0)));
        for k in 0..3 {
            let d = sup.deadline();
            let out = sup
                .service(d, &mut pmu, &mapping, &mut |_, v| Some(v))
                .unwrap();
            assert!(matches!(out, SupervisedOutcome::Restarted(_)), "crash {k}");
        }
        let d = sup.deadline();
        let err = sup
            .service(d, &mut pmu, &mapping, &mut |_, v| Some(v))
            .unwrap_err();
        assert_eq!(
            err,
            RuntimeError::RestartBudgetExhausted {
                restarts: 4,
                budget: 3
            }
        );
    }

    #[test]
    fn corrupted_checkpoint_falls_back_to_cold_start() {
        let mapping = AddressMapping::new(DramGeometry::ddr3_4gb());
        let mut pmu = Pmu::new(SamplerConfig::anvil_default());
        let mut sup = boot(&mut pmu);
        // Corrupt every checkpoint write and crash every service: the
        // restore path must reject the bytes and cold-start.
        sup.set_faults(Some(LifecycleInjector::new(
            LifecycleFaults {
                crash_rate: 1.0,
                stall_rate: 0.0,
                max_stall: 0,
                corrupt_rate: 1.0,
            },
            FaultRng::new(3).fork(5),
        )));
        // Rewrite the (pristine) boot checkpoint through the corrupting
        // injector by servicing once; the service itself crashes first,
        // so recovery still reads the pristine boot bytes...
        let d = sup.deadline();
        let out = sup
            .service(d, &mut pmu, &mapping, &mut |_, v| Some(v))
            .unwrap();
        let SupervisedOutcome::Restarted(r) = out else {
            panic!("expected Restarted, got {out:?}");
        };
        assert!(!r.cold_start, "boot checkpoint was written pristine");
        // ...but the post-recovery checkpoint was corrupted at rest, so
        // the *next* crash must reject it and cold-start.
        let d = sup.deadline();
        let out = sup
            .service(d, &mut pmu, &mapping, &mut |_, v| Some(v))
            .unwrap();
        let SupervisedOutcome::Restarted(r) = out else {
            panic!("expected Restarted, got {out:?}");
        };
        assert!(r.cold_start);
        assert!(matches!(
            r.checkpoint_error,
            Some(RuntimeError::CheckpointCorrupt { .. } | RuntimeError::CheckpointUndecodable)
        ));
        assert_eq!(sup.stats().cold_starts, 1);
        assert!(sup.stats().checkpoints_corrupted >= 1);
        // The cold-started detector is fresh: no window history.
        assert_eq!(sup.detector().stats().stage1_windows, 0);
    }

    #[test]
    fn torn_checkpoint_falls_back_to_cold_start() {
        let mapping = AddressMapping::new(DramGeometry::ddr3_4gb());
        let mut pmu = Pmu::new(SamplerConfig::anvil_default());
        let mut sup = boot(&mut pmu);
        // Tear every checkpoint write and crash every service: recovery
        // must reject the truncated bytes with a typed error and
        // cold-start, never panic.
        sup.set_faults(Some(crashy(1.0).with_torn_writes(1.0)));
        // First crash recovers from the pristine boot checkpoint, then
        // rewrites it through the tearing injector.
        let d = sup.deadline();
        let out = sup
            .service(d, &mut pmu, &mapping, &mut |_, v| Some(v))
            .unwrap();
        let SupervisedOutcome::Restarted(r) = out else {
            panic!("expected Restarted, got {out:?}");
        };
        assert!(!r.cold_start, "boot checkpoint was written pristine");
        // The second crash reads the torn bytes.
        let d = sup.deadline();
        let out = sup
            .service(d, &mut pmu, &mapping, &mut |_, v| Some(v))
            .unwrap();
        let SupervisedOutcome::Restarted(r) = out else {
            panic!("expected Restarted, got {out:?}");
        };
        assert!(r.cold_start);
        assert!(matches!(
            r.checkpoint_error,
            Some(RuntimeError::CheckpointCorrupt { .. } | RuntimeError::CheckpointUndecodable)
        ));
        assert!(sup.stats().checkpoints_torn >= 1);
        assert_eq!(sup.stats().cold_starts, 1);
    }

    #[test]
    fn forced_crashes_flow_through_the_normal_recovery_path() {
        let mapping = AddressMapping::new(DramGeometry::ddr3_4gb());
        let mut pmu = Pmu::new(SamplerConfig::anvil_default());
        let mut sup = boot(&mut pmu);
        // Without an injector the force is a no-op.
        sup.force_crash();
        let d = sup.deadline();
        let out = sup
            .service(d, &mut pmu, &mapping, &mut |_, v| Some(v))
            .unwrap();
        assert!(matches!(out, SupervisedOutcome::Serviced { .. }));
        // With a zero-rate injector installed, the forced crash fires
        // exactly once and recovers from the checkpoint.
        sup.set_faults(Some(crashy(0.0)));
        sup.force_crash();
        let d = sup.deadline();
        let out = sup
            .service(d, &mut pmu, &mapping, &mut |_, v| Some(v))
            .unwrap();
        assert!(matches!(out, SupervisedOutcome::Restarted(_)));
        let d = sup.deadline();
        let out = sup
            .service(d, &mut pmu, &mapping, &mut |_, v| Some(v))
            .unwrap();
        assert!(matches!(out, SupervisedOutcome::Serviced { .. }));
        assert_eq!(sup.stats().crashes, 1);
    }

    #[test]
    fn hot_reload_applies_at_the_boundary_and_keeps_counters() {
        let mapping = AddressMapping::new(DramGeometry::ddr3_4gb());
        let mut pmu = Pmu::new(SamplerConfig::anvil_default());
        let mut sup = boot(&mut pmu);
        let d = sup.deadline();
        sup.service(d, &mut pmu, &mapping, &mut |_, v| Some(v))
            .unwrap();
        let mut hot = AnvilConfig::hardened();
        hot.llc_miss_threshold = 18_000;
        sup.request_reload(hot).unwrap();
        assert!(sup.reload_pending());
        let stats_before = *sup.detector().stats();
        let d = sup.deadline();
        sup.service(d, &mut pmu, &mapping, &mut |_, v| Some(v))
            .unwrap();
        assert!(!sup.reload_pending());
        assert_eq!(sup.config().llc_miss_threshold, 18_000);
        assert_eq!(sup.stats().reloads, 1);
        // The swap lost no activity counters (one more window serviced).
        assert_eq!(
            sup.detector().stats().stage1_windows,
            stats_before.stage1_windows + 1
        );

        // An invalid config is rejected at request time.
        let mut bad = AnvilConfig::hardened();
        bad.llc_miss_threshold = 0;
        assert!(sup.request_reload(bad).is_err());
        assert!(!sup.reload_pending());
    }

    #[test]
    fn reload_defers_while_stage2_is_armed() {
        let mapping = AddressMapping::new(DramGeometry::ddr3_4gb());
        let mut pmu = Pmu::new(SamplerConfig::anvil_default());
        let mut sup = Supervisor::new(
            AnvilConfig::baseline(),
            RuntimeConfig::default(),
            CLOCK,
            PERIOD,
            0,
            &mut pmu,
        );
        sup.request_reload(AnvilConfig::heavy()).unwrap();
        // Trip stage 1 so the service ends with sampling armed: the
        // reload must wait.
        let d = sup.deadline();
        for i in 0..25_000u64 {
            pmu.observe_at(&crate::soak::dram_read(i * 64, 1), d - 1);
        }
        sup.service(d, &mut pmu, &mapping, &mut |_, v| Some(v))
            .unwrap();
        assert_eq!(sup.detector().stage(), DetectorStage::Sampling);
        assert!(sup.reload_pending());
        assert_eq!(sup.stats().reloads_deferred, 1);
        // The stage-2 window ends back at stage 1: now it applies.
        let d = sup.deadline();
        sup.service(d, &mut pmu, &mapping, &mut |_, v| Some(v))
            .unwrap();
        assert!(!sup.reload_pending());
        assert_eq!(sup.stats().reloads, 1);
        assert_eq!(sup.config(), &AnvilConfig::heavy());
    }

    #[test]
    fn jittered_backoff_desynchronizes_coresident_domains() {
        let mut pmu = Pmu::new(SamplerConfig::anvil_default());
        let base = RuntimeConfig::default().backoff_base;
        let boot_seeded = |seed: u64, pmu: &mut Pmu| {
            Supervisor::new(
                AnvilConfig::hardened(),
                RuntimeConfig {
                    jitter_seed: seed,
                    ..RuntimeConfig::default()
                },
                CLOCK,
                PERIOD,
                0,
                pmu,
            )
        };
        // Seed 0 (the default) is exactly the nominal schedule.
        assert_eq!(boot_seeded(0, &mut pmu).backoff(1), base);
        // Distinct seeds produce distinct restart instants after a
        // correlated outage (the thundering-herd fix for co-resident
        // fleet domains), each within a quarter-gap of nominal.
        let a = boot_seeded(1, &mut pmu).backoff(1);
        let b = boot_seeded(2, &mut pmu).backoff(1);
        assert_ne!(a, b, "distinct seeds, distinct gaps");
        for gap in [a, b] {
            assert!(gap <= base && gap >= base - base / 4, "gap {gap}");
        }
        // And the jitter is deterministic per (seed, crash count).
        assert_eq!(a, boot_seeded(1, &mut pmu).backoff(1));
    }

    #[test]
    fn a_repairable_state_flip_is_scrubbed_and_counted() {
        let mapping = AddressMapping::new(DramGeometry::ddr3_4gb());
        let mut pmu = Pmu::new(SamplerConfig::anvil_default());
        let mut sup = boot(&mut pmu);
        assert!(sup.state_cell_count() >= 4);
        // One replica of the carry cell takes a flip: the majority vote
        // must repair it within a scrub rotation, without a restart.
        assert!(sup.corrupt_state_cell(0, 0b001, 62).is_some());
        for _ in 0..RuntimeConfig::default().scrub_slices {
            let d = sup.deadline();
            let out = sup
                .service(d, &mut pmu, &mapping, &mut |_, v| Some(v))
                .unwrap();
            assert!(matches!(out, SupervisedOutcome::Serviced { .. }));
        }
        assert_eq!(sup.stats().state_repairs, 1);
        assert_eq!(sup.stats().state_escalations, 0);
        assert_eq!(sup.stats().restarts, 0);
        // Out-of-range cell indices are a typed miss, not a panic.
        assert!(sup.corrupt_state_cell(usize::MAX, 0b001, 0).is_none());
    }

    #[test]
    fn unrepairable_state_corruption_escalates_to_a_checkpoint_restart() {
        let mapping = AddressMapping::new(DramGeometry::ddr3_4gb());
        let mut pmu = Pmu::new(SamplerConfig::anvil_default());
        let mut sup = boot(&mut pmu);
        let d = sup.deadline();
        sup.service(d, &mut pmu, &mapping, &mut |_, v| Some(v))
            .unwrap();
        let windows_before = sup.detector().stats().stage1_windows;
        // Replica-correlated damage: the same bit flipped in every copy
        // of the carry cell leaves no checksummed majority.
        assert!(sup.corrupt_state_cell(0, 0b111, 5).is_some());
        let mut restarted = None;
        for _ in 0..8 {
            let d = sup.deadline();
            match sup
                .service(d, &mut pmu, &mapping, &mut |_, v| Some(v))
                .unwrap()
            {
                SupervisedOutcome::Restarted(r) => {
                    restarted = Some(r);
                    break;
                }
                SupervisedOutcome::Serviced { .. } => {}
            }
        }
        let report = restarted.expect("correlated corruption must escalate");
        assert!(sup.stats().state_escalations >= 1);
        assert_eq!(report.gap, RuntimeConfig::default().backoff_base);
        assert!(!report.cold_start, "the boot checkpoint was good");
        // The restored detector resumed from checkpointed evidence and
        // is guarded again.
        assert!(sup.detector().state_guarded());
        assert!(sup.detector().stats().stage1_windows >= windows_before);
        // And the next window services normally.
        let d = sup.deadline();
        let out = sup
            .service(d, &mut pmu, &mapping, &mut |_, v| Some(v))
            .unwrap();
        assert!(matches!(out, SupervisedOutcome::Serviced { .. }));
    }

    #[test]
    fn unguarded_supervision_never_scrubs_and_survives_restarts() {
        let mapping = AddressMapping::new(DramGeometry::ddr3_4gb());
        let mut pmu = Pmu::new(SamplerConfig::anvil_default());
        let mut sup = Supervisor::new(
            AnvilConfig::hardened(),
            RuntimeConfig {
                guard_state: false,
                ..RuntimeConfig::default()
            },
            CLOCK,
            PERIOD,
            0,
            &mut pmu,
        );
        assert!(!sup.detector().state_guarded());
        // Correlated damage that would escalate a guarded supervisor is
        // silently absorbed by the baseline: no scrub, no restart.
        sup.corrupt_state_cell(0, 0b111, 5);
        let d = sup.deadline();
        let out = sup
            .service(d, &mut pmu, &mapping, &mut |_, v| Some(v))
            .unwrap();
        assert!(matches!(out, SupervisedOutcome::Serviced { .. }));
        assert_eq!(sup.stats().state_repairs, 0);
        assert_eq!(sup.stats().state_escalations, 0);
        // A crash restart must stay unguarded: restore() boots guarded,
        // so the supervisor re-applies the configured mode.
        sup.set_faults(Some(crashy(1.0)));
        let d = sup.deadline();
        let out = sup
            .service(d, &mut pmu, &mapping, &mut |_, v| Some(v))
            .unwrap();
        assert!(matches!(out, SupervisedOutcome::Restarted(_)));
        assert!(!sup.detector().state_guarded());
    }

    #[test]
    fn stalls_delay_the_service_and_trip_the_watchdog() {
        let mapping = AddressMapping::new(DramGeometry::ddr3_4gb());
        let mut pmu = Pmu::new(SamplerConfig::anvil_default());
        let mut sup = boot(&mut pmu);
        sup.set_faults(Some(LifecycleInjector::new(
            LifecycleFaults {
                crash_rate: 0.0,
                stall_rate: 1.0,
                max_stall: 40_000,
                corrupt_rate: 0.0,
            },
            FaultRng::new(21).fork(5),
        )));
        let d = sup.deadline();
        let out = sup
            .service(d, &mut pmu, &mapping, &mut |_, v| Some(v))
            .unwrap();
        let SupervisedOutcome::Serviced { serviced_at, .. } = out else {
            panic!("expected Serviced, got {out:?}");
        };
        assert!(serviced_at > d && serviced_at <= d + 40_000);
        assert_eq!(sup.stats().stalled_services, 1);
        assert_eq!(sup.detector().stats().missed_deadlines, 1);
    }
}
