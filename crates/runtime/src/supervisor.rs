//! The supervisor loop: crash capture, bounded-backoff restart, and
//! checkpoint-based recovery.
//!
//! The real ANVIL kernel module runs under the kernel's own lifecycle
//! management: a panic in the detector thread kills it, a watchdog or
//! operator reloads it, and the module resumes from whatever state it
//! persisted. [`Supervisor`] reproduces that loop around
//! [`AnvilDetector`]:
//!
//! * every service call runs under [`std::panic::catch_unwind`], so a
//!   detector panic (injected via [`LifecycleInjector`] or a genuine
//!   bug) is contained instead of unwinding the host;
//! * after a crash the supervisor waits out a bounded exponential
//!   backoff, then restores from the last checkpoint bytes — falling
//!   back to a **cold start** when the checkpoint is corrupt,
//!   version-mismatched, or from a different config — and reports the
//!   downtime gap so the caller can run the recovery protocol's blanket
//!   refresh over it;
//! * hot reloads are queued and applied atomically at the next stage-1
//!   window boundary via [`AnvilDetector::reconfigure`], never tearing
//!   down an armed stage-2 window and never losing ledger evidence.
//!
//! The supervisor deliberately does **not** own the DRAM: selective and
//! blanket refreshes are physical actions of the platform hosting it, so
//! recovery reports say *what* must be refreshed and the caller applies
//! it (the soak engine in [`crate::soak`] does exactly that).

use std::panic::{catch_unwind, AssertUnwindSafe};

use anvil_core::{
    AnvilConfig, AnvilDetector, ConfigError, DetectorCheckpoint, DetectorStage, RuntimeError,
    ServiceOutcome,
};
use anvil_dram::{AddressMapping, CpuClock, Cycle};
use anvil_faults::LifecycleInjector;
use anvil_pmu::Pmu;
use serde::{Deserialize, Serialize};

/// Supervisor policy: restart budget, backoff bounds, checkpoint cadence.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RuntimeConfig {
    /// Consecutive crashes tolerated before the supervisor gives up with
    /// [`RuntimeError::RestartBudgetExhausted`]. A successful service
    /// resets the count.
    pub restart_budget: u32,
    /// Downtime of the first restart, in cycles.
    pub backoff_base: Cycle,
    /// Downtime ceiling, in cycles: backoff doubles per consecutive
    /// crash up to this bound. Keep it under the envelope's
    /// [`downtime_budget`](anvil_core::GuaranteeEnvelope::downtime_budget)
    /// or a crash-timed attacker can flip bits inside the gap.
    pub backoff_cap: Cycle,
    /// Checkpoint every N successful services (window boundaries).
    pub checkpoint_every: u32,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            restart_budget: 32,
            backoff_base: 50_000,
            // 4M cycles ≈ 1.5 ms at 2.6 GHz: a quarter of the hardened
            // envelope's ~16.8M-cycle downtime budget.
            backoff_cap: 4_000_000,
            checkpoint_every: 1,
        }
    }
}

/// Supervisor activity counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RuntimeStats {
    /// Service attempts (successful or crashed).
    pub services: u64,
    /// Detector panics captured.
    pub crashes: u64,
    /// Restarts performed (each crash under budget restarts once).
    pub restarts: u64,
    /// Restarts that could not resume from a checkpoint and cold-started.
    pub cold_starts: u64,
    /// Checkpoints written.
    pub checkpoints_written: u64,
    /// Checkpoint writes corrupted at rest by the injected fault.
    pub checkpoints_corrupted: u64,
    /// Checkpoint writes torn mid-write (only a prefix persisted).
    pub checkpoints_torn: u64,
    /// Restores that rejected the stored checkpoint (corrupt, version or
    /// config mismatch, undecodable).
    pub checkpoint_rejections: u64,
    /// Hot reloads applied at a window boundary.
    pub reloads: u64,
    /// Service calls where a queued reload had to wait for an armed
    /// stage-2 window to end.
    pub reloads_deferred: u64,
    /// Services delayed by an injected stall.
    pub stalled_services: u64,
    /// Largest single crash-to-resume downtime gap, in cycles.
    pub worst_recovery_gap: Cycle,
    /// Sum of all downtime gaps, in cycles.
    pub total_downtime: Cycle,
}

/// What happened after a crash: the gap the recovery protocol must cover.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryReport {
    /// When the detector died (the stalled service time).
    pub crashed_at: Cycle,
    /// When the restarted detector resumed watching.
    pub resumed_at: Cycle,
    /// `resumed_at − crashed_at`: the unobserved downtime. The caller
    /// must blanket-refresh every bank over this gap before trusting the
    /// no-flip guarantee again.
    pub gap: Cycle,
    /// Whether recovery fell back to a cold start (no usable checkpoint).
    pub cold_start: bool,
    /// Why the stored checkpoint was rejected, when it was.
    pub checkpoint_error: Option<RuntimeError>,
}

/// The result of one supervised service call.
#[derive(Debug, Clone, PartialEq)]
pub enum SupervisedOutcome {
    /// The detector serviced its window normally.
    Serviced {
        /// The detector's verdict.
        outcome: ServiceOutcome,
        /// When the service actually ran (deadline plus any injected
        /// stall).
        serviced_at: Cycle,
    },
    /// The detector crashed; it has been restarted and the caller must
    /// apply the recovery protocol (blanket refresh over the gap).
    Restarted(RecoveryReport),
}

/// A checkpoint as held in (simulated) stable storage.
///
/// Serializing every write is the single largest cost of a soak-scale
/// campaign, so clean checkpoints stay in decoded form: a
/// [`DetectorCheckpoint`] round-trips bit-exactly through its byte
/// encoding (`from_bytes(to_bytes(c)) == Ok(c)`, pinned by the
/// checkpoint tests), which makes the decoded form observationally
/// identical to re-reading the bytes. Only a write the at-rest
/// corruption fault actually hits materializes bytes, because recovery
/// must then see the flipped bit exactly as storage would present it.
#[derive(Debug)]
enum StoredCheckpoint {
    /// Written clean: kept decoded, serialization deferred forever.
    Clean(DetectorCheckpoint),
    /// Corrupted at rest: the bytes recovery will read back.
    Bytes(Vec<u8>),
}

/// Supervised detector runtime: owns the live [`AnvilDetector`], its
/// checkpoint bytes, the queued hot reload, and the lifecycle fault
/// injector.
#[derive(Debug)]
pub struct Supervisor {
    config: AnvilConfig,
    runtime: RuntimeConfig,
    clock: CpuClock,
    refresh_period: Cycle,
    detector: AnvilDetector,
    /// Last checkpoint as written to (simulated) stable storage — what a
    /// restart reads back, so at-rest corruption is visible to recovery
    /// exactly once.
    checkpoint: Option<StoredCheckpoint>,
    pending_reload: Option<AnvilConfig>,
    faults: Option<LifecycleInjector>,
    stats: RuntimeStats,
    services_since_checkpoint: u32,
    consecutive_crashes: u32,
}

impl Supervisor {
    /// Boots a detector under supervision at time `now` and writes its
    /// first checkpoint.
    ///
    /// # Panics
    ///
    /// Panics if `config` fails [`AnvilConfig::validate`] (same contract
    /// as [`AnvilDetector::new`]).
    pub fn new(
        config: AnvilConfig,
        runtime: RuntimeConfig,
        clock: CpuClock,
        refresh_period: Cycle,
        now: Cycle,
        pmu: &mut Pmu,
    ) -> Self {
        let detector = AnvilDetector::new(config, &clock, refresh_period, now, pmu);
        let mut sup = Supervisor {
            config,
            runtime,
            clock,
            refresh_period,
            detector,
            checkpoint: None,
            pending_reload: None,
            faults: None,
            stats: RuntimeStats::default(),
            services_since_checkpoint: 0,
            consecutive_crashes: 0,
        };
        sup.write_checkpoint(pmu);
        sup
    }

    /// Installs (or clears) the lifecycle fault injector. Draws happen in
    /// a fixed order — stall, crash, then one corruption draw per
    /// checkpoint write — so a given injector stream replays the same
    /// schedule.
    pub fn set_faults(&mut self, faults: Option<LifecycleInjector>) {
        self.faults = faults;
    }

    /// The live detector.
    pub fn detector(&self) -> &AnvilDetector {
        &self.detector
    }

    /// The next service deadline.
    pub fn deadline(&self) -> Cycle {
        self.detector.deadline()
    }

    /// Supervisor counters.
    pub fn stats(&self) -> &RuntimeStats {
        &self.stats
    }

    /// The active configuration.
    pub fn config(&self) -> &AnvilConfig {
        &self.config
    }

    /// Queues a validated configuration for atomic swap-in at the next
    /// stage-1 window boundary. Rejects invalid configs immediately; a
    /// valid one replaces any previously queued reload.
    pub fn request_reload(&mut self, config: AnvilConfig) -> Result<(), ConfigError> {
        config.validate()?;
        self.pending_reload = Some(config);
        Ok(())
    }

    /// Whether a reload is queued but not yet applied.
    pub fn reload_pending(&self) -> bool {
        self.pending_reload.is_some()
    }

    /// Services the expired window at `now` (the deadline) under
    /// supervision: injects stalls and crashes, captures panics, and
    /// recovers.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::RestartBudgetExhausted`] when consecutive crashes
    /// exceed [`RuntimeConfig::restart_budget`]; the detector is left in
    /// its pre-crash state and the supervisor stops restarting.
    pub fn service(
        &mut self,
        now: Cycle,
        pmu: &mut Pmu,
        mapping: &AddressMapping,
        translate: &mut dyn FnMut(u32, u64) -> Option<u64>,
    ) -> Result<SupervisedOutcome, RuntimeError> {
        let stall = self
            .faults
            .as_mut()
            .map_or(0, LifecycleInjector::stall_cycles);
        if stall > 0 {
            self.stats.stalled_services = self.stats.stalled_services.saturating_add(1);
        }
        let crash = self
            .faults
            .as_mut()
            .is_some_and(LifecycleInjector::crash_now);
        let at = now + stall;
        self.stats.services = self.stats.services.saturating_add(1);

        let detector = &mut self.detector;
        let result = catch_unwind(AssertUnwindSafe(|| {
            assert!(!crash, "injected detector crash");
            detector.service(at, pmu, mapping, translate)
        }));
        match result {
            Ok(outcome) => {
                self.consecutive_crashes = 0;
                let reloaded = self.apply_pending_reload(at, pmu);
                self.services_since_checkpoint = self.services_since_checkpoint.saturating_add(1);
                if reloaded || self.services_since_checkpoint >= self.runtime.checkpoint_every {
                    self.write_checkpoint(pmu);
                }
                Ok(SupervisedOutcome::Serviced {
                    outcome,
                    serviced_at: at,
                })
            }
            Err(_) => self.recover(at, pmu),
        }
    }

    /// Crash path: bounded-backoff restart from the stored checkpoint
    /// bytes, cold start when they are unusable.
    fn recover(
        &mut self,
        crashed_at: Cycle,
        pmu: &mut Pmu,
    ) -> Result<SupervisedOutcome, RuntimeError> {
        self.stats.crashes = self.stats.crashes.saturating_add(1);
        self.consecutive_crashes = self.consecutive_crashes.saturating_add(1);
        if self.consecutive_crashes > self.runtime.restart_budget {
            return Err(RuntimeError::RestartBudgetExhausted {
                restarts: self.consecutive_crashes,
                budget: self.runtime.restart_budget,
            });
        }
        let gap = self.backoff(self.consecutive_crashes);
        let resumed_at = crashed_at + gap;

        let restore = |ckpt: &DetectorCheckpoint, pmu: &mut Pmu| {
            AnvilDetector::restore(
                self.config,
                &self.clock,
                self.refresh_period,
                resumed_at,
                pmu,
                ckpt,
            )
        };
        let restored: Result<AnvilDetector, RuntimeError> = match &self.checkpoint {
            // A clean checkpoint decodes to itself (round-trip identity),
            // so the stored struct stands in for its bytes.
            Some(StoredCheckpoint::Clean(ckpt)) => restore(ckpt, pmu),
            Some(StoredCheckpoint::Bytes(bytes)) => {
                DetectorCheckpoint::from_bytes(bytes).and_then(|ckpt| restore(&ckpt, pmu))
            }
            None => Err(RuntimeError::CheckpointUndecodable),
        };
        let (detector, cold_start, checkpoint_error) = match restored {
            Ok(det) => (det, false, None),
            Err(e) => {
                self.stats.checkpoint_rejections =
                    self.stats.checkpoint_rejections.saturating_add(1);
                (
                    AnvilDetector::new(
                        self.config,
                        &self.clock,
                        self.refresh_period,
                        resumed_at,
                        pmu,
                    ),
                    true,
                    Some(e),
                )
            }
        };
        self.detector = detector;
        self.stats.restarts = self.stats.restarts.saturating_add(1);
        if cold_start {
            self.stats.cold_starts = self.stats.cold_starts.saturating_add(1);
        }
        self.stats.total_downtime = self.stats.total_downtime.saturating_add(gap);
        self.stats.worst_recovery_gap = self.stats.worst_recovery_gap.max(gap);
        // Replace the (possibly corrupt) stored checkpoint with a fresh
        // snapshot of the recovered state.
        self.write_checkpoint(pmu);
        Ok(SupervisedOutcome::Restarted(RecoveryReport {
            crashed_at,
            resumed_at,
            gap,
            cold_start,
            checkpoint_error,
        }))
    }

    /// Exponential backoff for the `n`-th consecutive crash, clamped to
    /// `[backoff_base, backoff_cap]`.
    fn backoff(&self, n: u32) -> Cycle {
        let doublings = n.saturating_sub(1).min(32);
        self.runtime
            .backoff_base
            .saturating_mul(1u64 << doublings)
            .min(self.runtime.backoff_cap)
            .max(1)
    }

    /// Applies the queued reload if the detector sits at a stage-1
    /// boundary; returns whether a swap happened.
    fn apply_pending_reload(&mut self, now: Cycle, pmu: &mut Pmu) -> bool {
        let Some(config) = self.pending_reload else {
            return false;
        };
        if self.detector.stage() != DetectorStage::MissCount {
            self.stats.reloads_deferred = self.stats.reloads_deferred.saturating_add(1);
            return false;
        }
        self.detector
            .reconfigure(config, &self.clock, now, pmu)
            .expect("queued reload was validated and the stage checked");
        self.config = config;
        self.pending_reload = None;
        self.stats.reloads = self.stats.reloads.saturating_add(1);
        true
    }

    /// Snapshots the live detector to stored-checkpoint form, applying
    /// the at-rest corruption and torn-write faults when they fire.
    ///
    /// Both chances are drawn on every write in a fixed order —
    /// corruption, then tear — keeping the injector's draw schedule
    /// identical to the always-serialize implementation (a disabled
    /// source consumes nothing). Bytes are materialized only when a
    /// fault fires — see [`StoredCheckpoint`].
    fn write_checkpoint(&mut self, pmu: &Pmu) {
        let ckpt = self.detector.checkpoint(pmu);
        self.stats.checkpoints_written = self.stats.checkpoints_written.saturating_add(1);
        let corrupted = self
            .faults
            .as_mut()
            .is_some_and(LifecycleInjector::corrupt_fires);
        let torn = self
            .faults
            .as_mut()
            .is_some_and(LifecycleInjector::tear_fires);
        self.checkpoint = Some(if corrupted || torn {
            let mut bytes = ckpt.to_bytes();
            let faults = self
                .faults
                .as_mut()
                .expect("a fault fired, so an injector is installed");
            if corrupted {
                faults.corrupt_in_place(&mut bytes);
                self.stats.checkpoints_corrupted =
                    self.stats.checkpoints_corrupted.saturating_add(1);
            }
            if torn {
                faults.tear_in_place(&mut bytes);
                self.stats.checkpoints_torn = self.stats.checkpoints_torn.saturating_add(1);
            }
            StoredCheckpoint::Bytes(bytes)
        } else {
            StoredCheckpoint::Clean(ckpt)
        });
        self.services_since_checkpoint = 0;
    }

    /// Forces the next service call to crash (consuming no probabilistic
    /// draw), modelling an external kill such as a machine outage. A
    /// no-op when no injector is installed.
    pub fn force_crash(&mut self) {
        if let Some(faults) = self.faults.as_mut() {
            faults.force_crash();
        }
    }
}

/// Replaces the process panic hook with one that stays silent, so
/// campaign binaries injecting thousands of detector crashes do not spam
/// stderr with panic reports. Call once at startup; unit tests should
/// leave the default hook installed.
pub fn install_quiet_panic_hook() {
    std::panic::set_hook(Box::new(|_| {}));
}

#[cfg(test)]
mod tests {
    use super::*;
    use anvil_dram::DramGeometry;
    use anvil_faults::{FaultRng, LifecycleFaults};
    use anvil_pmu::SamplerConfig;

    const CLOCK: CpuClock = CpuClock::SANDY_BRIDGE_2_6GHZ;
    const PERIOD: Cycle = 166_400_000;

    fn boot(pmu: &mut Pmu) -> Supervisor {
        Supervisor::new(
            AnvilConfig::hardened(),
            RuntimeConfig::default(),
            CLOCK,
            PERIOD,
            0,
            pmu,
        )
    }

    fn crashy(crash_rate: f64) -> LifecycleInjector {
        LifecycleInjector::new(
            LifecycleFaults {
                crash_rate,
                stall_rate: 0.0,
                max_stall: 0,
                corrupt_rate: 0.0,
            },
            FaultRng::new(11).fork(5),
        )
    }

    #[test]
    fn faultless_supervision_is_transparent() {
        let mapping = AddressMapping::new(DramGeometry::ddr3_4gb());
        let mut pmu = Pmu::new(SamplerConfig::anvil_default());
        let mut sup = boot(&mut pmu);
        for _ in 0..5 {
            let d = sup.deadline();
            let out = sup
                .service(d, &mut pmu, &mapping, &mut |_, v| Some(v))
                .unwrap();
            assert!(matches!(
                out,
                SupervisedOutcome::Serviced {
                    outcome: ServiceOutcome::Quiet { .. },
                    ..
                }
            ));
        }
        assert_eq!(sup.stats().crashes, 0);
        assert_eq!(sup.stats().services, 5);
        assert_eq!(sup.detector().stats().stage1_windows, 5);
        // Boot + one checkpoint per service.
        assert_eq!(sup.stats().checkpoints_written, 6);
    }

    #[test]
    fn a_crash_restarts_from_the_checkpoint_with_a_bounded_gap() {
        let mapping = AddressMapping::new(DramGeometry::ddr3_4gb());
        let mut pmu = Pmu::new(SamplerConfig::anvil_default());
        let mut sup = boot(&mut pmu);
        // Two clean windows, then a certain crash.
        for _ in 0..2 {
            let d = sup.deadline();
            sup.service(d, &mut pmu, &mapping, &mut |_, v| Some(v))
                .unwrap();
        }
        let windows_before = sup.detector().stats().stage1_windows;
        sup.set_faults(Some(crashy(1.0)));
        let d = sup.deadline();
        let out = sup
            .service(d, &mut pmu, &mapping, &mut |_, v| Some(v))
            .unwrap();
        let SupervisedOutcome::Restarted(report) = out else {
            panic!("expected Restarted, got {out:?}");
        };
        assert_eq!(report.crashed_at, d);
        assert_eq!(report.gap, RuntimeConfig::default().backoff_base);
        assert!(!report.cold_start);
        assert!(report.checkpoint_error.is_none());
        // The restored detector kept the checkpointed evidence: two
        // completed windows, none lost.
        assert_eq!(sup.detector().stats().stage1_windows, windows_before);
        assert_eq!(sup.stats().worst_recovery_gap, report.gap);
        assert_eq!(sup.stats().total_downtime, report.gap);
        // And its next deadline is after the resume point.
        assert!(sup.deadline() > report.resumed_at);
    }

    #[test]
    fn backoff_doubles_and_clamps() {
        let mut pmu = Pmu::new(SamplerConfig::anvil_default());
        let sup = boot(&mut pmu);
        let base = RuntimeConfig::default().backoff_base;
        let cap = RuntimeConfig::default().backoff_cap;
        assert_eq!(sup.backoff(1), base);
        assert_eq!(sup.backoff(2), 2 * base);
        assert_eq!(sup.backoff(3), 4 * base);
        assert_eq!(sup.backoff(30), cap);
        assert_eq!(sup.backoff(u32::MAX), cap);
    }

    #[test]
    fn restart_budget_exhaustion_is_a_typed_error() {
        let mapping = AddressMapping::new(DramGeometry::ddr3_4gb());
        let mut pmu = Pmu::new(SamplerConfig::anvil_default());
        let mut sup = Supervisor::new(
            AnvilConfig::hardened(),
            RuntimeConfig {
                restart_budget: 3,
                ..RuntimeConfig::default()
            },
            CLOCK,
            PERIOD,
            0,
            &mut pmu,
        );
        sup.set_faults(Some(crashy(1.0)));
        for k in 0..3 {
            let d = sup.deadline();
            let out = sup
                .service(d, &mut pmu, &mapping, &mut |_, v| Some(v))
                .unwrap();
            assert!(matches!(out, SupervisedOutcome::Restarted(_)), "crash {k}");
        }
        let d = sup.deadline();
        let err = sup
            .service(d, &mut pmu, &mapping, &mut |_, v| Some(v))
            .unwrap_err();
        assert_eq!(
            err,
            RuntimeError::RestartBudgetExhausted {
                restarts: 4,
                budget: 3
            }
        );
    }

    #[test]
    fn corrupted_checkpoint_falls_back_to_cold_start() {
        let mapping = AddressMapping::new(DramGeometry::ddr3_4gb());
        let mut pmu = Pmu::new(SamplerConfig::anvil_default());
        let mut sup = boot(&mut pmu);
        // Corrupt every checkpoint write and crash every service: the
        // restore path must reject the bytes and cold-start.
        sup.set_faults(Some(LifecycleInjector::new(
            LifecycleFaults {
                crash_rate: 1.0,
                stall_rate: 0.0,
                max_stall: 0,
                corrupt_rate: 1.0,
            },
            FaultRng::new(3).fork(5),
        )));
        // Rewrite the (pristine) boot checkpoint through the corrupting
        // injector by servicing once; the service itself crashes first,
        // so recovery still reads the pristine boot bytes...
        let d = sup.deadline();
        let out = sup
            .service(d, &mut pmu, &mapping, &mut |_, v| Some(v))
            .unwrap();
        let SupervisedOutcome::Restarted(r) = out else {
            panic!("expected Restarted, got {out:?}");
        };
        assert!(!r.cold_start, "boot checkpoint was written pristine");
        // ...but the post-recovery checkpoint was corrupted at rest, so
        // the *next* crash must reject it and cold-start.
        let d = sup.deadline();
        let out = sup
            .service(d, &mut pmu, &mapping, &mut |_, v| Some(v))
            .unwrap();
        let SupervisedOutcome::Restarted(r) = out else {
            panic!("expected Restarted, got {out:?}");
        };
        assert!(r.cold_start);
        assert!(matches!(
            r.checkpoint_error,
            Some(RuntimeError::CheckpointCorrupt { .. })
                | Some(RuntimeError::CheckpointUndecodable)
        ));
        assert_eq!(sup.stats().cold_starts, 1);
        assert!(sup.stats().checkpoints_corrupted >= 1);
        // The cold-started detector is fresh: no window history.
        assert_eq!(sup.detector().stats().stage1_windows, 0);
    }

    #[test]
    fn torn_checkpoint_falls_back_to_cold_start() {
        let mapping = AddressMapping::new(DramGeometry::ddr3_4gb());
        let mut pmu = Pmu::new(SamplerConfig::anvil_default());
        let mut sup = boot(&mut pmu);
        // Tear every checkpoint write and crash every service: recovery
        // must reject the truncated bytes with a typed error and
        // cold-start, never panic.
        sup.set_faults(Some(crashy(1.0).with_torn_writes(1.0)));
        // First crash recovers from the pristine boot checkpoint, then
        // rewrites it through the tearing injector.
        let d = sup.deadline();
        let out = sup
            .service(d, &mut pmu, &mapping, &mut |_, v| Some(v))
            .unwrap();
        let SupervisedOutcome::Restarted(r) = out else {
            panic!("expected Restarted, got {out:?}");
        };
        assert!(!r.cold_start, "boot checkpoint was written pristine");
        // The second crash reads the torn bytes.
        let d = sup.deadline();
        let out = sup
            .service(d, &mut pmu, &mapping, &mut |_, v| Some(v))
            .unwrap();
        let SupervisedOutcome::Restarted(r) = out else {
            panic!("expected Restarted, got {out:?}");
        };
        assert!(r.cold_start);
        assert!(matches!(
            r.checkpoint_error,
            Some(RuntimeError::CheckpointCorrupt { .. })
                | Some(RuntimeError::CheckpointUndecodable)
        ));
        assert!(sup.stats().checkpoints_torn >= 1);
        assert_eq!(sup.stats().cold_starts, 1);
    }

    #[test]
    fn forced_crashes_flow_through_the_normal_recovery_path() {
        let mapping = AddressMapping::new(DramGeometry::ddr3_4gb());
        let mut pmu = Pmu::new(SamplerConfig::anvil_default());
        let mut sup = boot(&mut pmu);
        // Without an injector the force is a no-op.
        sup.force_crash();
        let d = sup.deadline();
        let out = sup
            .service(d, &mut pmu, &mapping, &mut |_, v| Some(v))
            .unwrap();
        assert!(matches!(out, SupervisedOutcome::Serviced { .. }));
        // With a zero-rate injector installed, the forced crash fires
        // exactly once and recovers from the checkpoint.
        sup.set_faults(Some(crashy(0.0)));
        sup.force_crash();
        let d = sup.deadline();
        let out = sup
            .service(d, &mut pmu, &mapping, &mut |_, v| Some(v))
            .unwrap();
        assert!(matches!(out, SupervisedOutcome::Restarted(_)));
        let d = sup.deadline();
        let out = sup
            .service(d, &mut pmu, &mapping, &mut |_, v| Some(v))
            .unwrap();
        assert!(matches!(out, SupervisedOutcome::Serviced { .. }));
        assert_eq!(sup.stats().crashes, 1);
    }

    #[test]
    fn hot_reload_applies_at_the_boundary_and_keeps_counters() {
        let mapping = AddressMapping::new(DramGeometry::ddr3_4gb());
        let mut pmu = Pmu::new(SamplerConfig::anvil_default());
        let mut sup = boot(&mut pmu);
        let d = sup.deadline();
        sup.service(d, &mut pmu, &mapping, &mut |_, v| Some(v))
            .unwrap();
        let mut hot = AnvilConfig::hardened();
        hot.llc_miss_threshold = 18_000;
        sup.request_reload(hot).unwrap();
        assert!(sup.reload_pending());
        let stats_before = *sup.detector().stats();
        let d = sup.deadline();
        sup.service(d, &mut pmu, &mapping, &mut |_, v| Some(v))
            .unwrap();
        assert!(!sup.reload_pending());
        assert_eq!(sup.config().llc_miss_threshold, 18_000);
        assert_eq!(sup.stats().reloads, 1);
        // The swap lost no activity counters (one more window serviced).
        assert_eq!(
            sup.detector().stats().stage1_windows,
            stats_before.stage1_windows + 1
        );

        // An invalid config is rejected at request time.
        let mut bad = AnvilConfig::hardened();
        bad.llc_miss_threshold = 0;
        assert!(sup.request_reload(bad).is_err());
        assert!(!sup.reload_pending());
    }

    #[test]
    fn reload_defers_while_stage2_is_armed() {
        let mapping = AddressMapping::new(DramGeometry::ddr3_4gb());
        let mut pmu = Pmu::new(SamplerConfig::anvil_default());
        let mut sup = Supervisor::new(
            AnvilConfig::baseline(),
            RuntimeConfig::default(),
            CLOCK,
            PERIOD,
            0,
            &mut pmu,
        );
        sup.request_reload(AnvilConfig::heavy()).unwrap();
        // Trip stage 1 so the service ends with sampling armed: the
        // reload must wait.
        let d = sup.deadline();
        for i in 0..25_000u64 {
            pmu.observe_at(&crate::soak::dram_read(i * 64, 1), d - 1);
        }
        sup.service(d, &mut pmu, &mapping, &mut |_, v| Some(v))
            .unwrap();
        assert_eq!(sup.detector().stage(), DetectorStage::Sampling);
        assert!(sup.reload_pending());
        assert_eq!(sup.stats().reloads_deferred, 1);
        // The stage-2 window ends back at stage 1: now it applies.
        let d = sup.deadline();
        sup.service(d, &mut pmu, &mapping, &mut |_, v| Some(v))
            .unwrap();
        assert!(!sup.reload_pending());
        assert_eq!(sup.stats().reloads, 1);
        assert_eq!(sup.config(), &AnvilConfig::heavy());
    }

    #[test]
    fn stalls_delay_the_service_and_trip_the_watchdog() {
        let mapping = AddressMapping::new(DramGeometry::ddr3_4gb());
        let mut pmu = Pmu::new(SamplerConfig::anvil_default());
        let mut sup = boot(&mut pmu);
        sup.set_faults(Some(LifecycleInjector::new(
            LifecycleFaults {
                crash_rate: 0.0,
                stall_rate: 1.0,
                max_stall: 40_000,
                corrupt_rate: 0.0,
            },
            FaultRng::new(21).fork(5),
        )));
        let d = sup.deadline();
        let out = sup
            .service(d, &mut pmu, &mapping, &mut |_, v| Some(v))
            .unwrap();
        let SupervisedOutcome::Serviced { serviced_at, .. } = out else {
            panic!("expected Serviced, got {out:?}");
        };
        assert!(serviced_at > d && serviced_at <= d + 40_000);
        assert_eq!(sup.stats().stalled_services, 1);
        assert_eq!(sup.detector().stats().missed_deadlines, 1);
    }
}
