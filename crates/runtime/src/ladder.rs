//! The graceful-degradation ladder: typed protection levels, typed
//! transitions, and exponential-backoff re-promotion.
//!
//! A fleet domain is not simply "protected or dead". When faults hit,
//! the runtime steps down a ladder of progressively blunter — but
//! progressively more self-sufficient — protection modes:
//!
//! 1. [`ProtectionLevel::Hardened`] — the full two-stage hardened ANVIL
//!    pipeline under supervision.
//! 2. [`ProtectionLevel::SampleSurvival`] — stage-1 counting still runs,
//!    but PEBS sampling is distrusted (it just came back from an
//!    episode); a periodic blanket bank refresh stands in for selective
//!    refresh until sampling has proven itself again.
//! 3. [`ProtectionLevel::BlanketRefresh`] — no PMU at all: every bank is
//!    blanket-refreshed every window, trading refresh bandwidth for a
//!    guarantee that needs no measurement.
//! 4. [`ProtectionLevel::Quarantine`] — the domain is taken out of
//!    service entirely: no tenant data lives there, so nothing can flip.
//!
//! Every demotion records a [`LadderTransition`] with a typed
//! [`LadderCause`], making "declared degradation windows" auditable: the
//! fleet gate forgives flips only inside windows whose level the ladder
//! had already declared degraded.
//!
//! Re-promotion is earned, not timed: the ladder climbs one rung after a
//! streak of consecutive clean windows, and the required streak doubles
//! with every repeated demotion (bounded by a cap) — a flapping domain
//! has to stay healthy exponentially longer each time before it is
//! trusted with a sharper protection mode. A long clean run at the top
//! rung resets the backoff.

use serde::{Deserialize, Serialize};

/// A rung of the degradation ladder, ordered sharpest-first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ProtectionLevel {
    /// Full hardened ANVIL under supervision.
    Hardened,
    /// Counting trusted, sampling distrusted: periodic blanket refresh.
    SampleSurvival,
    /// No PMU: blanket-refresh every bank every window.
    BlanketRefresh,
    /// Domain out of service: no tenant data, nothing to flip.
    Quarantine,
}

impl ProtectionLevel {
    /// All rungs, sharpest protection first.
    pub const ALL: [ProtectionLevel; 4] = [
        ProtectionLevel::Hardened,
        ProtectionLevel::SampleSurvival,
        ProtectionLevel::BlanketRefresh,
        ProtectionLevel::Quarantine,
    ];

    /// Ladder depth: 0 for the sharpest rung, 3 for quarantine.
    #[must_use]
    pub fn rank(self) -> usize {
        match self {
            ProtectionLevel::Hardened => 0,
            ProtectionLevel::SampleSurvival => 1,
            ProtectionLevel::BlanketRefresh => 2,
            ProtectionLevel::Quarantine => 3,
        }
    }

    /// Stable `snake_case` name (used in campaign JSON records).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            ProtectionLevel::Hardened => "hardened",
            ProtectionLevel::SampleSurvival => "sample_survival",
            ProtectionLevel::BlanketRefresh => "blanket_refresh",
            ProtectionLevel::Quarantine => "quarantine",
        }
    }

    /// The next rung up (sharper), or `None` at the top.
    #[must_use]
    pub fn promoted(self) -> Option<ProtectionLevel> {
        match self {
            ProtectionLevel::Hardened => None,
            ProtectionLevel::SampleSurvival => Some(ProtectionLevel::Hardened),
            ProtectionLevel::BlanketRefresh => Some(ProtectionLevel::SampleSurvival),
            ProtectionLevel::Quarantine => Some(ProtectionLevel::BlanketRefresh),
        }
    }
}

/// Why a ladder transition happened.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LadderCause {
    /// The machine's PMU disappeared: the detector is blind.
    PmuLoss,
    /// The whole machine went down and came back.
    MachineOutage,
    /// Too many PMU-loss episodes: the hardware is not trusted anymore.
    ChronicPmuLoss,
    /// The supervisor exhausted its restart budget.
    RestartBudgetExhausted,
    /// The DIMM's weakest cell sits below the guarantee envelope's
    /// provable floor: the detector cannot promise anything, so the
    /// domain is pinned to an unconditional mode from boot.
    SubEnvelopeDimm,
    /// The detector's own in-memory state was corrupted beyond what
    /// majority-vote repair could fix: its decisions cannot be trusted
    /// until it cold-restarts from the last good checkpoint.
    SelfCorruption,
    /// A clean-window streak earned a promotion.
    FaultsCleared,
}

impl LadderCause {
    /// Stable `snake_case` name (used in campaign JSON records).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            LadderCause::PmuLoss => "pmu_loss",
            LadderCause::MachineOutage => "machine_outage",
            LadderCause::ChronicPmuLoss => "chronic_pmu_loss",
            LadderCause::RestartBudgetExhausted => "restart_budget_exhausted",
            LadderCause::SubEnvelopeDimm => "sub_envelope_dimm",
            LadderCause::SelfCorruption => "self_corruption",
            LadderCause::FaultsCleared => "faults_cleared",
        }
    }
}

/// One recorded rung change.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LadderTransition {
    /// Window index the transition took effect.
    pub window: u64,
    /// The rung left.
    pub from: ProtectionLevel,
    /// The rung entered.
    pub to: ProtectionLevel,
    /// Why.
    pub cause: LadderCause,
}

/// The per-domain degradation state machine.
#[derive(Debug, Clone)]
pub struct DegradationLadder {
    level: ProtectionLevel,
    pinned: bool,
    transitions: Vec<LadderTransition>,
    clean_streak: u64,
    /// Clean windows required for the next promotion.
    promote_after: u64,
    promote_base: u64,
    promote_cap: u64,
    demotions: u64,
    windows_at: [u64; 4],
}

impl DegradationLadder {
    /// A healthy ladder starting at [`ProtectionLevel::Hardened`].
    /// Promotion requires `promote_base` consecutive clean windows,
    /// doubling per repeated demotion up to `promote_cap`.
    #[must_use]
    pub fn new(promote_base: u64, promote_cap: u64) -> Self {
        let base = promote_base.max(1);
        DegradationLadder {
            level: ProtectionLevel::Hardened,
            pinned: false,
            transitions: Vec::new(),
            clean_streak: 0,
            promote_after: base,
            promote_base: base,
            promote_cap: promote_cap.max(base),
            demotions: 0,
            windows_at: [0; 4],
        }
    }

    /// A ladder pinned to `level` from boot (e.g. a sub-envelope DIMM
    /// pinned to blanket refresh): the pin is recorded as a window-0
    /// transition and the ladder never moves again.
    #[must_use]
    pub fn pinned(level: ProtectionLevel, cause: LadderCause) -> Self {
        let mut ladder = DegradationLadder::new(1, 1);
        ladder.transitions.push(LadderTransition {
            window: 0,
            from: ProtectionLevel::Hardened,
            to: level,
            cause,
        });
        ladder.level = level;
        ladder.pinned = true;
        ladder
    }

    /// The current rung.
    #[must_use]
    pub fn level(&self) -> ProtectionLevel {
        self.level
    }

    /// Whether the ladder is pinned (never transitions after boot).
    #[must_use]
    pub fn is_pinned(&self) -> bool {
        self.pinned
    }

    /// Every transition recorded so far, in order.
    #[must_use]
    pub fn transitions(&self) -> &[LadderTransition] {
        &self.transitions
    }

    /// Demotions recorded so far.
    #[must_use]
    pub fn demotions(&self) -> u64 {
        self.demotions
    }

    /// The clean-window streak currently required to climb one rung.
    #[must_use]
    pub fn promote_after(&self) -> u64 {
        self.promote_after
    }

    /// Windows spent at each rung, indexed by [`ProtectionLevel::rank`].
    #[must_use]
    pub fn windows_at(&self) -> [u64; 4] {
        self.windows_at
    }

    /// Charges the current window to the current rung's residency
    /// counter. Call exactly once per window, before any transition for
    /// that window.
    pub fn observe_window(&mut self) {
        self.windows_at[self.level.rank()] += 1;
    }

    /// Steps down to `to` (a strictly blunter rung) at `window`. Returns
    /// the recorded transition, or `None` when the ladder is pinned or
    /// `to` is not below the current rung. Every demotion resets the
    /// clean streak; repeated demotions double the streak the next
    /// promotion requires, up to the cap.
    pub fn demote(
        &mut self,
        window: u64,
        to: ProtectionLevel,
        cause: LadderCause,
    ) -> Option<LadderTransition> {
        if self.pinned || to.rank() <= self.level.rank() {
            return None;
        }
        let t = LadderTransition {
            window,
            from: self.level,
            to,
            cause,
        };
        self.transitions.push(t);
        self.level = to;
        self.clean_streak = 0;
        self.demotions += 1;
        if self.demotions > 1 {
            self.promote_after = self.promote_after.saturating_mul(2).min(self.promote_cap);
        }
        Some(t)
    }

    /// Records a faulty window that did not demote (e.g. a contained
    /// crash-restart at an already-degraded rung): the clean streak
    /// resets, so re-promotion is earned only by *consecutive* health.
    pub fn fault_window(&mut self) {
        self.clean_streak = 0;
    }

    /// Credits one clean (fault-free) window at `window` and climbs one
    /// rung when the streak earns it. A long clean run at the top rung
    /// (four times the base streak) resets the promotion backoff.
    pub fn clean_window(&mut self, window: u64) -> Option<LadderTransition> {
        self.clean_streak = self.clean_streak.saturating_add(1);
        if self.pinned {
            return None;
        }
        if self.level == ProtectionLevel::Hardened {
            if self.clean_streak >= self.promote_base.saturating_mul(4) {
                self.promote_after = self.promote_base;
            }
            return None;
        }
        if self.clean_streak < self.promote_after {
            return None;
        }
        let to = self
            .level
            .promoted()
            .expect("only Hardened has no higher rung, and it returned above");
        let t = LadderTransition {
            window,
            from: self.level,
            to,
            cause: LadderCause::FaultsCleared,
        };
        self.transitions.push(t);
        self.level = to;
        self.clean_streak = 0;
        Some(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranks_and_promotion_order_are_consistent() {
        for (i, l) in ProtectionLevel::ALL.iter().enumerate() {
            assert_eq!(l.rank(), i);
        }
        assert_eq!(ProtectionLevel::Hardened.promoted(), None);
        let mut l = ProtectionLevel::Quarantine;
        let mut climbed = 0;
        while let Some(up) = l.promoted() {
            assert_eq!(up.rank() + 1, l.rank());
            l = up;
            climbed += 1;
        }
        assert_eq!(climbed, 3);
    }

    #[test]
    fn demotion_records_and_promotion_is_earned() {
        let mut ladder = DegradationLadder::new(3, 100);
        assert!(ladder
            .demote(10, ProtectionLevel::BlanketRefresh, LadderCause::PmuLoss)
            .is_some());
        assert_eq!(ladder.level(), ProtectionLevel::BlanketRefresh);
        // Two clean windows: not enough.
        assert!(ladder.clean_window(11).is_none());
        assert!(ladder.clean_window(12).is_none());
        // Third climbs one rung only.
        let t = ladder.clean_window(13).expect("streak earned");
        assert_eq!(t.to, ProtectionLevel::SampleSurvival);
        assert_eq!(t.cause, LadderCause::FaultsCleared);
        // A contained fault resets the streak without a transition.
        assert!(ladder.clean_window(14).is_none());
        ladder.fault_window();
        assert!(ladder.clean_window(15).is_none());
        assert!(ladder.clean_window(16).is_none());
        let t = ladder.clean_window(17).expect("streak rebuilt after fault");
        assert_eq!(t.to, ProtectionLevel::Hardened);
        assert_eq!(ladder.transitions().len(), 3);
    }

    #[test]
    fn second_rung_climb_also_needs_a_full_streak() {
        let mut ladder = DegradationLadder::new(3, 100);
        ladder.demote(10, ProtectionLevel::BlanketRefresh, LadderCause::PmuLoss);
        for w in 11..14 {
            ladder.clean_window(w);
        }
        assert_eq!(ladder.level(), ProtectionLevel::SampleSurvival);
        // The streak resets between rungs.
        assert!(ladder.clean_window(14).is_none());
        assert!(ladder.clean_window(15).is_none());
        let t = ladder.clean_window(16).expect("second climb");
        assert_eq!(t.to, ProtectionLevel::Hardened);
        assert_eq!(ladder.transitions().len(), 3);
    }

    #[test]
    fn repeated_demotion_doubles_the_required_streak() {
        let mut ladder = DegradationLadder::new(2, 16);
        ladder.demote(1, ProtectionLevel::SampleSurvival, LadderCause::PmuLoss);
        assert_eq!(ladder.promote_after(), 2, "first demotion keeps the base");
        ladder.clean_window(2);
        ladder.clean_window(3);
        assert_eq!(ladder.level(), ProtectionLevel::Hardened);
        for (i, want) in [(4u64, 4u64), (20, 8), (40, 16), (60, 16)] {
            ladder.demote(i, ProtectionLevel::SampleSurvival, LadderCause::PmuLoss);
            assert_eq!(ladder.promote_after(), want, "demotion at window {i}");
            let mut w = i;
            while ladder.level() != ProtectionLevel::Hardened {
                w += 1;
                ladder.clean_window(w);
            }
        }
    }

    #[test]
    fn long_clean_run_at_the_top_resets_the_backoff() {
        let mut ladder = DegradationLadder::new(2, 64);
        for i in 0..3 {
            ladder.demote(i, ProtectionLevel::SampleSurvival, LadderCause::PmuLoss);
            let mut w = i * 100;
            while ladder.level() != ProtectionLevel::Hardened {
                w += 1;
                ladder.clean_window(w);
            }
        }
        assert_eq!(ladder.promote_after(), 8);
        for w in 1_000..1_008 {
            ladder.clean_window(w);
        }
        assert_eq!(ladder.promote_after(), 2, "4x base clean windows reset it");
    }

    #[test]
    fn demote_rejects_sideways_and_upward_moves() {
        let mut ladder = DegradationLadder::new(2, 8);
        ladder.demote(0, ProtectionLevel::Quarantine, LadderCause::ChronicPmuLoss);
        assert!(ladder
            .demote(1, ProtectionLevel::Quarantine, LadderCause::PmuLoss)
            .is_none());
        assert!(ladder
            .demote(1, ProtectionLevel::Hardened, LadderCause::PmuLoss)
            .is_none());
        assert_eq!(ladder.transitions().len(), 1);
    }

    #[test]
    fn pinned_ladders_never_move() {
        let mut ladder = DegradationLadder::pinned(
            ProtectionLevel::BlanketRefresh,
            LadderCause::SubEnvelopeDimm,
        );
        assert!(ladder.is_pinned());
        assert_eq!(ladder.transitions().len(), 1);
        assert_eq!(ladder.transitions()[0].cause, LadderCause::SubEnvelopeDimm);
        assert!(ladder
            .demote(5, ProtectionLevel::Quarantine, LadderCause::PmuLoss)
            .is_none());
        for w in 0..100 {
            assert!(ladder.clean_window(w).is_none());
        }
        assert_eq!(ladder.level(), ProtectionLevel::BlanketRefresh);
    }

    #[test]
    fn residency_counters_track_the_level() {
        let mut ladder = DegradationLadder::new(1, 8);
        for _ in 0..3 {
            ladder.observe_window();
        }
        ladder.demote(3, ProtectionLevel::Quarantine, LadderCause::ChronicPmuLoss);
        for _ in 0..2 {
            ladder.observe_window();
        }
        let at = ladder.windows_at();
        assert_eq!(at[ProtectionLevel::Hardened.rank()], 3);
        assert_eq!(at[ProtectionLevel::Quarantine.rank()], 2);
    }
}
