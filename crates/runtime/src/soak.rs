//! Long-horizon soak engine: millions of supervised detector windows of
//! mixed benign and adversary traffic under a seeded crash / stall /
//! corruption / hot-reload schedule.
//!
//! The engine is **window-granular**: instead of retiring every one of
//! the billions of instructions a multi-hour run would need, it feeds
//! each stage-1 window's miss total as bulk counter increments and only
//! materializes individual [`RetiredOp`]s inside stage-2 (sampled)
//! windows, where the PEBS engine actually inspects them. That keeps a
//! two-million-window campaign (~3.5 simulated hours) inside a CI
//! budget while exercising the full supervised pipeline: stage-1 EWMA
//! trips, stage-2 locality analysis, selective refresh, degraded-mode
//! fallbacks, checkpoint writes, injected crashes with
//! bounded-backoff restarts, and atomic hot reloads.
//!
//! Flip accounting follows the [`GuaranteeEnvelope`] model: the
//! adversary's activations on the victim's aggressor pair accumulate
//! until something rewrites the victim row — the periodic auto-refresh,
//! a selective refresh that names it, a degraded-mode blanket refresh of
//! its bank, or the recovery protocol's post-restart blanket refresh.
//! A [restart-aware adversary](RestartAwareHammer) additionally bursts
//! at full hammer rate into every injected downtime gap, so a flip is
//! charged whenever accumulated evidence plus the gap burst reaches the
//! flip threshold *before* the recovery refresh lands.

use anvil_cache::HitLevel;
use anvil_core::{AnvilConfig, EnvelopeParams, GuaranteeEnvelope, ServiceOutcome};
use anvil_dram::{AddressMapping, BankId, CpuClock, Cycle, DramGeometry, DramLocation, RowId};
use anvil_faults::{FaultRng, LifecycleFaults, LifecycleInjector};
use anvil_mem::{AccessKind, AccessOutcome};
use anvil_pmu::{Pmu, RetiredOp};
use serde::{Deserialize, Serialize};

use crate::supervisor::{RuntimeConfig, SupervisedOutcome, Supervisor};

use anvil_adversary::RestartAwareHammer;

/// Ops materialized per stage-2 window (the sampler keeps ~30 of them).
const SAMPLED_OPS: u64 = 120;

/// Attacker pid in the simulated traffic mix.
const ATTACKER_PID: u32 = 7;
/// Benign streaming pid.
const BENIGN_PID: u32 = 3;

/// Which simulation core drives a soak run.
///
/// Both engines produce **byte-identical** summaries (and campaign JSON)
/// for any configuration — pinned by the `engines_agree_*` tests here and
/// the cross-engine property test in `anvil-bench`. The per-op engine
/// services every window through the full supervised machinery; the
/// event-driven engine fast-forwards benign stretches through
/// [`Supervisor::service_quiet`] and falls back to the per-op path at
/// every "interesting" event (trip, stage-2 window, queued reload,
/// non-pristine state). See `DESIGN.md` §16.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Engine {
    /// Every window through [`Supervisor::service`] — the reference path.
    PerOp,
    /// Epoch-skipping fast path for quiet windows (the default).
    #[default]
    Event,
}

impl Engine {
    /// Parses a CLI spelling (`per-op` or `event`).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "per-op" => Some(Engine::PerOp),
            "event" => Some(Engine::Event),
            _ => None,
        }
    }

    /// The CLI spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            Engine::PerOp => "per-op",
            Engine::Event => "event",
        }
    }
}

/// One soak campaign's full parameterization.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SoakConfig {
    /// Detector windows to run.
    pub windows: u64,
    /// Campaign seed: drives the fault schedule and the benign traffic.
    pub seed: u64,
    /// Detector configuration under soak.
    pub anvil: AnvilConfig,
    /// Supervisor policy.
    pub runtime: RuntimeConfig,
    /// Lifecycle fault intensities (crash / stall / checkpoint
    /// corruption).
    pub lifecycle: LifecycleFaults,
    /// Request a hot reload every this many windows (0 disables),
    /// toggling the stage-1 threshold between two valid values.
    pub reload_every: u64,
    /// Platform constants for flip accounting and the downtime budget.
    pub envelope: EnvelopeParams,
    /// Whether the paced double-sided adversary runs (the default). Off,
    /// the traffic is the benign mix alone and the campaign is
    /// quiet-window dominated — the "benign-dominated soak cell" the
    /// perf trajectory's headline number is measured on, where the
    /// event-driven engine's epoch skipping pays off fully.
    #[serde(default = "default_adversary")]
    pub adversary: bool,
}

fn default_adversary() -> bool {
    true
}

impl SoakConfig {
    /// The standard campaign: hardened detector, default supervisor
    /// policy, moderate fault intensities, a reload every 100K windows.
    pub fn standard(windows: u64, seed: u64) -> Self {
        let mut anvil = AnvilConfig::hardened();
        anvil.hardening.phase_seed = seed;
        SoakConfig {
            windows,
            seed,
            anvil,
            runtime: RuntimeConfig {
                // One checkpoint per four windows keeps serialization off
                // the critical path without widening the recovery gap
                // beyond what stage-1 carry absorbs.
                checkpoint_every: 4,
                ..RuntimeConfig::default()
            },
            lifecycle: LifecycleFaults {
                crash_rate: 1e-3,
                stall_rate: 5e-3,
                max_stall: 100_000,
                corrupt_rate: 0.05,
            },
            reload_every: 100_000,
            envelope: EnvelopeParams::paper_platform(),
            adversary: default_adversary(),
        }
    }

    /// The benign-dominated variant of [`standard`](Self::standard): the
    /// same supervised lifecycle (crashes, stalls, corruption, reloads)
    /// with no adversary, so nearly every window is quiet.
    pub fn benign(windows: u64, seed: u64) -> Self {
        SoakConfig {
            adversary: false,
            ..Self::standard(windows, seed)
        }
    }
}

/// Everything a soak run observed, in deterministic (serializable) form:
/// two runs with the same [`SoakConfig`] produce identical summaries.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SoakSummary {
    /// Windows serviced (equals the configured count unless the restart
    /// budget was exhausted).
    pub windows: u64,
    /// Simulated wall-clock time covered, in milliseconds.
    pub simulated_ms: f64,
    /// Bit flips charged against the victim row. The campaign gate.
    pub flips: u64,
    /// Stage-1 threshold crossings (windows that armed sampling).
    pub threshold_crossings: u64,
    /// Stage-2 windows analyzed (including degraded ones).
    pub stage2_windows: u64,
    /// Stage-2 windows that flagged at least one aggressor.
    pub detections: u64,
    /// Victim rows selectively refreshed.
    pub selective_refreshes: u64,
    /// Stage-2 windows handled by the degraded-protection fallback.
    pub degraded_windows: u64,
    /// Supervised service calls.
    pub services: u64,
    /// Detector crashes injected and captured.
    pub crashes: u64,
    /// Restarts performed.
    pub restarts: u64,
    /// Restarts that fell back to a cold start.
    pub cold_starts: u64,
    /// Checkpoints written.
    pub checkpoints_written: u64,
    /// Checkpoint writes corrupted at rest.
    pub checkpoints_corrupted: u64,
    /// Restores that rejected the stored checkpoint.
    pub checkpoint_rejections: u64,
    /// Hot reloads applied.
    pub reloads: u64,
    /// Reload applications deferred past an armed stage-2 window.
    pub reloads_deferred: u64,
    /// Services delayed by injected stalls.
    pub stalled_services: u64,
    /// Largest crash-to-resume gap observed, in cycles.
    pub worst_recovery_gap: Cycle,
    /// Total downtime across all restarts, in cycles.
    pub total_downtime: Cycle,
    /// The envelope's downtime budget for this configuration, in cycles:
    /// gaps under it cannot complete a flip even against a gap-timed
    /// burst attacker.
    pub downtime_budget: Cycle,
    /// Whether the worst observed gap stayed within the budget.
    pub within_budget: bool,
    /// Whether the run ended early with the restart budget exhausted.
    pub restart_budget_exhausted: bool,
}

impl SoakSummary {
    /// The campaign gate: no flips, every recovery gap inside the
    /// envelope's downtime budget, and the supervisor never gave up.
    pub fn holds(&self) -> bool {
        self.flips == 0 && self.within_budget && !self.restart_budget_exhausted
    }
}

/// A DRAM-sourced read the PMU can sample: identity-mapped, with a
/// latency above the row-miss cutoff so it counts as activation
/// evidence.
pub(crate) fn dram_read(paddr: u64, pid: u32) -> RetiredOp {
    RetiredOp {
        vaddr: paddr,
        pid,
        outcome: AccessOutcome {
            paddr,
            kind: AccessKind::Read,
            level: HitLevel::Memory,
            advance: 184,
            dram: None,
        },
    }
}

/// Runs one soak campaign to completion under the default (event-driven)
/// engine. Deterministic in `cfg`.
pub fn run(cfg: &SoakConfig) -> SoakSummary {
    run_with_engine(cfg, Engine::default())
}

/// Runs one soak campaign under an explicit [`Engine`]. Deterministic in
/// `(cfg, engine)` — and the summary itself is engine-independent.
#[allow(clippy::too_many_lines)]
pub fn run_with_engine(cfg: &SoakConfig, engine: Engine) -> SoakSummary {
    let clock = CpuClock::SANDY_BRIDGE_2_6GHZ;
    let mapping = AddressMapping::new(DramGeometry::ddr3_4gb());
    let mut pmu = Pmu::new(cfg.anvil.sampling);
    let mut sup = Supervisor::new(
        cfg.anvil,
        cfg.runtime,
        clock,
        cfg.envelope.refresh_period,
        0,
        &mut pmu,
    );
    sup.set_faults(Some(LifecycleInjector::new(
        cfg.lifecycle,
        FaultRng::new(cfg.seed).fork(5),
    )));
    let mut traffic = FaultRng::new(cfg.seed).fork(6);

    // The adversary double-side hammers one victim: aggressors on the
    // rows either side, paced just under the stage-1 trip rate.
    let victim = RowId::new(BankId(2), 501);
    let aggressors = [
        mapping.address_of(DramLocation {
            bank: victim.bank,
            row: victim.row - 1,
            col: 0,
        }),
        mapping.address_of(DramLocation {
            bank: victim.bank,
            row: victim.row + 1,
            col: 0,
        }),
    ];
    let paced = if cfg.adversary {
        cfg.anvil.llc_miss_threshold.saturating_sub(500)
    } else {
        0
    };

    let envelope = GuaranteeEnvelope::audit(&cfg.anvil, &clock, &cfg.envelope);
    let downtime_budget = envelope.downtime_budget(cfg.envelope.attack_access_cycles);

    let mut summary = SoakSummary {
        windows: 0,
        simulated_ms: 0.0,
        flips: 0,
        threshold_crossings: 0,
        stage2_windows: 0,
        detections: 0,
        selective_refreshes: 0,
        degraded_windows: 0,
        services: 0,
        crashes: 0,
        restarts: 0,
        cold_starts: 0,
        checkpoints_written: 0,
        checkpoints_corrupted: 0,
        checkpoint_rejections: 0,
        reloads: 0,
        reloads_deferred: 0,
        stalled_services: 0,
        worst_recovery_gap: 0,
        total_downtime: 0,
        downtime_budget,
        within_budget: true,
        restart_budget_exhausted: false,
    };

    // Accumulated aggressor activations against the victim since its row
    // was last rewritten (auto-refresh, selective/blanket refresh, or
    // recovery refresh).
    let mut victim_evidence: u64 = 0;
    let mut refresh_epoch: u64 = 0;
    let mut last_serviced: Cycle = 0;
    let mut reload_high = true;
    let mut end: Cycle = 0;

    for w in 0..cfg.windows {
        let deadline = sup.deadline();

        // DRAM auto-refresh rewrites every row once per refresh period,
        // clearing whatever disturbance had accumulated.
        let epoch = deadline / cfg.envelope.refresh_period.max(1);
        if epoch != refresh_epoch {
            refresh_epoch = epoch;
            victim_evidence = 0;
        }

        let benign = 200 + traffic.below(2_801);
        let sampled = sup.detector().stage() == anvil_core::DetectorStage::Sampling;
        victim_evidence = victim_evidence.saturating_add(paced);

        // Queue the reload before either engine services the window; the
        // request consumes no fault or traffic draws, so its position
        // relative to the traffic charge is unobservable.
        if cfg.reload_every > 0 && w > 0 && w % cfg.reload_every == 0 {
            let mut next = *sup.config();
            reload_high = !reload_high;
            next.llc_miss_threshold = if reload_high { 20_000 } else { 19_000 };
            sup.request_reload(next)
                .expect("soak reload configs are valid");
        }

        let result = if engine == Engine::Event && !sampled {
            // Quiet-window fast path: the window's miss total is known in
            // closed form, and the unarmed stage-1 counters read the same
            // whether or not the bulk charge lands (they are cleared by
            // the read either way), so skip the counter traffic entirely.
            if let Some(result) = sup.service_quiet(deadline, paced + benign, &mut pmu) {
                result
            } else {
                // An interesting window (trip, queued reload, dirty
                // state): replay it through the reference path.
                bulk_misses(&mut pmu, paced + benign, deadline.saturating_sub(1));
                sup.service(deadline, &mut pmu, &mapping, &mut |_, v| Some(v))
            }
        } else {
            if sampled {
                // Materialize a spread of ops for the PEBS engine: mostly
                // the aggressor pair, a sprinkle of scattered benign reads.
                let span = deadline.saturating_sub(last_serviced).max(SAMPLED_OPS + 1);
                for i in 0..SAMPLED_OPS {
                    let t = last_serviced + span * (i + 1) / (SAMPLED_OPS + 1);
                    let op = if i % 16 == 15 {
                        dram_read(traffic.below(1 << 30) & !63, BENIGN_PID)
                    } else {
                        dram_read(aggressors[(i % 2) as usize], ATTACKER_PID)
                    };
                    pmu.observe_at(&op, t);
                }
                bulk_misses(
                    &mut pmu,
                    (paced + benign).saturating_sub(SAMPLED_OPS),
                    deadline.saturating_sub(1),
                );
            } else {
                bulk_misses(&mut pmu, paced + benign, deadline.saturating_sub(1));
            }
            sup.service(deadline, &mut pmu, &mapping, &mut |_, v| Some(v))
        };

        match result {
            Ok(SupervisedOutcome::Serviced {
                outcome,
                serviced_at,
            }) => {
                last_serviced = serviced_at;
                match outcome {
                    ServiceOutcome::Quiet { .. } => {}
                    ServiceOutcome::Armed { .. } => {
                        summary.threshold_crossings += 1;
                    }
                    ServiceOutcome::Analyzed {
                        report, refreshes, ..
                    } => {
                        summary.stage2_windows += 1;
                        if report.detected() {
                            summary.detections += 1;
                        }
                        summary.selective_refreshes += refreshes.len() as u64;
                        if refreshes.iter().any(|(row, _)| *row == victim) {
                            victim_evidence = 0;
                        }
                    }
                    ServiceOutcome::Degraded {
                        report,
                        refreshes,
                        banks,
                        ..
                    } => {
                        summary.stage2_windows += 1;
                        summary.degraded_windows += 1;
                        if report.detected() {
                            summary.detections += 1;
                        }
                        summary.selective_refreshes += refreshes.len() as u64;
                        if refreshes.iter().any(|(row, _)| *row == victim)
                            || banks.contains(&victim.bank)
                        {
                            victim_evidence = 0;
                        }
                    }
                }
            }
            Ok(SupervisedOutcome::Restarted(recovery)) => {
                last_serviced = recovery.resumed_at;
                // The restart-aware adversary hammers flat out into the
                // unobserved gap; the flip check runs before the recovery
                // protocol's blanket refresh rewrites the victim.
                let burst = RestartAwareHammer::burst_activations(recovery.gap);
                if victim_evidence.saturating_add(burst) >= cfg.envelope.flip_threshold {
                    summary.flips += 1;
                }
                victim_evidence = 0;
            }
            Err(_) => {
                summary.restart_budget_exhausted = true;
                break;
            }
        }
        summary.windows = w + 1;
        end = last_serviced;
    }

    let stats = sup.stats();
    summary.simulated_ms = clock.cycles_to_ms(end);
    summary.services = stats.services;
    summary.crashes = stats.crashes;
    summary.restarts = stats.restarts;
    summary.cold_starts = stats.cold_starts;
    summary.checkpoints_written = stats.checkpoints_written;
    summary.checkpoints_corrupted = stats.checkpoints_corrupted;
    summary.checkpoint_rejections = stats.checkpoint_rejections;
    summary.reloads = stats.reloads;
    summary.reloads_deferred = stats.reloads_deferred;
    summary.stalled_services = stats.stalled_services;
    summary.worst_recovery_gap = stats.worst_recovery_gap;
    summary.total_downtime = stats.total_downtime;
    summary.within_budget = stats.worst_recovery_gap <= downtime_budget;
    summary
}

/// Bulk-charges `n` LLC-missing loads to both stage-1 counters at `t`.
fn bulk_misses(pmu: &mut Pmu, n: u64, t: Cycle) {
    pmu.observe_epoch(&anvil_pmu::EpochSummary {
        llc_misses: n,
        llc_miss_loads: n,
        at: t,
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(windows: u64, seed: u64) -> SoakConfig {
        let mut cfg = SoakConfig::standard(windows, seed);
        // Crank the fault rates so a short run still exercises every
        // lifecycle path.
        cfg.lifecycle.crash_rate = 0.05;
        cfg.lifecycle.stall_rate = 0.1;
        cfg.lifecycle.corrupt_rate = 0.3;
        cfg.reload_every = 100;
        cfg
    }

    #[test]
    fn short_soak_is_deterministic() {
        let cfg = small(600, 0x50AC);
        let a = run(&cfg);
        let b = run(&cfg);
        assert_eq!(a, b);
        // And the serialized form is byte-identical too.
        let ja = serde_json::to_string(&a).unwrap();
        let jb = serde_json::to_string(&b).unwrap();
        assert_eq!(ja, jb);
    }

    #[test]
    fn different_seeds_diverge() {
        let a = run(&small(600, 1));
        let b = run(&small(600, 2));
        assert_ne!(a, b);
    }

    #[test]
    fn short_soak_exercises_the_lifecycle_and_holds() {
        let s = run(&small(600, 0xD1CE));
        assert_eq!(s.windows, 600);
        assert!(s.crashes > 0, "no crashes injected: {s:?}");
        assert_eq!(s.restarts, s.crashes);
        assert!(s.stalled_services > 0);
        assert!(s.reloads > 0);
        assert!(s.threshold_crossings > 0, "attacker never armed stage 2");
        assert!(s.detections > 0, "attacker never flagged");
        assert!(s.selective_refreshes > 0);
        assert!(s.holds(), "gate failed: {s:?}");
        assert!(s.worst_recovery_gap <= RuntimeConfig::default().backoff_cap);
        assert!(s.downtime_budget > RuntimeConfig::default().backoff_cap);
    }

    #[test]
    fn engines_agree_under_heavy_faults() {
        // High crash/stall/corrupt rates plus frequent reloads force every
        // fallback edge: trip windows, crash recoveries mid-quiet-run,
        // deferred checkpoints read back by restores, queued reloads.
        let cfg = small(600, 0x50AC);
        let per_op = run_with_engine(&cfg, Engine::PerOp);
        let event = run_with_engine(&cfg, Engine::Event);
        assert_eq!(per_op, event);
        assert_eq!(
            serde_json::to_string(&per_op).unwrap(),
            serde_json::to_string(&event).unwrap(),
            "engines must serialize byte-identically"
        );
    }

    #[test]
    fn engines_agree_on_the_standard_campaign() {
        // The committed-results configuration (standard rates), long
        // enough to cross several checkpoint and reload cadences.
        let mut cfg = SoakConfig::standard(3_000, 0xD1CE);
        cfg.reload_every = 700;
        let per_op = run_with_engine(&cfg, Engine::PerOp);
        let event = run_with_engine(&cfg, Engine::Event);
        assert_eq!(per_op, event);
    }

    #[test]
    fn engine_cli_spellings_round_trip() {
        for e in [Engine::PerOp, Engine::Event] {
            assert_eq!(Engine::parse(e.as_str()), Some(e));
        }
        assert_eq!(Engine::parse("bogus"), None);
        assert_eq!(Engine::default(), Engine::Event);
    }

    #[test]
    fn gap_bursts_can_flip_when_backoff_exceeds_the_budget() {
        // Sanity-check the flip accounting itself: let backoff grow past
        // the downtime budget and the gap burst alone completes a flip.
        let mut cfg = small(400, 9);
        cfg.lifecycle.crash_rate = 0.9;
        cfg.runtime.restart_budget = u32::MAX;
        cfg.runtime.backoff_cap = 60_000_000_000; // ~23 s: far past budget
        let s = run(&cfg);
        assert!(s.flips > 0, "runaway backoff must flip: {s:?}");
        assert!(!s.within_budget);
        assert!(!s.holds());
    }
}
