#![warn(missing_docs)]

//! # anvil-runtime
//!
//! Detector lifecycle supervision for the ANVIL (ASPLOS 2016)
//! reproduction. A protection mechanism that dies silently protects
//! nothing: the kernel thread hosting ANVIL can panic, stall under
//! scheduling pressure, or come back from a restart with stale state,
//! and every cycle it spends down is a cycle a rowhammer attacker owns.
//! This crate closes that lifecycle gap:
//!
//! * [`Supervisor`] — wraps [`AnvilDetector`](anvil_core::AnvilDetector)
//!   in a crash-capturing service loop: panics are caught with
//!   [`std::panic::catch_unwind`], restarts happen under a bounded
//!   exponential backoff and a finite restart budget, and recovery
//!   resumes from the last valid checkpoint — falling back to a cold
//!   start (plus the caller's blanket refresh) when the checkpoint is
//!   corrupt or version-mismatched.
//! * Hot reconfiguration — [`Supervisor::request_reload`] validates a
//!   new [`AnvilConfig`](anvil_core::AnvilConfig) up front and swaps it
//!   in atomically at the next stage-1 window boundary, preserving the
//!   suspicion ledger and every activity counter.
//! * [`DegradationLadder`] — the graceful-degradation state machine for
//!   fleet domains: full hardened ANVIL → sample-survival → blanket bank
//!   refresh → quarantine, with typed [`LadderTransition`] records and
//!   exponential-backoff re-promotion once faults clear.
//! * [`soak`] — the long-horizon campaign engine: millions of supervised
//!   windows of mixed benign and adversary traffic under a seeded
//!   crash / stall / corruption / reload schedule, gated on zero flips
//!   and every recovery gap staying inside the
//!   [`GuaranteeEnvelope`](anvil_core::GuaranteeEnvelope) downtime
//!   budget.
//!
//! Fault injection comes from `anvil-faults` ([`LifecycleFaults`]
//! drives crash, stall, and checkpoint-corruption draws), so a soak
//! campaign is reproducible byte-for-byte from its seed.
//!
//! ## Quick start
//!
//! ```
//! use anvil_core::AnvilConfig;
//! use anvil_dram::{AddressMapping, CpuClock, DramGeometry};
//! use anvil_pmu::{Pmu, SamplerConfig};
//! use anvil_runtime::{RuntimeConfig, SupervisedOutcome, Supervisor};
//!
//! let mapping = AddressMapping::new(DramGeometry::ddr3_4gb());
//! let mut pmu = Pmu::new(SamplerConfig::anvil_default());
//! let mut sup = Supervisor::new(
//!     AnvilConfig::hardened(),
//!     RuntimeConfig::default(),
//!     CpuClock::SANDY_BRIDGE_2_6GHZ,
//!     166_400_000,
//!     0,
//!     &mut pmu,
//! );
//! let deadline = sup.deadline();
//! let outcome = sup
//!     .service(deadline, &mut pmu, &mapping, &mut |_, v| Some(v))
//!     .unwrap();
//! assert!(matches!(outcome, SupervisedOutcome::Serviced { .. }));
//! ```

mod ladder;
pub mod soak;
mod supervisor;

pub use anvil_faults::LifecycleFaults;
pub use ladder::{DegradationLadder, LadderCause, LadderTransition, ProtectionLevel};
pub use soak::{Engine, SoakConfig, SoakSummary};
pub use supervisor::{
    install_quiet_panic_hook, RecoveryReport, RuntimeConfig, RuntimeStats, SupervisedOutcome,
    Supervisor,
};
