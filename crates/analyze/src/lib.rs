//! Static hammer-capability analysis over the ANVIL attack and workload IR.
//!
//! This crate answers "could this access pattern flip bits, and would the
//! configured detector catch it?" **without running the simulator**: it
//! abstract-interprets [`anvil_attacks::pattern::PatternTemplate`] eviction
//! sequences and [`anvil_workloads`] phase descriptions into per-row
//! activation-count intervals over one auto-refresh window, compares those
//! intervals against the DRAM disturbance thresholds (Table 1 of the ANVIL
//! paper), and checks [`anvil_core::AnvilConfig`] coverage against every
//! pattern the analysis proves hammer-capable.
//!
//! The symbolic guarantee verifier ([`abstract_domain`] → [`transfer`] →
//! [`witness`]) extends the same idea to the adaptive adversaries: it
//! abstract-interprets the detector's pure transition functions
//! (`anvil_core::transition`) over parameter *boxes* of entire attack
//! families, proving sound per-archetype bounds on undetectable
//! activations — and when a bound clears the flip threshold, it hunts a
//! concrete [`Witness`] and confirms the refutation by dynamic replay.

mod abstract_domain;
mod bounds;
mod coverage;
mod report;
mod transfer;
mod verdict;
mod witness;

pub use abstract_domain::{ParamBox, PhaseSet, RealInterval};
pub use bounds::{
    eviction_profile, pattern_activation_bounds, workload_activation_bounds, AccessVector,
    ActivationInterval, AnalysisContext, EvictionProfile, MissRate, PatternBounds, WorkloadBounds,
};
pub use coverage::{
    check_config, check_coverage, check_envelope, envelope_params, ConfigFinding, CoverageVerdict,
    Severity,
};
pub use report::{analyze_all, AnalysisReport, PatternReport, SymbolicSection, WorkloadReport};
pub use transfer::{
    frontier_distance, max_quiet_normalized, verify_archetype, verify_config, Archetype,
    SymbolicBound,
};
pub use verdict::{
    at_risk_victims, benign_floor, classify, classify_interval, per_side_requirement, HammerStyle,
    Verdict,
};
pub use witness::{extract_witness, Witness, WitnessOutcome};
