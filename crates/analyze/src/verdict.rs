//! Classifying activation intervals against the disturbance thresholds.
//!
//! The DRAM model (Table 1 of the paper) flips bits in a victim row when
//! its accumulated disturbance within one refresh window reaches the
//! single-sided threshold, where balanced double-sided hammering is
//! boosted so that `double_sided_threshold` *total* activations (half per
//! side) suffice. The verdicts here compare a pattern's per-side
//! activation interval against the per-side requirement for the most
//! vulnerable rows — the same rows the dynamic model flips first.

use anvil_dram::{DisturbanceConfig, DramGeometry, RowId};
use serde::Serialize;

use crate::bounds::{ActivationInterval, PatternBounds};

/// Which hammering geometry a capable pattern realises.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum HammerStyle {
    /// One aggressor row; victims are its direct neighbours.
    SingleSided,
    /// Two aggressor rows sandwiching the victim.
    DoubleSided,
}

/// The three-valued static verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum Verdict {
    /// The activation lower bound meets the flip threshold: a real run is
    /// guaranteed to accumulate flip-level disturbance on vulnerable rows.
    HammerCapable {
        /// The hammering geometry proven capable.
        style: HammerStyle,
    },
    /// The interval straddles the threshold; the analysis cannot decide.
    Marginal,
    /// The activation upper bound stays below the flip threshold: no run
    /// of this pattern can flip a bit.
    Benign,
}

/// Per-side activations required to flip the most vulnerable rows, for a
/// pattern driving `sides` aggressor rows.
pub fn per_side_requirement(sides: u8, disturbance: &DisturbanceConfig) -> u64 {
    if sides >= 2 {
        // Balanced double-sided: the boost makes `double_sided_threshold`
        // total (half per side) equivalent to the single-sided threshold.
        disturbance.double_sided_threshold.div_ceil(2)
    } else {
        disturbance.single_sided_threshold
    }
}

/// Per-side activation count *strictly below which* no flip is possible —
/// the Benign decision boundary. For double-sided geometry this also
/// charges distance-2 coupling when the module disturbs at that reach, so
/// it can sit below [`per_side_requirement`]; counts between the two are
/// [`Verdict::Marginal`].
pub fn benign_floor(sides: u8, disturbance: &DisturbanceConfig) -> u64 {
    let ss = disturbance.single_sided_threshold as f64;
    if sides >= 2 {
        let boost = disturbance.coupling_boost();
        let far = if disturbance.neighbor_reach >= 2 {
            disturbance.distance2_coupling
        } else {
            0.0
        };
        // Worst case for a victim when every row stays below h: both
        // direct neighbours at h (fully boosted) and both distance-2
        // rows at h: D <= 2h(1 + boost + far). Safe iff D < ss.
        (ss / (2.0 * (1.0 + boost + far))).ceil() as u64
    } else {
        disturbance.single_sided_threshold
    }
}

/// Classifies a per-side activation interval for a `sides`-aggressor
/// pattern against the disturbance thresholds.
pub fn classify_interval(
    per_side: ActivationInterval,
    sides: u8,
    disturbance: &DisturbanceConfig,
) -> Verdict {
    if per_side.lo >= per_side_requirement(sides, disturbance) {
        Verdict::HammerCapable {
            style: if sides >= 2 {
                HammerStyle::DoubleSided
            } else {
                HammerStyle::SingleSided
            },
        }
    } else if per_side.hi < benign_floor(sides, disturbance) {
        Verdict::Benign
    } else {
        Verdict::Marginal
    }
}

/// Classifies a pattern's static bounds. See [`classify_interval`].
pub fn classify(bounds: &PatternBounds, disturbance: &DisturbanceConfig) -> Verdict {
    classify_interval(bounds.per_side, bounds.sides, disturbance)
}

/// The rows at risk when `aggressors` are hammered: every row within the
/// disturbance model's neighbour reach of an aggressor, excluding the
/// aggressors themselves, deduplicated and sorted.
pub fn at_risk_victims(
    aggressors: &[RowId],
    disturbance: &DisturbanceConfig,
    geometry: &DramGeometry,
) -> Vec<RowId> {
    let mut victims: Vec<RowId> = aggressors
        .iter()
        .flat_map(|a| a.neighbors(disturbance.neighbor_reach, geometry))
        .filter(|r| !aggressors.contains(r))
        .collect();
    victims.sort_unstable();
    victims.dedup();
    victims
}

#[cfg(test)]
mod tests {
    use super::*;
    use anvil_dram::BankId;

    #[test]
    fn interval_thresholds() {
        let d = DisturbanceConfig::paper_ddr3();
        let req2 = per_side_requirement(2, &d);
        assert_eq!(req2, d.double_sided_threshold.div_ceil(2));
        assert_eq!(per_side_requirement(1, &d), d.single_sided_threshold);
        assert_eq!(
            classify_interval(
                ActivationInterval {
                    lo: req2,
                    hi: req2 + 1
                },
                2,
                &d
            ),
            Verdict::HammerCapable {
                style: HammerStyle::DoubleSided
            }
        );
        assert_eq!(
            classify_interval(
                ActivationInterval {
                    lo: 0,
                    hi: req2 - 1
                },
                2,
                &d
            ),
            Verdict::Benign
        );
        assert_eq!(
            classify_interval(
                ActivationInterval {
                    lo: req2 - 1,
                    hi: req2
                },
                2,
                &d
            ),
            Verdict::Marginal
        );
    }

    #[test]
    fn victims_of_double_sided_pair() {
        let g = DramGeometry::ddr3_4gb();
        let d = DisturbanceConfig::paper_ddr3();
        let bank = BankId(3);
        let aggs = [RowId::new(bank, 99), RowId::new(bank, 101)];
        let victims = at_risk_victims(&aggs, &d, &g);
        assert!(victims.contains(&RowId::new(bank, 100)), "sandwiched row");
        assert!(victims.contains(&RowId::new(bank, 98)));
        assert!(victims.contains(&RowId::new(bank, 102)));
        assert!(
            !victims.contains(&RowId::new(bank, 99)),
            "aggressor excluded"
        );
    }
}
