//! Replayable counterexamples for refuted safety claims.
//!
//! When the abstract bound of [`crate::transfer`] clears the flip
//! threshold, the claim "this family stays safe" is *refuted only if a
//! concrete family member actually evades* — over-approximation alone
//! proves nothing about attack existence. This module closes that gap:
//! [`extract_witness`] sweeps the family's parameter box for candidate
//! members (via the `anvil-adversary` [`ArchetypeSpec`] IR) and replays
//! each through the full dynamic simulator; a [`Witness`] is only
//! emitted once its replay reproduces a real missed detection — bit
//! flips with no detection event. The witness carries everything needed
//! to reproduce the run byte-for-byte: the spec, the detector config,
//! the DRAM generation, the seed, the horizon, and a [`FaultPlan`]
//! (lifecycle/fault scenarios; [`FaultPlan::none`] for pure evasion).

use crate::transfer::Archetype;
use anvil_adversary::ArchetypeSpec;
use anvil_core::{AnvilConfig, Platform, PlatformConfig};
use anvil_dram::DisturbanceConfig;
use anvil_faults::FaultPlan;
use serde::{Deserialize, Serialize};

/// What one dynamic replay of a witness produced.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WitnessOutcome {
    /// Whether the detector flagged any aggressor during the run.
    pub detected: bool,
    /// Milliseconds to the first detection, if any.
    pub detect_ms: Option<f64>,
    /// Bit flips the run accumulated.
    pub flips: u64,
}

impl WitnessOutcome {
    /// A *missed detection*: the run flipped bits and the detector never
    /// noticed — the only outcome that confirms a refutation.
    pub fn missed_detection(&self) -> bool {
        self.flips > 0 && !self.detected
    }
}

/// A concrete counterexample to a safety claim, replayable end to end.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Witness {
    /// The concrete adversary (one member of the refuted family).
    pub spec: ArchetypeSpec,
    /// The detector configuration the claim was about.
    pub config: AnvilConfig,
    /// Replay on future (half-threshold) DRAM rather than the paper's.
    pub future_dram: bool,
    /// Campaign seed: threaded into the hardened window-phase schedule
    /// and the DRAM weak-cell map, exactly as the evasion campaign does.
    pub seed: u64,
    /// Simulated horizon in milliseconds.
    pub run_ms: f64,
    /// Fault/lifecycle scenario active during the replay.
    pub faults: FaultPlan,
    /// The outcome the verifier predicts (and the replay must match).
    pub predicted: WitnessOutcome,
}

impl Witness {
    /// Replays the witness through the dynamic simulator and returns
    /// what actually happened. Deterministic in all of the witness's
    /// fields.
    pub fn replay(&self) -> WitnessOutcome {
        let mut cfg = self.config;
        cfg.hardening.phase_seed = self.seed;
        let mut pc = PlatformConfig::with_anvil(cfg);
        if self.future_dram {
            pc.memory.dram.disturbance = DisturbanceConfig::future_half_threshold();
        }
        pc.memory.dram.seed ^= self.seed;
        if self.faults != FaultPlan::none() {
            pc = pc.with_faults(self.faults);
        }
        let mut p = Platform::new(pc);
        let outcome = p
            .add_attack(self.spec.build())
            .and_then(|_| p.run_ms(self.run_ms));
        match outcome {
            Ok(()) => WitnessOutcome {
                detected: p.first_detection_ms().is_some(),
                detect_ms: p.first_detection_ms(),
                flips: p.total_flips(),
            },
            // A platform error (e.g. the attack failed to prepare) can
            // never confirm a missed detection.
            Err(_) => WitnessOutcome {
                detected: true,
                detect_ms: None,
                flips: 0,
            },
        }
    }

    /// Whether the replay reproduces the predicted outcome *and* that
    /// outcome is a real missed detection.
    pub fn confirms(&self) -> bool {
        self.predicted.missed_detection() && self.replay() == self.predicted
    }
}

/// Candidate family members to try as witnesses, ordered most-likely
/// first. The parameters come from the family's own evasion logic: the
/// duty-cycle burst sizes straddle the stage-1 threshold, the paces sit
/// one notch under the trip rate, the dilutions start at the smallest
/// mix that clears the sample floor, and the spreads start at the
/// smallest floor-evading pair count.
fn candidates(archetype: Archetype, config: &AnvilConfig) -> Vec<ArchetypeSpec> {
    let window = anvil_adversary::EST_STAGE1_WINDOW_CYCLES;
    let t = config.llc_miss_threshold;
    match archetype {
        Archetype::Sustained => [t.saturating_sub(1), t.saturating_sub(400)]
            .iter()
            .map(|&m| ArchetypeSpec::Paced {
                misses_per_window: m.max(2),
                window_cycles: window,
            })
            .collect(),
        Archetype::Straddle => [
            t.saturating_mul(7) / 5,
            t.saturating_mul(9) / 5,
            t.saturating_sub(2).saturating_mul(2),
        ]
        .iter()
        .map(|&b| ArchetypeSpec::DutyCycle {
            burst_misses: b.max(2),
            window_cycles: window,
        })
        .collect(),
        Archetype::Camouflage => vec![
            ArchetypeSpec::Camouflage { dilution: 4 },
            ArchetypeSpec::Camouflage { dilution: 6 },
            ArchetypeSpec::Camouflage { dilution: 10 },
        ],
        Archetype::Distributed => vec![
            ArchetypeSpec::Distributed { pairs: 6 },
            ArchetypeSpec::Distributed { pairs: 7 },
        ],
    }
}

/// Searches the family's parameter box for a confirmed counterexample:
/// each candidate is replayed through the dynamic simulator, and the
/// first to reproduce a missed detection is returned with its recorded
/// outcome. `None` means no tried member evades — the refutation stays
/// unconfirmed (the abstract bound over-approximates this family).
pub fn extract_witness(
    archetype: Archetype,
    config: &AnvilConfig,
    future_dram: bool,
    seed: u64,
    run_ms: f64,
    faults: FaultPlan,
) -> Option<Witness> {
    for spec in candidates(archetype, config) {
        let probe = Witness {
            spec,
            config: *config,
            future_dram,
            seed,
            run_ms,
            faults,
            predicted: WitnessOutcome {
                detected: false,
                detect_ms: None,
                flips: 0,
            },
        };
        let outcome = probe.replay();
        if outcome.missed_detection() {
            return Some(Witness {
                predicted: outcome,
                ..probe
            });
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_straddle_witness_exists_on_future_dram_and_replays() {
        // The known evasion: duty-cycled bursts on the unhardened
        // detector against future DRAM flip without a detection. The
        // extracted witness must replay to the identical outcome.
        let config = AnvilConfig::baseline();
        let w = extract_witness(
            Archetype::Straddle,
            &config,
            true,
            7,
            70.0,
            FaultPlan::none(),
        )
        .expect("the baseline duty-cycle evasion must yield a witness");
        assert!(w.predicted.missed_detection());
        assert!(w.confirms(), "witness must replay deterministically");
    }

    #[test]
    fn hardened_distributed_has_no_witness() {
        // The hardened ledger convicts the spread; no candidate evades,
        // so the refutation machinery must come back empty instead of
        // fabricating a counterexample.
        let config = AnvilConfig::hardened();
        assert!(extract_witness(
            Archetype::Distributed,
            &config,
            true,
            7,
            40.0,
            FaultPlan::none(),
        )
        .is_none());
    }
}
