//! The full static-analysis report: every attack vector the repo's IR can
//! express, crossed with the candidate replacement policies, plus the
//! twelve SPEC workload models and the detector-configuration findings.

use anvil_attacks::PatternTemplate;
use anvil_cache::PolicyKind;
use anvil_core::{AnvilConfig, GuaranteeEnvelope};
use anvil_dram::{BankId, RowId};
use anvil_mem::MemoryConfig;
use anvil_workloads::SpecBenchmark;
use serde::Serialize;

use crate::bounds::{
    pattern_activation_bounds, workload_activation_bounds, AccessVector, AnalysisContext,
    PatternBounds, WorkloadBounds,
};
use crate::coverage::{
    check_config, check_coverage, check_envelope, envelope_params, ConfigFinding, CoverageVerdict,
};
use crate::transfer::{verify_config, SymbolicBound};
use crate::verdict::{at_risk_victims, classify, classify_interval, Verdict};

/// Static analysis of one attack access vector.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct PatternReport {
    /// Human-readable vector name, e.g. `eviction/paper/bit-plru`.
    pub name: String,
    /// Number of aggressor rows the vector drives.
    pub sides: u8,
    /// The static activation/miss-rate bounds.
    pub bounds: PatternBounds,
    /// Hammer-capability verdict.
    pub verdict: Verdict,
    /// Whether the supplied detector configuration is guaranteed to
    /// catch the pattern (for capable patterns).
    pub coverage: CoverageVerdict,
    /// At-risk victim rows for a canonical mid-bank aggressor placement
    /// (empty unless the pattern is proven hammer-capable).
    pub victims: Vec<RowId>,
}

/// Static analysis of one SPEC workload model.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct WorkloadReport {
    /// Benchmark name as in the paper's tables.
    pub name: String,
    /// Worst-row activation bounds per refresh window.
    pub bounds: WorkloadBounds,
    /// Verdict against the (stricter) double-sided per-side requirement.
    pub verdict: Verdict,
}

/// The complete report emitted by the `static_analysis` binary.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct AnalysisReport {
    /// Auto-refresh window length in CPU cycles (the bounds' horizon).
    pub window_cycles: u64,
    /// Per-side activations required to flip, for 1- and 2-sided vectors.
    pub required_single_sided: u64,
    /// See `required_single_sided`.
    pub required_double_sided_per_side: u64,
    /// Every attack vector analysed.
    pub patterns: Vec<PatternReport>,
    /// Every SPEC workload model analysed.
    pub workloads: Vec<WorkloadReport>,
    /// Detector-configuration findings.
    pub config_findings: Vec<ConfigFinding>,
    /// The audited guarantee envelope: worst-case undetected activations
    /// per aggressor pair per refresh interval, per adversary archetype.
    pub envelope: GuaranteeEnvelope,
    /// The symbolic verifier's per-archetype bounds, cross-checked
    /// against the envelope's closed-form budgets.
    pub symbolic: SymbolicSection,
}

/// The envelope-comparison section: abstract-interpretation bounds next
/// to the closed-form audit, for the analysed config and for the
/// hardened profile it is compared against.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct SymbolicSection {
    /// Per-archetype bounds for the analysed configuration.
    pub bounds: Vec<SymbolicBound>,
    /// Whether every symbolic bound dominates its audit budget — the
    /// soundness cross-check between the two derivations.
    pub sound: bool,
    /// Whether every symbolic bound stays under the flip threshold (the
    /// symbolic analogue of `envelope.holds()`).
    pub proves_safety: bool,
}

fn template_name(t: PatternTemplate) -> String {
    match t {
        PatternTemplate::Paper => "paper".into(),
        PatternTemplate::Cyclic => "cyclic".into(),
        PatternTemplate::Shortened { k } => format!("shortened{k}"),
    }
}

fn analyze_vector(
    name: String,
    vector: &AccessVector,
    ctx: &AnalysisContext,
    memory: &MemoryConfig,
    anvil: &AnvilConfig,
) -> PatternReport {
    let bounds = pattern_activation_bounds(vector, ctx);
    let verdict = classify(&bounds, &ctx.disturbance);
    let coverage = check_coverage(anvil, &memory.clock, ctx.window, &bounds, verdict);
    let victims = if matches!(verdict, Verdict::HammerCapable { .. }) {
        // Canonical placement: aggressors around the middle of bank 0.
        let mid = memory.dram.geometry.rows_per_bank / 2;
        let bank = BankId(0);
        let aggressors: Vec<RowId> = if bounds.sides >= 2 {
            vec![RowId::new(bank, mid - 1), RowId::new(bank, mid + 1)]
        } else {
            vec![RowId::new(bank, mid)]
        };
        at_risk_victims(&aggressors, &ctx.disturbance, &memory.dram.geometry)
    } else {
        Vec::new()
    };
    PatternReport {
        name,
        sides: bounds.sides,
        bounds,
        verdict,
        coverage,
        victims,
    }
}

/// Runs the whole static analysis: both CLFLUSH vectors, every
/// [`PatternTemplate`] crossed with every deterministic [`PolicyKind`]
/// (all double-sided, as in the repo's CLFLUSH-free attack), the twelve
/// [`SpecBenchmark`] models, and the configuration findings for `anvil`.
pub fn analyze_all(memory: &MemoryConfig, anvil: &AnvilConfig) -> AnalysisReport {
    let ctx = AnalysisContext::from_memory(memory);
    let mut patterns = Vec::new();
    for sides in [1u8, 2u8] {
        patterns.push(analyze_vector(
            format!(
                "clflush/{}-sided",
                if sides == 2 { "double" } else { "single" }
            ),
            &AccessVector::Clflush { sides },
            &ctx,
            memory,
            anvil,
        ));
    }
    for template in PatternTemplate::candidates() {
        for policy in PolicyKind::deterministic_candidates() {
            patterns.push(analyze_vector(
                format!("eviction/{}/{policy}", template_name(template)),
                &AccessVector::Eviction {
                    template,
                    policy,
                    sides: 2,
                },
                &ctx,
                memory,
                anvil,
            ));
        }
    }

    let workloads = SpecBenchmark::all()
        .iter()
        .map(|b| {
            let model = b.model();
            let bounds = workload_activation_bounds(&model, &ctx);
            // Judge workloads against the stricter double-sided per-side
            // requirement: benign here means benign in any geometry.
            let verdict = classify_interval(bounds.worst_row, 2, &ctx.disturbance);
            WorkloadReport {
                name: model.name.to_string(),
                bounds,
                verdict,
            }
        })
        .collect();

    let mut config_findings = check_config(anvil, &memory.clock, &ctx.timing, &ctx.disturbance);
    let (envelope, envelope_findings) =
        check_envelope(anvil, &memory.clock, &ctx.timing, &ctx.disturbance);
    config_findings.extend(envelope_findings);

    let params = envelope_params(&ctx.timing, &ctx.disturbance);
    let bounds = verify_config(anvil, &memory.clock, &params);
    let symbolic = SymbolicSection {
        sound: bounds.iter().all(|b| b.sound_wrt_audit),
        proves_safety: bounds.iter().all(|b| b.bound < params.flip_threshold),
        bounds,
    };

    AnalysisReport {
        window_cycles: ctx.window,
        required_single_sided: crate::verdict::per_side_requirement(1, &ctx.disturbance),
        required_double_sided_per_side: crate::verdict::per_side_requirement(2, &ctx.disturbance),
        patterns,
        workloads,
        config_findings,
        envelope,
        symbolic,
    }
}
