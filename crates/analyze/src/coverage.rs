//! Static detector-coverage and configuration checks.
//!
//! [`check_coverage`] answers: given a pattern the bounds analysis proved
//! hammer-capable, would an [`AnvilConfig`] detector actually notice it?
//! Each of the detector's gates — the stage-1 LLC-miss-count trigger, the
//! stage-2 estimated activation rate, the per-row sample floor and the
//! bank-locality corroboration — is evaluated against the pattern's
//! static bounds, and every gate the pattern slips through becomes an
//! escape reason.
//!
//! [`check_config`] flags configurations that are internally inconsistent
//! or that *no* pattern could trip — dead detectors that
//! [`AnvilConfig::validate`] alone cannot spot because the problem only
//! appears next to the platform's timing constants.

use anvil_core::{AnvilConfig, EnvelopeParams, GuaranteeEnvelope};
use anvil_dram::{CpuClock, DisturbanceConfig, DramTiming};
use serde::Serialize;

use crate::bounds::PatternBounds;
use crate::verdict::{per_side_requirement, Verdict};

/// Outcome of the static coverage check for one pattern.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub enum CoverageVerdict {
    /// Every detector gate is guaranteed to trip on this pattern.
    Covered,
    /// At least one gate can miss the pattern; the reasons list each one.
    Escapes {
        /// One entry per gate the pattern can slip through.
        reasons: Vec<String>,
    },
    /// The pattern is not proven hammer-capable, so coverage is moot.
    NotApplicable,
}

/// Severity of a configuration finding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum Severity {
    /// The configuration is unusable or cannot detect anything.
    Error,
    /// The configuration works but has a coverage gap or oddity.
    Warning,
}

/// One statically detected configuration problem.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ConfigFinding {
    /// How bad it is.
    pub severity: Severity,
    /// The configuration field (or field combination) at fault.
    pub field: String,
    /// Human-readable description.
    pub message: String,
}

/// Checks whether `anvil` is guaranteed to detect a pattern with the
/// given static `bounds` and `verdict`. `refresh_period` is the DRAM
/// auto-refresh window in CPU cycles (the horizon the bounds use).
pub fn check_coverage(
    anvil: &AnvilConfig,
    clock: &CpuClock,
    refresh_period: u64,
    bounds: &PatternBounds,
    verdict: Verdict,
) -> CoverageVerdict {
    if !matches!(verdict, Verdict::HammerCapable { .. }) {
        return CoverageVerdict::NotApplicable;
    }
    let mut reasons = Vec::new();

    // Stage 1: the miss counter must reach the threshold in one tc window.
    let tc = anvil.tc_cycles(clock) as f64;
    let guaranteed_misses = bounds.miss_rate.lo * tc;
    if guaranteed_misses < anvil.llc_miss_threshold as f64 {
        reasons.push(format!(
            "stage 1: guaranteed {guaranteed_misses:.0} LLC misses per tc window < \
             llc_miss_threshold {}",
            anvil.llc_miss_threshold
        ));
    }

    // Stage 2 rate gate: the detector extrapolates per-row activations per
    // refresh period from the sample share; the true rate (our lower
    // bound) must clear the suspicion threshold.
    let required = (anvil.min_hammer_accesses as f64 * anvil.rate_safety).max(1.0);
    if (bounds.per_side.lo as f64) < required {
        reasons.push(format!(
            "stage 2: guaranteed per-row rate {} per refresh period < required {required:.0}",
            bounds.per_side.lo
        ));
    }

    // Stage 2 sample floor: enough samples must land on the aggressor row
    // within one ts window.
    let ts = anvil.ts_cycles(clock) as f64;
    let samples_per_ts = ts / anvil.sampling.interval as f64;
    let per_row_share = bounds.aggressor_miss_share / f64::from(bounds.sides.max(1));
    let expected_row_samples = samples_per_ts * per_row_share;
    if expected_row_samples < f64::from(anvil.row_sample_floor) {
        reasons.push(format!(
            "stage 2: expected {expected_row_samples:.1} samples on the aggressor row per ts \
             window < row_sample_floor {}",
            anvil.row_sample_floor
        ));
    }

    // Stage 2 bank corroboration: other same-bank rows must also be
    // sampled at least bank_support_min times.
    let expected_support = expected_row_samples * f64::from(bounds.same_bank_rows);
    if expected_support < f64::from(anvil.bank_support_min) {
        reasons.push(format!(
            "stage 2: expected {expected_support:.1} same-bank corroborating samples < \
             bank_support_min {}",
            anvil.bank_support_min
        ));
    }

    let _ = refresh_period;
    if reasons.is_empty() {
        CoverageVerdict::Covered
    } else {
        CoverageVerdict::Escapes { reasons }
    }
}

/// [`EnvelopeParams`] for the platform the analysis runs against:
/// refresh horizon and flip threshold straight from the DRAM model, and
/// the paper's per-access cycle costs on top of its timing constants
/// (row-conflict access plus miss/flush overhead for the attacker,
/// row-buffer hit plus load overhead for camouflage filler).
pub fn envelope_params(timing: &DramTiming, disturbance: &DisturbanceConfig) -> EnvelopeParams {
    EnvelopeParams {
        refresh_period: timing.refresh_period,
        flip_threshold: disturbance.double_sided_threshold,
        attack_access_cycles: timing.row_conflict + 8,
        hit_access_cycles: timing.row_hit + 4,
    }
}

/// Audits the guarantee envelope and converts any leaking adversary
/// archetype into [`ConfigFinding`]s. The sustained-pacing budget is an
/// `Error` (it is the paper's own sizing rule); the adaptive archetypes
/// (straddle, camouflage, distributed) are `Warning`s on unhardened
/// configs, since closing them requires [`anvil_core::HardeningConfig`]
/// rather than a parameter tweak.
pub fn check_envelope(
    anvil: &AnvilConfig,
    clock: &CpuClock,
    timing: &DramTiming,
    disturbance: &DisturbanceConfig,
) -> (GuaranteeEnvelope, Vec<ConfigFinding>) {
    let env = GuaranteeEnvelope::audit(anvil, clock, &envelope_params(timing, disturbance));
    let mut findings = Vec::new();
    let archetypes = [
        ("envelope.sustained", env.sustained_budget, Severity::Error),
        ("envelope.straddle", env.straddle_budget, Severity::Warning),
        (
            "envelope.camouflage",
            env.camouflage_budget,
            Severity::Warning,
        ),
        (
            "envelope.distributed",
            env.distributed_budget,
            Severity::Warning,
        ),
    ];
    for (field, budget, severity) in archetypes {
        if budget >= env.flip_threshold {
            findings.push(ConfigFinding {
                severity,
                field: field.into(),
                message: format!(
                    "guarantee envelope leak: the {} adversary can land {budget} \
                     undetected activations per refresh interval (flips at {})",
                    field.trim_start_matches("envelope."),
                    env.flip_threshold
                ),
            });
        }
    }
    (env, findings)
}

/// Statically validates an [`AnvilConfig`] against the platform timing
/// and disturbance thresholds, beyond what `AnvilConfig::validate` can
/// check in isolation.
pub fn check_config(
    anvil: &AnvilConfig,
    clock: &CpuClock,
    timing: &DramTiming,
    disturbance: &DisturbanceConfig,
) -> Vec<ConfigFinding> {
    let mut findings = Vec::new();
    if let Err(e) = anvil.validate() {
        findings.push(ConfigFinding {
            severity: Severity::Error,
            field: "validate".into(),
            message: e.to_string(),
        });
        return findings;
    }

    // Stage 1 reachability: even a loop of back-to-back row-buffer hits
    // cannot generate more than tc / row_hit misses.
    let tc = anvil.tc_cycles(clock);
    let max_misses_per_tc = tc / timing.row_hit.max(1);
    if max_misses_per_tc < anvil.llc_miss_threshold {
        findings.push(ConfigFinding {
            severity: Severity::Error,
            field: "llc_miss_threshold/tc_ms".into(),
            message: format!(
                "stage 1 can never trip: at most {max_misses_per_tc} LLC misses fit in one \
                 tc window, threshold is {}",
                anvil.llc_miss_threshold
            ),
        });
    }

    // Blind spot: flip-capable double-sided patterns whose per-side rate
    // sits below the suspicion threshold escape stage 2 entirely.
    let required = (anvil.min_hammer_accesses as f64 * anvil.rate_safety).max(1.0);
    let flip_floor = per_side_requirement(2, disturbance) as f64;
    if required > flip_floor {
        findings.push(ConfigFinding {
            severity: Severity::Error,
            field: "min_hammer_accesses/rate_safety".into(),
            message: format!(
                "blind spot: stage 2 requires {required:.0} activations per refresh period but \
                 double-sided flips need only {flip_floor:.0} per side"
            ),
        });
    }

    // Sampling density: the sampler must be able to reach the per-row
    // floor within one ts window at all.
    let samples_per_ts = anvil.ts_cycles(clock) / anvil.sampling.interval.max(1);
    if samples_per_ts < u64::from(anvil.row_sample_floor) {
        findings.push(ConfigFinding {
            severity: Severity::Error,
            field: "ts_ms/sampling.interval".into(),
            message: format!(
                "sampler collects at most {samples_per_ts} samples per ts window, below \
                 row_sample_floor {}",
                anvil.row_sample_floor
            ),
        });
    }

    // Reaction time: a tc window longer than the refresh period means a
    // hammer can complete before stage 1 even closes its first window.
    if tc > timing.refresh_period {
        findings.push(ConfigFinding {
            severity: Severity::Warning,
            field: "tc_ms".into(),
            message: format!(
                "tc window ({tc} cycles) exceeds the refresh period \
                 ({} cycles): flips can land before the first stage-1 decision",
                timing.refresh_period
            ),
        });
    }

    findings
}
