//! The abstract domain: per-row activation-count intervals.
//!
//! Everything in this module is derived from static descriptions — a
//! [`PatternTemplate`] plus a replacement policy, or a workload phase list —
//! and the platform's timing constants. No [`anvil_mem::MemorySystem`] is
//! constructed and no simulated cycle advances.
//!
//! The central object is [`ActivationInterval`]: sound lower and upper
//! bounds on how many times the busiest DRAM row can be *activated* (row
//! opened) within one auto-refresh window. Soundness direction matters:
//!
//! * the **lower** bound must under-estimate what a real run achieves, so
//!   `lo >= threshold` proves a pattern hammer-capable;
//! * the **upper** bound must over-estimate it, so `hi < threshold` proves
//!   a pattern benign.
//!
//! Costs are therefore always bracketed: the cheapest conceivable access
//! (row-buffer hit, no refresh stalls) caps the upper activation bound and
//! the dearest one (row conflict, refresh-stall inflation) caps the lower.

use anvil_attacks::PatternTemplate;
use anvil_cache::{HierarchyConfig, PolicyKind, ReplacementPolicy};
use anvil_dram::{Cycle, DisturbanceConfig, DramTiming};
use anvil_mem::{CoreModel, MemoryConfig};
use anvil_workloads::Pattern;
use anvil_workloads::{Phase, WorkloadModel};
use serde::Serialize;

/// Sound bounds on per-row activations within one auto-refresh window.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct ActivationInterval {
    /// Guaranteed-achievable activations (under-approximation).
    pub lo: u64,
    /// Never-exceeded activations (over-approximation).
    pub hi: u64,
}

impl ActivationInterval {
    /// The empty activity interval.
    pub fn zero() -> Self {
        ActivationInterval { lo: 0, hi: 0 }
    }

    /// Interval join: the union's bounding interval.
    #[must_use]
    pub fn join(self, other: Self) -> Self {
        ActivationInterval {
            lo: self.lo.max(other.lo),
            hi: self.hi.max(other.hi),
        }
    }
}

/// LLC-miss-rate bounds in misses per CPU cycle, used by the static
/// detector-coverage check (ANVIL's stage 1 counts LLC misses).
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct MissRate {
    /// Guaranteed misses per cycle.
    pub lo: f64,
    /// Maximum misses per cycle.
    pub hi: f64,
}

/// An attack access vector in the IR: what the inner loop does, stripped
/// of concrete addresses.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AccessVector {
    /// Access + CLFLUSH per aggressor (paper Section 2.1). `sides == 2`
    /// is the classic double-sided loop; `sides == 1` alternates the
    /// aggressor with a far same-bank conflict row.
    Clflush {
        /// Number of aggressor rows (1 or 2).
        sides: u8,
    },
    /// CLFLUSH-free eviction-set pattern (paper Section 2.2): `template`
    /// ordered over `ways + 1` same-set lines, replayed against
    /// `policy`. Always double-sided in the repo's attack, but the
    /// analysis accepts one side too.
    Eviction {
        /// Ordering of the eviction set within one iteration.
        template: PatternTemplate,
        /// Replacement policy of the targeted LLC.
        policy: PolicyKind,
        /// Number of aggressor rows (1 or 2).
        sides: u8,
    },
}

impl AccessVector {
    /// Number of aggressor rows this vector drives.
    pub fn sides(&self) -> u8 {
        match *self {
            AccessVector::Clflush { sides } | AccessVector::Eviction { sides, .. } => sides,
        }
    }
}

/// Steady-state behaviour of one eviction-set iteration, computed by
/// abstract interpretation of the template over a single-set cache model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct EvictionProfile {
    /// Accesses issued per iteration (`template.expand(ways).len()`).
    pub accesses_per_iteration: usize,
    /// Steady-state LLC misses per iteration.
    pub misses_per_iteration: f64,
    /// Steady-state LLC hits per iteration.
    pub hits_per_iteration: f64,
    /// Fraction of iterations in which the aggressor access missed; the
    /// aggressor's DRAM activation rate is this times the iteration rate.
    pub aggressor_miss_rate: f64,
}

/// One cache set with a live replacement-policy automaton: the smallest
/// faithful abstraction of how an eviction set exercises the hierarchy.
struct SetModel {
    slots: Vec<Option<usize>>,
    policy: Box<dyn ReplacementPolicy>,
}

impl SetModel {
    fn new(kind: PolicyKind, ways: usize) -> Self {
        SetModel {
            slots: vec![None; ways],
            policy: kind.build(1, ways),
        }
    }

    /// Hit check; updates replacement state on hit.
    fn probe(&mut self, line: usize) -> bool {
        if let Some(way) = self.slots.iter().position(|s| *s == Some(line)) {
            self.policy.on_hit(0, way);
            true
        } else {
            false
        }
    }

    /// Inserts `line`, returning the line displaced to make room.
    fn fill(&mut self, line: usize) -> Option<usize> {
        let (way, displaced) = if let Some(way) = self.slots.iter().position(Option::is_none) {
            (way, None)
        } else {
            let way = self.policy.victim(0);
            (way, self.slots[way])
        };
        self.slots[way] = Some(line);
        self.policy.on_fill(0, way);
        displaced
    }

    /// Removes `line` if present (inclusive back-invalidation).
    fn invalidate(&mut self, line: usize) {
        if let Some(way) = self.slots.iter().position(|s| *s == Some(line)) {
            self.slots[way] = None;
            self.policy.on_invalidate(0, way);
        }
    }
}

/// Replays `template` against a one-set-per-level abstract hierarchy:
/// `l3_policy` guards the LLC set the `ways + 1` eviction-set lines
/// compete for, while single sets of the configured L1 and L2 stand in
/// front exactly as in [`anvil_cache::CacheHierarchy`] — same-LLC-set
/// lines share their L1 and L2 set too, inner hits never reach the LLC's
/// replacement state, and LLC evictions back-invalidate the inner levels
/// (the hierarchy is inclusive).
///
/// This is static in the analysis sense: no addresses, no DRAM, no
/// clock — just the replacement automata run to their steady state.
pub fn eviction_profile(
    template: PatternTemplate,
    l3_policy: PolicyKind,
    hierarchy: &HierarchyConfig,
) -> EvictionProfile {
    let ways = hierarchy.l3.ways;
    let seq = template.expand(ways);
    let mut l1 = SetModel::new(hierarchy.l1.policy, hierarchy.l1.ways);
    let mut l2 = SetModel::new(hierarchy.l2.policy, hierarchy.l2.ways);
    let mut l3 = SetModel::new(l3_policy, ways);
    let warmup = 32u32;
    let measured = 32u32;
    let mut misses = 0u64;
    let mut aggressor_misses = 0u64;
    let mut hits = 0u64;
    for iter in 0..(warmup + measured) {
        for &line in &seq {
            if l1.probe(line) {
                if iter >= warmup {
                    hits += 1;
                }
                continue;
            }
            l1.fill(line);
            if l2.probe(line) {
                if iter >= warmup {
                    hits += 1;
                }
                continue;
            }
            l2.fill(line);
            if l3.probe(line) {
                if iter >= warmup {
                    hits += 1;
                }
                continue;
            }
            if let Some(evicted) = l3.fill(line) {
                l1.invalidate(evicted);
                l2.invalidate(evicted);
            }
            if iter >= warmup {
                misses += 1;
                if line == 0 {
                    aggressor_misses += 1;
                }
            }
        }
    }
    let per_iter = f64::from(measured);
    EvictionProfile {
        accesses_per_iteration: seq.len(),
        misses_per_iteration: misses as f64 / per_iter,
        hits_per_iteration: hits as f64 / per_iter,
        aggressor_miss_rate: aggressor_misses as f64 / per_iter,
    }
}

/// The platform constants the bounds math needs, extracted from a
/// [`MemoryConfig`] without instantiating the simulator.
#[derive(Debug, Clone)]
pub struct AnalysisContext {
    /// One auto-refresh window, in CPU cycles (every row's disturbance
    /// counter resets at least this often).
    pub window: Cycle,
    /// Core-side access costs.
    pub core: CoreModel,
    /// DRAM timing (row hit/conflict latencies, refresh cadence).
    pub timing: DramTiming,
    /// The full cache-hierarchy description (set shapes and policies for
    /// the abstract eviction-set replay).
    pub hierarchy: HierarchyConfig,
    /// Bytes per DRAM row.
    pub row_bytes: u64,
    /// Disturbance thresholds the verdicts compare against.
    pub disturbance: DisturbanceConfig,
}

impl AnalysisContext {
    /// Extracts the analysis constants from a full platform description.
    pub fn from_memory(config: &MemoryConfig) -> Self {
        AnalysisContext {
            window: config.dram.timing.refresh_period,
            core: config.core,
            timing: config.dram.timing,
            hierarchy: config.hierarchy,
            row_bytes: u64::from(config.dram.geometry.row_bytes),
            disturbance: config.dram.disturbance,
        }
    }

    /// Multiplicative inflation of worst-case access latency from refresh
    /// stalls: a `t_rfc`-long stall every `t_refi`.
    fn refresh_stall_factor(&self) -> f64 {
        1.0 + self.timing.t_rfc as f64 / self.timing.t_refi as f64
    }

    /// Cheapest conceivable LLC-missing access: row-buffer hit, no stalls.
    fn min_miss_cycles(&self) -> f64 {
        (self.timing.row_hit + self.core.miss_overhead) as f64
    }

    /// Dearest LLC-missing access: row conflict, refresh-stall inflated.
    fn max_miss_cycles(&self) -> f64 {
        (self.timing.row_conflict + self.core.miss_overhead) as f64 * self.refresh_stall_factor()
    }
}

/// Sound static bounds for one attack access vector.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct PatternBounds {
    /// Per-aggressor-row activations within one refresh window.
    pub per_side: ActivationInterval,
    /// Number of aggressor rows driven in lockstep.
    pub sides: u8,
    /// LLC misses per CPU cycle generated by the whole loop.
    pub miss_rate: MissRate,
    /// Fraction of the loop's LLC misses that land on aggressor rows.
    pub aggressor_miss_share: f64,
    /// Same-bank rows (other than one aggressor itself) that the loop
    /// also activates at a comparable rate — what ANVIL's stage-2 bank
    /// corroboration can count.
    pub same_bank_rows: u32,
    /// Steady-state eviction behaviour, for eviction vectors.
    pub eviction: Option<EvictionProfile>,
}

/// Computes per-row activation bounds for an attack access vector over one
/// auto-refresh window. See the module docs for the soundness direction of
/// each bound.
pub fn pattern_activation_bounds(vector: &AccessVector, ctx: &AnalysisContext) -> PatternBounds {
    let window = ctx.window as f64;
    match *vector {
        AccessVector::Clflush { sides } => {
            // Loop body: access A, clflush A, access B, clflush B — every
            // access misses (it was just flushed) and the two accesses
            // alternate rows of one bank, so steady state is all row
            // conflicts; the lower-cost bracket still assumes row hits.
            let flush = ctx.core.clflush_cost as f64;
            let lo_cost = ctx.min_miss_cycles() + flush;
            let hi_cost = ctx.max_miss_cycles() + flush;
            // One aggressor activation per side per 2-access iteration.
            let act_hi = window / (2.0 * lo_cost);
            let act_lo = window / (2.0 * hi_cost);
            let share = if sides == 2 { 1.0 } else { 0.5 };
            PatternBounds {
                per_side: ActivationInterval {
                    lo: act_lo.floor() as u64,
                    hi: act_hi.ceil() as u64,
                },
                sides,
                miss_rate: MissRate {
                    lo: 1.0 / hi_cost,
                    hi: 1.0 / lo_cost,
                },
                aggressor_miss_share: share,
                // Double-sided: the partner aggressor shares the bank.
                // Single-sided: the far conflict row does.
                same_bank_rows: 1,
                eviction: None,
            }
        }
        AccessVector::Eviction {
            template,
            policy,
            sides,
        } => {
            let profile = eviction_profile(template, policy, &ctx.hierarchy);
            let m = profile.misses_per_iteration;
            let h = profile.hits_per_iteration;
            let a = profile.aggressor_miss_rate;
            // Hits can resolve anywhere from L1 to L3.
            let iter_lo = m * ctx.min_miss_cycles() + h * ctx.core.l1_hit_cost as f64;
            let iter_hi = m * ctx.max_miss_cycles() + h * ctx.core.l3_hit_cost as f64;
            let sides_f = f64::from(sides.max(1));
            // `sides` per-set patterns interleave, so each set iterates
            // once per `sides * iter_cost` cycles.
            let act_hi = if iter_lo > 0.0 {
                a * window / (sides_f * iter_lo)
            } else {
                0.0
            };
            let act_lo = if iter_hi > 0.0 {
                a * window / (sides_f * iter_hi)
            } else {
                0.0
            };
            PatternBounds {
                per_side: ActivationInterval {
                    lo: act_lo.floor() as u64,
                    hi: act_hi.ceil() as u64,
                },
                sides,
                miss_rate: MissRate {
                    lo: if iter_hi > 0.0 { m / iter_hi } else { 0.0 },
                    hi: if iter_lo > 0.0 { m / iter_lo } else { 0.0 },
                },
                aggressor_miss_share: if m > 0.0 { a / m } else { 0.0 },
                same_bank_rows: u32::from(sides == 2),
                eviction: Some(profile),
            }
        }
    }
}

/// Each demand miss can force at most one dirty-line writeback, so DRAM
/// activations are bounded by twice the demand-miss count.
const WRITEBACK_FACTOR: f64 = 2.0;

/// Concentration margin for uniformly random address streams: per-row
/// counts concentrate sharply around the mean (binomial tails), so a 1.5x
/// multiplicative plus [`ROW_SLACK`]-additive envelope dominates the
/// busiest row for any window long enough to matter.
const CONCENTRATION_MARGIN: f64 = 1.5;

/// Additive per-row slack covering cold starts, phase boundaries and
/// refresh-interrupted row reopenings.
const ROW_SLACK: u64 = 64;

/// A sequential sweep opens each row about once; writebacks of the
/// previous sweep's dirty lines and refresh interruptions can reopen it a
/// few more times.
const SEQ_ACTIVATIONS_PER_SWEEP: f64 = 4.0;

/// A cache-resident loop region is refilled at most once per phase-list
/// rotation (the other phases evict it); the refill is sequential, with
/// the same reopening slack as a sweep, doubled for safety.
const RESIDENT_REFILL_ACTIVATIONS: f64 = 8.0;

/// Sound static bounds for one workload model.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct WorkloadBounds {
    /// Activations of the busiest DRAM row in one refresh window. The
    /// lower bound is trivially zero: a workload is never *guaranteed* to
    /// hammer.
    pub worst_row: ActivationInterval,
    /// Index of the phase whose rate bound dominates.
    pub worst_phase: usize,
    /// Per-phase worst-row activation bounds (window-scaled).
    pub per_phase: Vec<u64>,
}

/// Upper-bounds the busiest row's activations per phase, in activations
/// per CPU cycle *while that phase runs*.
fn phase_row_rate(phase: &Phase, ctx: &AnalysisContext) -> f64 {
    let compute = phase.compute_cycles as f64;
    let op_miss_cost = compute + ctx.min_miss_cycles();
    let l1 = ctx.core.l1_hit_cost as f64;
    let region_bytes = phase.region.1.max(1);
    let line = 64u64;

    // Sequential sweep over `bytes` with `step`: rate of the busiest row.
    let sweep_rate = |bytes: u64, step: u64| -> f64 {
        let bytes = bytes.max(1);
        let step = step.max(1);
        let sweep_ops = bytes.div_ceil(step) as f64;
        let lines = bytes.div_ceil(line) as f64;
        let misses = lines.min(sweep_ops);
        let hits = sweep_ops - misses;
        let sweep_floor = sweep_ops * compute + hits * l1 + misses * ctx.min_miss_cycles();
        if sweep_floor <= 0.0 {
            return 0.0;
        }
        WRITEBACK_FACTOR * SEQ_ACTIVATIONS_PER_SWEEP / sweep_floor
    };

    // Uniformly random misses over `rows` rows at up to one miss per
    // `op_miss_cost` cycles: busiest-row rate with concentration margin.
    let random_rate = |rows: u64, miss_fraction: f64| -> f64 {
        WRITEBACK_FACTOR * CONCENTRATION_MARGIN * miss_fraction
            / (op_miss_cost * rows.max(1) as f64)
    };

    match phase.pattern {
        Pattern::Chase => {
            let rows = region_bytes / ctx.row_bytes;
            random_rate(rows.max(1), 1.0)
        }
        Pattern::Stream { step } => sweep_rate(region_bytes, step),
        Pattern::Loop { step } => {
            if region_bytes <= ctx.hierarchy.l3.capacity_bytes {
                // Resident after one fill; refilled once per phase-list
                // rotation. Infinite single-phase loops saturate the
                // rotation floor and the rate vanishes, as it should.
                0.0 // handled by the caller via the rotation floor
            } else {
                sweep_rate(region_bytes, step)
            }
        }
        Pattern::HotScan {
            step,
            hot_bytes,
            hot_per_mille,
        } => {
            // Hot accesses are uniformly random over the hot sub-region
            // (the last `hot_bytes`); the cold scan covers the rest and
            // never touches the hot rows. Soundly assume every hot access
            // misses (residency would only lower the true count).
            let f = f64::from(hot_per_mille.min(1000)) / 1000.0;
            let hot_rows = hot_bytes / ctx.row_bytes;
            let hot = random_rate(hot_rows.max(1), f);
            let cold = sweep_rate(region_bytes.saturating_sub(hot_bytes), step);
            hot + cold
        }
    }
}

/// Computes the worst-row activation bound for a workload model over one
/// auto-refresh window.
///
/// The bound is `max` over phases of the phase's busiest-row rate, scaled
/// by the full window: over a window split between phases, the busiest
/// row accumulates at most `sum(rate_p * time_p) <= max(rate_p) * window`,
/// so the maximum is sound even when phases overlap in the arena.
pub fn workload_activation_bounds(model: &WorkloadModel, ctx: &AnalysisContext) -> WorkloadBounds {
    let window = ctx.window as f64;
    let rotation_floor = model.rotation_cycles_floor(ctx.core.l1_hit_cost);
    // Cache-resident loop regions refill once per phase-list rotation.
    let resident_refill = if rotation_floor == 0 {
        0.0
    } else {
        WRITEBACK_FACTOR * RESIDENT_REFILL_ACTIVATIONS * window / rotation_floor as f64
    };
    let mut per_phase = Vec::with_capacity(model.phases.len());
    let mut worst = 0u64;
    let mut worst_phase = 0usize;
    for (i, phase) in model.phases.iter().enumerate() {
        let mut acts = phase_row_rate(phase, ctx) * window;
        if let Pattern::Loop { .. } = phase.pattern {
            if phase.region.1 <= ctx.hierarchy.l3.capacity_bytes {
                acts += resident_refill;
            }
        }
        let acts = (acts.ceil() as u64).saturating_add(ROW_SLACK);
        per_phase.push(acts);
        if acts > worst {
            worst = acts;
            worst_phase = i;
        }
    }
    WorkloadBounds {
        worst_row: ActivationInterval { lo: 0, hi: worst },
        worst_phase,
        per_phase,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anvil_workloads::SpecBenchmark;

    fn ctx() -> AnalysisContext {
        AnalysisContext::from_memory(&MemoryConfig::paper_platform())
    }

    #[test]
    fn paper_template_on_bit_plru_misses_twice_per_iteration() {
        let h = HierarchyConfig::sandy_bridge_i5_2540m();
        let p = eviction_profile(PatternTemplate::Paper, PolicyKind::BitPlru, &h);
        assert!((p.misses_per_iteration - 2.0).abs() < 1e-9, "{p:?}");
        assert!((p.aggressor_miss_rate - 1.0).abs() < 1e-9, "{p:?}");
    }

    #[test]
    fn cyclic_template_thrashes_without_reliable_aggressor_eviction() {
        let h = HierarchyConfig::sandy_bridge_i5_2540m();
        let p = eviction_profile(PatternTemplate::Cyclic, PolicyKind::BitPlru, &h);
        assert!(p.misses_per_iteration > 2.0, "{p:?}");
        assert!(p.aggressor_miss_rate < 0.95, "{p:?}");
    }

    #[test]
    fn shortened_templates_fit_the_set_and_never_miss() {
        let h = HierarchyConfig::sandy_bridge_i5_2540m();
        for k in 1..=3 {
            let p = eviction_profile(PatternTemplate::Shortened { k }, PolicyKind::BitPlru, &h);
            assert_eq!(p.misses_per_iteration, 0.0, "k={k} {p:?}");
        }
    }

    #[test]
    fn clflush_bounds_bracket_table1_rates() {
        // Table 1: double-sided flips in ~15 ms at ~220K total accesses,
        // i.e. ~450K per side per 64 ms window. The static interval must
        // contain that operating point.
        let b = pattern_activation_bounds(&AccessVector::Clflush { sides: 2 }, &ctx());
        assert!(
            b.per_side.lo <= 450_000 && 450_000 <= b.per_side.hi,
            "{b:?}"
        );
        assert!(b.per_side.lo > 110_000, "must prove flip capability: {b:?}");
    }

    #[test]
    fn interval_ordering_is_preserved() {
        let c = ctx();
        for vector in [
            AccessVector::Clflush { sides: 1 },
            AccessVector::Clflush { sides: 2 },
            AccessVector::Eviction {
                template: PatternTemplate::Paper,
                policy: PolicyKind::BitPlru,
                sides: 2,
            },
        ] {
            let b = pattern_activation_bounds(&vector, &c);
            assert!(b.per_side.lo <= b.per_side.hi, "{vector:?}: {b:?}");
            assert!(b.miss_rate.lo <= b.miss_rate.hi, "{vector:?}: {b:?}");
        }
    }

    #[test]
    fn every_spec_model_is_bounded_below_the_flip_floor() {
        let c = ctx();
        for b in SpecBenchmark::all() {
            let w = workload_activation_bounds(&b.model(), &c);
            assert!(
                w.worst_row.hi < c.disturbance.double_sided_threshold.div_ceil(2),
                "{b}: {w:?}"
            );
            assert_eq!(w.worst_row.lo, 0);
        }
    }
}
