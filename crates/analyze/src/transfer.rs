//! Abstract transfer functions: the detector's transition semantics
//! lifted from concrete traces to the parameter boxes of
//! [`crate::abstract_domain`].
//!
//! For each adversary archetype the interpreter computes a **sound upper
//! bound** on the activations one aggressor pair can land in a refresh
//! interval without a detection — by running the *same* pure transition
//! functions the dynamic detector runs (`anvil_core::transition`), but
//! over interval endpoints and quantified window counts instead of a
//! seeded trace:
//!
//! * **Sustained** — a binary search over constant rates, each candidate
//!   checked by iterating [`anvil_core::transition::stage1_step`] to its
//!   fixed point; finite iteration errs on the quiet side, so the
//!   returned supremum is approached from above.
//! * **Straddle** — a window-counting loop over the jitter interval
//!   `[1−j, 1+j]` with the telescoped quiet-sum identity: over `n` quiet
//!   windows, `Σ xᵢ = k_{n+1} − c·k₁ + (1−c)·Σ_{i=2..n} kᵢ` with every
//!   evidence value `kᵢ < T`, so the family-wide supremum of normalized
//!   misses is `T·(1 + (1−c)(n−1))` — attained by the greedy schedule
//!   that pushes the evidence to `T` every window (exchange argument;
//!   cross-checked against concrete greedy and randomized schedules in
//!   the tests below).
//! * **Camouflage** — the supremum over all real-valued sample mixes
//!   that stay under the attributable floor fraction (every integer
//!   dilution in the box is dominated), intersected, when hardened, with
//!   the suspicion-ledger telescoping: `Σ rateᵢ ≤ S·(1 + (1−d)(K−1))`
//!   over the `K` stage-2 windows of one interval, plus the
//!   `ledger_min_windows − 1` unconvictable head windows at the mix
//!   rate. The hardened hit-weight discount only *shrinks* filler shares
//!   (raising aggressor visibility), so ignoring it here is sound.
//! * **Distributed** — the pair-spread box intersected with the minimum
//!   spread that evades the per-row sample floor; the physical ceiling
//!   divides across the spread, and the same ledger telescoping applies
//!   when hardened.
//!
//! Every bound ends in [`ceil_guard`]: rounded up plus one activation,
//! so f64 rounding can never shave a real activation off a bound. The
//! result is compared archetype-by-archetype against the closed-form
//! [`GuaranteeEnvelope`] audit — the verifier must never undercut the
//! budget the dynamic campaigns are gated on.

use crate::abstract_domain::ParamBox;
use anvil_core::{transition, AnvilConfig, EnvelopeParams, GuaranteeEnvelope};
use anvil_dram::CpuClock;
use serde::Serialize;

/// The four adversary families of the guarantee envelope, in its
/// reporting order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
#[serde(rename_all = "kebab-case")]
pub enum Archetype {
    /// Constant-rate pacing under the stage-1 trip point (`PacedHammer`).
    Sustained,
    /// Boundary-straddling bursts (`DutyCycleHammer`).
    Straddle,
    /// Sample-mix dilution (`CamouflageHammer`).
    Camouflage,
    /// Many-sided pair spread (`DistributedManySided`).
    Distributed,
}

impl Archetype {
    /// All four, in envelope order.
    pub const ALL: [Archetype; 4] = [
        Archetype::Sustained,
        Archetype::Straddle,
        Archetype::Camouflage,
        Archetype::Distributed,
    ];

    /// The envelope's field name for this archetype.
    pub fn name(self) -> &'static str {
        match self {
            Archetype::Sustained => "sustained",
            Archetype::Straddle => "straddle",
            Archetype::Camouflage => "camouflage",
            Archetype::Distributed => "distributed",
        }
    }

    /// The family's full parameter box: every value the corresponding
    /// `anvil-adversary` builder can be asked for, per-window misses
    /// capped by the physical service rate of the longest jittered
    /// window.
    pub fn default_box(
        self,
        config: &AnvilConfig,
        clock: &CpuClock,
        params: &EnvelopeParams,
    ) -> ParamBox {
        let tc = config.tc_cycles(clock).max(1);
        let (_, s_hi) = transition::jitter_scale_bounds(&config.hardening);
        let cap = tc as f64 * s_hi / params.attack_access_cycles.max(1) as f64;
        match self {
            Archetype::Sustained => ParamBox::sustained(cap),
            Archetype::Straddle => ParamBox::straddle(cap),
            Archetype::Camouflage => ParamBox::camouflage(cap),
            Archetype::Distributed => ParamBox::distributed(cap),
        }
    }
}

/// One archetype's symbolically derived activation bound.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct SymbolicBound {
    /// Which family the bound covers.
    pub archetype: Archetype,
    /// Sound upper bound on undetected activations per aggressor pair
    /// per refresh interval, over the family's whole parameter box.
    pub bound: u64,
    /// The closed-form budget the [`GuaranteeEnvelope`] audit assigns
    /// the same family.
    pub audit_budget: u64,
    /// `bound ≥ audit_budget`: the symbolic bound dominates the audit,
    /// as a sound over-approximation must. A `false` here means one of
    /// the two derivations is wrong — the verifier treats it as a
    /// soundness violation.
    pub sound_wrt_audit: bool,
    /// Stage-1 (or stage-2, for the ledger families) windows the
    /// interpreter quantified over.
    pub windows_explored: u32,
    /// The share of `bound` contributed by the parameter box's detector
    /// downtime interval (zero for the default boxes).
    pub downtime_activations: u64,
}

/// Rounds a real bound up and adds one guard activation, so f64 rounding
/// can never shave a real activation off a sound bound.
fn ceil_guard(x: f64) -> u64 {
    (x.max(0.0).ceil() as u64).saturating_add(1)
}

/// The supremum of constant normalized per-window miss rates that never
/// trip stage 1, approached from above: each binary-search candidate is
/// checked by iterating the EWMA to its fixed point with the detector's
/// own [`transition::stage1_step`]. Closed form: `(1 − carry) × T`.
pub fn max_quiet_normalized(config: &AnvilConfig) -> f64 {
    let h = &config.hardening;
    let t = config.llc_miss_threshold;
    let quiet = |v: f64| -> bool {
        let mut carry = 0.0;
        // The carry sequence under a constant rate increases monotonically
        // toward v / (1 − c); 128 steps reach the fixed point to within
        // f64 noise, and finite iteration errs on the quiet (sound) side.
        for _ in 0..128 {
            let step = transition::stage1_step(h, t, carry, v);
            if step.tripped {
                return false;
            }
            carry = step.next_carry;
        }
        true
    };
    let mut lo = 0.0;
    let mut hi = t as f64;
    if quiet(hi) {
        return hi;
    }
    for _ in 0..64 {
        let mid = 0.5 * (lo + hi);
        if quiet(mid) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    // The tripping endpoint: an upper bound on the quiet supremum.
    hi
}

struct Horizon {
    tc: f64,
    ts: f64,
    period: f64,
    physical_cap: u64,
    attack_cycles: f64,
}

fn horizon(config: &AnvilConfig, clock: CpuClock, params: &EnvelopeParams) -> Horizon {
    Horizon {
        tc: config.tc_cycles(&clock).max(1) as f64,
        ts: config.ts_cycles(&clock).max(1) as f64,
        period: params.refresh_period as f64,
        physical_cap: params.refresh_period / params.attack_access_cycles.max(1),
        attack_cycles: params.attack_access_cycles.max(1) as f64,
    }
}

/// The telescoped supremum of evidence-rate sums over `n` windows of the
/// recurrence `k' = decay·k + x` with every `k' < limit` and `k₁ = 0`
/// (see the module docs): `limit × (1 + (1 − decay)(n − 1))`.
fn telescoped_quiet_sum(limit: f64, decay: f64, n: f64) -> f64 {
    limit * (1.0 + (1.0 - decay) * (n - 1.0).max(0.0))
}

/// The camouflage mix supremum: pair activations per refresh interval
/// over all real-valued sample mixes whose aggressor share stays under
/// the attributable floor fraction. Every integer dilution in the box is
/// dominated by this continuous supremum.
fn mix_supremum(config: &AnvilConfig, hz: &Horizon, params: &EnvelopeParams) -> f64 {
    let samples = (hz.ts / config.sampling.interval.max(1) as f64).max(1.0);
    let f_floor = (2.0 * f64::from(config.row_sample_floor) / samples).min(1.0);
    let mix_cost = f_floor * params.attack_access_cycles as f64
        + (1.0 - f_floor) * params.hit_access_cycles as f64;
    f_floor * hz.period / mix_cost.max(1.0)
}

/// The hardened suspicion-ledger cap for a low-profile pair, including
/// the transient the closed-form audit's steady-state cap ignores: the
/// telescoped rate sum over the interval's stage-2 windows, plus the
/// `ledger_min_windows − 1` unconvictable head windows at the family's
/// own rate cap (`per_window_pair` activations per stage-2 window).
fn ledger_pair_cap(config: &AnvilConfig, hz: &Horizon, per_window_pair: f64) -> f64 {
    let h = &config.hardening;
    let k_windows = (hz.period / hz.ts).floor() + 2.0;
    let conviction = transition::ledger_conviction_score(config);
    let rate_sum = telescoped_quiet_sum(conviction, h.ledger_decay, k_windows);
    // A window's ledger evidence is the pair's activations extrapolated
    // to the full period (rate = a × period / ts), so the activation sum
    // is the rate sum scaled back down; both rows of the pair accumulate.
    let ledger_total = 2.0 * rate_sum * (hz.ts / hz.period);
    let head = (f64::from(h.ledger_min_windows) - 1.0).max(0.0) * per_window_pair;
    ledger_total + head
}

/// Verifies one archetype over `bx`, returning the sound bound and its
/// cross-check against the closed-form audit.
pub fn verify_archetype(
    archetype: Archetype,
    config: &AnvilConfig,
    clock: &CpuClock,
    params: &EnvelopeParams,
    bx: &ParamBox,
) -> SymbolicBound {
    let hz = horizon(config, *clock, params);
    let h = &config.hardening;
    let audit = GuaranteeEnvelope::audit(config, clock, params);
    let gap_activations = (bx.downtime_cycles.hi.max(0.0) / hz.attack_cycles).ceil();

    let (raw_bound, windows_explored) = match archetype {
        Archetype::Sustained => {
            // Rate invariance under jitter: a constant-rate attacker's
            // normalized count is rate × tc in every window regardless
            // of the drawn scale, so the quiet supremum divides out.
            let v = max_quiet_normalized(config).min(bx.window_misses.hi);
            let windows = hz.period / hz.tc;
            (v * windows, windows.ceil() as u32)
        }
        Archetype::Straddle => {
            let (s_lo, s_hi) = transition::jitter_scale_bounds(h);
            let min_window = (hz.tc * s_lo).max(1.0);
            let n = (hz.period / min_window).floor() + bx.phase.extra_intersecting_windows();
            let c = if h.enabled { h.stage1_carry } else { 0.0 };
            let t = config.llc_miss_threshold as f64;
            // Telescoped supremum of normalized misses over n quiet
            // windows; each window's raw count is its normalized count
            // times its drawn scale, bounded by s_hi.
            let total_norm = telescoped_quiet_sum(t, c, n);
            let per_window_cap = bx.window_misses.hi;
            ((total_norm * s_hi).min(per_window_cap * n), n as u32)
        }
        Archetype::Camouflage => {
            let mix = mix_supremum(config, &hz, params);
            if h.enabled {
                let per_window_pair = mix * hz.ts / hz.period;
                let ledger = ledger_pair_cap(config, &hz, per_window_pair);
                (mix.min(ledger), ((hz.period / hz.ts).floor() + 2.0) as u32)
            } else {
                (mix, 1)
            }
        }
        Archetype::Distributed => {
            let samples = (hz.ts / config.sampling.interval.max(1) as f64).max(1.0);
            let k_min = (samples / (2.0 * f64::from(config.row_sample_floor))).floor() + 1.0;
            // The spread must reach floor evasion; if the box can't, the
            // minimum evading spread is kept anyway (supremum over all
            // spreads — sound, never under).
            let k_eff = k_min.max(f64::from(bx.pairs.0)).max(1.0);
            let raw_pair = hz.physical_cap as f64 / k_eff;
            if h.enabled {
                let per_window_pair = raw_pair * hz.ts / hz.period;
                let ledger = ledger_pair_cap(config, &hz, per_window_pair);
                (
                    raw_pair.min(ledger),
                    ((hz.period / hz.ts).floor() + 2.0) as u32,
                )
            } else {
                (raw_pair, k_eff as u32)
            }
        }
    };

    let downtime_activations = gap_activations as u64;
    let bound = ceil_guard(raw_bound)
        .min(hz.physical_cap)
        .saturating_add(downtime_activations);
    let audit_budget = match archetype {
        Archetype::Sustained => audit.sustained_budget,
        Archetype::Straddle => audit.straddle_budget,
        Archetype::Camouflage => audit.camouflage_budget,
        Archetype::Distributed => audit.distributed_budget,
    };
    SymbolicBound {
        archetype,
        bound,
        audit_budget,
        sound_wrt_audit: bound >= audit_budget,
        windows_explored,
        downtime_activations,
    }
}

/// Signed, normalized distance of `config` from its symbolic guarantee
/// frontier at `params`:
///
/// ```text
/// (flip_threshold − max over archetypes of the symbolic bound) / flip_threshold
/// ```
///
/// clamped to `[-1, 1]`. Positive means every archetype family's sound
/// bound sits under the flip threshold (proof margin remains); negative
/// means some family's bound clears it (the claim is at best
/// unconfirmed). Magnitudes near zero mean the configuration sits *near
/// the frontier* — the region where a small parameter change flips the
/// guarantee — which is exactly where the scenario fuzzer concentrates
/// its mutation energy.
pub fn frontier_distance(config: &AnvilConfig, clock: &CpuClock, params: &EnvelopeParams) -> f64 {
    let worst = verify_config(config, clock, params)
        .iter()
        .map(|b| b.bound)
        .max()
        .unwrap_or(0);
    let flip = params.flip_threshold as f64;
    ((flip - worst as f64) / flip.max(1.0)).clamp(-1.0, 1.0)
}

/// Verifies all four archetypes over their full default parameter boxes.
pub fn verify_config(
    config: &AnvilConfig,
    clock: &CpuClock,
    params: &EnvelopeParams,
) -> Vec<SymbolicBound> {
    Archetype::ALL
        .iter()
        .map(|&a| {
            verify_archetype(
                a,
                config,
                clock,
                params,
                &a.default_box(config, clock, params),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const CLOCK: CpuClock = CpuClock::SANDY_BRIDGE_2_6GHZ;

    fn params() -> EnvelopeParams {
        EnvelopeParams::paper_platform()
    }

    #[test]
    fn bounds_dominate_the_audit_for_every_config() {
        for config in [AnvilConfig::baseline(), AnvilConfig::hardened()] {
            for p in [params(), params().with_flip_threshold(110_000)] {
                for b in verify_config(&config, &CLOCK, &p) {
                    assert!(
                        b.sound_wrt_audit,
                        "{} bound {} undercuts audit budget {}",
                        b.archetype.name(),
                        b.bound,
                        b.audit_budget
                    );
                }
            }
        }
    }

    #[test]
    fn frontier_distance_signs_match_the_verifier() {
        // Hardened proves every family under 220K: positive margin.
        let hardened = frontier_distance(&AnvilConfig::hardened(), &CLOCK, &params());
        assert!(hardened > 0.0, "hardened margin {hardened} not positive");
        // Baseline leaks (straddle/camouflage clear the threshold):
        // negative, and clamped into [-1, 1].
        let baseline = frontier_distance(&AnvilConfig::baseline(), &CLOCK, &params());
        assert!(baseline < 0.0, "baseline margin {baseline} not negative");
        assert!((-1.0..=1.0).contains(&hardened) && (-1.0..=1.0).contains(&baseline));
        // Tightening the flip threshold shrinks the hardened margin.
        let tight = frontier_distance(
            &AnvilConfig::hardened(),
            &CLOCK,
            &params().with_flip_threshold(110_000),
        );
        assert!(tight < hardened);
    }

    #[test]
    fn hardened_bounds_prove_the_design_threshold() {
        for b in verify_config(&AnvilConfig::hardened(), &CLOCK, &params()) {
            assert!(
                b.bound < 220_000,
                "{} bound {} reaches the design flip threshold",
                b.archetype.name(),
                b.bound
            );
        }
    }

    #[test]
    fn baseline_sustained_is_proved_but_the_envelope_still_leaks() {
        let bounds = verify_config(&AnvilConfig::baseline(), &CLOCK, &params());
        let by_name = |n: &str| bounds.iter().find(|b| b.archetype.name() == n).unwrap();
        // Section 4.2's sizing survives symbolically: 20K per 6 ms paces
        // just under 220K per refresh interval.
        assert!(by_name("sustained").bound < 220_000);
        // But straddling and camouflage clear the threshold, matching
        // the audit's verdict that the unhardened envelope does not hold.
        assert!(by_name("straddle").bound >= 220_000);
        assert!(by_name("camouflage").bound >= 220_000);
    }

    #[test]
    fn quiet_rate_supremum_is_tight_from_above() {
        for config in [AnvilConfig::baseline(), AnvilConfig::hardened()] {
            let h = &config.hardening;
            let t = config.llc_miss_threshold;
            let sup = max_quiet_normalized(&config);
            // One normalized miss under the supremum stays quiet forever.
            let mut carry = 0.0;
            for _ in 0..500 {
                let step = transition::stage1_step(h, t, carry, sup - 1.0);
                assert!(!step.tripped, "rate under the supremum must stay quiet");
                carry = step.next_carry;
            }
            // One percent over it trips.
            let mut carry = 0.0;
            let mut tripped = false;
            for _ in 0..500 {
                let step = transition::stage1_step(h, t, carry, sup * 1.01);
                if step.tripped {
                    tripped = true;
                    break;
                }
                carry = step.next_carry;
            }
            assert!(tripped, "rate over the supremum must trip");
        }
    }

    #[test]
    fn straddle_bound_dominates_concrete_quiet_schedules() {
        // The telescoped supremum must dominate (a) the greedy schedule
        // that pushes the evidence to just under T every window, and (b)
        // randomized quiet schedules — all replayed through the real
        // transition function.
        for config in [AnvilConfig::baseline(), AnvilConfig::hardened()] {
            let h = &config.hardening;
            let t = config.llc_miss_threshold;
            let bx = Archetype::Straddle.default_box(&config, &CLOCK, &params());
            let b = verify_archetype(Archetype::Straddle, &config, &CLOCK, &params(), &bx);
            let (_, s_hi) = transition::jitter_scale_bounds(h);
            let c = if h.enabled { h.stage1_carry } else { 0.0 };

            // (a) greedy: evidence to T − ε every window.
            let mut carry = 0.0;
            let mut total = 0.0;
            for _ in 0..b.windows_explored {
                let x = (t as f64 - 1e-6 - c * carry).max(0.0);
                let step = transition::stage1_step(h, t, carry, x);
                assert!(!step.tripped);
                total += x * s_hi;
                carry = step.next_carry;
            }
            assert!(
                total <= b.bound as f64,
                "greedy schedule {total} exceeds bound {}",
                b.bound
            );

            // (b) randomized quiet schedules from a deterministic stream.
            let mut state = 0x5EED_u64;
            for _ in 0..200 {
                let mut carry = 0.0;
                let mut total = 0.0;
                for _ in 0..b.windows_explored {
                    let u = (transition::splitmix64(&mut state) >> 11) as f64 / (1u64 << 53) as f64;
                    let x = u * (t as f64 - 1e-6 - c * carry).max(0.0);
                    let step = transition::stage1_step(h, t, carry, x);
                    assert!(!step.tripped);
                    total += x * s_hi;
                    carry = step.next_carry;
                }
                assert!(total <= b.bound as f64);
            }
        }
    }

    #[test]
    fn ledger_cap_dominates_concrete_quiet_score_runs() {
        // Any per-window rate schedule whose ledger score never reaches
        // the conviction threshold lands fewer activations than the
        // symbolic ledger cap allows.
        let config = AnvilConfig::hardened();
        let hz = horizon(&config, CLOCK, &params());
        let conviction = transition::ledger_conviction_score(&config);
        let d = config.hardening.ledger_decay;
        let cap = ledger_pair_cap(&config, &hz, 0.0);
        let mut state = 0xACC0_u64;
        for _ in 0..200 {
            let mut score = 0.0;
            let mut pair_activations = 0.0;
            for _ in 0..((hz.period / hz.ts) as u32 + 2) {
                let u = (transition::splitmix64(&mut state) >> 11) as f64 / (1u64 << 53) as f64;
                let rate = u * (conviction - 1e-6 - d * score).max(0.0);
                score = transition::ledger_step(d, score, rate);
                assert!(score < conviction);
                pair_activations += 2.0 * rate * (hz.ts / hz.period);
            }
            assert!(pair_activations <= cap);
        }
    }

    #[test]
    fn downtime_extends_the_bound_by_the_gap_rate() {
        let config = AnvilConfig::hardened();
        let p = params();
        let bx = Archetype::Sustained.default_box(&config, &CLOCK, &p);
        let base = verify_archetype(Archetype::Sustained, &config, &CLOCK, &p, &bx);
        let gap_cycles = 1_870_000;
        let with_gap = verify_archetype(
            Archetype::Sustained,
            &config,
            &CLOCK,
            &p,
            &bx.with_downtime(gap_cycles),
        );
        assert_eq!(base.downtime_activations, 0);
        assert_eq!(with_gap.downtime_activations, 10_000);
        assert_eq!(with_gap.bound, base.bound + 10_000);
    }
}
