//! Abstract domains for the symbolic guarantee verifier.
//!
//! The verifier in [`crate::transfer`] executes the detector's pure
//! transition functions (`anvil_core::transition`) over *sets* of attack
//! parameters instead of concrete traces. This module supplies the sets:
//! closed real intervals ([`RealInterval`]), window-phase offset sets
//! ([`PhaseSet`]), and the per-archetype parameter box ([`ParamBox`])
//! bundling every knob the `anvil-adversary` builders expose — per-window
//! activation ranges, burst phase offsets, pair-spread counts, camouflage
//! dilutions, and the detector-downtime budget from the
//! `anvil-runtime`/`anvil-faults` lifecycle model.
//!
//! All domain values are `f64`. Every quantity the verifier manipulates
//! is far below 2^53 (the largest is the physical activation ceiling,
//! under 2^20), so interval endpoints are exact integers whenever their
//! inputs are; the residual rounding of genuinely fractional arithmetic
//! is absorbed by the +1 guard in `transfer::ceil_guard`.

use serde::Serialize;

/// A closed interval `[lo, hi]` of reals — the base abstract domain.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct RealInterval {
    /// Lower endpoint.
    pub lo: f64,
    /// Upper endpoint.
    pub hi: f64,
}

impl RealInterval {
    /// The degenerate interval `[x, x]`.
    pub fn point(x: f64) -> Self {
        RealInterval { lo: x, hi: x }
    }

    /// `[lo, hi]`; endpoints are swapped if given out of order, so the
    /// result is always a well-formed interval.
    pub fn new(lo: f64, hi: f64) -> Self {
        if lo <= hi {
            RealInterval { lo, hi }
        } else {
            RealInterval { lo: hi, hi: lo }
        }
    }

    /// The least interval containing both operands (lattice join).
    #[must_use]
    pub fn join(self, other: Self) -> Self {
        RealInterval {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
        }
    }

    /// Pointwise sum (exact for intervals: addition is monotone in both
    /// arguments, so endpoint evaluation is the true image).
    #[must_use]
    pub fn plus(self, other: Self) -> Self {
        RealInterval {
            lo: self.lo + other.lo,
            hi: self.hi + other.hi,
        }
    }

    /// Scales by a non-negative constant.
    #[must_use]
    pub fn scale(self, k: f64) -> Self {
        debug_assert!(k >= 0.0, "scale by a negative constant flips the interval");
        RealInterval {
            lo: self.lo * k,
            hi: self.hi * k,
        }
    }

    /// Whether `x` lies inside the interval.
    pub fn contains(self, x: f64) -> bool {
        self.lo <= x && x <= self.hi
    }

    /// `hi − lo`.
    pub fn width(self) -> f64 {
        self.hi - self.lo
    }
}

/// The set of burst-placement offsets an adversary can choose, as a
/// fraction of the stage-1 window it lands in (`0` = the window boundary
/// itself).
///
/// The duty-cycle hammer's whole strategy is picking the offset that
/// splits a burst across two windows; the paced hammer is offset-blind.
/// The verifier only needs one question answered: can the family reach a
/// boundary-straddling placement? That decides whether a burst's misses
/// can be double-counted across two adjacent windows.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct PhaseSet {
    /// Smallest reachable offset (fraction of a window, in `[0, 1)`).
    pub lo: f64,
    /// Largest reachable offset.
    pub hi: f64,
}

impl PhaseSet {
    /// Every offset is reachable (the adversary controls its own timing).
    pub fn full() -> Self {
        PhaseSet { lo: 0.0, hi: 1.0 }
    }

    /// Only the single offset `p` is reachable.
    pub fn point(p: f64) -> Self {
        PhaseSet { lo: p, hi: p }
    }

    /// Whether offset `p` is in the set.
    pub fn contains(&self, p: f64) -> bool {
        self.lo <= p && p <= self.hi
    }

    /// How many stage-1 windows beyond the full-window count a refresh
    /// interval's bursts can intersect: two partial windows when the
    /// family can straddle a boundary (offset 0 reachable), one
    /// otherwise.
    pub fn extra_intersecting_windows(&self) -> f64 {
        if self.contains(0.0) {
            2.0
        } else {
            1.0
        }
    }
}

/// The parameter box of one adversary family: the Cartesian product of
/// every knob the corresponding `anvil-adversary` builder exposes, plus
/// the lifecycle downtime budget. The verifier's bound is a supremum
/// over the whole box.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct ParamBox {
    /// Raw LLC misses the family can land in one stage-1 window. The
    /// verifier intersects this with the quiet constraint it derives
    /// from the trip test, so the box only needs to be an over-estimate.
    pub window_misses: RealInterval,
    /// Reachable burst-placement offsets.
    pub phase: PhaseSet,
    /// Aggressor-pair spread `[min, max]` (distributed family).
    pub pairs: (u32, u32),
    /// Row-buffer-hit fillers per aggressor access `[min, max]`
    /// (camouflage family).
    pub dilution: (u64, u64),
    /// Detector downtime within one refresh interval, in cycles, that
    /// the fault/lifecycle model can hand the adversary (crash-recovery
    /// gaps; hammered unobserved at the physical rate).
    pub downtime_cycles: RealInterval,
}

impl ParamBox {
    /// The box every default constructor starts from: one pair, no
    /// dilution, boundary-straddling allowed, no downtime, per-window
    /// misses capped by the physical service rate of the window.
    fn base(window_miss_cap: f64) -> Self {
        ParamBox {
            window_misses: RealInterval::new(0.0, window_miss_cap),
            phase: PhaseSet::full(),
            pairs: (1, 1),
            dilution: (0, 0),
            downtime_cycles: RealInterval::point(0.0),
        }
    }

    /// The sustained-pacing family (`PacedHammer`): any constant rate,
    /// any phase (pacing makes the offset irrelevant).
    pub fn sustained(window_miss_cap: f64) -> Self {
        ParamBox::base(window_miss_cap)
    }

    /// The boundary-straddling family (`DutyCycleHammer`): any burst
    /// size up to the window's physical capacity, any placement.
    pub fn straddle(window_miss_cap: f64) -> Self {
        ParamBox::base(window_miss_cap)
    }

    /// The camouflage family (`CamouflageHammer`): 1–64 filler hits per
    /// aggressor access (the builder accepts any dilution ≥ 1).
    pub fn camouflage(window_miss_cap: f64) -> Self {
        ParamBox {
            dilution: (1, 64),
            ..ParamBox::base(window_miss_cap)
        }
    }

    /// The distributed many-sided family (`DistributedManySided`): 4–64
    /// aggressor pairs (the attack refuses to prepare below 4).
    pub fn distributed(window_miss_cap: f64) -> Self {
        ParamBox {
            pairs: (4, 64),
            ..ParamBox::base(window_miss_cap)
        }
    }

    /// Grants the family a detector-downtime gap of up to `cycles`.
    #[must_use]
    pub fn with_downtime(mut self, cycles: u64) -> Self {
        self.downtime_cycles = RealInterval::new(0.0, cycles as f64);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interval_ops_are_endpoint_exact() {
        let a = RealInterval::new(1.0, 3.0);
        let b = RealInterval::new(-2.0, 5.0);
        assert_eq!(a.plus(b), RealInterval::new(-1.0, 8.0));
        assert_eq!(a.join(b), RealInterval::new(-2.0, 5.0));
        assert_eq!(a.scale(2.0), RealInterval::new(2.0, 6.0));
        assert!(a.contains(3.0));
        assert!(!a.contains(3.1));
        assert_eq!(RealInterval::new(4.0, 1.0), RealInterval::new(1.0, 4.0));
        assert_eq!(RealInterval::point(2.0).width(), 0.0);
    }

    #[test]
    fn phase_set_controls_the_straddle_partials() {
        assert_eq!(PhaseSet::full().extra_intersecting_windows(), 2.0);
        assert_eq!(PhaseSet::point(0.0).extra_intersecting_windows(), 2.0);
        // A family pinned mid-window can never split a burst across a
        // boundary; only the trailing partial window remains.
        assert_eq!(PhaseSet::point(0.5).extra_intersecting_windows(), 1.0);
    }

    #[test]
    fn family_boxes_match_the_builder_domains() {
        let cap = 80_000.0;
        assert_eq!(ParamBox::distributed(cap).pairs, (4, 64));
        assert_eq!(ParamBox::camouflage(cap).dilution.0, 1);
        assert_eq!(ParamBox::sustained(cap).window_misses.hi, cap);
        let with_gap = ParamBox::straddle(cap).with_downtime(1_000_000);
        assert_eq!(with_gap.downtime_cycles.hi, 1_000_000.0);
    }
}
