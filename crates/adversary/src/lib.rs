#![warn(missing_docs)]

//! # anvil-adversary
//!
//! Adaptive adversaries for the ANVIL reproduction: attackers that know
//! how the two-stage detector works and shape their access streams to
//! slip through its gates. Each strategy targets one blind spot of the
//! paper's design (the same four archetypes the guarantee-envelope
//! auditor in `anvil-core` bounds analytically):
//!
//! * [`DutyCycleHammer`] — bursts just under the stage-1 miss threshold,
//!   centered on the window *boundaries*, so no single fixed-length
//!   window ever counts a full burst.
//! * [`PacedHammer`] — hammers at a constant rate one notch below the
//!   stage-1 trip point; the threshold-prober harness binary-searches
//!   the highest rate that never arms stage 2.
//! * [`CamouflageHammer`] — interleaves row-buffer-hit filler loads with
//!   the aggressor accesses so the PEBS sample mix keeps every aggressor
//!   row below the stage-2 per-row sample floor.
//! * [`DistributedManySided`] — spreads activations across many
//!   aggressor pairs in distinct banks so no row dominates the sample
//!   histogram.
//! * [`RestartAwareHammer`] — paces politely while the detector is up
//!   and hammers flat out inside known detector downtime gaps (crash
//!   recovery windows); the `soak` campaign in `anvil-bench` charges its
//!   gap bursts against every injected restart.
//! * [`CrossDomainHammer`] — the fleet campaign's window-granular
//!   attacker model: rotates paced pressure over every non-quarantined
//!   protection domain on the machine and bursts full-rate into any
//!   downtime gap or PMU-blind episode a domain exposes.
//! * [`StateTargetingHammer`] — hammers the *detector's own* DRAM rows
//!   (carry accumulators, ledger, replicas), locking onto whichever row
//!   the incremental scrub has neglected longest and bursting full-rate
//!   into scrub gaps; the `selfdefense` campaign in `anvil-bench` drives
//!   it against guarded and unguarded state.
//!
//! All strategies implement [`anvil_attacks::Attack`], so they run under
//! the platform in `anvil-core` exactly like the paper's attacks. The
//! `evasion` campaign in `anvil-bench` crosses them with the baseline
//! and hardened detector configurations.

mod camouflage;
mod common;
mod cross_domain;
mod distributed;
mod duty_cycle;
mod paced;
mod restart_aware;
mod spec;
mod state_targeting;

pub use camouflage::CamouflageHammer;
pub use cross_domain::CrossDomainHammer;
pub use distributed::DistributedManySided;
pub use duty_cycle::DutyCycleHammer;
pub use paced::PacedHammer;
pub use restart_aware::RestartAwareHammer;
pub use spec::ArchetypeSpec;
pub use state_targeting::StateTargetingHammer;

/// Estimated core cycles per aggressor access in the hammer loop: a
/// row-conflict DRAM read (~179 cycles on the simulated platform), the
/// core's miss overhead (4) and the amortized CLFLUSH (4). Adversaries
/// use this to convert an access budget into a time budget when pacing
/// themselves; it does not need to be exact — only close enough that a
/// burst stays inside its intended window.
pub const EST_ATTACK_ACCESS_CYCLES: u64 = 187;

/// Stage-1 window length (`tc` = 6 ms at 2.6 GHz) the adversaries assume
/// when sizing bursts and paces. Matches `AnvilConfig::baseline()`.
pub const EST_STAGE1_WINDOW_CYCLES: u64 = 15_600_000;
