//! Paced hammering: a constant miss rate held just under the stage-1
//! trip point. The threshold-prober harness binary-searches the pace.

use crate::common::{pair_iteration, templated_pairs, victim_paddr, MB};
use crate::{EST_ATTACK_ACCESS_CYCLES, EST_STAGE1_WINDOW_CYCLES};
use anvil_attacks::{Attack, AttackEnv, AttackError, AttackOp};

/// Double-sided hammering throttled to a target LLC-miss rate.
///
/// Every iteration issues two aggressor activations and then computes
/// long enough that the window-average miss count stays at the target.
/// Unlike [`crate::DutyCycleHammer`] the rate is constant, so a window
/// of *any* phase sees the same count — this is the strategy the
/// guarantee envelope's `sustained` budget bounds, and the one a
/// threshold-probing attacker converges to: the highest pace whose
/// stage-1 crossing count stays at zero.
///
/// Against the paper's baseline (20K per 6 ms) the best undetected pace
/// sustains ~213K activations per refresh interval — under the paper
/// DDR3's 220K flip threshold (the paper's own sizing rule) but far
/// above a future module's 110K. The hardened EWMA halves the
/// sustainable pace, putting even future DRAM back under the envelope.
#[derive(Debug)]
pub struct PacedHammer {
    arena_bytes: u64,
    misses_per_window: u64,
    window_cycles: u64,
    prepared: Option<Prepared>,
}

#[derive(Debug)]
struct Prepared {
    ops: Vec<AttackOp>,
    cursor: usize,
    aggressors: Vec<u64>,
    victims: Vec<u64>,
}

impl PacedHammer {
    /// Creates the attack paced at one miss under the paper's 20K
    /// stage-1 threshold, assuming the baseline 6 ms window.
    pub fn new() -> Self {
        PacedHammer {
            arena_bytes: 8 * MB,
            misses_per_window: 19_999,
            window_cycles: EST_STAGE1_WINDOW_CYCLES,
            prepared: None,
        }
    }

    /// Sets the target miss count per assumed stage-1 window.
    #[must_use]
    pub fn with_misses_per_window(mut self, misses: u64) -> Self {
        self.misses_per_window = misses.max(2);
        self
    }

    /// Overrides the assumed stage-1 window length (in cycles).
    #[must_use]
    pub fn with_window_cycles(mut self, cycles: u64) -> Self {
        self.window_cycles = cycles.max(1);
        self
    }

    /// The target miss count per window.
    pub fn misses_per_window(&self) -> u64 {
        self.misses_per_window
    }

    /// Aggressor-pair activations per 64 ms refresh interval this pace
    /// sustains (both sides combined), assuming a 6 ms window.
    pub fn activations_per_refresh(&self) -> u64 {
        // misses/window * windows/refresh-interval; every miss is an
        // aggressor activation.
        self.misses_per_window * 64 / 6
    }
}

impl Default for PacedHammer {
    fn default() -> Self {
        Self::new()
    }
}

impl Attack for PacedHammer {
    fn name(&self) -> &'static str {
        "paced-hammer"
    }

    fn prepare(&mut self, env: &mut AttackEnv<'_>) -> Result<(), AttackError> {
        let va = env.process.mmap(self.arena_bytes, env.frames)?;
        let pairs = templated_pairs(env, va, self.arena_bytes, 64)?;
        let pair = pairs[0];
        let victim_pa = victim_paddr(env, &pair);

        // Cycles one iteration (2 misses) must occupy to hold the rate.
        let iteration_cycles = 2 * self.window_cycles / self.misses_per_window.max(1);
        let pad = iteration_cycles.saturating_sub(2 * EST_ATTACK_ACCESS_CYCLES);
        let mut ops = pair_iteration(&pair).to_vec();
        if pad > 0 {
            ops.push(AttackOp::Compute { cycles: pad });
        }
        self.prepared = Some(Prepared {
            ops,
            cursor: 0,
            aggressors: vec![pair.below_pa, pair.above_pa],
            victims: vec![victim_pa],
        });
        Ok(())
    }

    fn next_op(&mut self) -> AttackOp {
        let p = self.prepared.as_mut().expect("prepare the attack first");
        let op = p.ops[p.cursor];
        p.cursor = (p.cursor + 1) % p.ops.len();
        op
    }

    fn aggressor_paddrs(&self) -> Vec<u64> {
        self.prepared
            .as_ref()
            .map_or(Vec::new(), |p| p.aggressors.clone())
    }

    fn victim_paddrs(&self) -> Vec<u64> {
        self.prepared
            .as_ref()
            .map_or(Vec::new(), |p| p.victims.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anvil_mem::{
        AllocationPolicy, FrameAllocator, MemoryConfig, MemorySystem, PagemapPolicy, Process,
    };

    fn prepare(attack: &mut PacedHammer) {
        let mut sys = MemorySystem::new(MemoryConfig::paper_platform());
        let mut frames = FrameAllocator::new(sys.phys().capacity(), AllocationPolicy::Contiguous);
        let mut process = Process::new(8, "adversary");
        attack
            .prepare(&mut AttackEnv {
                sys: &mut sys,
                process: &mut process,
                frames: &mut frames,
                pagemap: PagemapPolicy::Open,
            })
            .unwrap();
    }

    #[test]
    fn pace_padding_holds_the_window_rate() {
        let mut attack = PacedHammer::new().with_misses_per_window(10_000);
        prepare(&mut attack);
        // 2 misses per iteration over 2 * 15.6M / 10_000 = 3_120 cycles.
        let ops: Vec<AttackOp> = (0..5).map(|_| attack.next_op()).collect();
        let pad = ops
            .iter()
            .filter_map(|op| match op {
                AttackOp::Compute { cycles } => Some(*cycles),
                _ => None,
            })
            .sum::<u64>();
        assert_eq!(pad, 3_120 - 2 * EST_ATTACK_ACCESS_CYCLES);
        assert_eq!(
            ops.iter()
                .filter(|op| matches!(op, AttackOp::Access { .. }))
                .count(),
            2
        );
    }

    #[test]
    fn faster_pace_means_less_padding() {
        let pad_for = |m: u64| {
            let mut attack = PacedHammer::new().with_misses_per_window(m);
            prepare(&mut attack);
            (0..5)
                .map(|_| attack.next_op())
                .filter_map(|op| match op {
                    AttackOp::Compute { cycles } => Some(cycles),
                    _ => None,
                })
                .sum::<u64>()
        };
        assert!(pad_for(5_000) > pad_for(19_999));
    }
}
