//! Shared preparation helpers: aggressor-pair selection with victim
//! templating, and the canonical double-sided iteration.

use anvil_attacks::{find_aggressor_pairs, AggressorPair, AttackEnv, AttackError, AttackOp};
use anvil_dram::DramLocation;
use anvil_mem::AccessKind;

/// Megabyte, for arena sizing.
pub(crate) const MB: u64 = 1 << 20;

/// Cycles of compute per idle op; small enough that the platform's
/// scheduler never overshoots a detector deadline by a whole idle phase.
pub(crate) const IDLE_CHUNK_CYCLES: u64 = 5_000;

/// Finds aggressor pairs in the arena and returns them with pairs whose
/// victim row is actually vulnerable first (stable order otherwise).
///
/// Real attackers template the module before hammering (profiling passes
/// that locate flippable cells); preferring a vulnerable victim models
/// that reconnaissance without a separate scan harness.
pub(crate) fn templated_pairs(
    env: &mut AttackEnv<'_>,
    arena_va: u64,
    arena_bytes: u64,
    max: usize,
) -> Result<Vec<AggressorPair>, AttackError> {
    let mapping = *env.sys.dram().mapping();
    let mut pairs = find_aggressor_pairs(
        env.process,
        env.pagemap,
        &mapping,
        arena_va,
        arena_bytes,
        max,
    )?;
    let dram = env.sys.dram();
    pairs.sort_by_key(|p| !dram.is_vulnerable_row(p.victim));
    Ok(pairs)
}

/// Physical address of the victim row of `pair` (column 0).
pub(crate) fn victim_paddr(env: &AttackEnv<'_>, pair: &AggressorPair) -> u64 {
    env.sys.dram().mapping().address_of(DramLocation {
        bank: pair.victim.bank,
        row: pair.victim.row,
        col: 0,
    })
}

/// One double-sided hammer iteration (2 aggressor activations):
/// access/flush the row below the victim, then the row above.
pub(crate) fn pair_iteration(pair: &AggressorPair) -> [AttackOp; 4] {
    [
        AttackOp::Access {
            vaddr: pair.below_va,
            kind: AccessKind::Read,
        },
        AttackOp::Clflush {
            vaddr: pair.below_va,
        },
        AttackOp::Access {
            vaddr: pair.above_va,
            kind: AccessKind::Read,
        },
        AttackOp::Clflush {
            vaddr: pair.above_va,
        },
    ]
}

/// Appends `cycles` of idle time as [`IDLE_CHUNK_CYCLES`]-sized compute
/// ops (plus one remainder op).
pub(crate) fn push_idle(ops: &mut Vec<AttackOp>, cycles: u64) {
    let chunks = cycles / IDLE_CHUNK_CYCLES;
    for _ in 0..chunks {
        ops.push(AttackOp::Compute {
            cycles: IDLE_CHUNK_CYCLES,
        });
    }
    let rest = cycles % IDLE_CHUNK_CYCLES;
    if rest > 0 {
        ops.push(AttackOp::Compute { cycles: rest });
    }
}
