//! A serializable IR for the four evasion archetypes.
//!
//! The symbolic verifier in `anvil-analyze` reasons about *families* of
//! adversaries (parameter boxes); when it refutes a safety claim it must
//! name one concrete member of the family that actually evades. An
//! [`ArchetypeSpec`] is that name: a plain-data description of one
//! adversary instance, serializable into `results/verifier.json`, that
//! [`build`](ArchetypeSpec::build)s back into the live attack for dynamic
//! replay.

use crate::{CamouflageHammer, DistributedManySided, DutyCycleHammer, PacedHammer};
use anvil_attacks::Attack;
use serde::{Deserialize, Serialize};

/// One concrete adversary instance, as plain data.
///
/// Every variant corresponds to one strategy in this crate and carries
/// exactly the parameters its builder accepts, so a spec read back from a
/// report reconstructs the identical attack.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(tag = "archetype", rename_all = "kebab-case")]
pub enum ArchetypeSpec {
    /// [`DutyCycleHammer`]: bursts of `burst_misses` centered on assumed
    /// `window_cycles` boundaries.
    DutyCycle {
        /// Misses per burst (split across the two straddled windows).
        burst_misses: u64,
        /// Assumed stage-1 window length in cycles.
        window_cycles: u64,
    },
    /// [`PacedHammer`]: a constant `misses_per_window` pace.
    Paced {
        /// Misses spread evenly over each assumed window.
        misses_per_window: u64,
        /// Assumed stage-1 window length in cycles.
        window_cycles: u64,
    },
    /// [`CamouflageHammer`]: `dilution` row-buffer-hit fillers per
    /// aggressor access.
    Camouflage {
        /// Filler loads interleaved per aggressor access.
        dilution: u64,
    },
    /// [`DistributedManySided`]: activations spread over `pairs`
    /// aggressor pairs in distinct banks.
    Distributed {
        /// Aggressor pairs in the spread.
        pairs: usize,
    },
}

impl ArchetypeSpec {
    /// The default-parameter member of each family, in the order the
    /// guarantee envelope reports them (sustained, straddle, camouflage,
    /// distributed).
    pub fn defaults() -> [ArchetypeSpec; 4] {
        [
            ArchetypeSpec::Paced {
                misses_per_window: 19_999,
                window_cycles: crate::EST_STAGE1_WINDOW_CYCLES,
            },
            ArchetypeSpec::DutyCycle {
                burst_misses: 28_000,
                window_cycles: crate::EST_STAGE1_WINDOW_CYCLES,
            },
            ArchetypeSpec::Camouflage { dilution: 10 },
            ArchetypeSpec::Distributed { pairs: 7 },
        ]
    }

    /// Reconstructs the live attack this spec describes.
    pub fn build(self) -> Box<dyn Attack> {
        match self {
            ArchetypeSpec::DutyCycle {
                burst_misses,
                window_cycles,
            } => Box::new(
                DutyCycleHammer::new()
                    .with_burst_misses(burst_misses)
                    .with_window_cycles(window_cycles),
            ),
            ArchetypeSpec::Paced {
                misses_per_window,
                window_cycles,
            } => Box::new(
                PacedHammer::new()
                    .with_misses_per_window(misses_per_window)
                    .with_window_cycles(window_cycles),
            ),
            ArchetypeSpec::Camouflage { dilution } => {
                Box::new(CamouflageHammer::new().with_dilution(dilution))
            }
            ArchetypeSpec::Distributed { pairs } => {
                Box::new(DistributedManySided::new().with_pair_target(pairs))
            }
        }
    }

    /// The strategy's display label (matches the built attack's name and
    /// the evasion campaign's row labels).
    pub fn label(self) -> &'static str {
        match self {
            ArchetypeSpec::DutyCycle { .. } => "duty-cycle-hammer",
            ArchetypeSpec::Paced { .. } => "threshold-prober",
            ArchetypeSpec::Camouflage { .. } => "camouflage-hammer",
            ArchetypeSpec::Distributed { .. } => "distributed-many-sided",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_round_trip_through_json() {
        for spec in ArchetypeSpec::defaults() {
            let text = serde_json::to_string(&spec).unwrap();
            let back: ArchetypeSpec = serde_json::from_str(&text).unwrap();
            assert_eq!(spec, back);
        }
    }

    #[test]
    fn built_attacks_honor_their_parameters() {
        let burst = ArchetypeSpec::DutyCycle {
            burst_misses: 30_000,
            window_cycles: crate::EST_STAGE1_WINDOW_CYCLES,
        };
        assert_eq!(burst.build().name(), "duty-cycle-hammer");
        let spread = ArchetypeSpec::Distributed { pairs: 9 };
        assert_eq!(spread.build().name(), "distributed-many-sided");
    }
}
