//! A serializable IR for the four evasion archetypes.
//!
//! The symbolic verifier in `anvil-analyze` reasons about *families* of
//! adversaries (parameter boxes); when it refutes a safety claim it must
//! name one concrete member of the family that actually evades. An
//! [`ArchetypeSpec`] is that name: a plain-data description of one
//! adversary instance, serializable into `results/verifier.json`, that
//! [`build`](ArchetypeSpec::build)s back into the live attack for dynamic
//! replay.

use crate::{CamouflageHammer, DistributedManySided, DutyCycleHammer, PacedHammer};
use anvil_attacks::Attack;
use serde::{Deserialize, Serialize};

/// One concrete adversary instance, as plain data.
///
/// Every variant corresponds to one strategy in this crate and carries
/// exactly the parameters its builder accepts, so a spec read back from a
/// report reconstructs the identical attack.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(tag = "archetype", rename_all = "kebab-case")]
pub enum ArchetypeSpec {
    /// [`DutyCycleHammer`]: bursts of `burst_misses` centered on assumed
    /// `window_cycles` boundaries.
    DutyCycle {
        /// Misses per burst (split across the two straddled windows).
        burst_misses: u64,
        /// Assumed stage-1 window length in cycles.
        window_cycles: u64,
    },
    /// [`PacedHammer`]: a constant `misses_per_window` pace.
    Paced {
        /// Misses spread evenly over each assumed window.
        misses_per_window: u64,
        /// Assumed stage-1 window length in cycles.
        window_cycles: u64,
    },
    /// [`CamouflageHammer`]: `dilution` row-buffer-hit fillers per
    /// aggressor access.
    Camouflage {
        /// Filler loads interleaved per aggressor access.
        dilution: u64,
    },
    /// [`DistributedManySided`]: activations spread over `pairs`
    /// aggressor pairs in distinct banks.
    Distributed {
        /// Aggressor pairs in the spread.
        pairs: usize,
    },
}

impl ArchetypeSpec {
    /// The default-parameter member of each family, in the order the
    /// guarantee envelope reports them (sustained, straddle, camouflage,
    /// distributed).
    pub fn defaults() -> [ArchetypeSpec; 4] {
        [
            ArchetypeSpec::Paced {
                misses_per_window: 19_999,
                window_cycles: crate::EST_STAGE1_WINDOW_CYCLES,
            },
            ArchetypeSpec::DutyCycle {
                burst_misses: 28_000,
                window_cycles: crate::EST_STAGE1_WINDOW_CYCLES,
            },
            ArchetypeSpec::Camouflage { dilution: 10 },
            ArchetypeSpec::Distributed { pairs: 7 },
        ]
    }

    /// Reconstructs the live attack this spec describes.
    pub fn build(self) -> Box<dyn Attack> {
        match self {
            ArchetypeSpec::DutyCycle {
                burst_misses,
                window_cycles,
            } => Box::new(
                DutyCycleHammer::new()
                    .with_burst_misses(burst_misses)
                    .with_window_cycles(window_cycles),
            ),
            ArchetypeSpec::Paced {
                misses_per_window,
                window_cycles,
            } => Box::new(
                PacedHammer::new()
                    .with_misses_per_window(misses_per_window)
                    .with_window_cycles(window_cycles),
            ),
            ArchetypeSpec::Camouflage { dilution } => {
                Box::new(CamouflageHammer::new().with_dilution(dilution))
            }
            ArchetypeSpec::Distributed { pairs } => {
                Box::new(DistributedManySided::new().with_pair_target(pairs))
            }
        }
    }

    /// Returns a mutated copy of this spec, for the scenario fuzzer.
    ///
    /// `draw(n)` must return a uniform value in `[0, n)`; taking the RNG
    /// as a closure keeps this crate independent of any particular
    /// generator. One parameter is perturbed per call: the variant's
    /// intensity knob is scaled by a factor from {½, ¾, 9⁄8, 3⁄2, 2}
    /// (floored at its smallest meaningful value), or — for the window-
    /// synchronized strategies — the assumed window length drifts by
    /// ±25%. Callers clamp the result into their own domain box; this
    /// method only guarantees the spec stays structurally valid.
    #[must_use]
    pub fn mutated(self, draw: &mut dyn FnMut(u64) -> u64) -> ArchetypeSpec {
        fn scaled(v: u64, lo: u64, pick: u64) -> u64 {
            let next = match pick {
                0 => v / 2,
                1 => v.saturating_mul(3) / 4,
                2 => v.saturating_mul(9) / 8,
                3 => v.saturating_mul(3) / 2,
                _ => v.saturating_mul(2),
            };
            next.max(lo)
        }
        // ±25% drift of an assumed window length.
        fn drifted(w: u64, pick: u64) -> u64 {
            match pick {
                0 => w.saturating_mul(3) / 4,
                _ => w.saturating_mul(5) / 4,
            }
        }
        match self {
            ArchetypeSpec::DutyCycle {
                burst_misses,
                window_cycles,
            } => {
                if draw(3) == 0 {
                    ArchetypeSpec::DutyCycle {
                        burst_misses,
                        window_cycles: drifted(window_cycles, draw(2)),
                    }
                } else {
                    ArchetypeSpec::DutyCycle {
                        burst_misses: scaled(burst_misses, 2, draw(5)),
                        window_cycles,
                    }
                }
            }
            ArchetypeSpec::Paced {
                misses_per_window,
                window_cycles,
            } => {
                if draw(3) == 0 {
                    ArchetypeSpec::Paced {
                        misses_per_window,
                        window_cycles: drifted(window_cycles, draw(2)),
                    }
                } else {
                    ArchetypeSpec::Paced {
                        misses_per_window: scaled(misses_per_window, 2, draw(5)),
                        window_cycles,
                    }
                }
            }
            ArchetypeSpec::Camouflage { dilution } => ArchetypeSpec::Camouflage {
                dilution: scaled(dilution, 1, draw(5)),
            },
            ArchetypeSpec::Distributed { pairs } => ArchetypeSpec::Distributed {
                pairs: scaled(pairs as u64, 2, draw(5)) as usize,
            },
        }
    }

    /// The strategy's display label (matches the built attack's name and
    /// the evasion campaign's row labels).
    pub fn label(self) -> &'static str {
        match self {
            ArchetypeSpec::DutyCycle { .. } => "duty-cycle-hammer",
            ArchetypeSpec::Paced { .. } => "threshold-prober",
            ArchetypeSpec::Camouflage { .. } => "camouflage-hammer",
            ArchetypeSpec::Distributed { .. } => "distributed-many-sided",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_round_trip_through_json() {
        for spec in ArchetypeSpec::defaults() {
            let text = serde_json::to_string(&spec).unwrap();
            let back: ArchetypeSpec = serde_json::from_str(&text).unwrap();
            assert_eq!(spec, back);
        }
    }

    #[test]
    fn mutation_perturbs_exactly_one_parameter_and_stays_valid() {
        // A deterministic counter-based "RNG" sweeping every branch.
        let mut tick = 0u64;
        for spec in ArchetypeSpec::defaults() {
            for _ in 0..64 {
                let mut draw = |n: u64| {
                    tick = tick.wrapping_add(1);
                    tick % n.max(1)
                };
                let m = spec.mutated(&mut draw);
                // Same variant, structurally valid parameters.
                assert_eq!(std::mem::discriminant(&m), std::mem::discriminant(&spec));
                match m {
                    ArchetypeSpec::DutyCycle {
                        burst_misses,
                        window_cycles,
                    }
                    | ArchetypeSpec::Paced {
                        misses_per_window: burst_misses,
                        window_cycles,
                    } => {
                        assert!(burst_misses >= 2);
                        assert!(window_cycles > 0);
                    }
                    ArchetypeSpec::Camouflage { dilution } => assert!(dilution >= 1),
                    ArchetypeSpec::Distributed { pairs } => assert!(pairs >= 2),
                }
            }
        }
    }

    #[test]
    fn built_attacks_honor_their_parameters() {
        let burst = ArchetypeSpec::DutyCycle {
            burst_misses: 30_000,
            window_cycles: crate::EST_STAGE1_WINDOW_CYCLES,
        };
        assert_eq!(burst.build().name(), "duty-cycle-hammer");
        let spread = ArchetypeSpec::Distributed { pairs: 9 };
        assert_eq!(spread.build().name(), "distributed-many-sided");
    }
}
