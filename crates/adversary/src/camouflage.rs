//! Camouflage hammering: dilute the PEBS sample mix with row-buffer-hit
//! filler so no aggressor row reaches the stage-2 sample floor.

use crate::common::{templated_pairs, victim_paddr, MB};
use anvil_attacks::{Attack, AttackEnv, AttackError, AttackOp};
use anvil_mem::AccessKind;

/// Cache-line stride of the filler stream.
const LINE: u64 = 64;

/// Double-sided hammering hidden inside a streaming load sweep.
///
/// Stage 2 attributes suspicion by the *share* of PEBS samples each row
/// receives, gated by an absolute per-row floor (3 samples per 6 ms
/// window in the paper's Table 2). Every load that misses the LLC with
/// latency above the sampler's threshold is sampleable — including
/// row-buffer *hits* from a sequential sweep (~102 cycles, just over the
/// 100-cycle PEBS latency filter). Interleaving `dilution` filler lines
/// per aggressor access keeps each aggressor row's expected samples
/// under the floor while the pair still accumulates activations faster
/// than a future module flips.
///
/// The hardened detector weighs samples by row-buffer-miss evidence
/// (hit-latency samples count 0.2), which restores the aggressors'
/// dominance of the weighted histogram; the suspicion ledger then
/// convicts them across windows even though each individual window stays
/// under the raw floor.
#[derive(Debug)]
pub struct CamouflageHammer {
    arena_bytes: u64,
    filler_bytes: u64,
    dilution: u64,
    prepared: Option<Prepared>,
}

#[derive(Debug)]
struct Prepared {
    pair_ops: [AttackOp; 4],
    filler_va: u64,
    filler_bytes: u64,
    filler_cursor: u64,
    /// Position within one [aggressor half, fillers, aggressor half,
    /// fillers] unit of length `4 + 2 * dilution`.
    step: u64,
    aggressors: Vec<u64>,
    victims: Vec<u64>,
}

impl CamouflageHammer {
    /// Creates the attack with a 16 MB filler arena (larger than the
    /// LLC, so the sweep keeps missing) and 10 filler lines per
    /// aggressor access.
    pub fn new() -> Self {
        CamouflageHammer {
            arena_bytes: 8 * MB,
            filler_bytes: 16 * MB,
            dilution: 10,
            prepared: None,
        }
    }

    /// Overrides the filler lines issued per aggressor access.
    #[must_use]
    pub fn with_dilution(mut self, lines: u64) -> Self {
        self.dilution = lines.max(1);
        self
    }

    /// Filler lines per aggressor access.
    pub fn dilution(&self) -> u64 {
        self.dilution
    }
}

impl Default for CamouflageHammer {
    fn default() -> Self {
        Self::new()
    }
}

impl Attack for CamouflageHammer {
    fn name(&self) -> &'static str {
        "camouflage-hammer"
    }

    fn prepare(&mut self, env: &mut AttackEnv<'_>) -> Result<(), AttackError> {
        let pair_va = env.process.mmap(self.arena_bytes, env.frames)?;
        let filler_va = env.process.mmap(self.filler_bytes, env.frames)?;
        let pairs = templated_pairs(env, pair_va, self.arena_bytes, 64)?;
        let pair = pairs[0];
        let victim_pa = victim_paddr(env, &pair);
        let [a, fa, b, fb] = crate::common::pair_iteration(&pair);
        self.prepared = Some(Prepared {
            pair_ops: [a, fa, b, fb],
            filler_va,
            filler_bytes: self.filler_bytes,
            filler_cursor: 0,
            step: 0,
            aggressors: vec![pair.below_pa, pair.above_pa],
            victims: vec![victim_pa],
        });
        Ok(())
    }

    fn next_op(&mut self) -> AttackOp {
        let d = self.dilution;
        let p = self.prepared.as_mut().expect("prepare the attack first");
        let unit = 4 + 2 * d;
        let s = p.step;
        p.step = (p.step + 1) % unit;
        // [acc below, flush below, d fillers, acc above, flush above,
        //  d fillers]
        match s {
            0 => p.pair_ops[0],
            1 => p.pair_ops[1],
            s if s < 2 + d => filler(p),
            s if s == 2 + d => p.pair_ops[2],
            s if s == 3 + d => p.pair_ops[3],
            _ => filler(p),
        }
    }

    fn aggressor_paddrs(&self) -> Vec<u64> {
        self.prepared
            .as_ref()
            .map_or(Vec::new(), |p| p.aggressors.clone())
    }

    fn victim_paddrs(&self) -> Vec<u64> {
        self.prepared
            .as_ref()
            .map_or(Vec::new(), |p| p.victims.clone())
    }
}

/// The next line of the streaming sweep (wraps around the filler arena).
fn filler(p: &mut Prepared) -> AttackOp {
    let op = AttackOp::Access {
        vaddr: p.filler_va + p.filler_cursor,
        kind: AccessKind::Read,
    };
    p.filler_cursor = (p.filler_cursor + LINE) % p.filler_bytes;
    op
}

#[cfg(test)]
mod tests {
    use super::*;
    use anvil_mem::{
        AllocationPolicy, FrameAllocator, MemoryConfig, MemorySystem, PagemapPolicy, Process,
    };

    fn prepared(dilution: u64) -> CamouflageHammer {
        let mut sys = MemorySystem::new(MemoryConfig::paper_platform());
        let mut frames = FrameAllocator::new(sys.phys().capacity(), AllocationPolicy::Contiguous);
        let mut process = Process::new(9, "adversary");
        let mut attack = CamouflageHammer::new().with_dilution(dilution);
        attack
            .prepare(&mut AttackEnv {
                sys: &mut sys,
                process: &mut process,
                frames: &mut frames,
                pagemap: PagemapPolicy::Open,
            })
            .unwrap();
        attack
    }

    /// Splits an op stream into (aggressor accesses, filler accesses):
    /// aggressor accesses are the ones immediately flushed.
    fn split(ops: &[AttackOp]) -> (Vec<u64>, Vec<u64>) {
        let mut aggressors = Vec::new();
        let mut fillers = Vec::new();
        for w in ops.windows(2) {
            if let AttackOp::Access { vaddr, .. } = w[0] {
                if matches!(w[1], AttackOp::Clflush { .. }) {
                    aggressors.push(vaddr);
                } else {
                    fillers.push(vaddr);
                }
            }
        }
        (aggressors, fillers)
    }

    #[test]
    fn mix_holds_the_dilution_ratio() {
        let mut attack = prepared(10);
        assert_eq!(attack.aggressor_paddrs().len(), 2);
        let unit = 4 + 2 * 10;
        let ops: Vec<AttackOp> = (0..unit * 50 + 1).map(|_| attack.next_op()).collect();
        let (aggressors, fillers) = split(&ops);
        assert_eq!(fillers.len(), aggressors.len() * 10);
    }

    #[test]
    fn filler_stream_is_sequential_and_wraps() {
        let mut attack = prepared(2);
        let ops: Vec<AttackOp> = (0..65).map(|_| attack.next_op()).collect();
        let (_, fillers) = split(&ops);
        assert!(fillers.len() > 4);
        let consecutive = fillers.windows(2).filter(|p| p[1] == p[0] + LINE).count();
        // Within each 2-line filler run the stride is one line; across
        // aggressor interruptions the stream continues where it left off.
        assert_eq!(consecutive, fillers.len() - 1);
    }
}
