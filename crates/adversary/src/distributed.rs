//! Distributed many-sided hammering: spread activations over enough
//! aggressor pairs that no row dominates the sample histogram.

use crate::common::{pair_iteration, templated_pairs, victim_paddr, MB};
use anvil_attacks::{AggressorPair, Attack, AttackEnv, AttackError, AttackOp};

/// Round-robin double-sided hammering of several pairs in distinct
/// banks.
///
/// With `k` pairs the PEBS sample share of each aggressor row is
/// `1/(2k)`; at the paper's ~30 samples per 6 ms stage-2 window, `k = 6`
/// already puts the expected per-row count (2.5) under the 3-sample
/// floor, so the baseline's locality analysis never surfaces a finding
/// even though stage 1 trips every window. The per-pair activation rate
/// is the physical ceiling divided by `k` — with the default 7 pairs,
/// ~127K per refresh interval, enough to flip a future module (110K).
///
/// The hardened suspicion ledger accumulates each row's EWMA-decayed
/// rate evidence across stage-2 windows and convicts rows whose score
/// stays high for multiple windows, bypassing the per-window floor.
#[derive(Debug)]
pub struct DistributedManySided {
    arena_bytes: u64,
    pair_target: usize,
    prepared: Option<Prepared>,
}

#[derive(Debug)]
struct Prepared {
    /// One iteration (4 ops) per pair, visited round-robin.
    iterations: Vec<[AttackOp; 4]>,
    pair_idx: usize,
    op_idx: usize,
    aggressors: Vec<u64>,
    victims: Vec<u64>,
}

impl DistributedManySided {
    /// Creates the attack targeting 7 pairs in distinct banks over a
    /// 16 MB arena (a contiguous 16 MB spans all 16 banks of the paper's
    /// module).
    pub fn new() -> Self {
        DistributedManySided {
            arena_bytes: 16 * MB,
            pair_target: 7,
            prepared: None,
        }
    }

    /// Overrides how many pairs to hammer (at least 2; fewer may be used
    /// if the arena does not span enough banks, but preparation fails
    /// below 4 — a "many-sided" attack needs at least 8 aggressor rows).
    #[must_use]
    pub fn with_pair_target(mut self, pairs: usize) -> Self {
        self.pair_target = pairs.max(2);
        self
    }

    /// Number of pairs actually being hammered (after `prepare`).
    pub fn pair_count(&self) -> usize {
        self.prepared.as_ref().map_or(0, |p| p.iterations.len())
    }
}

impl Default for DistributedManySided {
    fn default() -> Self {
        Self::new()
    }
}

/// Picks up to `target` pairs from `candidates`, one per bank, keeping
/// the templated (vulnerable-victim-first) order within each bank.
fn distinct_banks(candidates: &[AggressorPair], target: usize) -> Vec<AggressorPair> {
    let mut chosen: Vec<AggressorPair> = Vec::new();
    for p in candidates {
        if chosen.len() >= target {
            break;
        }
        if chosen.iter().all(|c| c.victim.bank != p.victim.bank) {
            chosen.push(*p);
        }
    }
    chosen
}

impl Attack for DistributedManySided {
    fn name(&self) -> &'static str {
        "distributed-many-sided"
    }

    fn prepare(&mut self, env: &mut AttackEnv<'_>) -> Result<(), AttackError> {
        let va = env.process.mmap(self.arena_bytes, env.frames)?;
        // Scan the whole arena: the templated order puts vulnerable
        // victims first, and distinct-bank selection needs the full set.
        let candidates = templated_pairs(env, va, self.arena_bytes, 4096)?;
        let pairs = distinct_banks(&candidates, self.pair_target);
        if pairs.len() < 4 {
            return Err(AttackError::NoAggressorPair);
        }
        let mut aggressors = Vec::new();
        let mut victims = Vec::new();
        let mut iterations = Vec::new();
        for pair in &pairs {
            aggressors.push(pair.below_pa);
            aggressors.push(pair.above_pa);
            victims.push(victim_paddr(env, pair));
            iterations.push(pair_iteration(pair));
        }
        self.prepared = Some(Prepared {
            iterations,
            pair_idx: 0,
            op_idx: 0,
            aggressors,
            victims,
        });
        Ok(())
    }

    fn next_op(&mut self) -> AttackOp {
        let p = self.prepared.as_mut().expect("prepare the attack first");
        let op = p.iterations[p.pair_idx][p.op_idx];
        p.op_idx += 1;
        if p.op_idx == 4 {
            p.op_idx = 0;
            p.pair_idx = (p.pair_idx + 1) % p.iterations.len();
        }
        op
    }

    fn aggressor_paddrs(&self) -> Vec<u64> {
        self.prepared
            .as_ref()
            .map_or(Vec::new(), |p| p.aggressors.clone())
    }

    fn victim_paddrs(&self) -> Vec<u64> {
        self.prepared
            .as_ref()
            .map_or(Vec::new(), |p| p.victims.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anvil_dram::AddressMapping;
    use anvil_mem::{
        AllocationPolicy, FrameAllocator, MemoryConfig, MemorySystem, PagemapPolicy, Process,
    };
    use std::collections::BTreeSet;

    fn prepared() -> (DistributedManySided, AddressMapping) {
        let mut sys = MemorySystem::new(MemoryConfig::paper_platform());
        let mapping = *sys.dram().mapping();
        let mut frames = FrameAllocator::new(sys.phys().capacity(), AllocationPolicy::Contiguous);
        let mut process = Process::new(11, "adversary");
        let mut attack = DistributedManySided::new();
        attack
            .prepare(&mut AttackEnv {
                sys: &mut sys,
                process: &mut process,
                frames: &mut frames,
                pagemap: PagemapPolicy::Open,
            })
            .unwrap();
        (attack, mapping)
    }

    #[test]
    fn pairs_land_in_distinct_banks() {
        let (attack, mapping) = prepared();
        assert_eq!(attack.pair_count(), 7);
        assert_eq!(attack.aggressor_paddrs().len(), 14);
        let banks: BTreeSet<_> = attack
            .victim_paddrs()
            .iter()
            .map(|&pa| mapping.location_of(pa).bank)
            .collect();
        assert_eq!(banks.len(), 7, "one victim per bank");
    }

    #[test]
    fn round_robin_touches_every_pair_before_repeating() {
        let (mut attack, _) = prepared();
        let mut first_seen = Vec::new();
        for _ in 0..7 * 4 {
            if let AttackOp::Access { vaddr, .. } = attack.next_op() {
                if !first_seen.contains(&vaddr) {
                    first_seen.push(vaddr);
                }
            }
        }
        // 7 pairs x 2 aggressors, no repeats within one full round.
        assert_eq!(first_seen.len(), 14);
    }

    #[test]
    fn too_few_banks_is_an_error() {
        // A 256 KB arena spans all banks but only 2 rows per bank — row
        // pairs (r, r+2) need 3 rows, so no pairs exist at all.
        let mut sys = MemorySystem::new(MemoryConfig::paper_platform());
        let mut frames = FrameAllocator::new(sys.phys().capacity(), AllocationPolicy::Contiguous);
        let mut process = Process::new(12, "adversary");
        let mut attack = DistributedManySided::new();
        attack.arena_bytes = 256 << 10;
        let err = attack
            .prepare(&mut AttackEnv {
                sys: &mut sys,
                process: &mut process,
                frames: &mut frames,
                pagemap: PagemapPolicy::Open,
            })
            .unwrap_err();
        assert_eq!(err, AttackError::NoAggressorPair);
    }
}
